//===- rmir/Type.h - Rust-like type system --------------------------------===//
//
// Part of the Gillian-Rust C++ reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The RMIR type system: the 12 primitive machine integer types of Rust
/// (§3 of the paper), bool, unit, structs, enums (tagged unions), raw
/// pointers, references with lifetimes, arrays, and generic type parameters.
/// Types are interned in a TyCtx so that TypeRef equality is pointer
/// equality.
///
/// Layout is intentionally *not* part of a type: the compiler may choose
/// different layouts (§3.1), and the verifier reasons parametrically in the
/// chosen layout; see rmir/Layout.h.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_RMIR_TYPE_H
#define GILR_RMIR_TYPE_H

#include "sym/Expr.h"

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace gilr {
namespace rmir {

/// The 12 machine integer types of Rust.
enum class IntKind : uint8_t {
  I8,
  I16,
  I32,
  I64,
  I128,
  ISize,
  U8,
  U16,
  U32,
  U64,
  U128,
  USize,
};

/// Returns the byte width of \p K (ISize/USize are 8 on the modelled target).
unsigned intByteWidth(IntKind K);
/// Whether \p K is a signed integer kind.
bool intIsSigned(IntKind K);
/// Inclusive value range of \p K.
__int128 intMinValue(IntKind K);
__int128 intMaxValue(IntKind K);
/// Rust-facing name, e.g. "u32".
const char *intKindName(IntKind K);

class Type;
/// Interned type handle; equality is pointer equality.
using TypeRef = const Type *;

/// Type node kinds.
enum class TypeKind : uint8_t {
  Bool,
  Int,
  Unit,
  Struct,
  Enum,
  RawPtr, ///< *mut T / *const T (mutability is irrelevant to the model).
  Ref,    ///< &'k mut T (shared references are future work, as in §7.3).
  Array,  ///< [T; N].
  Param,  ///< Generic type parameter, compiled to abstract predicates (§4.2).
};

/// A field of a struct or of an enum variant.
struct FieldDef {
  std::string Name;
  TypeRef Ty;
};

/// One variant of an enum.
struct VariantDef {
  std::string Name;
  std::vector<FieldDef> Fields;
};

/// An interned RMIR type.
class Type {
public:
  TypeKind Kind;

  // Int.
  IntKind IntK = IntKind::I32;

  // Struct / Enum / Param: the nominal name (possibly instantiated, e.g.
  // "Node<T>" or "LinkedList<i32>").
  std::string Name;

  // Struct.
  std::vector<FieldDef> Fields;

  // Enum.
  std::vector<VariantDef> Variants;
  /// Enums flagged as option-like have exactly two variants (None, Some(T))
  /// and are represented by the Opt sort at the value level.
  bool IsOptionLike = false;

  // RawPtr / Ref / Array.
  TypeRef Pointee = nullptr;
  uint64_t ArrayLen = 0;

  /// Pretty Rust-like rendering, e.g. "*mut Node<T>".
  std::string str() const;

  bool isInt() const { return Kind == TypeKind::Int; }
  bool isPointerLike() const {
    return Kind == TypeKind::RawPtr || Kind == TypeKind::Ref;
  }
  bool isParam() const { return Kind == TypeKind::Param; }
  bool isOption() const { return Kind == TypeKind::Enum && IsOptionLike; }

  /// For option-like enums, the payload type of the Some variant.
  TypeRef optionPayload() const;

  /// True if the type mentions no type parameters (fully concrete).
  bool isConcrete() const;
};

/// The interning context that owns all types.
class TyCtx {
public:
  TyCtx();

  TypeRef boolTy() const { return BoolTy; }
  TypeRef unitTy() const { return UnitTy; }
  TypeRef intTy(IntKind K) const { return IntTys.at(static_cast<int>(K)); }
  TypeRef usize() const { return intTy(IntKind::USize); }

  TypeRef rawPtr(TypeRef Pointee);
  TypeRef mutRef(TypeRef Pointee);
  TypeRef array(TypeRef Elem, uint64_t Len);
  TypeRef param(const std::string &Name);

  /// Declares (or returns the previously declared) struct named \p Name.
  /// Redeclaration with different fields is an error.
  TypeRef declareStruct(const std::string &Name,
                        std::vector<FieldDef> Fields);

  /// Forward-declares a struct (recursive types like Node<T> reference
  /// pointers to themselves); complete it with \c defineStructFields.
  TypeRef declareStructForward(const std::string &Name);
  void defineStructFields(TypeRef Struct, std::vector<FieldDef> Fields);

  /// Declares a general enum.
  TypeRef declareEnum(const std::string &Name,
                      std::vector<VariantDef> Variants);

  /// Returns Option<T> (an option-like enum, interned per payload type).
  TypeRef optionOf(TypeRef Payload);

  /// Finds a nominal type by name, or nullptr.
  TypeRef lookup(const std::string &Name) const;

  /// All declared nominal types (structs, enums, params) in name order;
  /// used by the textual frontend's printer to emit type declarations.
  std::vector<TypeRef> allNominals() const;

  /// Finds *any* interned type (including derived pointer/array types) by
  /// its rendered name; used when decoding pointer values back into typed
  /// projections (heap/Projection.h).
  TypeRef byName(const std::string &Name) const;

  /// The symbolic size of \p T in bytes: a concrete integer for concrete
  /// types (under the *reference* size model: declaration-order independent
  /// quantities only), or an uninterpreted "sizeof" application for type
  /// parameters. Used when interpreting `+T e` projection elements.
  Expr sizeOfExpr(TypeRef T) const;

private:
  Type *create();

  std::vector<std::unique_ptr<Type>> Arena;
  TypeRef BoolTy;
  TypeRef UnitTy;
  std::vector<TypeRef> IntTys;
  std::map<std::string, TypeRef> Nominals; // structs, enums, params.
  std::map<TypeRef, TypeRef> RawPtrs;
  std::map<TypeRef, TypeRef> MutRefs;
  std::map<std::pair<TypeRef, uint64_t>, TypeRef> Arrays;
  std::map<TypeRef, TypeRef> Options;
  /// byName() lazily refreshes this cache under const; parallel proof
  /// workers decode pointer values concurrently, so it needs a lock.
  mutable std::mutex ByNameMu;
  mutable std::map<std::string, TypeRef> AllByName;
};

} // namespace rmir
} // namespace gilr

#endif // GILR_RMIR_TYPE_H
