//===- rmir/Builder.cpp ------------------------------------------------------===//

#include "rmir/Builder.h"

#include "support/Diagnostics.h"
#include "sym/ExprBuilder.h"

#include <cassert>

using namespace gilr;
using namespace gilr::rmir;

FunctionBuilder::FunctionBuilder(std::string Name, TyCtx &Types)
    : Types(Types) {
  F.Name = std::move(Name);
  // Local 0: the return slot, defaulting to unit.
  F.Locals.push_back({"_ret", Types.unitTy()});
}

void FunctionBuilder::addTypeParam(const std::string &Name) {
  F.TypeParams.push_back(Name);
}

void FunctionBuilder::addLifetime(const std::string &Name) {
  F.Lifetimes.push_back(Name);
}

void FunctionBuilder::suppressLint(const std::string &Code) {
  F.LintSuppress.push_back(Code);
}

LocalId FunctionBuilder::addParam(const std::string &Name, TypeRef Ty) {
  assert(!SawNonParamLocal && "parameters must precede plain locals");
  F.Locals.push_back({Name, Ty});
  ++F.NumParams;
  return static_cast<LocalId>(F.Locals.size() - 1);
}

LocalId FunctionBuilder::addLocal(const std::string &Name, TypeRef Ty) {
  SawNonParamLocal = true;
  F.Locals.push_back({Name, Ty});
  return static_cast<LocalId>(F.Locals.size() - 1);
}

void FunctionBuilder::setReturnType(TypeRef Ty) { F.Locals[0].Ty = Ty; }

BlockId FunctionBuilder::newBlock() {
  F.Blocks.push_back(BasicBlock());
  Terminated.push_back(false);
  return static_cast<BlockId>(F.Blocks.size() - 1);
}

void FunctionBuilder::atBlock(BlockId B) {
  assert(B < F.Blocks.size() && "atBlock on unknown block");
  Current = B;
}

BasicBlock &FunctionBuilder::cur() {
  assert(Current < F.Blocks.size() && "no current block");
  assert(!Terminated[Current] && "emitting into a terminated block");
  return F.Blocks[Current];
}

void FunctionBuilder::assign(Place P, Rvalue R) {
  assert(P.Local < F.Locals.size() && "assign to unknown local");
  cur().Stmts.push_back(Statement::assign(std::move(P), std::move(R)));
}

void FunctionBuilder::alloc(Place Dest, TypeRef Ty) {
  cur().Stmts.push_back(Statement::alloc(std::move(Dest), Ty));
}

void FunctionBuilder::free(Operand Ptr, TypeRef Ty) {
  cur().Stmts.push_back(Statement::free(std::move(Ptr), Ty));
}

void FunctionBuilder::ghost(Ghost G) {
  cur().Stmts.push_back(Statement::ghost(std::move(G)));
}

void FunctionBuilder::unfold(const std::string &Pred,
                             std::vector<Operand> Args) {
  ghost({GhostKind::Unfold, Pred, std::move(Args), nullptr});
}

void FunctionBuilder::fold(const std::string &Pred,
                           std::vector<Operand> Args) {
  ghost({GhostKind::Fold, Pred, std::move(Args), nullptr});
}

void FunctionBuilder::gunfold(const std::string &Pred,
                              std::vector<Operand> Args) {
  ghost({GhostKind::GUnfold, Pred, std::move(Args), nullptr});
}

void FunctionBuilder::gfold(const std::string &Pred,
                            std::vector<Operand> Args) {
  ghost({GhostKind::GFold, Pred, std::move(Args), nullptr});
}

void FunctionBuilder::applyLemma(const std::string &Lemma,
                                 std::vector<Operand> Args) {
  ghost({GhostKind::ApplyLemma, Lemma, std::move(Args), nullptr});
}

void FunctionBuilder::mutrefAutoResolve(Operand Ref) {
  ghost({GhostKind::MutRefAutoResolve, "", {std::move(Ref)}, nullptr});
}

void FunctionBuilder::prophecyAutoUpdate(Operand Ref) {
  ghost({GhostKind::ProphecyAutoUpdate, "", {std::move(Ref)}, nullptr});
}

void FunctionBuilder::gotoBlock(BlockId B) {
  assert(B < F.Blocks.size() && "goto unknown block");
  cur().Term = Terminator::gotoBlock(B);
  Terminated[Current] = true;
}

void FunctionBuilder::switchInt(
    Operand D, std::vector<std::pair<__int128, BlockId>> Arms,
    BlockId Otherwise) {
  for ([[maybe_unused]] auto &[Val, BB] : Arms)
    assert(BB < F.Blocks.size() && "switch arm to unknown block");
  assert(Otherwise < F.Blocks.size() && "switch default to unknown block");
  cur().Term = Terminator::switchInt(std::move(D), std::move(Arms), Otherwise);
  Terminated[Current] = true;
}

void FunctionBuilder::switchOption(Operand D, BlockId NoneBB, BlockId SomeBB) {
  switchInt(std::move(D), {{0, NoneBB}}, SomeBB);
}

void FunctionBuilder::call(const std::string &Callee,
                           std::vector<Operand> Args, Place Dest,
                           BlockId Target, std::vector<TypeRef> TypeArgs) {
  assert(Target < F.Blocks.size() && "call continuation unknown block");
  cur().Term = Terminator::call(Callee, std::move(Args), std::move(Dest),
                                Target, std::move(TypeArgs));
  Terminated[Current] = true;
}

void FunctionBuilder::ret() {
  cur().Term = Terminator::ret();
  Terminated[Current] = true;
}

void FunctionBuilder::unreachable() {
  cur().Term = Terminator::unreachable();
  Terminated[Current] = true;
}

Function FunctionBuilder::finish() {
  for (std::size_t I = 0, E = Terminated.size(); I != E; ++I)
    if (!Terminated[I])
      fatalError("function '" + F.Name + "': block " + std::to_string(I) +
                 " lacks a terminator");
  return std::move(F);
}
