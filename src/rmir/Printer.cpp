//===- rmir/Printer.cpp ------------------------------------------------------===//

#include "rmir/Printer.h"

#include "support/Diagnostics.h"
#include "support/StringUtils.h"
#include "sym/Printer.h"

using namespace gilr;
using namespace gilr::rmir;

std::string gilr::rmir::placeToString(const Function &F, const Place &P) {
  std::string S = F.Locals.at(P.Local).Name;
  for (const PlaceElem &E : P.Elems) {
    switch (E.Kind) {
    case PlaceElem::Deref:
      S = "(*" + S + ")";
      break;
    case PlaceElem::Field:
      S += "." + std::to_string(E.Index);
      break;
    case PlaceElem::Downcast:
      S += " as v" + std::to_string(E.Index);
      break;
    }
  }
  return S;
}

std::string gilr::rmir::operandToString(const Function &F, const Operand &Op) {
  switch (Op.Kind) {
  case Operand::Copy:
    return "copy " + placeToString(F, Op.P);
  case Operand::Move:
    return "move " + placeToString(F, Op.P);
  case Operand::Const:
    return "const " + exprToString(Op.ConstVal);
  }
  GILR_UNREACHABLE("unknown operand kind");
}

static const char *binOpName(BinOp Op) {
  switch (Op) {
  case BinOp::Add:
    return "Add";
  case BinOp::Sub:
    return "Sub";
  case BinOp::Mul:
    return "Mul";
  case BinOp::Eq:
    return "Eq";
  case BinOp::Ne:
    return "Ne";
  case BinOp::Lt:
    return "Lt";
  case BinOp::Le:
    return "Le";
  case BinOp::Gt:
    return "Gt";
  case BinOp::Ge:
    return "Ge";
  }
  GILR_UNREACHABLE("unknown binop");
}

std::string gilr::rmir::rvalueToString(const Function &F, const Rvalue &R) {
  switch (R.Kind) {
  case Rvalue::Use:
    return operandToString(F, R.Ops[0]);
  case Rvalue::BinaryOp:
    return std::string(binOpName(R.BOp)) + "(" +
           operandToString(F, R.Ops[0]) + ", " + operandToString(F, R.Ops[1]) +
           ")";
  case Rvalue::UnaryOp:
    return std::string(R.UOp == UnOp::Not ? "Not" : "Neg") + "(" +
           operandToString(F, R.Ops[0]) + ")";
  case Rvalue::Aggregate: {
    std::vector<std::string> Parts;
    for (const Operand &Op : R.Ops)
      Parts.push_back(operandToString(F, Op));
    std::string VariantStr =
        R.AggTy->Kind == TypeKind::Enum
            ? "::" + R.AggTy->Variants.at(R.Variant).Name
            : "";
    return R.AggTy->str() + VariantStr + " { " + join(Parts, ", ") + " }";
  }
  case Rvalue::Discriminant:
    return "discriminant(" + placeToString(F, R.P) + ")";
  case Rvalue::RefOf:
    return "&mut " + placeToString(F, R.P);
  case Rvalue::AddrOf:
    return "&raw mut " + placeToString(F, R.P);
  case Rvalue::PtrOffset:
    return operandToString(F, R.Ops[0]) + ".offset(" +
           operandToString(F, R.Ops[1]) + ")";
  }
  GILR_UNREACHABLE("unknown rvalue kind");
}

static std::string ghostToString(const Function &F, const Ghost &G) {
  std::vector<std::string> Parts;
  for (const Operand &Op : G.Args)
    Parts.push_back(operandToString(F, Op));
  std::string Args = "(" + join(Parts, ", ") + ")";
  switch (G.Kind) {
  case GhostKind::Unfold:
    return "ghost unfold " + G.Name + Args;
  case GhostKind::Fold:
    return "ghost fold " + G.Name + Args;
  case GhostKind::GUnfold:
    return "ghost gunfold " + G.Name + Args;
  case GhostKind::GFold:
    return "ghost gfold " + G.Name + Args;
  case GhostKind::ApplyLemma:
    return "ghost apply " + G.Name + Args;
  case GhostKind::MutRefAutoResolve:
    return "ghost mutref_auto_resolve!" + Args;
  case GhostKind::ProphecyAutoUpdate:
    return "ghost prophecy_auto_update" + Args;
  case GhostKind::AssertPure:
    return "ghost assert " + exprToString(G.PureArg);
  }
  GILR_UNREACHABLE("unknown ghost kind");
}

std::string gilr::rmir::statementToString(const Function &F,
                                          const Statement &S) {
  switch (S.Kind) {
  case Statement::Assign:
    return placeToString(F, S.Dest) + " = " + rvalueToString(F, S.RV);
  case Statement::Alloc:
    return placeToString(F, S.Dest) + " = alloc::<" + S.AllocTy->str() + ">()";
  case Statement::Free:
    return "dealloc::<" + S.AllocTy->str() + ">(" +
           operandToString(F, S.FreeArg) + ")";
  case Statement::GhostStmt:
    return ghostToString(F, S.G);
  case Statement::Nop:
    return "nop";
  }
  GILR_UNREACHABLE("unknown statement kind");
}

std::string gilr::rmir::terminatorToString(const Function &F,
                                           const Terminator &T) {
  switch (T.Kind) {
  case Terminator::Goto:
    return "goto bb" + std::to_string(T.Target);
  case Terminator::SwitchInt: {
    std::vector<std::string> Parts;
    for (const auto &[Val, BB] : T.Arms)
      Parts.push_back(int128ToString(Val) + " -> bb" + std::to_string(BB));
    Parts.push_back("otherwise -> bb" + std::to_string(T.Otherwise));
    return "switchInt(" + operandToString(F, T.Discr) + ") [" +
           join(Parts, ", ") + "]";
  }
  case Terminator::Call: {
    std::vector<std::string> Parts;
    for (const Operand &Op : T.Args)
      Parts.push_back(operandToString(F, Op));
    return placeToString(F, T.Dest) + " = " + T.Callee + "(" +
           join(Parts, ", ") + ") -> bb" + std::to_string(T.Target);
  }
  case Terminator::Return:
    return "return";
  case Terminator::Unreachable:
    return "unreachable";
  }
  GILR_UNREACHABLE("unknown terminator kind");
}

std::string gilr::rmir::functionToString(const Function &F) {
  std::string Out = "fn " + F.Name;
  if (!F.TypeParams.empty())
    Out += "<" + join(F.TypeParams, ", ") + ">";
  Out += "(";
  std::vector<std::string> Params;
  for (unsigned I = 0; I != F.NumParams; ++I)
    Params.push_back(F.Locals[1 + I].Name + ": " + F.Locals[1 + I].Ty->str());
  Out += join(Params, ", ") + ") -> " + F.returnType()->str() + " {\n";
  for (std::size_t I = F.NumParams + 1; I < F.Locals.size(); ++I)
    Out += "  let " + F.Locals[I].Name + ": " + F.Locals[I].Ty->str() + ";\n";
  for (std::size_t B = 0; B != F.Blocks.size(); ++B) {
    Out += "  bb" + std::to_string(B) + ": {\n";
    for (const Statement &S : F.Blocks[B].Stmts)
      Out += "    " + statementToString(F, S) + ";\n";
    Out += "    " + terminatorToString(F, F.Blocks[B].Term) + ";\n  }\n";
  }
  Out += "}\n";
  return Out;
}
