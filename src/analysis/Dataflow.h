//===- analysis/Dataflow.h - Generic dataflow over the RMIR CFG ------------===//
///
/// \file
/// A small forward/backward dataflow framework over RMIR control-flow
/// graphs, shared by the pre-verification lint passes (definite
/// initialization, moved-local tracking, liveness, reachability).
///
/// The CFG is built defensively: RMIR produced through rmir::FunctionBuilder
/// is structurally valid by construction, but the well-formedness pass must
/// diagnose hand-built (or future frontend-emitted) bodies without crashing,
/// so out-of-range terminator targets are *dropped* from the edge set (and
/// flagged via \c Cfg::BadEdges) rather than followed.
///
/// Client analyses plug into \c solveDataflow as a policy object:
///
///   struct MyAnalysis {
///     using Domain = ...;                  // lattice values
///     static constexpr Direction Dir = Direction::Forward;
///     Domain boundary();                   // entry (fwd) / exit (bwd) value
///     Domain top();                        // initial value elsewhere
///     bool meetInto(Domain &Into, const Domain &From); // true if changed
///     Domain transfer(unsigned Block, Domain In);      // whole-block
///   };
///
/// \c solveDataflow returns the converged value at each block's *start* in
/// the direction of travel: block-entry states for forward analyses,
/// block-exit (live-out style) states for backward ones. Passes that need
/// per-statement precision replay the block transfer statement by statement
/// from the returned state.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_ANALYSIS_DATAFLOW_H
#define GILR_ANALYSIS_DATAFLOW_H

#include "rmir/Program.h"

#include <deque>
#include <vector>

namespace gilr {
namespace analysis {

enum class Direction { Forward, Backward };

/// Explicit successor/predecessor edge sets of an RMIR function body, with
/// entry reachability precomputed.
struct Cfg {
  const rmir::Function *F = nullptr;
  std::vector<std::vector<unsigned>> Succs;
  std::vector<std::vector<unsigned>> Preds;
  /// Blocks reachable from the entry block (block 0) along kept edges.
  std::vector<bool> Reachable;
  /// True if any terminator referenced an out-of-range block (the edge was
  /// dropped; the well-formedness pass reports it as GILR-E001).
  bool BadEdges = false;

  static Cfg build(const rmir::Function &F);

  /// The successor block ids a terminator names, in declaration order,
  /// including out-of-range ones (callers that need only valid edges use
  /// \c Succs).
  static void terminatorTargets(const rmir::Terminator &T,
                                std::vector<unsigned> &Out);
};

/// Round-robin worklist solver. See the file comment for the Analysis
/// policy-object contract.
template <typename Analysis>
std::vector<typename Analysis::Domain> solveDataflow(const Cfg &C,
                                                     Analysis &A) {
  using Domain = typename Analysis::Domain;
  const std::size_t N = C.F->Blocks.size();
  constexpr bool Fwd = Analysis::Dir == Direction::Forward;

  // In[b]: the meet-over-edges value at the block's start of travel.
  std::vector<Domain> In;
  In.reserve(N);
  for (std::size_t B = 0; B < N; ++B)
    In.push_back(A.top());

  std::deque<unsigned> Work;
  std::vector<bool> Queued(N, false);
  if (Fwd) {
    if (N > 0) {
      A.meetInto(In[0], A.boundary());
      Work.push_back(0);
      Queued[0] = true;
    }
  } else {
    // Every block flows from the exit boundary: blocks ending in Return (or
    // stuck blocks with no successors) have no out-edges, so their "In" (the
    // block-exit state) is the boundary value.
    for (std::size_t B = 0; B < N; ++B) {
      if (C.Succs[B].empty())
        A.meetInto(In[B], A.boundary());
      Work.push_back(static_cast<unsigned>(B));
      Queued[B] = true;
    }
  }

  while (!Work.empty()) {
    unsigned B = Work.front();
    Work.pop_front();
    Queued[B] = false;
    Domain Out = A.transfer(B, In[B]);
    const std::vector<unsigned> &Next = Fwd ? C.Succs[B] : C.Preds[B];
    for (unsigned S : Next) {
      if (A.meetInto(In[S], Out) && !Queued[S]) {
        Work.push_back(S);
        Queued[S] = true;
      }
    }
  }
  return In;
}

} // namespace analysis
} // namespace gilr

#endif // GILR_ANALYSIS_DATAFLOW_H
