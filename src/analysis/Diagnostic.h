//===- analysis/Diagnostic.h - Structured pre-verification diagnostics -----===//
///
/// \file
/// The diagnostic vocabulary of the static pre-verification pass
/// (src/analysis/): structured, deterministically ordered findings with
/// stable GILR-Exxx / GILR-Wxxx codes, an entity path (the function, spec,
/// predicate or lemma the finding is about), an optional block/statement
/// location inside an RMIR body, and free-form notes (e.g. the unsat core of
/// a vacuous precondition).
///
/// Diagnostics are collected by a thread-safe \c DiagnosticEngine — lint
/// jobs run on the proof scheduler's worker pool — and always emitted in a
/// deterministic order (sorted, not arrival order), so the rendered output
/// is byte-identical at any worker count (the determinism contract of
/// docs/SCHEDULER.md extends to the pre-pass).
///
/// See docs/ANALYSIS.md for the pass catalog and the full code registry.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_ANALYSIS_DIAGNOSTIC_H
#define GILR_ANALYSIS_DIAGNOSTIC_H

#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace gilr {
namespace analysis {

/// Diagnostic severities. \c Error findings block verification of the
/// affected entity (when \c AnalysisConfig::FailOnError is set); warnings
/// are reported but do not gate.
enum class Severity : uint8_t { Error = 0, Warning = 1 };

/// Printable name ("error" / "warning").
const char *severityName(Severity S);

// Stable diagnostic codes. Append only, never renumber: codes appear in
// persisted lint verdicts (incr/ProofStore.h), suppression attributes and
// user-facing documentation.
namespace code {
inline constexpr const char *BadTarget = "GILR-E001";      ///< Terminator target out of range.
inline constexpr const char *BadLocal = "GILR-E002";       ///< Reference to an undeclared local.
inline constexpr const char *TypeMismatch = "GILR-E003";   ///< Place/operand type disagreement.
inline constexpr const char *UninitUse = "GILR-E004";      ///< Use of a possibly-uninitialized local.
inline constexpr const char *MovedUse = "GILR-E005";       ///< Use of a moved local.
inline constexpr const char *VacuousPre = "GILR-E006";     ///< UNSAT precondition.
inline constexpr const char *ParseError = "GILR-E007";     ///< Malformed Gilsonite spec/assertion.
inline constexpr const char *SyntaxError = "GILR-E008";    ///< .gilr syntax error (frontend).
inline constexpr const char *NameError = "GILR-E009";      ///< Unresolved name in a .gilr module.
inline constexpr const char *FrontendError = "GILR-E010";  ///< Other .gilr lowering/typecheck error.
inline constexpr const char *UnreachableBlock = "GILR-W001"; ///< Block unreachable from entry.
inline constexpr const char *DeadStore = "GILR-W002";      ///< Store whose value is never read.
inline constexpr const char *UnsafeSurface = "GILR-W003";  ///< Raw-pointer ops outside ownership predicates.
inline constexpr const char *TrivialPost = "GILR-W004";    ///< Trivially-true postcondition conjunct.
inline constexpr const char *UnusedPred = "GILR-W005";     ///< Predicate never referenced.
inline constexpr const char *UnusedLemma = "GILR-W006";    ///< Lemma never applied.
inline constexpr const char *PostImpliedByPre = "GILR-W007"; ///< Post conjunct already follows from the pre.
inline constexpr const char *PostUnsatGivenPre = "GILR-E011"; ///< Post contradicts the pre.
inline constexpr const char *FrameWiderThanFootprint = "GILR-W008"; ///< Spec owns memory the body never touches.
inline constexpr const char *UnsafeEscape = "GILR-W009";   ///< Callee's unsafe surface escapes into a spec-free caller.
inline constexpr const char *RecursionNoVariant = "GILR-W010"; ///< Recursive cycle with no decreasing lemma/variant.
} // namespace code

/// One entry of the diagnostic-code registry: the stable code plus the
/// documentation `gilr lint --explain GILR-<code>` prints.
struct CodeDoc {
  const char *Code;
  const char *Summary; ///< One line.
  const char *Detail;  ///< Longer explanation, possibly multi-sentence.
};

/// The full registry, in code order (E001.., then W001..). Stable: append
/// only.
const std::vector<CodeDoc> &codeRegistry();

/// Looks up \p Code (e.g. "GILR-W008") in the registry; nullptr when
/// unknown.
const CodeDoc *lookupCodeDoc(const std::string &Code);

/// The severity a code carries by default ("GILR-E..." are errors,
/// "GILR-W..." warnings).
Severity codeSeverity(const std::string &Code);

/// One structured finding.
struct Diagnostic {
  std::string Code;    ///< Stable code, e.g. "GILR-E006".
  Severity Sev = Severity::Warning;
  std::string Entity;  ///< Entity path, e.g. "push_front" or "pred:dllSeg".
  /// Location inside the entity's RMIR body; -1 when not applicable
  /// (spec-level and program-level findings).
  int Block = -1;
  int Stmt = -1;
  std::string Message;
  /// Supporting details, e.g. the unsat-core assertion spans of a vacuous
  /// precondition.
  std::vector<std::string> Notes;
  /// Source location for findings that point into a textual .gilr module
  /// (frontend syntax/name/type errors, position-tracked spec bridge
  /// failures). \c File empty means "no source location" — the historical
  /// builder-API rendering is unchanged.
  std::string File;
  unsigned Line = 0; ///< 1-based; meaningful only when File is non-empty.
  unsigned Col = 0;  ///< 1-based; meaningful only when File is non-empty.

  /// One-line rendering: "error[GILR-E006] push_front: message (bb1, st 2)";
  /// with a source location, "file.gilr:3:7: error[GILR-E008] ...".
  std::string str() const;
};

/// Deterministic ordering: (Entity, Block, Stmt, Code, Message, Notes,
/// File, Line, Col).
bool diagnosticLess(const Diagnostic &A, const Diagnostic &B);

/// Knobs of the pre-verification pass. A default-constructed config is the
/// production configuration: all passes on, errors gate verification,
/// warnings reported but not gating.
struct AnalysisConfig {
  /// Master switch; when false the drivers skip the pre-pass entirely.
  bool Enabled = true;
  /// Entities with error-severity findings are rejected before symbolic
  /// execution (their reports fail with the diagnostics attached).
  bool FailOnError = true;
  /// Promote warnings to errors (CI hardening).
  bool WarningsAsErrors = false;
  /// CFG/dataflow lints over RMIR bodies (well-formedness, dead code,
  /// unsafe surface).
  bool FunctionLints = true;
  /// Solver-backed spec lints (vacuity, trivial postconditions) and the
  /// unused-predicate/lemma cross-reference.
  bool SpecLints = true;
  /// Globally disabled codes (per-entity suppression is the RMIR
  /// \c LintSuppress attribute, see rmir::Function).
  std::set<std::string> DisabledCodes;
};

/// Thread-safe diagnostic collector. Lint jobs report concurrently; reads
/// happen after the lint phase completes. Suppression (global config codes
/// and per-entity attributes) is applied at report time and counted.
class DiagnosticEngine {
public:
  explicit DiagnosticEngine(const AnalysisConfig &Cfg) : Cfg(Cfg) {}

  /// Registers \p Code as suppressed for \p Entity (from the entity's RMIR
  /// \c LintSuppress attribute; the pseudo-code "all" mutes every lint).
  void suppress(const std::string &Entity, const std::string &Code);

  /// Files \p D (applying severity promotion and suppression). Returns true
  /// iff the diagnostic was kept.
  bool report(Diagnostic D);

  /// All kept diagnostics in deterministic order.
  std::vector<Diagnostic> sorted() const;

  uint64_t errorCount() const;
  uint64_t warningCount() const;
  uint64_t suppressedCount() const;

  const AnalysisConfig &config() const { return Cfg; }

private:
  AnalysisConfig Cfg;
  mutable std::mutex Mu;
  std::vector<Diagnostic> Diags;
  std::set<std::pair<std::string, std::string>> Suppressions;
  uint64_t Suppressed = 0;
};

/// Renders \p Diags as human-readable text, one finding per line with
/// indented notes.
std::string renderDiagnosticsText(const std::vector<Diagnostic> &Diags);

/// Renders \p Diags as a JSON array (element shape documented in
/// docs/ANALYSIS.md).
std::string renderDiagnosticsJson(const std::vector<Diagnostic> &Diags);

} // namespace analysis
} // namespace gilr

#endif // GILR_ANALYSIS_DIAGNOSTIC_H
