//===- analysis/Analysis.h - The pre-verification analysis driver ----------===//
///
/// \file
/// Entry points of the static pre-verification pass. The drivers
/// (engine::Verifier, hybrid::HybridDriver, the scheduler's lint jobs) call
/// \c lintEntity per verification obligation and \c lintProgramLevel once,
/// then fold the verdicts into an \c AnalysisResult via \c finalizeAnalysis
/// — which also publishes the summary to the metrics registry so the
/// gilr-telemetry-v1 JSON gains its \c analysis section.
///
/// Layering: analysis sits between gilsonite and engine. It cannot see
/// engine::LemmaTable or incr::DepGraph; lemma names and externally-known
/// entity uses are passed in as plain data.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_ANALYSIS_ANALYSIS_H
#define GILR_ANALYSIS_ANALYSIS_H

#include "analysis/Diagnostic.h"
#include "analysis/Passes.h"

#include <optional>
#include <utility>

namespace gilr {
namespace analysis {

/// Everything the passes need, as plain references/data (see the layering
/// note in the file comment).
struct AnalysisInput {
  const rmir::Program *Prog = nullptr;
  const gilsonite::PredTable *Preds = nullptr;
  const gilsonite::SpecTable *Specs = nullptr;
  /// Solver for the spec lints; null skips the solver-backed checks.
  Solver *Solv = nullptr;
  /// Declared lemma names (engine::LemmaTable::names(), passed down).
  std::vector<std::string> LemmaNames;
  /// Entity uses known to outer layers only — e.g. predicates/lemmas that
  /// appear in the incremental DepGraph's recorded proof dependencies.
  std::set<std::string> ExtraUsedPreds;
  std::set<std::string> ExtraUsedLemmas;
  /// Interprocedural summaries (analysis/Summary.h). When non-null the
  /// summary-powered lints run: W008 sees through predicate calls, W009
  /// (unsafe-escape) fires at call sites in spec-free callers, and W010
  /// (recursion without a variant) fires per recursive SCC. Null keeps the
  /// historical purely-syntactic behaviour; \c analyzeProgram computes a
  /// table itself when given none.
  const SummaryTable *Summaries = nullptr;
  AnalysisConfig Cfg;
};

/// The lint verdict for one verification entity (a function + its spec).
/// This is the unit the incremental layer fingerprints and caches.
struct EntityVerdict {
  std::vector<Diagnostic> Diags; ///< Deterministically sorted.
  /// Error-severity findings present and FailOnError set: the entity is
  /// rejected before symbolic execution.
  bool Blocked = false;
  /// Replayed from the incremental proof store (set by the caller).
  bool Cached = false;
  uint64_t Suppressed = 0;
};

/// Lints one entity: CFG/dataflow passes over its RMIR body (if it has
/// one), spec lints over its registered spec. Thread-safe — scheduler lint
/// jobs call this concurrently. Notes Function/Spec dependencies through
/// the support/Deps.h hook, so a DepRecorder captures exactly what the
/// verdict depends on.
EntityVerdict lintEntity(const AnalysisInput &In, const std::string &Name);

/// Program-level lints (unused predicates / lemmas). Run once per
/// verification run, not per entity.
std::vector<Diagnostic> lintProgramLevel(const AnalysisInput &In);

/// The aggregated result surfaced in HybridReport and the telemetry JSON.
struct AnalysisResult {
  bool Enabled = false;
  std::vector<Diagnostic> Diags; ///< All findings, deterministically sorted.
  uint64_t Errors = 0;
  uint64_t Warnings = 0;
  uint64_t Suppressed = 0;
  uint64_t EntitiesAnalyzed = 0; ///< Entities linted this run (not cached).
  uint64_t EntitiesCached = 0;   ///< Verdicts replayed from the proof store.
  uint64_t EntitiesBlocked = 0;  ///< Entities rejected before execution.
  double Seconds = 0.0;

  /// No error-severity findings.
  bool ok() const { return Errors == 0; }

  std::string renderText() const;
  /// JSON object (embedded in HybridReport::renderJson()). Contains only
  /// run-independent fields — Seconds and the analyzed/cached split go to
  /// the telemetry stats instead — so report JSON stays byte-identical
  /// across worker counts and across cold/warm incremental runs.
  std::string renderJson() const;
};

/// Folds per-entity verdicts + program-level findings into one result,
/// re-sorts globally, and publishes the summary to
/// metrics::Registry::setAnalysisReport (so trace::renderStatsJson can emit
/// the \c analysis section).
AnalysisResult finalizeAnalysis(
    const AnalysisConfig &Cfg,
    const std::vector<std::pair<std::string, EntityVerdict>> &PerEntity,
    std::vector<Diagnostic> ProgramDiags, double Seconds);

/// Serial whole-program convenience: lints \p Entities in order plus the
/// program level, and finalizes. Used by the serial driver paths and tests.
AnalysisResult analyzeProgram(const AnalysisInput &In,
                              const std::vector<std::string> &Entities);

/// Parses a textual Gilsonite spec, converting a parse failure into a
/// GILR-E007 diagnostic against \p Entity instead of a fatal error
/// (gilsonite::Parser reports failures as Outcome; this adapter is the
/// diagnostic-engine bridge). Returns the spec on success.
std::optional<gilsonite::Spec>
parseSpecChecked(const std::string &Text, const rmir::TyCtx &Types,
                 const std::string &Entity, std::vector<Diagnostic> &Diags);

} // namespace analysis
} // namespace gilr

#endif // GILR_ANALYSIS_ANALYSIS_H
