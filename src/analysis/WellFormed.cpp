//===- analysis/WellFormed.cpp - Structural + dataflow well-formedness -----===//
///
/// GILR-E001..E005. Everything here must stay total on arbitrary Function
/// values: unlike rmir::placeType (which asserts), the gentle typing walk
/// returns nullptr with a reason, and the CFG builder drops out-of-range
/// edges, so a malformed body produces diagnostics instead of aborting.
///
//===----------------------------------------------------------------------===//

#include "analysis/Dataflow.h"
#include "analysis/Passes.h"

#include <sstream>

using namespace gilr;
using namespace gilr::analysis;
using namespace gilr::rmir;

rmir::TypeRef gilr::analysis::placeTypeGentle(const Function &F,
                                              const Place &P,
                                              std::string &Why) {
  if (P.Local >= F.Locals.size()) {
    Why = "undeclared local _" + std::to_string(P.Local);
    return nullptr;
  }
  TypeRef Ty = F.Locals[P.Local].Ty;
  if (!Ty) {
    Why = "local _" + std::to_string(P.Local) + " has no type";
    return nullptr;
  }
  unsigned Variant = 0;
  bool Downcasted = false;
  for (const PlaceElem &E : P.Elems) {
    switch (E.Kind) {
    case PlaceElem::Deref:
      if (!Ty->isPointerLike()) {
        Why = "deref of non-pointer type " + Ty->str();
        return nullptr;
      }
      Ty = Ty->Pointee;
      Downcasted = false;
      break;
    case PlaceElem::Downcast:
      if (Ty->Kind != TypeKind::Enum) {
        Why = "downcast of non-enum type " + Ty->str();
        return nullptr;
      }
      if (E.Index >= Ty->Variants.size()) {
        Why = "downcast to variant " + std::to_string(E.Index) + " of " +
              Ty->str() + " (has " + std::to_string(Ty->Variants.size()) +
              " variants)";
        return nullptr;
      }
      Variant = E.Index;
      Downcasted = true;
      break;
    case PlaceElem::Field:
      if (Ty->Kind == TypeKind::Struct) {
        if (Downcasted) {
          Why = "downcast of struct type " + Ty->str();
          return nullptr;
        }
        if (E.Index >= Ty->Fields.size()) {
          Why = "field " + std::to_string(E.Index) + " out of range for " +
                Ty->str();
          return nullptr;
        }
        Ty = Ty->Fields[E.Index].Ty;
      } else if (Ty->Kind == TypeKind::Enum && Downcasted) {
        if (E.Index >= Ty->Variants[Variant].Fields.size()) {
          Why = "field " + std::to_string(E.Index) +
                " out of range for variant " + std::to_string(Variant) +
                " of " + Ty->str();
          return nullptr;
        }
        Ty = Ty->Variants[Variant].Fields[E.Index].Ty;
        Downcasted = false;
      } else {
        Why = "field projection on type " + Ty->str() +
              (Ty->Kind == TypeKind::Enum ? " without downcast" : "");
        return nullptr;
      }
      break;
    }
    if (!Ty) {
      Why = "projection reaches an incomplete type";
      return nullptr;
    }
  }
  return Ty;
}

rmir::TypeRef gilr::analysis::operandTypeGentle(const Function &F,
                                                const Operand &Op,
                                                std::string &Why) {
  switch (Op.Kind) {
  case Operand::Copy:
  case Operand::Move:
    return placeTypeGentle(F, Op.P, Why);
  case Operand::Const:
    if (!Op.ConstTy)
      Why = "untyped constant operand";
    return Op.ConstTy;
  }
  Why = "unknown operand kind";
  return nullptr;
}

namespace {

std::string localName(const Function &F, LocalId L) {
  std::string S = "_" + std::to_string(L);
  if (L < F.Locals.size() && !F.Locals[L].Name.empty())
    S += " '" + F.Locals[L].Name + "'";
  return S;
}

/// Reporting context for one function body.
struct WFCtx {
  const Function &F;
  DiagnosticEngine &DE;

  void report(const char *Code, int Block, int Stmt, std::string Msg) {
    Diagnostic D;
    D.Code = Code;
    D.Entity = F.Name;
    D.Block = Block;
    D.Stmt = Stmt;
    D.Message = std::move(Msg);
    DE.report(std::move(D));
  }

  /// Types a place; diagnoses E002 (undeclared base local) / E003 (bad
  /// projection) on failure.
  TypeRef typePlace(const Place &P, int B, int S) {
    if (P.Local >= F.Locals.size()) {
      report(code::BadLocal, B, S,
             "reference to undeclared local _" + std::to_string(P.Local) +
                 " (function declares " + std::to_string(F.Locals.size()) +
                 " locals)");
      return nullptr;
    }
    std::string Why;
    TypeRef Ty = placeTypeGentle(F, P, Why);
    if (!Ty)
      report(code::TypeMismatch, B, S, "ill-typed place: " + Why);
    return Ty;
  }

  TypeRef typeOperand(const Operand &Op, int B, int S) {
    if (Op.Kind != Operand::Const)
      return typePlace(Op.P, B, S);
    if (!Op.ConstTy) {
      report(code::TypeMismatch, B, S, "untyped constant operand");
      return nullptr;
    }
    return Op.ConstTy;
  }

  void requireEqual(TypeRef Got, TypeRef Want, const char *What, int B,
                    int S) {
    if (Got && Want && Got != Want)
      report(code::TypeMismatch, B, S,
             std::string(What) + ": have " + Got->str() + ", expected " +
                 Want->str());
  }
};

bool isIntOrParam(TypeRef T) {
  return T && (T->isInt() || T->isParam());
}

void checkRvalue(WFCtx &C, const Place &Dest, const Rvalue &RV, int B,
                 int S) {
  TypeRef DestTy = C.typePlace(Dest, B, S);
  switch (RV.Kind) {
  case Rvalue::Use: {
    if (RV.Ops.size() != 1) {
      C.report(code::TypeMismatch, B, S, "use rvalue without an operand");
      return;
    }
    TypeRef Ty = C.typeOperand(RV.Ops[0], B, S);
    C.requireEqual(Ty, DestTy, "assigned value", B, S);
    return;
  }
  case Rvalue::BinaryOp: {
    if (RV.Ops.size() != 2) {
      C.report(code::TypeMismatch, B, S, "binary rvalue needs two operands");
      return;
    }
    TypeRef A = C.typeOperand(RV.Ops[0], B, S);
    TypeRef Bt = C.typeOperand(RV.Ops[1], B, S);
    C.requireEqual(Bt, A, "binary operand", B, S);
    switch (RV.BOp) {
    case BinOp::Add:
    case BinOp::Sub:
    case BinOp::Mul:
      if (A && !isIntOrParam(A))
        C.report(code::TypeMismatch, B, S,
                 "arithmetic on non-integer type " + A->str());
      C.requireEqual(DestTy, A, "arithmetic result", B, S);
      return;
    case BinOp::Eq:
    case BinOp::Ne:
    case BinOp::Lt:
    case BinOp::Le:
    case BinOp::Gt:
    case BinOp::Ge:
      if (DestTy && DestTy->Kind != TypeKind::Bool)
        C.report(code::TypeMismatch, B, S,
                 "comparison result stored in non-bool type " +
                     DestTy->str());
      return;
    }
    return;
  }
  case Rvalue::UnaryOp: {
    if (RV.Ops.size() != 1) {
      C.report(code::TypeMismatch, B, S, "unary rvalue needs one operand");
      return;
    }
    TypeRef A = C.typeOperand(RV.Ops[0], B, S);
    if (RV.UOp == UnOp::Neg && A && !isIntOrParam(A))
      C.report(code::TypeMismatch, B, S,
               "negation of non-integer type " + A->str());
    if (RV.UOp == UnOp::Not && A && A->Kind != TypeKind::Bool && !A->isInt())
      C.report(code::TypeMismatch, B, S,
               "logical not of non-bool, non-integer type " + A->str());
    C.requireEqual(DestTy, A, "unary result", B, S);
    return;
  }
  case Rvalue::Aggregate: {
    if (!RV.AggTy) {
      C.report(code::TypeMismatch, B, S, "aggregate without a type");
      return;
    }
    C.requireEqual(RV.AggTy, DestTy, "aggregate", B, S);
    const std::vector<FieldDef> *Fields = nullptr;
    if (RV.AggTy->Kind == TypeKind::Struct) {
      Fields = &RV.AggTy->Fields;
    } else if (RV.AggTy->Kind == TypeKind::Enum) {
      if (RV.Variant >= RV.AggTy->Variants.size()) {
        C.report(code::TypeMismatch, B, S,
                 "aggregate variant " + std::to_string(RV.Variant) +
                     " out of range for " + RV.AggTy->str());
        return;
      }
      Fields = &RV.AggTy->Variants[RV.Variant].Fields;
    } else {
      C.report(code::TypeMismatch, B, S,
               "aggregate of non-struct, non-enum type " + RV.AggTy->str());
      return;
    }
    if (RV.Ops.size() != Fields->size()) {
      C.report(code::TypeMismatch, B, S,
               "aggregate of " + RV.AggTy->str() + " has " +
                   std::to_string(RV.Ops.size()) + " operands, expected " +
                   std::to_string(Fields->size()));
      return;
    }
    for (std::size_t I = 0; I < RV.Ops.size(); ++I) {
      TypeRef Ty = C.typeOperand(RV.Ops[I], B, S);
      C.requireEqual(Ty, (*Fields)[I].Ty, "aggregate field", B, S);
    }
    return;
  }
  case Rvalue::Discriminant: {
    TypeRef Ty = C.typePlace(RV.P, B, S);
    if (Ty && Ty->Kind != TypeKind::Enum)
      C.report(code::TypeMismatch, B, S,
               "discriminant of non-enum type " + Ty->str());
    if (DestTy && !DestTy->isInt())
      C.report(code::TypeMismatch, B, S,
               "discriminant stored in non-integer type " + DestTy->str());
    return;
  }
  case Rvalue::RefOf:
  case Rvalue::AddrOf: {
    TypeRef Ty = C.typePlace(RV.P, B, S);
    const bool WantRef = RV.Kind == Rvalue::RefOf;
    if (DestTy) {
      if ((WantRef && DestTy->Kind != TypeKind::Ref) ||
          (!WantRef && DestTy->Kind != TypeKind::RawPtr)) {
        C.report(code::TypeMismatch, B, S,
                 std::string(WantRef ? "borrow" : "raw borrow") +
                     " stored in non-" + (WantRef ? "reference" : "pointer") +
                     " type " + DestTy->str());
        return;
      }
      C.requireEqual(Ty, DestTy->Pointee, "borrowed place", B, S);
    }
    return;
  }
  case Rvalue::PtrOffset: {
    if (RV.Ops.size() != 2) {
      C.report(code::TypeMismatch, B, S, "ptr offset needs two operands");
      return;
    }
    TypeRef P = C.typeOperand(RV.Ops[0], B, S);
    TypeRef N = C.typeOperand(RV.Ops[1], B, S);
    if (P && P->Kind != TypeKind::RawPtr)
      C.report(code::TypeMismatch, B, S,
               "pointer offset on non-pointer type " + P->str());
    if (N && !N->isInt())
      C.report(code::TypeMismatch, B, S,
               "pointer offset count of non-integer type " + N->str());
    C.requireEqual(DestTy, P, "offset pointer", B, S);
    return;
  }
  }
}

void checkStatementTypes(WFCtx &C, const Statement &St, int B, int S) {
  switch (St.Kind) {
  case Statement::Assign:
    checkRvalue(C, St.Dest, St.RV, B, S);
    return;
  case Statement::Alloc: {
    TypeRef DestTy = C.typePlace(St.Dest, B, S);
    if (!St.AllocTy) {
      C.report(code::TypeMismatch, B, S, "allocation without a type");
      return;
    }
    if (DestTy) {
      if (DestTy->Kind != TypeKind::RawPtr)
        C.report(code::TypeMismatch, B, S,
                 "allocation result stored in non-pointer type " +
                     DestTy->str());
      else
        C.requireEqual(St.AllocTy, DestTy->Pointee, "allocated type", B, S);
    }
    return;
  }
  case Statement::Free: {
    TypeRef Ty = C.typeOperand(St.FreeArg, B, S);
    if (Ty && Ty->Kind != TypeKind::RawPtr)
      C.report(code::TypeMismatch, B, S,
               "deallocation of non-pointer type " + Ty->str());
    return;
  }
  case Statement::GhostStmt:
    // Ghost arguments still reference program locals.
    for (const Operand &Op : St.G.Args)
      if (Op.Kind != Operand::Const)
        (void)C.typePlace(Op.P, B, S);
    return;
  case Statement::Nop:
    return;
  }
}

void checkTerminatorTypes(WFCtx &C, const Terminator &T, int B) {
  switch (T.Kind) {
  case Terminator::SwitchInt: {
    TypeRef Ty = C.typeOperand(T.Discr, B, -1);
    if (Ty && !Ty->isInt() && Ty->Kind != TypeKind::Bool &&
        Ty->Kind != TypeKind::Enum)
      C.report(code::TypeMismatch, B, -1,
               "switch on non-integer type " + Ty->str());
    return;
  }
  case Terminator::Call: {
    for (const Operand &Op : T.Args)
      (void)C.typeOperand(Op, B, -1);
    (void)C.typePlace(T.Dest, B, -1);
    return;
  }
  case Terminator::Goto:
  case Terminator::Return:
  case Terminator::Unreachable:
    return;
  }
}

//===----------------------------------------------------------------------===//
// Definite initialization + moved locals (forward may-analysis).
//===----------------------------------------------------------------------===//

constexpr uint8_t MaybeUninit = 1;
constexpr uint8_t MaybeMoved = 2;

struct InitState {
  /// Per-local bitset of MaybeUninit / MaybeMoved. A may-analysis: a set
  /// bit means "some path reaches here with the local uninitialized /
  /// moved"; union meet.
  std::vector<uint8_t> Bits;
};

/// Reporting sink for the replay walk; null during fixpoint solving.
struct InitReporter {
  WFCtx *C = nullptr;
  int Block = -1;
  int Stmt = -1;
  /// A statement may read the same local several times; one finding each.
  std::set<std::pair<LocalId, const char *>> SeenHere;

  void at(int B, int S) {
    Block = B;
    Stmt = S;
    SeenHere.clear();
  }
  void flag(const Function &F, LocalId L, uint8_t Bad) {
    if (!C)
      return;
    if (Bad & MaybeUninit) {
      if (SeenHere.insert({L, code::UninitUse}).second)
        C->report(code::UninitUse, Block, Stmt,
                  "use of possibly-uninitialized local " + localName(F, L));
    }
    if (Bad & MaybeMoved) {
      if (SeenHere.insert({L, code::MovedUse}).second)
        C->report(code::MovedUse, Block, Stmt,
                  "use of moved local " + localName(F, L));
    }
  }
};

struct InitAnalysis {
  using Domain = InitState;
  static constexpr Direction Dir = Direction::Forward;

  const Function &F;
  InitReporter *Rep = nullptr;

  explicit InitAnalysis(const Function &F) : F(F) {}

  Domain boundary() {
    InitState S;
    S.Bits.assign(F.Locals.size(), MaybeUninit);
    for (unsigned I = 1; I <= F.NumParams && I < F.Locals.size(); ++I)
      S.Bits[I] = 0;
    return S;
  }
  Domain top() {
    InitState S;
    S.Bits.assign(F.Locals.size(), 0);
    return S;
  }
  bool meetInto(Domain &Into, const Domain &From) {
    bool Changed = false;
    for (std::size_t I = 0; I < Into.Bits.size(); ++I) {
      uint8_t Merged = Into.Bits[I] | From.Bits[I];
      if (Merged != Into.Bits[I]) {
        Into.Bits[I] = Merged;
        Changed = true;
      }
    }
    return Changed;
  }

  void readPlace(InitState &S, const Place &P) {
    if (P.Local >= S.Bits.size())
      return; // E002 already reported by the structural pass.
    if (uint8_t Bad = S.Bits[P.Local]; Bad && Rep)
      Rep->flag(F, P.Local, Bad);
  }
  void readOperand(InitState &S, const Operand &Op, bool GhostUse = false) {
    if (Op.Kind == Operand::Const)
      return;
    readPlace(S, Op.P);
    // A whole-local move leaves the local unusable. Projected moves (moving
    // out of a field) keep base-local granularity: tracked as a read only.
    // Ghost uses never change program state.
    if (Op.Kind == Operand::Move && Op.P.Elems.empty() && !GhostUse &&
        Op.P.Local < S.Bits.size())
      S.Bits[Op.P.Local] = MaybeMoved;
  }
  void writePlace(InitState &S, const Place &P) {
    if (P.Local >= S.Bits.size())
      return;
    if (P.Elems.empty()) {
      S.Bits[P.Local] = 0;
    } else {
      // Writing through a projection reads the base (e.g. *p = v needs p).
      readPlace(S, P);
    }
  }

  void stepStatement(InitState &S, const Statement &St) {
    switch (St.Kind) {
    case Statement::Assign:
      switch (St.RV.Kind) {
      case Rvalue::Use:
      case Rvalue::BinaryOp:
      case Rvalue::UnaryOp:
      case Rvalue::Aggregate:
      case Rvalue::PtrOffset:
        for (const Operand &Op : St.RV.Ops)
          readOperand(S, Op);
        break;
      case Rvalue::Discriminant:
      case Rvalue::RefOf:
      case Rvalue::AddrOf:
        readPlace(S, St.RV.P);
        break;
      }
      writePlace(S, St.Dest);
      return;
    case Statement::Alloc:
      writePlace(S, St.Dest);
      return;
    case Statement::Free:
      readOperand(S, St.FreeArg);
      return;
    case Statement::GhostStmt:
      for (const Operand &Op : St.G.Args)
        readOperand(S, Op, /*GhostUse=*/true);
      return;
    case Statement::Nop:
      return;
    }
  }

  void stepTerminator(InitState &S, const Terminator &T) {
    switch (T.Kind) {
    case Terminator::SwitchInt:
      readOperand(S, T.Discr);
      return;
    case Terminator::Call:
      for (const Operand &Op : T.Args)
        readOperand(S, Op);
      // The callee's return value initializes Dest on the return edge.
      writePlace(S, T.Dest);
      return;
    case Terminator::Return:
      // Returning reads the return slot — unless the function returns unit,
      // where the slot is conventionally never materialised.
      if (!F.Locals.empty() && F.Locals[0].Ty &&
          F.Locals[0].Ty->Kind != TypeKind::Unit)
        readPlace(S, Place(0));
      return;
    case Terminator::Goto:
    case Terminator::Unreachable:
      return;
    }
  }

  Domain transfer(unsigned B, Domain In) {
    const BasicBlock &BB = F.Blocks[B];
    for (std::size_t I = 0; I < BB.Stmts.size(); ++I) {
      if (Rep)
        Rep->at(static_cast<int>(B), static_cast<int>(I));
      stepStatement(In, BB.Stmts[I]);
    }
    if (Rep)
      Rep->at(static_cast<int>(B), -1);
    stepTerminator(In, BB.Term);
    return In;
  }
};

} // namespace

void gilr::analysis::checkWellFormed(const Function &F,
                                     DiagnosticEngine &DE) {
  WFCtx C{F, DE};

  if (F.Blocks.empty()) {
    C.report(code::BadTarget, -1, -1, "function has no basic blocks");
    return;
  }
  if (F.Locals.empty()) {
    C.report(code::BadLocal, -1, -1,
             "function declares no locals (missing return slot)");
    return;
  }
  if (F.NumParams + 1 > F.Locals.size())
    C.report(code::BadLocal, -1, -1,
             "function declares " + std::to_string(F.NumParams) +
                 " parameters but only " + std::to_string(F.Locals.size()) +
                 " locals");

  // Structural checks: terminator targets + per-statement typing.
  std::vector<unsigned> Targets;
  for (std::size_t B = 0; B < F.Blocks.size(); ++B) {
    const BasicBlock &BB = F.Blocks[B];
    Cfg::terminatorTargets(BB.Term, Targets);
    for (unsigned T : Targets)
      if (T >= F.Blocks.size())
        C.report(code::BadTarget, static_cast<int>(B), -1,
                 "terminator targets nonexistent block bb" +
                     std::to_string(T) + " (function has " +
                     std::to_string(F.Blocks.size()) + " blocks)");
    for (std::size_t S = 0; S < BB.Stmts.size(); ++S)
      checkStatementTypes(C, BB.Stmts[S], static_cast<int>(B),
                          static_cast<int>(S));
    checkTerminatorTypes(C, BB.Term, static_cast<int>(B));
  }

  // Definite initialization / moved locals: solve to fixpoint silently,
  // then replay reachable blocks once with reporting enabled (so every
  // finding is emitted exactly once, against the converged states).
  Cfg C2 = Cfg::build(F);
  InitAnalysis A(F);
  std::vector<InitState> In = solveDataflow(C2, A);
  InitReporter Rep;
  Rep.C = &C;
  A.Rep = &Rep;
  for (std::size_t B = 0; B < F.Blocks.size(); ++B)
    if (C2.Reachable[B])
      (void)A.transfer(static_cast<unsigned>(B), In[B]);
}
