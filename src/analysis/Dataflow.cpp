//===- analysis/Dataflow.cpp -----------------------------------------------===//

#include "analysis/Dataflow.h"

using namespace gilr;
using namespace gilr::analysis;
using namespace gilr::rmir;

void Cfg::terminatorTargets(const Terminator &T, std::vector<unsigned> &Out) {
  Out.clear();
  switch (T.Kind) {
  case Terminator::Goto:
  case Terminator::Call:
    Out.push_back(T.Target);
    break;
  case Terminator::SwitchInt:
    for (const auto &Arm : T.Arms)
      Out.push_back(Arm.second);
    Out.push_back(T.Otherwise);
    break;
  case Terminator::Return:
  case Terminator::Unreachable:
    break;
  }
}

Cfg Cfg::build(const Function &F) {
  Cfg C;
  C.F = &F;
  const std::size_t N = F.Blocks.size();
  C.Succs.resize(N);
  C.Preds.resize(N);
  C.Reachable.assign(N, false);

  std::vector<unsigned> Targets;
  for (std::size_t B = 0; B < N; ++B) {
    terminatorTargets(F.Blocks[B].Term, Targets);
    for (unsigned T : Targets) {
      if (T >= N) {
        C.BadEdges = true;
        continue;
      }
      // Duplicate edges (e.g. two switch arms to one block) are harmless to
      // the solvers but bloat the worklists; keep the edge set a set.
      bool Seen = false;
      for (unsigned S : C.Succs[B])
        if (S == T) {
          Seen = true;
          break;
        }
      if (Seen)
        continue;
      C.Succs[B].push_back(T);
      C.Preds[T].push_back(static_cast<unsigned>(B));
    }
  }

  if (N > 0) {
    std::deque<unsigned> Work{0};
    C.Reachable[0] = true;
    while (!Work.empty()) {
      unsigned B = Work.front();
      Work.pop_front();
      for (unsigned S : C.Succs[B])
        if (!C.Reachable[S]) {
          C.Reachable[S] = true;
          Work.push_back(S);
        }
    }
  }
  return C;
}
