//===- analysis/Interproc.h - Triage + summary-powered lint passes ---------===//
///
/// \file
/// The consumers of the interprocedural summaries (analysis/Summary.h) that
/// live in the analysis layer:
///
///  * \c triviallyStatic — the triage predicate of the scheduler's static
///    tier. An obligation it accepts is *provably* discharged by the
///    executor with a successful verdict, so the drivers skip symbolic
///    execution and report a `static` verdict instead (counted separately;
///    byte-stable across worker counts because the predicate is a pure
///    function of the program). The conditions deliberately mirror
///    engine/Executor.cpp step by step — every admitted body takes the
///    executor's only failure-free path.
///
///  * \c checkUnsafeEscape (GILR-W009) — a call site whose callee's unsafe
///    surface escapes (raw-pointer operations, transitively, with no
///    ownership-bearing spec to contain them) inside a caller that has no
///    spec of its own: the unsafety leaks through two layers with no
///    contract anywhere.
///
///  * \c checkRecursionVariant (GILR-W010) — a recursive call cycle (self
///    or mutual, from the SCC condensation) with no decreasing evidence
///    anywhere in the cycle: no lemma application in any member's body and
///    no inductive predicate in any member's spec.
///
/// The W008 de-opaquing upgrade lives with the original pass
/// (analysis/FrameLint.cpp, \c checkFrameRule's summary overload).
///
//===----------------------------------------------------------------------===//

#ifndef GILR_ANALYSIS_INTERPROC_H
#define GILR_ANALYSIS_INTERPROC_H

#include "analysis/Diagnostic.h"
#include "analysis/Summary.h"

namespace gilr {
namespace analysis {

/// True when the executor is guaranteed to verify \p F against \p S
/// successfully without ever consulting the solver beyond the initial
/// viability check: a pure, non-recursive, call-free, ghost-free,
/// straight-line body over scalar locals with an emp/emp spec and a
/// definitely-initialized return. Conservative: false whenever any
/// condition cannot be established syntactically.
bool triviallyStatic(const rmir::Function &F, const gilsonite::Spec &S,
                     const SummaryTable &T);

/// GILR-W009: \p F (which has no spec — pass the caller's spec lookup
/// result as \p CallerSpec) calls a function whose summary says its unsafe
/// surface escapes. Notes the callee closure's dependencies so cached lint
/// verdicts invalidate when any reachable body or spec changes.
void checkUnsafeEscape(const rmir::Function &F,
                       const gilsonite::Spec *CallerSpec,
                       const SummaryTable &T, DiagnosticEngine &DE);

/// GILR-W010: recursive SCCs with no decreasing lemma/variant evidence.
/// Program-level — reported once per cycle, against the lexicographically
/// least member.
void checkRecursionVariant(const rmir::Program &Prog,
                           const gilsonite::SpecTable &Specs,
                           const SummaryTable &T, DiagnosticEngine &DE);

} // namespace analysis
} // namespace gilr

#endif // GILR_ANALYSIS_INTERPROC_H
