//===- analysis/UnsafeSurface.cpp - Raw-pointer surface lint ---------------===//
///
/// GILR-W003: the body performs raw-pointer operations — allocation,
/// deallocation, raw borrows (AddrOf), pointer arithmetic (PtrOffset) or
/// dereferences through a *mut — but the function's specification carries no
/// ownership assertion (no points-to, array points-to or predicate call in
/// pre or post), so nothing in the proof constrains what the raw pointers
/// may touch. This is the static face of the paper's division of labour:
/// unsafe code is exactly the code that must carry separation-logic
/// ownership (§2).
///
//===----------------------------------------------------------------------===//

#include "analysis/Passes.h"

using namespace gilr;
using namespace gilr::analysis;
using namespace gilr::rmir;

bool gilr::analysis::hasOwnershipAssertion(const gilsonite::AssertionP &A) {
  if (!A)
    return false;
  using gilsonite::AsrtKind;
  switch (A->Kind) {
  case AsrtKind::PointsTo:
  case AsrtKind::UninitPT:
  case AsrtKind::MaybeUninit:
  case AsrtKind::ArrayPT:
  case AsrtKind::ArrayUninit:
  case AsrtKind::PredCall:
  case AsrtKind::GuardedCall:
    return true;
  case AsrtKind::Star:
    for (const gilsonite::AssertionP &P : A->Parts)
      if (hasOwnershipAssertion(P))
        return true;
    return false;
  case AsrtKind::Exists:
    return hasOwnershipAssertion(A->Body);
  case AsrtKind::Pure:
  case AsrtKind::LftAlive:
  case AsrtKind::LftDead:
  case AsrtKind::Observation:
  case AsrtKind::ValueObs:
  case AsrtKind::ProphCtrl:
    return false;
  }
  return false;
}

namespace {

/// True if walking \p P's projections dereferences a raw pointer at some
/// step (deref of a &mut reference does not count — that is the safe side).
bool placeDerefsRawPtr(const Function &F, const Place &P) {
  std::string Why;
  if (P.Local >= F.Locals.size())
    return false;
  TypeRef Ty = F.Locals[P.Local].Ty;
  Place Prefix(P.Local);
  for (const PlaceElem &E : P.Elems) {
    if (E.Kind == PlaceElem::Deref && Ty && Ty->Kind == TypeKind::RawPtr)
      return true;
    Prefix.Elems.push_back(E);
    Ty = placeTypeGentle(F, Prefix, Why);
    if (!Ty)
      return false; // Ill-typed; well-formedness reports it.
  }
  return false;
}

struct RawOpScan {
  const Function &F;
  std::vector<std::string> Sites; // "bb0 st1: raw allocation" notes.
  int FirstBlock = -1, FirstStmt = -1;

  void found(int B, int S, const std::string &What) {
    if (FirstBlock < 0) {
      FirstBlock = B;
      FirstStmt = S;
    }
    if (Sites.size() < 8)
      Sites.push_back("bb" + std::to_string(B) +
                      (S >= 0 ? " st " + std::to_string(S) : "") + ": " +
                      What);
    else if (Sites.size() == 8)
      Sites.push_back("...");
  }

  void scanPlace(const Place &P, int B, int S) {
    if (placeDerefsRawPtr(F, P))
      found(B, S, "raw-pointer dereference");
  }
  void scanOperand(const Operand &Op, int B, int S) {
    if (Op.Kind != Operand::Const)
      scanPlace(Op.P, B, S);
  }

  void run() {
    for (std::size_t B = 0; B < F.Blocks.size(); ++B) {
      const BasicBlock &BB = F.Blocks[B];
      for (std::size_t S = 0; S < BB.Stmts.size(); ++S) {
        const Statement &St = BB.Stmts[S];
        const int Bi = static_cast<int>(B), Si = static_cast<int>(S);
        switch (St.Kind) {
        case Statement::Alloc:
          found(Bi, Si, "raw allocation");
          scanPlace(St.Dest, Bi, Si);
          break;
        case Statement::Free:
          found(Bi, Si, "raw deallocation");
          scanOperand(St.FreeArg, Bi, Si);
          break;
        case Statement::Assign:
          if (St.RV.Kind == Rvalue::AddrOf)
            found(Bi, Si, "raw borrow (&raw mut)");
          if (St.RV.Kind == Rvalue::PtrOffset)
            found(Bi, Si, "pointer arithmetic");
          scanPlace(St.Dest, Bi, Si);
          for (const Operand &Op : St.RV.Ops)
            scanOperand(Op, Bi, Si);
          if (St.RV.Kind == Rvalue::Discriminant ||
              St.RV.Kind == Rvalue::RefOf || St.RV.Kind == Rvalue::AddrOf)
            scanPlace(St.RV.P, Bi, Si);
          break;
        case Statement::GhostStmt:
        case Statement::Nop:
          break;
        }
      }
      const Terminator &T = BB.Term;
      if (T.Kind == Terminator::SwitchInt)
        scanOperand(T.Discr, static_cast<int>(B), -1);
      if (T.Kind == Terminator::Call) {
        for (const Operand &Op : T.Args)
          scanOperand(Op, static_cast<int>(B), -1);
        scanPlace(T.Dest, static_cast<int>(B), -1);
      }
    }
  }
};

} // namespace

void gilr::analysis::checkUnsafeSurface(const Function &F,
                                        const gilsonite::Spec *S,
                                        DiagnosticEngine &DE) {
  RawOpScan Scan{F, {}, -1, -1};
  Scan.run();
  if (Scan.FirstBlock < 0)
    return; // No raw-pointer surface.

  const bool Owned =
      S && (hasOwnershipAssertion(S->Pre) || hasOwnershipAssertion(S->Post));
  if (Owned)
    return;

  Diagnostic D;
  D.Code = code::UnsafeSurface;
  D.Entity = F.Name;
  D.Block = Scan.FirstBlock;
  D.Stmt = Scan.FirstStmt;
  D.Message =
      S ? "function performs raw-pointer operations but its specification "
          "carries no ownership assertion (no points-to or predicate)"
        : "function performs raw-pointer operations but has no "
          "specification";
  D.Notes = std::move(Scan.Sites);
  DE.report(std::move(D));
}
