//===- analysis/Summary.cpp - Bottom-up summary computation ----------------===//

#include "analysis/Summary.h"

#include "analysis/Passes.h"

#include <algorithm>

using namespace gilr;
using namespace gilr::analysis;

bool FnSummary::operator==(const FnSummary &O) const {
  return Known == O.Known && Recursive == O.Recursive && Leaf == O.Leaf &&
         Pure == O.Pure && HeapReads == O.HeapReads &&
         HeapWrites == O.HeapWrites && UnsafeOps == O.UnsafeOps &&
         UnsafeEscapes == O.UnsafeEscapes && HasGhost == O.HasGhost &&
         HasCheckedArith == O.HasCheckedArith &&
         HasUnreachable == O.HasUnreachable &&
         HasLemmaApply == O.HasLemmaApply && WritesReturn == O.WritesReturn &&
         Params == O.Params && MayAliasParams == O.MayAliasParams &&
         DepFns == O.DepFns && DepPreds == O.DepPreds;
}

FnSummary FnSummary::top(unsigned NumParams) {
  FnSummary S;
  S.Known = false;
  S.Pure = false;
  S.HeapReads = S.HeapWrites = S.UnsafeOps = S.UnsafeEscapes = true;
  S.HasGhost = S.HasCheckedArith = S.HasUnreachable = true;
  S.WritesReturn = true;
  S.Params.assign(NumParams, ParamEffect{true, true, true});
  for (unsigned I = 0; I < NumParams; ++I)
    for (unsigned J = I + 1; J < NumParams; ++J)
      S.MayAliasParams.emplace_back(I, J);
  return S;
}

PredSummary PredSummary::top(std::size_t NumParams) {
  PredSummary S;
  S.Known = false;
  S.OwnsUnknown = true;
  S.MayOwnParam.assign(NumParams, true);
  return S;
}

namespace {

/// Walks a place's projection through the declared local types: does any
/// Deref step go through a raw pointer? (The W003 unsafe-surface class.)
/// Gentle: an unresolvable step answers "no" — the well-formedness pass
/// owns diagnosing ill-typed places.
bool derefsRawPointer(const rmir::Function &F, const rmir::Place &P) {
  if (P.Local >= F.Locals.size())
    return false;
  rmir::TypeRef Ty = F.Locals[P.Local].Ty;
  const std::vector<rmir::FieldDef> *VariantFields = nullptr;
  for (const rmir::PlaceElem &E : P.Elems) {
    switch (E.Kind) {
    case rmir::PlaceElem::Deref:
      if (Ty && Ty->Kind == rmir::TypeKind::RawPtr)
        return true;
      Ty = Ty && Ty->isPointerLike() ? Ty->Pointee : nullptr;
      VariantFields = nullptr;
      break;
    case rmir::PlaceElem::Field:
      if (VariantFields) {
        Ty = E.Index < VariantFields->size() ? (*VariantFields)[E.Index].Ty
                                             : nullptr;
        VariantFields = nullptr;
      } else if (Ty && Ty->Kind == rmir::TypeKind::Struct) {
        Ty = E.Index < Ty->Fields.size() ? Ty->Fields[E.Index].Ty : nullptr;
      } else {
        Ty = nullptr;
      }
      break;
    case rmir::PlaceElem::Downcast:
      if (Ty && Ty->Kind == rmir::TypeKind::Enum &&
          E.Index < Ty->Variants.size()) {
        VariantFields = &Ty->Variants[E.Index].Fields;
      } else {
        Ty = nullptr;
        VariantFields = nullptr;
      }
      break;
    }
  }
  return false;
}

bool placeHasDeref(const rmir::Place &P) {
  for (const rmir::PlaceElem &E : P.Elems)
    if (E.Kind == rmir::PlaceElem::Deref)
      return true;
  return false;
}

/// The intraprocedural effect walk of one body: the alias-propagation idiom
/// of FrameLint's TouchAnalysis, widened from a single "touched" bit to
/// read/write/escape effects per parameter root, heap/unsafe facts, and
/// callee summary application.
class EffectAnalysis {
public:
  EffectAnalysis(const rmir::Function &F, const SummaryTable &T,
                 const Scc &Group)
      : F(F), Table(T), Group(Group) {
    Aliases.resize(F.Locals.size());
    for (unsigned I = 0; I != F.NumParams && 1 + I < F.Locals.size(); ++I) {
      Aliases[1 + I].insert(1 + I);
      ParamByName[F.Locals[1 + I].Name] = 1 + I;
    }
    Effects.resize(F.Locals.size());
  }

  void run(FnSummary &Out) {
    // Alias sets and effect bits only grow, bounded by the local count, so
    // |Locals|+2 passes reach the fixpoint (the TouchAnalysis bound).
    for (std::size_t Pass = 0; Pass != F.Locals.size() + 2; ++Pass) {
      Changed = false;
      for (const rmir::BasicBlock &B : F.Blocks) {
        for (const rmir::Statement &S : B.Stmts)
          visitStatement(S);
        visitTerminator(B.Term);
      }
      if (!Changed)
        break;
    }
    finish(Out);
  }

private:
  static const std::set<rmir::LocalId> &emptySet() {
    static const std::set<rmir::LocalId> Empty;
    return Empty;
  }

  const std::set<rmir::LocalId> &rootsOf(rmir::LocalId L) const {
    return L < Aliases.size() ? Aliases[L] : emptySet();
  }

  void effect(rmir::LocalId Via, bool Read, bool Write, bool Escape) {
    for (rmir::LocalId R : rootsOf(Via)) {
      ParamEffect &E = Effects[R];
      if (Read && !E.Read)
        Changed = E.Read = true;
      if (Write && !E.Written)
        Changed = E.Written = true;
      if (Escape && !E.Escaped)
        Changed = E.Escaped = true;
    }
  }

  void propagate(rmir::LocalId Dest, rmir::LocalId Src) {
    if (Dest >= Aliases.size())
      return;
    for (rmir::LocalId R : rootsOf(Src))
      Changed |= Aliases[Dest].insert(R).second;
  }

  /// A place read as a value: a deref reads through the base local.
  void readPlace(const rmir::Place &P) {
    if (placeHasDeref(P)) {
      HeapReads = true;
      effect(P.Local, /*Read=*/true, false, false);
      if (derefsRawPointer(F, P))
        UnsafeOps = true;
    }
  }

  void readOperand(const rmir::Operand &Op) {
    if (Op.Kind != rmir::Operand::Const)
      readPlace(Op.P);
  }

  /// Source roots of an operand escape (stored to heap, returned, passed
  /// on).
  void escapeOperand(const rmir::Operand &Op) {
    if (Op.Kind != rmir::Operand::Const)
      effect(Op.P.Local, false, false, /*Escape=*/true);
  }

  /// The callee summary visible at a call site: computed SCCs answer from
  /// the table; a not-yet-computed member of the *current* SCC seeds
  /// optimistically (bottom for may-facts, pure for the must-fact) so the
  /// enclosing fixpoint converges to the least solution; anything else is
  /// top.
  FnSummary calleeSummary(const std::string &Name,
                          std::size_t NumArgs) const {
    if (const FnSummary *S = Table.fn(Name))
      return *S;
    if (std::binary_search(Group.Members.begin(), Group.Members.end(),
                           Name)) {
      FnSummary Seed;
      Seed.Known = true;
      Seed.Pure = true;
      Seed.Leaf = true;
      Seed.Params.resize(NumArgs);
      return Seed;
    }
    return FnSummary::top(static_cast<unsigned>(NumArgs));
  }

  void visitStatement(const rmir::Statement &S) {
    switch (S.Kind) {
    case rmir::Statement::Assign: {
      // Destination: a projected write goes through the base local.
      if (placeHasDeref(S.Dest)) {
        HeapWrites = true;
        effect(S.Dest.Local, false, /*Write=*/true, false);
        if (derefsRawPointer(F, S.Dest))
          UnsafeOps = true;
        // Values stored through the heap escape the frame.
        for (const rmir::Operand &Op : S.RV.Ops)
          escapeOperand(Op);
        if (S.RV.Kind == rmir::Rvalue::RefOf ||
            S.RV.Kind == rmir::Rvalue::AddrOf)
          effect(S.RV.P.Local, false, false, /*Escape=*/true);
      }
      for (const rmir::Operand &Op : S.RV.Ops)
        readOperand(Op);
      switch (S.RV.Kind) {
      case rmir::Rvalue::BinaryOp:
        if (S.RV.BOp == rmir::BinOp::Add || S.RV.BOp == rmir::BinOp::Sub ||
            S.RV.BOp == rmir::BinOp::Mul)
          HasCheckedArith = true;
        break;
      case rmir::Rvalue::UnaryOp:
        if (S.RV.UOp == rmir::UnOp::Neg)
          HasCheckedArith = true;
        break;
      case rmir::Rvalue::Discriminant:
      case rmir::Rvalue::RefOf:
        readPlace(S.RV.P);
        break;
      case rmir::Rvalue::AddrOf:
        readPlace(S.RV.P);
        UnsafeOps = true;
        break;
      case rmir::Rvalue::PtrOffset:
        UnsafeOps = true;
        break;
      default:
        break;
      }
      if (S.Dest.Elems.empty()) {
        for (const rmir::Operand &Op : S.RV.Ops)
          if (Op.Kind != rmir::Operand::Const)
            propagate(S.Dest.Local, Op.P.Local);
        switch (S.RV.Kind) {
        case rmir::Rvalue::Discriminant:
        case rmir::Rvalue::RefOf:
        case rmir::Rvalue::AddrOf:
          propagate(S.Dest.Local, S.RV.P.Local);
          break;
        default:
          break;
        }
        if (S.Dest.Local == 0) {
          WritesReturn = true;
          for (const rmir::Operand &Op : S.RV.Ops)
            escapeOperand(Op);
          switch (S.RV.Kind) {
          case rmir::Rvalue::Discriminant:
          case rmir::Rvalue::RefOf:
          case rmir::Rvalue::AddrOf:
            effect(S.RV.P.Local, false, false, /*Escape=*/true);
            break;
          default:
            break;
          }
        }
      }
      break;
    }
    case rmir::Statement::Alloc:
      UnsafeOps = true;
      HeapWrites = true;
      if (placeHasDeref(S.Dest)) {
        effect(S.Dest.Local, false, /*Write=*/true, false);
        if (derefsRawPointer(F, S.Dest))
          UnsafeOps = true;
      }
      break;
    case rmir::Statement::Free:
      UnsafeOps = true;
      HeapWrites = true;
      if (S.FreeArg.Kind != rmir::Operand::Const)
        effect(S.FreeArg.P.Local, false, /*Write=*/true, /*Escape=*/true);
      break;
    case rmir::Statement::GhostStmt: {
      HasGhost = true;
      if (S.G.Kind == rmir::GhostKind::ApplyLemma)
        HasLemmaApply = true;
      // A proof step about a parameter's memory consults it.
      for (const rmir::Operand &Op : S.G.Args)
        if (Op.Kind != rmir::Operand::Const)
          effect(Op.P.Local, /*Read=*/true, false, false);
      std::set<std::string> Vars;
      collectVars(S.G.PureArg, Vars);
      for (const std::string &V : Vars) {
        auto It = ParamByName.find(V);
        if (It != ParamByName.end())
          effect(It->second, /*Read=*/true, false, false);
      }
      break;
    }
    case rmir::Statement::Nop:
      break;
    }
  }

  void visitTerminator(const rmir::Terminator &T) {
    switch (T.Kind) {
    case rmir::Terminator::SwitchInt:
      readOperand(T.Discr);
      break;
    case rmir::Terminator::Call: {
      SawCall = true;
      for (const rmir::Operand &Op : T.Args)
        readOperand(Op);
      // An unknown callee resolves to FnSummary::top inside calleeSummary,
      // which makes every merge below conservative.
      FnSummary CS = calleeSummary(T.Callee, T.Args.size());
      HeapReads |= CS.HeapReads;
      HeapWrites |= CS.HeapWrites;
      if (!CS.Pure)
        CalleeImpure = true;
      if (CS.UnsafeEscapes)
        CalleeUnsafeEscapes = true;
      for (std::size_t I = 0; I != T.Args.size(); ++I) {
        const rmir::Operand &Op = T.Args[I];
        if (Op.Kind == rmir::Operand::Const)
          continue;
        ParamEffect E = I < CS.Params.size() ? CS.Params[I]
                                             : ParamEffect{true, true, true};
        if (!CS.Known)
          E = ParamEffect{true, true, true};
        effect(Op.P.Local, E.Read, E.Written, E.Escaped);
        // An escaping argument may flow out through the return value.
        if (E.Escaped && T.Dest.Elems.empty())
          propagate(T.Dest.Local, Op.P.Local);
      }
      for (const auto &[I, J] : CS.MayAliasParams) {
        if (I >= T.Args.size() || J >= T.Args.size())
          continue;
        const rmir::Operand &A = T.Args[I], &B = T.Args[J];
        if (A.Kind == rmir::Operand::Const || B.Kind == rmir::Operand::Const)
          continue;
        for (rmir::LocalId RA : rootsOf(A.P.Local))
          for (rmir::LocalId RB : rootsOf(B.P.Local))
            if (RA != RB)
              Changed |= AliasPairs
                             .emplace(std::min(RA, RB), std::max(RA, RB))
                             .second;
      }
      if (placeHasDeref(T.Dest)) {
        HeapWrites = true;
        effect(T.Dest.Local, false, /*Write=*/true, false);
        if (derefsRawPointer(F, T.Dest))
          UnsafeOps = true;
      } else if (T.Dest.Local == 0)
        WritesReturn = true;
      break;
    }
    case rmir::Terminator::Return:
      effect(0, false, false, /*Escape=*/true);
      break;
    case rmir::Terminator::Unreachable:
      HasUnreachable = true;
      break;
    case rmir::Terminator::Goto:
      break;
    }
  }

  void finish(FnSummary &Out) {
    Out.Known = true;
    Out.Leaf = !SawCall;
    Out.HeapReads = HeapReads;
    Out.HeapWrites = HeapWrites;
    Out.UnsafeOps = UnsafeOps;
    Out.Pure = !HeapWrites && !UnsafeOps && !CalleeImpure;
    Out.HasGhost = HasGhost;
    Out.HasCheckedArith = HasCheckedArith;
    Out.HasUnreachable = HasUnreachable;
    Out.HasLemmaApply = HasLemmaApply;
    Out.WritesReturn = WritesReturn;
    Out.Params.assign(F.NumParams, ParamEffect{});
    for (unsigned I = 0; I != F.NumParams && 1 + I < F.Locals.size(); ++I)
      Out.Params[I] = Effects[1 + I];
    // May-alias: parameter roots that flowed into the same local, plus the
    // pairs callee summaries merged.
    std::set<std::pair<rmir::LocalId, rmir::LocalId>> Pairs = AliasPairs;
    for (const std::set<rmir::LocalId> &Set : Aliases)
      for (auto It = Set.begin(); It != Set.end(); ++It)
        for (auto Jt = std::next(It); Jt != Set.end(); ++Jt)
          Pairs.emplace(*It, *Jt);
    Out.MayAliasParams.clear();
    for (const auto &[A, B] : Pairs)
      if (A >= 1 && B >= 1 && A <= F.NumParams && B <= F.NumParams)
        Out.MayAliasParams.emplace_back(A - 1, B - 1);
    // The caller fills Recursive/UnsafeEscapes/DepFns/DepPreds: they need
    // the SCC structure, the spec table and the predicate closures.
    bool Unsafe = UnsafeOps || CalleeUnsafeEscapes;
    Out.UnsafeEscapes = Unsafe; // Spec containment applied by the caller.
  }

  const rmir::Function &F;
  const SummaryTable &Table;
  const Scc &Group;
  std::vector<std::set<rmir::LocalId>> Aliases;
  std::vector<ParamEffect> Effects;
  std::set<std::pair<rmir::LocalId, rmir::LocalId>> AliasPairs;
  std::map<std::string, rmir::LocalId> ParamByName;
  bool Changed = false;
  bool SawCall = false;
  bool HeapReads = false, HeapWrites = false, UnsafeOps = false;
  bool HasGhost = false, HasCheckedArith = false, HasUnreachable = false;
  bool HasLemmaApply = false, WritesReturn = false;
  bool CalleeImpure = false, CalleeUnsafeEscapes = false;
};

/// Whether \p Name's spec contains a containment boundary for its unsafe
/// surface: any spatial/ownership assertion in pre or post.
bool specContainsUnsafety(const gilsonite::SpecTable &Specs,
                          const std::string &Name) {
  const gilsonite::Spec *S = Specs.lookup(Name);
  return S && (hasOwnershipAssertion(S->Pre) ||
               hasOwnershipAssertion(S->Post));
}

/// Closes \p Direct over the predicate reference closure recorded in the
/// already-computed predicate summaries.
void closePreds(const SummaryTable &T, const std::set<std::string> &Direct,
                std::set<std::string> &Out) {
  for (const std::string &P : Direct) {
    Out.insert(P);
    if (const PredSummary *PS = T.pred(P))
      Out.insert(PS->DepPreds.begin(), PS->DepPreds.end());
  }
}

FnSummary analyzeOne(const rmir::Program &Prog,
                     const gilsonite::SpecTable &Specs, const CallGraph &G,
                     const Scc &Group, const std::string &Name,
                     SummaryTable &T) {
  const rmir::Function *F = Prog.lookup(Name);
  if (!F || F->Blocks.empty()) {
    FnSummary S = FnSummary::top(F ? F->NumParams : 0);
    S.Recursive = Group.Recursive;
    S.DepFns.insert(Name);
    return S;
  }
  FnSummary S;
  EffectAnalysis EA(*F, T, Group);
  EA.run(S);
  S.Recursive = Group.Recursive;
  if (S.UnsafeEscapes && specContainsUnsafety(Specs, Name))
    S.UnsafeEscapes = false;

  S.DepFns.insert(Name);
  auto Calls = G.FnCalls.find(Name);
  if (Calls != G.FnCalls.end())
    for (const std::string &Callee : Calls->second) {
      S.DepFns.insert(Callee);
      if (const FnSummary *CS = T.fn(Callee)) {
        S.DepFns.insert(CS->DepFns.begin(), CS->DepFns.end());
        S.DepPreds.insert(CS->DepPreds.begin(), CS->DepPreds.end());
      }
    }
  auto Unknown = G.FnUnknownCallees.find(Name);
  if (Unknown != G.FnUnknownCallees.end())
    S.DepFns.insert(Unknown->second.begin(), Unknown->second.end());
  auto Mentions = G.FnPreds.find(Name);
  if (Mentions != G.FnPreds.end())
    closePreds(T, Mentions->second, S.DepPreds);
  return S;
}

/// Formal-parameter mentions of \p E outside \p Bound.
void formalsIn(const Expr &E, const std::map<std::string, std::size_t> &Formals,
               const std::set<std::string> &Bound,
               std::set<std::size_t> &Out) {
  std::set<std::string> Vars;
  collectVars(E, Vars);
  for (const std::string &V : Vars) {
    if (Bound.count(V))
      continue;
    auto It = Formals.find(V);
    if (It != Formals.end())
      Out.insert(It->second);
  }
}

void scanPredClause(const gilsonite::AssertionP &A,
                    const std::map<std::string, std::size_t> &Formals,
                    std::set<std::string> Bound, const SummaryTable &T,
                    std::vector<bool> &MayOwn) {
  if (!A)
    return;
  switch (A->Kind) {
  case gilsonite::AsrtKind::Star:
    for (const gilsonite::AssertionP &P : A->Parts)
      scanPredClause(P, Formals, Bound, T, MayOwn);
    return;
  case gilsonite::AsrtKind::Exists: {
    for (const gilsonite::Binder &B : A->Binders)
      Bound.insert(B.Name);
    scanPredClause(A->Body, Formals, std::move(Bound), T, MayOwn);
    return;
  }
  case gilsonite::AsrtKind::PointsTo:
  case gilsonite::AsrtKind::UninitPT:
  case gilsonite::AsrtKind::MaybeUninit:
  case gilsonite::AsrtKind::ArrayPT:
  case gilsonite::AsrtKind::ArrayUninit: {
    std::set<std::size_t> Hit;
    formalsIn(A->Ptr, Formals, Bound, Hit);
    for (std::size_t I : Hit)
      if (I < MayOwn.size())
        MayOwn[I] = true;
    return;
  }
  case gilsonite::AsrtKind::PredCall:
  case gilsonite::AsrtKind::GuardedCall: {
    const PredSummary *QS = T.pred(A->Name);
    for (std::size_t I = 0; I != A->Args.size(); ++I) {
      bool Owns = !QS || QS->OwnsUnknown ||
                  (I < QS->MayOwnParam.size() && QS->MayOwnParam[I]);
      if (!Owns)
        continue;
      std::set<std::size_t> Hit;
      formalsIn(A->Args[I], Formals, Bound, Hit);
      for (std::size_t J : Hit)
        if (J < MayOwn.size())
          MayOwn[J] = true;
    }
    return;
  }
  default:
    return;
  }
}

} // namespace

void gilr::analysis::summarizePredScc(const gilsonite::PredTable &Preds,
                                      const CallGraph &G, const Scc &S,
                                      SummaryTable &T) {
  // Seed: tops for abstract/undeclared members, bottoms otherwise, so
  // in-SCC references resolve to the current iterate.
  for (const std::string &Name : S.Members) {
    const gilsonite::PredDecl *D = Preds.lookup(Name);
    if (!D || D->Abstract || D->Clauses.empty()) {
      PredSummary PS = PredSummary::top(D ? D->Params.size() : 0);
      PS.DepPreds.insert(Name);
      T.Preds[Name] = std::move(PS);
      continue;
    }
    PredSummary PS;
    PS.Known = true;
    PS.MayOwnParam.assign(D->Params.size(), false);
    PS.DepPreds.insert(Name);
    T.Preds[Name] = std::move(PS);
  }

  bool AnyChanged = true;
  // MayOwn bits only rise; |members| * |params| iterations bound the loop,
  // with a generous safety cap.
  for (unsigned Iter = 0; AnyChanged && Iter < 10000; ++Iter) {
    AnyChanged = false;
    for (const std::string &Name : S.Members) {
      const gilsonite::PredDecl *D = Preds.lookup(Name);
      PredSummary &Cur = T.Preds[Name];
      if (!D || !Cur.Known)
        continue;
      PredSummary Next;
      Next.Known = true;
      Next.MayOwnParam.assign(D->Params.size(), false);
      Next.DepPreds.insert(Name);
      std::map<std::string, std::size_t> Formals;
      for (std::size_t I = 0; I != D->Params.size(); ++I)
        Formals[D->Params[I].Name] = I;
      for (const gilsonite::AssertionP &Clause : D->Clauses)
        scanPredClause(Clause, Formals, {}, T, Next.MayOwnParam);
      auto Refs = G.PredRefs.find(Name);
      if (Refs != G.PredRefs.end())
        closePreds(T, Refs->second, Next.DepPreds);
      if (Next != Cur) {
        Cur = std::move(Next);
        AnyChanged = true;
      }
    }
    if (!S.Recursive)
      break;
  }
}

void gilr::analysis::summarizeFnScc(const rmir::Program &Prog,
                                    const gilsonite::SpecTable &Specs,
                                    const CallGraph &G, const Scc &S,
                                    SummaryTable &T) {
  bool AnyChanged = true;
  // Effect bits are monotone per the seed policy in calleeSummary, so each
  // flips at most once; the cap is a safety net, not a budget.
  for (unsigned Iter = 0; AnyChanged && Iter < 10000; ++Iter) {
    AnyChanged = false;
    for (const std::string &Name : S.Members) {
      FnSummary Next = analyzeOne(Prog, Specs, G, S, Name, T);
      auto It = T.Fns.find(Name);
      if (It == T.Fns.end() || It->second != Next) {
        T.Fns[Name] = std::move(Next);
        AnyChanged = true;
      }
    }
    if (!S.Recursive)
      break;
  }
}

SummaryTable
gilr::analysis::computeSummaries(const rmir::Program &Prog,
                                 const gilsonite::PredTable &Preds,
                                 const gilsonite::SpecTable &Specs) {
  SummaryTable T;
  CallGraph G = CallGraph::build(Prog, Preds, Specs);
  T.PredSccs = condenseSccs(G.PredRefs);
  for (const Scc &S : T.PredSccs)
    summarizePredScc(Preds, G, S, T);
  T.FnSccs = condenseSccs(G.FnCalls);
  for (const Scc &S : T.FnSccs)
    summarizeFnScc(Prog, Specs, G, S, T);
  return T;
}
