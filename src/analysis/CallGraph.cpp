//===- analysis/CallGraph.cpp - Call/reference graph construction ----------===//

#include "analysis/CallGraph.h"

#include "analysis/Passes.h"

#include <algorithm>

using namespace gilr;
using namespace gilr::analysis;

CallGraph CallGraph::build(const rmir::Program &Prog,
                           const gilsonite::PredTable &Preds,
                           const gilsonite::SpecTable &Specs) {
  CallGraph G;
  for (const auto &KV : Prog.Funcs) {
    const std::string &Name = KV.first;
    const rmir::Function &F = KV.second;
    // Every function is a node even when it has no edges.
    std::set<std::string> &Calls = G.FnCalls[Name];
    for (const rmir::BasicBlock &B : F.Blocks) {
      for (const rmir::Statement &S : B.Stmts) {
        if (S.Kind != rmir::Statement::GhostStmt)
          continue;
        switch (S.G.Kind) {
        case rmir::GhostKind::Unfold:
        case rmir::GhostKind::Fold:
        case rmir::GhostKind::GUnfold:
        case rmir::GhostKind::GFold:
          G.FnPreds[Name].insert(S.G.Name);
          break;
        case rmir::GhostKind::ApplyLemma:
          G.FnLemmas[Name].insert(S.G.Name);
          break;
        default:
          break;
        }
      }
      if (B.Term.Kind == rmir::Terminator::Call) {
        if (Prog.lookup(B.Term.Callee))
          Calls.insert(B.Term.Callee);
        else
          G.FnUnknownCallees[Name].insert(B.Term.Callee);
      }
    }
    if (const gilsonite::Spec *S = Specs.lookup(Name)) {
      std::set<std::string> SpecPreds;
      collectPredNames(S->Pre, SpecPreds);
      collectPredNames(S->Post, SpecPreds);
      if (!SpecPreds.empty())
        G.FnPreds[Name].insert(SpecPreds.begin(), SpecPreds.end());
    }
  }
  for (const auto &KV : Preds.all()) {
    std::set<std::string> &Refs = G.PredRefs[KV.first];
    for (const gilsonite::AssertionP &Clause : KV.second.Clauses)
      collectPredNames(Clause, Refs);
  }
  return G;
}

namespace {

/// Iterative Tarjan: recursion on user-shaped graphs (deep predicate
/// reference chains, generated thousand-function programs) would risk the
/// thread stack.
struct TarjanState {
  const std::vector<std::vector<unsigned>> &Adj;
  std::vector<unsigned> Index, Low;
  std::vector<bool> OnStack, Visited;
  std::vector<unsigned> Stack;
  unsigned Counter = 1;

  explicit TarjanState(const std::vector<std::vector<unsigned>> &Adj)
      : Adj(Adj), Index(Adj.size(), 0), Low(Adj.size(), 0),
        OnStack(Adj.size(), false), Visited(Adj.size(), false) {}
};

} // namespace

std::vector<Scc> gilr::analysis::condenseSccs(
    const std::map<std::string, std::set<std::string>> &Edges) {
  std::vector<std::string> Nodes;
  std::map<std::string, unsigned> Id;
  Nodes.reserve(Edges.size());
  for (const auto &KV : Edges) {
    Id.emplace(KV.first, static_cast<unsigned>(Nodes.size()));
    Nodes.push_back(KV.first);
  }
  std::vector<std::vector<unsigned>> Adj(Nodes.size());
  for (const auto &KV : Edges)
    for (const std::string &To : KV.second) {
      auto It = Id.find(To);
      if (It != Id.end())
        Adj[Id.at(KV.first)].push_back(It->second);
    }

  TarjanState T(Adj);
  std::vector<Scc> Out;
  struct Frame {
    unsigned V;
    std::size_t Edge;
  };
  for (unsigned Root = 0; Root < Nodes.size(); ++Root) {
    if (T.Visited[Root])
      continue;
    std::vector<Frame> Call{{Root, 0}};
    T.Visited[Root] = true;
    T.Index[Root] = T.Low[Root] = T.Counter++;
    T.Stack.push_back(Root);
    T.OnStack[Root] = true;
    while (!Call.empty()) {
      Frame &F = Call.back();
      if (F.Edge < T.Adj[F.V].size()) {
        unsigned W = T.Adj[F.V][F.Edge++];
        if (!T.Visited[W]) {
          T.Visited[W] = true;
          T.Index[W] = T.Low[W] = T.Counter++;
          T.Stack.push_back(W);
          T.OnStack[W] = true;
          Call.push_back({W, 0});
        } else if (T.OnStack[W]) {
          T.Low[F.V] = std::min(T.Low[F.V], T.Index[W]);
        }
      } else {
        if (T.Low[F.V] == T.Index[F.V]) {
          Scc S;
          unsigned W;
          do {
            W = T.Stack.back();
            T.Stack.pop_back();
            T.OnStack[W] = false;
            S.Members.push_back(Nodes[W]);
          } while (W != F.V);
          std::sort(S.Members.begin(), S.Members.end());
          bool SelfLoop = false;
          for (unsigned To : T.Adj[F.V])
            if (To == F.V)
              SelfLoop = true;
          S.Recursive = S.Members.size() > 1 || SelfLoop;
          Out.push_back(std::move(S));
        }
        unsigned V = F.V;
        Call.pop_back();
        if (!Call.empty())
          T.Low[Call.back().V] = std::min(T.Low[Call.back().V], T.Low[V]);
      }
    }
  }
  return Out;
}
