//===- analysis/Passes.h - The concrete pre-verification lint passes -------===//
///
/// \file
/// The individual lint passes run by analysis/Analysis.cpp. Each pass is a
/// free function reporting into a DiagnosticEngine; passes never abort on
/// malformed input (that is the point: they run *before* the executor and
/// rmir::placeType, both of which assume well-formed bodies).
///
//===----------------------------------------------------------------------===//

#ifndef GILR_ANALYSIS_PASSES_H
#define GILR_ANALYSIS_PASSES_H

#include "analysis/Diagnostic.h"
#include "gilsonite/PredDecl.h"
#include "gilsonite/Spec.h"
#include "rmir/Program.h"
#include "solver/Solver.h"

#include <set>
#include <string>
#include <vector>

namespace gilr {
namespace analysis {

/// A non-aborting variant of rmir::placeType: returns the type of \p P in
/// \p F, or nullptr with \p Why set when the projection is ill-typed
/// (deref of a non-pointer, field out of range, downcast of a non-enum,
/// undeclared base local, ...).
rmir::TypeRef placeTypeGentle(const rmir::Function &F, const rmir::Place &P,
                              std::string &Why);

/// Non-aborting operand typing (nullptr + \p Why on failure, including
/// untyped constants).
rmir::TypeRef operandTypeGentle(const rmir::Function &F,
                                const rmir::Operand &Op, std::string &Why);

/// Well-formedness (GILR-E001..E005): terminator targets in range, locals
/// declared, place/operand types agree with declared locals, and a forward
/// may-dataflow rejecting uses of possibly-uninitialized (E004) or moved
/// (E005) locals.
void checkWellFormed(const rmir::Function &F, DiagnosticEngine &DE);

/// Dead code (GILR-W001/W002): blocks unreachable from entry and stores to
/// plain locals whose value is never read (backward liveness). Side-effecting
/// assignments (Alloc, RefOf/AddrOf — borrow/pointer creation) and the
/// return slot are exempt.
void checkDeadCode(const rmir::Function &F, DiagnosticEngine &DE);

/// Unsafe-surface lint (GILR-W003): the body performs raw-pointer
/// operations (AddrOf, PtrOffset, Alloc, Free, raw deref) but the function's
/// spec carries no ownership assertion (no spatial part — points-to,
/// array, predicate call — in pre or post). \p S may be null (no spec).
void checkUnsafeSurface(const rmir::Function &F, const gilsonite::Spec *S,
                        DiagnosticEngine &DE);

/// Solver-backed spec lints for one function:
///  * GILR-E006 vacuous precondition — the pure fragment of Pre is UNSAT;
///    the message carries a greedily minimized unsat core (assertion spans).
///  * GILR-W004 trivially-true postcondition — a pure conjunct of Post holds
///    under the empty context.
///  * GILR-W007 post conjunct implied by the pre alone — not trivially true,
///    but the pure pre fragment already entails it, so it promises nothing
///    about the function's behaviour.
///  * GILR-E011 post unsatisfiable given the pre — the combined pure
///    fragments are UNSAT while the pre alone is satisfiable: no
///    implementation can meet the contract. Carries a minimized core.
/// \p F may be null (spec-only entities); \p Solv must outlive the call.
void checkSpec(const gilsonite::Spec &S, Solver &Solv, DiagnosticEngine &DE);

struct SummaryTable; // analysis/Summary.h

/// Frame-rule footprint lint (GILR-W008): the spec's precondition claims
/// ownership (a points-to-family part) rooted at a parameter the body
/// never reads through, writes through, frees, passes on, mentions in a
/// ghost command or returns. Cheap syntactic approximation biased toward
/// silence: predicate calls in the pre make the footprint opaque and mute
/// the lint, and the body analysis closes over aliases conservatively.
void checkFrameRule(const rmir::Function &F, const gilsonite::Spec &S,
                    DiagnosticEngine &DE);

/// Summary-powered variant. With \p Summaries non-null, a predicate call in
/// the pre no longer mutes the lint: a predicate with a known footprint
/// summary contributes roots exactly at its may-own argument positions,
/// while a residual opaque predicate (abstract, or owning through unknown
/// structure) merely shields the parameters its arguments mention and is
/// named — with its position in the pre — in the note of any W008 that
/// still fires. Passing null reproduces the syntactic behaviour above
/// byte for byte.
void checkFrameRule(const rmir::Function &F, const gilsonite::Spec &S,
                    const SummaryTable *Summaries, DiagnosticEngine &DE);

/// Program-level cross-reference (GILR-W005/W006): predicates never
/// referenced by any spec, predicate clause or ghost statement, and lemmas
/// never applied. \p LemmaNames is the declared lemma set (the analysis
/// layer cannot see engine::LemmaTable); \p ExtraUsedPreds /
/// \p ExtraUsedLemmas inject uses known to outer layers (e.g. harvested
/// from the incremental DepGraph's recorded proof dependencies).
void checkUnusedEntities(const rmir::Program &Prog,
                         const gilsonite::PredTable &Preds,
                         const gilsonite::SpecTable &Specs,
                         const std::vector<std::string> &LemmaNames,
                         const std::set<std::string> &ExtraUsedPreds,
                         const std::set<std::string> &ExtraUsedLemmas,
                         DiagnosticEngine &DE);

/// Collects the predicate names referenced by \p A (PredCall/GuardedCall,
/// recursively through Star/Exists).
void collectPredNames(const gilsonite::AssertionP &A,
                      std::set<std::string> &Out);

/// True if \p A contains any spatial/ownership part (points-to variants,
/// array points-to, predicate or guarded predicate call).
bool hasOwnershipAssertion(const gilsonite::AssertionP &A);

} // namespace analysis
} // namespace gilr

#endif // GILR_ANALYSIS_PASSES_H
