//===- analysis/FrameLint.cpp - Frame-rule footprint lint (GILR-W008) ------===//
///
/// \file
/// Warns when a spec's spatial footprint is strictly wider than the memory
/// the body touches: the precondition claims ownership rooted at a
/// parameter that the body never reads through, writes through, frees,
/// passes to a callee, mentions in a ghost command, or returns. Such a spec
/// is not wrong — the frame rule lets a proof carry untouched memory
/// through unchanged — but it is needlessly strong: every caller must
/// surrender ownership the function does not use, and every proof of the
/// function pays to thread it through.
///
/// The footprint comparison is deliberately a cheap syntactic
/// approximation, biased hard toward silence:
///
///  * Only points-to-family parts of the *pre*condition contribute roots
///    (PointsTo, UninitPT, MaybeUninit, ArrayPT, ArrayUninit), and only
///    when the pointer expression mentions a parameter by name (the
///    executor binds parameter locals to symbolic variables of the same
///    name, engine/Executor.cpp).
///  * A predicate or guarded-predicate call anywhere in the pre makes the
///    footprint opaque (the predicate's unfolding may reach any argument),
///    so the lint stays silent.
///  * Pointer variables bound by an Exists are not parameters; skipped.
///  * The body's touched set is closed under aliasing: locals assigned
///    from a parameter (moves, copies, borrows, raw addresses, pointer
///    offsets, aggregates, arithmetic) inherit its root, and any deref,
///    free, call argument, ghost mention or flow into the return slot of
///    an aliasing local marks the root as touched.
///
//===----------------------------------------------------------------------===//

#include "analysis/Passes.h"

#include "analysis/Summary.h"
#include "support/Deps.h"

#include <map>

using namespace gilr;
using namespace gilr::analysis;

namespace {

/// Accumulator of the precondition walk. In syntactic mode (no summaries) a
/// predicate call just sets \c Opaque; in summary mode it either widens
/// \c Roots through the predicate's footprint summary or — when the summary
/// itself is opaque — shields the parameters its arguments mention and
/// records which call stayed opaque (name + position in the pre) for the
/// W008 note.
struct SpecRoots {
  std::set<std::string> Roots;
  std::set<std::string> Shielded;
  bool Opaque = false;
  std::vector<std::string> OpaqueNotes;
  int PredIx = 0; ///< DFS ordinal of predicate calls in the pre.
};

/// Walks \p A collecting parameter-named points-to roots of the spec's
/// spatial parts into \p Out, resolving predicate calls through
/// \p Summaries when available.
void collectSpecRoots(const gilsonite::AssertionP &A,
                      const std::map<std::string, rmir::LocalId> &Params,
                      std::set<std::string> Bound,
                      const SummaryTable *Summaries, SpecRoots &Out) {
  if (!A || (Out.Opaque && !Summaries))
    return;
  switch (A->Kind) {
  case gilsonite::AsrtKind::Star:
    for (const gilsonite::AssertionP &P : A->Parts)
      collectSpecRoots(P, Params, Bound, Summaries, Out);
    return;
  case gilsonite::AsrtKind::Exists: {
    for (const gilsonite::Binder &B : A->Binders)
      Bound.insert(B.Name);
    collectSpecRoots(A->Body, Params, std::move(Bound), Summaries, Out);
    return;
  }
  case gilsonite::AsrtKind::PointsTo:
  case gilsonite::AsrtKind::UninitPT:
  case gilsonite::AsrtKind::MaybeUninit:
  case gilsonite::AsrtKind::ArrayPT:
  case gilsonite::AsrtKind::ArrayUninit: {
    std::set<std::string> Vars;
    collectVars(A->Ptr, Vars);
    for (const std::string &V : Vars)
      if (!Bound.count(V) && Params.count(V))
        Out.Roots.insert(V);
    return;
  }
  case gilsonite::AsrtKind::PredCall:
  case gilsonite::AsrtKind::GuardedCall: {
    ++Out.PredIx;
    if (!Summaries) {
      Out.Opaque = true;
      return;
    }
    // The verdict now depends on the predicate's unfolding (transitively):
    // record the closure so a cached lint verdict invalidates when any
    // clause in it changes.
    const PredSummary *PS = Summaries->pred(A->Name);
    deps::note(deps::Kind::Pred, A->Name);
    if (PS)
      for (const std::string &Dep : PS->DepPreds)
        deps::note(deps::Kind::Pred, Dep);
    if (PS && PS->Known && !PS->OwnsUnknown) {
      for (std::size_t I = 0; I != A->Args.size(); ++I) {
        if (I >= PS->MayOwnParam.size() || !PS->MayOwnParam[I])
          continue;
        std::set<std::string> Vars;
        collectVars(A->Args[I], Vars);
        for (const std::string &V : Vars)
          if (!Bound.count(V) && Params.count(V))
            Out.Roots.insert(V);
      }
      return;
    }
    // Residual opacity: never report a parameter this call mentions, and
    // name the culprit on whatever still fires.
    for (const Expr &Arg : A->Args) {
      std::set<std::string> Vars;
      collectVars(Arg, Vars);
      for (const std::string &V : Vars)
        if (!Bound.count(V) && Params.count(V))
          Out.Shielded.insert(V);
    }
    Out.OpaqueNotes.push_back("predicate '" + A->Name +
                              "' (precondition, spatial call #" +
                              std::to_string(Out.PredIx) +
                              ") keeps its footprint opaque");
    return;
  }
  default:
    return;
  }
}

/// The syntactic touch analysis over one body: which parameter roots does
/// the function read through, write through, free, pass on or return?
class TouchAnalysis {
public:
  explicit TouchAnalysis(const rmir::Function &F) : F(F) {
    Aliases.resize(F.Locals.size());
    for (unsigned I = 0; I != F.NumParams && 1 + I < F.Locals.size(); ++I)
      Aliases[1 + I].insert(1 + I);
  }

  /// Runs the alias/touch fixpoint and returns the touched parameter
  /// locals.
  const std::set<rmir::LocalId> &run() {
    // The alias sets only grow and are bounded by the local count, so
    // |Locals| passes reach the fixpoint; +2 for safety on empty bodies.
    for (std::size_t Pass = 0; Pass != F.Locals.size() + 2; ++Pass) {
      Changed = false;
      for (const rmir::BasicBlock &B : F.Blocks) {
        for (const rmir::Statement &S : B.Stmts)
          visitStatement(S);
        visitTerminator(B.Term);
      }
      if (!Changed)
        break;
    }
    return Touched;
  }

private:
  const std::set<rmir::LocalId> &rootsOf(rmir::LocalId L) const {
    static const std::set<rmir::LocalId> Empty;
    return L < Aliases.size() ? Aliases[L] : Empty;
  }

  void touchRoots(rmir::LocalId L) {
    for (rmir::LocalId R : rootsOf(L))
      Changed |= Touched.insert(R).second;
  }

  /// A place used as a value: a deref reads (or writes) through the base
  /// local's referent.
  void usePlace(const rmir::Place &P) {
    for (const rmir::PlaceElem &E : P.Elems)
      if (E.Kind == rmir::PlaceElem::Deref) {
        touchRoots(P.Local);
        return;
      }
  }

  void useOperand(const rmir::Operand &Op) {
    if (Op.Kind != rmir::Operand::Const)
      usePlace(Op.P);
  }

  /// An operand handed to something that may do anything with it (callee,
  /// ghost command, free): the referent counts as touched outright.
  void escapeOperand(const rmir::Operand &Op) {
    if (Op.Kind != rmir::Operand::Const)
      touchRoots(Op.P.Local);
  }

  void propagate(rmir::LocalId Dest, rmir::LocalId Src) {
    if (Dest >= Aliases.size())
      return;
    for (rmir::LocalId R : rootsOf(Src))
      Changed |= Aliases[Dest].insert(R).second;
  }

  void visitStatement(const rmir::Statement &S) {
    switch (S.Kind) {
    case rmir::Statement::Assign: {
      // A projected destination writes through its base local.
      usePlace(S.Dest);
      for (const rmir::Operand &Op : S.RV.Ops)
        useOperand(Op);
      usePlace(S.RV.P);
      // Alias propagation into a plain-local destination: the new value
      // may carry (point into) any root of any source local.
      if (S.Dest.Elems.empty()) {
        for (const rmir::Operand &Op : S.RV.Ops)
          if (Op.Kind != rmir::Operand::Const)
            propagate(S.Dest.Local, Op.P.Local);
        switch (S.RV.Kind) {
        case rmir::Rvalue::Discriminant:
        case rmir::Rvalue::RefOf:
        case rmir::Rvalue::AddrOf:
          propagate(S.Dest.Local, S.RV.P.Local);
          break;
        default:
          break;
        }
        // Flow into the return slot hands the memory back to the caller.
        if (S.Dest.Local == 0)
          touchRoots(S.Dest.Local);
      }
      break;
    }
    case rmir::Statement::Alloc:
      usePlace(S.Dest);
      break;
    case rmir::Statement::Free:
      escapeOperand(S.FreeArg);
      break;
    case rmir::Statement::GhostStmt: {
      // A fold/unfold/lemma about a parameter's memory is a proof step
      // over it — very much "touched".
      for (const rmir::Operand &Op : S.G.Args)
        escapeOperand(Op);
      std::set<std::string> Vars;
      collectVars(S.G.PureArg, Vars);
      for (const std::string &V : Vars) {
        auto It = ParamByName.find(V);
        if (It != ParamByName.end())
          Changed |= Touched.insert(It->second).second;
      }
      break;
    }
    case rmir::Statement::Nop:
      break;
    }
  }

  void visitTerminator(const rmir::Terminator &T) {
    switch (T.Kind) {
    case rmir::Terminator::SwitchInt:
      useOperand(T.Discr);
      break;
    case rmir::Terminator::Call:
      for (const rmir::Operand &Op : T.Args)
        escapeOperand(Op);
      usePlace(T.Dest);
      break;
    case rmir::Terminator::Return:
      touchRoots(0);
      break;
    default:
      break;
    }
  }

public:
  /// Registers parameter names so ghost pure arguments can be matched.
  void setParamNames(const std::map<std::string, rmir::LocalId> &M) {
    ParamByName = M;
  }

private:
  const rmir::Function &F;
  std::vector<std::set<rmir::LocalId>> Aliases;
  std::set<rmir::LocalId> Touched;
  std::map<std::string, rmir::LocalId> ParamByName;
  bool Changed = false;
};

} // namespace

void gilr::analysis::checkFrameRule(const rmir::Function &F,
                                    const gilsonite::Spec &S,
                                    DiagnosticEngine &DE) {
  checkFrameRule(F, S, nullptr, DE);
}

void gilr::analysis::checkFrameRule(const rmir::Function &F,
                                    const gilsonite::Spec &S,
                                    const SummaryTable *Summaries,
                                    DiagnosticEngine &DE) {
  // Trusted specs are assumed, never proved: their footprint is the
  // caller-facing contract, not a proof burden.
  if (S.Trusted || F.Blocks.empty())
    return;

  std::map<std::string, rmir::LocalId> Params;
  for (unsigned I = 0; I != F.NumParams && 1 + I < F.Locals.size(); ++I)
    Params[F.Locals[1 + I].Name] = 1 + I;
  if (Params.empty())
    return;

  SpecRoots SR;
  collectSpecRoots(S.Pre, Params, {}, Summaries, SR);
  if (!Summaries && SR.Opaque)
    return;
  for (const std::string &V : SR.Shielded)
    SR.Roots.erase(V);
  if (SR.Roots.empty())
    return;

  TouchAnalysis TA(F);
  TA.setParamNames(Params);
  const std::set<rmir::LocalId> &Touched = TA.run();

  for (const std::string &Root : SR.Roots) {
    if (Touched.count(Params.at(Root)))
      continue;
    Diagnostic D;
    D.Code = code::FrameWiderThanFootprint;
    D.Sev = codeSeverity(D.Code);
    D.Entity = F.Name;
    D.Message = "precondition claims ownership rooted at parameter '" +
                Root + "' but the body never touches it";
    D.Notes.push_back(
        "the frame rule carries untouched memory through any proof: "
        "narrow the spec's footprint or drop the points-to on '" + Root +
        "'");
    for (const std::string &N : SR.OpaqueNotes)
      D.Notes.push_back(N);
    DE.report(std::move(D));
  }
}
