//===- analysis/Summary.h - Interprocedural function/predicate summaries ---===//
///
/// \file
/// Compositional summaries in the Gillian tradition: per-function memory
/// footprints (which parameters' ownership is read / written through /
/// escaped), purity, initialization effects and parameter may-alias sets,
/// plus per-predicate footprints (which predicate parameters the unfolding
/// may claim ownership rooted at). Summaries are computed bottom-up over
/// the SCC condensation of the call graph (analysis/CallGraph.h):
///
///  * may-facts (Read/Written/Escaped, heap effects, aliasing, MayOwn)
///    start at bottom and climb monotonically to the least fixpoint, which
///    within a recursive SCC is iterated until stable;
///  * must-facts (Pure) start at top inside the SCC and shrink, so a
///    self-recursive pure function still summarizes as pure;
///  * an opaque body (no blocks) or a call to a function the program does
///    not contain collapses the affected facts to conservative top.
///
/// Consumers: the scheduler's triage tier (trivially-safe obligations skip
/// symbolic execution, analysis/Interproc.h), the summary-powered lints
/// (W008 de-opaquing, W009, W010), and the incremental cache, which stores
/// summaries under Side::Summary keyed by the reachable-closure dependency
/// sets recorded here (DepFns/DepPreds) — editing a function invalidates
/// exactly the summaries that can reach it.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_ANALYSIS_SUMMARY_H
#define GILR_ANALYSIS_SUMMARY_H

#include "analysis/CallGraph.h"

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace gilr {
namespace analysis {

/// May-effects of one function on the memory reachable from one parameter.
struct ParamEffect {
  bool Read = false;    ///< May be read through (deref, ghost mention).
  bool Written = false; ///< May be written through (deref store, free).
  bool Escaped = false; ///< May escape: returned, stored to heap, passed on.

  bool operator==(const ParamEffect &O) const {
    return Read == O.Read && Written == O.Written && Escaped == O.Escaped;
  }
  bool operator!=(const ParamEffect &O) const { return !(*this == O); }
};

/// Summary of one RMIR function.
struct FnSummary {
  /// A body was present and analyzed. False for opaque entries (no blocks),
  /// whose remaining facts are conservative top.
  bool Known = false;
  /// Member of a recursive SCC (self- or mutual recursion).
  bool Recursive = false;
  /// No Call terminators at all (known or unknown callees).
  bool Leaf = false;
  /// No heap writes and no unsafe operations, transitively through every
  /// callee. Must-fact: false whenever in doubt.
  bool Pure = false;
  bool HeapReads = false;  ///< May read through a pointer (incl. callees).
  bool HeapWrites = false; ///< May write heap memory (incl. callees).
  /// This body itself performs raw-pointer operations (AddrOf, PtrOffset,
  /// Alloc, Free, deref of a raw-pointer-typed local) — the same surface
  /// GILR-W003 checks. Local fact; transitive escape is UnsafeEscapes.
  bool UnsafeOps = false;
  /// The unsafe surface escapes this function: it performs (or transitively
  /// calls into) raw-pointer operations and carries no ownership-bearing
  /// spec to contain them. An ownership-bearing spec (spatial pre or post)
  /// is the containment boundary — its proof obligations cover the unsafety.
  bool UnsafeEscapes = false;
  bool HasGhost = false;        ///< Any ghost statement in the body.
  bool HasCheckedArith = false; ///< Add/Sub/Mul or unary Neg (overflow obligations).
  bool HasUnreachable = false;  ///< An Unreachable terminator.
  bool HasLemmaApply = false;   ///< An ApplyLemma ghost in this body (local fact).
  bool WritesReturn = false;    ///< Assigns the return slot on some path.
  /// Per-parameter effects, size NumParams.
  std::vector<ParamEffect> Params;
  /// Symmetric parameter may-alias relation: pairs (I, J), I < J, of
  /// parameter indices whose values may flow into the same local (or be
  /// merged by a callee's may-alias set).
  std::vector<std::pair<unsigned, unsigned>> MayAliasParams;
  /// Reachable function closure (self, known callees transitively, and the
  /// names of unknown callees — so a summary invalidates when one appears).
  std::set<std::string> DepFns;
  /// Predicate closure: spec/ghost mentions, transitively through predicate
  /// references and callees.
  std::set<std::string> DepPreds;

  bool operator==(const FnSummary &O) const;
  bool operator!=(const FnSummary &O) const { return !(*this == O); }

  /// The conservative top summary for an opaque body of \p NumParams
  /// parameters: every may-fact set, Pure false.
  static FnSummary top(unsigned NumParams);
};

/// Summary of one Gilsonite predicate.
struct PredSummary {
  /// Declared with clauses (not abstract).
  bool Known = false;
  /// Abstract or undeclared: the unfolding may own anything its arguments
  /// reach, so consumers must treat the footprint as opaque.
  bool OwnsUnknown = false;
  /// Per-parameter: the predicate's unfolding may claim ownership (a
  /// points-to-family part, transitively through referenced predicates)
  /// rooted at this parameter.
  std::vector<bool> MayOwnParam;
  /// Reachable predicate closure, self included.
  std::set<std::string> DepPreds;

  bool operator==(const PredSummary &O) const {
    return Known == O.Known && OwnsUnknown == O.OwnsUnknown &&
           MayOwnParam == O.MayOwnParam && DepPreds == O.DepPreds;
  }
  bool operator!=(const PredSummary &O) const { return !(*this == O); }

  static PredSummary top(std::size_t NumParams);
};

/// All summaries of one program, plus the condensation they were computed
/// over (the recursive-SCC structure feeds the W010 lint and the triage
/// tier's recursion exclusion).
struct SummaryTable {
  std::map<std::string, FnSummary> Fns;
  std::map<std::string, PredSummary> Preds;
  std::vector<Scc> FnSccs;   ///< Bottom-up condensation of the call graph.
  std::vector<Scc> PredSccs; ///< Bottom-up condensation of predicate refs.

  const FnSummary *fn(const std::string &Name) const {
    auto It = Fns.find(Name);
    return It == Fns.end() ? nullptr : &It->second;
  }
  const PredSummary *pred(const std::string &Name) const {
    auto It = Preds.find(Name);
    return It == Preds.end() ? nullptr : &It->second;
  }
};

/// Computes the summaries of every member of \p S (a call-graph SCC) into
/// \p T, reading callee summaries of earlier SCCs from \p T. Iterates to a
/// fixpoint when the SCC is recursive. Bottom-up order is the caller's
/// responsibility (walk \c condenseSccs output left to right).
void summarizeFnScc(const rmir::Program &Prog,
                    const gilsonite::SpecTable &Specs, const CallGraph &G,
                    const Scc &S, SummaryTable &T);

/// Predicate counterpart of \c summarizeFnScc.
void summarizePredScc(const gilsonite::PredTable &Preds, const CallGraph &G,
                      const Scc &S, SummaryTable &T);

/// Whole-program convenience: builds the call graph, condenses, and runs
/// both bottom-up fixpoints. The serial drivers and tests use this; the
/// scheduler interleaves the per-SCC functions with the incremental cache.
SummaryTable computeSummaries(const rmir::Program &Prog,
                              const gilsonite::PredTable &Preds,
                              const gilsonite::SpecTable &Specs);

} // namespace analysis
} // namespace gilr

#endif // GILR_ANALYSIS_SUMMARY_H
