//===- analysis/CallGraph.h - Call/reference graphs + SCC condensation -----===//
///
/// \file
/// The interprocedural skeleton of the summary analysis (analysis/Summary.h):
/// a call graph over RMIR `Terminator::Call` edges, a reference graph over
/// predicate mentions (spec pre/posts, ghost fold/unfold commands, predicate
/// clause bodies), and a deterministic Tarjan SCC condensation that yields
/// the bottom-up (callees-first) order the summary fixpoint runs in.
///
/// Determinism contract: nodes are visited in name order and edges in set
/// order, so the condensation — member lists, SCC order, recursion flags —
/// is a pure function of the program, independent of worker count or
/// insertion order. The scheduler's byte-identity guarantee rests on this.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_ANALYSIS_CALLGRAPH_H
#define GILR_ANALYSIS_CALLGRAPH_H

#include "gilsonite/PredDecl.h"
#include "gilsonite/Spec.h"
#include "rmir/Program.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace gilr {
namespace analysis {

/// The call and reference edges of one program. Every function of the
/// program and every declared predicate appears as a node (possibly with an
/// empty edge set), so the condensations below cover the whole program.
struct CallGraph {
  /// Function -> callees that exist in the program (Terminator::Call).
  std::map<std::string, std::set<std::string>> FnCalls;
  /// Function -> called names with *no* body in the program. These make the
  /// caller's summary conservative (top) at the call site.
  std::map<std::string, std::set<std::string>> FnUnknownCallees;
  /// Function -> predicate names it mentions directly (its spec's pre/post
  /// plus fold/unfold/guarded ghost commands in the body).
  std::map<std::string, std::set<std::string>> FnPreds;
  /// Function -> lemma names applied by ApplyLemma ghost commands.
  std::map<std::string, std::set<std::string>> FnLemmas;
  /// Predicate -> predicate names referenced by its clauses.
  std::map<std::string, std::set<std::string>> PredRefs;

  static CallGraph build(const rmir::Program &Prog,
                         const gilsonite::PredTable &Preds,
                         const gilsonite::SpecTable &Specs);
};

/// One strongly connected component of a call/reference graph.
struct Scc {
  std::vector<std::string> Members; ///< Sorted by name.
  /// More than one member, or a single member with a self-edge.
  bool Recursive = false;
};

/// Tarjan condensation of \p Edges in deterministic bottom-up order: an SCC
/// appears *before* every SCC that can reach it, so a left-to-right walk
/// always sees callees' summaries before callers'. Edge targets that are
/// not nodes (keys of \p Edges) are ignored — unknown callees are handled
/// by the summary layer, not the graph.
std::vector<Scc>
condenseSccs(const std::map<std::string, std::set<std::string>> &Edges);

} // namespace analysis
} // namespace gilr

#endif // GILR_ANALYSIS_CALLGRAPH_H
