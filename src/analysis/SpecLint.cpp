//===- analysis/SpecLint.cpp - Solver-backed specification lints -----------===//
///
/// GILR-E006 (vacuous precondition), GILR-W004 (trivially-true postcondition
/// conjunct), GILR-W005/W006 (unused predicates / lemmas), GILR-W007
/// (postcondition conjunct already implied by the precondition alone),
/// GILR-E011 (postcondition unsatisfiable given the precondition).
///
/// Vacuity uses the existing SMT-lite solver on the *pure fragment* of the
/// precondition (pure facts and observations; spatial parts are ignored).
/// The check is sound in the useful direction: the solver's Unsat answers
/// are proofs, so a GILR-E006 is a real contradiction — every proof
/// obligation of the function would hold vacuously. An Unsat verdict is
/// then greedily minimized to an unsat core, and the core's assertion spans
/// are attached as notes. W007 and E011 reuse the same query shape against
/// the combined pre/post pure fragments: a W007 conjunct adds no
/// information the caller did not already have, and an E011 post can never
/// be established by any implementation admitted by the pre.
///
//===----------------------------------------------------------------------===//

#include "analysis/Passes.h"
#include "sym/Printer.h"

using namespace gilr;
using namespace gilr::analysis;
using namespace gilr::gilsonite;

namespace {

/// Collects the pure formulas of \p A (Pure and Observation parts, through
/// Star and Exists; existential binders are simply free variables of the
/// satisfiability query, which is the right reading for vacuity).
void collectPureFormulas(const AssertionP &A, std::vector<Expr> &Out) {
  if (!A)
    return;
  switch (A->Kind) {
  case AsrtKind::Pure:
  case AsrtKind::Observation:
    if (A->Formula)
      Out.push_back(A->Formula);
    return;
  case AsrtKind::Star:
    for (const AssertionP &P : A->Parts)
      collectPureFormulas(P, Out);
    return;
  case AsrtKind::Exists:
    collectPureFormulas(A->Body, Out);
    return;
  default:
    return;
  }
}

/// Collects the top-level *pure* conjuncts of a postcondition (not
/// observations: prophecy facts routinely look tautological before
/// resolution).
void collectPureConjuncts(const AssertionP &A, std::vector<Expr> &Out) {
  if (!A)
    return;
  switch (A->Kind) {
  case AsrtKind::Pure:
    if (A->Formula)
      Out.push_back(A->Formula);
    return;
  case AsrtKind::Star:
    for (const AssertionP &P : A->Parts)
      collectPureConjuncts(P, Out);
    return;
  case AsrtKind::Exists:
    collectPureConjuncts(A->Body, Out);
    return;
  default:
    return;
  }
}

/// Greedy unsat-core minimization: try dropping each formula in turn; keep
/// the drop whenever the remainder is still Unsat. Quadratic in the number
/// of pure conjuncts, which is tiny for hand-written specs.
std::vector<Expr> minimizeCore(Solver &Solv, std::vector<Expr> Core) {
  for (std::size_t I = 0; I < Core.size();) {
    std::vector<Expr> Rest;
    Rest.reserve(Core.size() - 1);
    for (std::size_t J = 0; J < Core.size(); ++J)
      if (J != I)
        Rest.push_back(Core[J]);
    if (!Rest.empty() && Solv.checkSat(Rest) == SatResult::Unsat)
      Core = std::move(Rest); // Drop kept; retry the same index.
    else
      ++I;
  }
  return Core;
}

} // namespace

void gilr::analysis::checkSpec(const Spec &S, Solver &Solv,
                               DiagnosticEngine &DE) {
  // --- GILR-E006: vacuous precondition. ---
  std::vector<Expr> PreFormulas;
  collectPureFormulas(S.Pre, PreFormulas);
  bool PreVacuous =
      !PreFormulas.empty() && Solv.checkSat(PreFormulas) == SatResult::Unsat;
  if (PreVacuous) {
    std::vector<Expr> Core = minimizeCore(Solv, PreFormulas);
    Diagnostic D;
    D.Code = code::VacuousPre;
    D.Entity = S.Func;
    D.Message =
        "precondition is unsatisfiable — every proof obligation of this "
        "function holds vacuously (unsat core of " +
        std::to_string(Core.size()) + " of " +
        std::to_string(PreFormulas.size()) + " pure conjuncts)";
    for (const Expr &E : Core)
      D.Notes.push_back("core: " + exprToString(E));
    DE.report(std::move(D));
  }

  // --- GILR-W004: trivially-true postcondition conjuncts. ---
  // --- GILR-W007: post conjuncts already implied by the pre alone. ---
  std::vector<Expr> PostConjuncts;
  collectPureConjuncts(S.Post, PostConjuncts);
  for (const Expr &E : PostConjuncts) {
    bool Trivial = (E->Kind == ExprKind::BoolLit && E->BoolVal) ||
                   Solv.entails({}, E);
    if (Trivial) {
      Diagnostic D;
      D.Code = code::TrivialPost;
      D.Entity = S.Func;
      D.Message = "postcondition conjunct is trivially true (holds in the "
                  "empty context)";
      D.Notes.push_back("conjunct: " + exprToString(E));
      DE.report(std::move(D));
      continue;
    }
    // Not trivially true on its own, but the precondition alone already
    // forces it: the conjunct promises the caller nothing about what the
    // function *did* (frame conjuncts like `x == old(x)` over unmodified
    // inputs land here). Skipped under a vacuous pre — everything follows
    // from a contradiction, and E006 already fired.
    if (!PreVacuous && !PreFormulas.empty() && Solv.entails(PreFormulas, E)) {
      Diagnostic D;
      D.Code = code::PostImpliedByPre;
      D.Entity = S.Func;
      D.Message = "postcondition conjunct already follows from the "
                  "precondition alone — it promises nothing about the "
                  "function's behaviour";
      D.Notes.push_back("conjunct: " + exprToString(E));
      DE.report(std::move(D));
    }
  }

  // --- GILR-E011: postcondition unsatisfiable given the precondition. ---
  // Sound in the same direction as E006: Unsat is a proof that no final
  // state admitted by the pre can establish the post, so every verification
  // of this spec must fail (or the function never returns). Skipped when
  // the pre alone is already contradictory — that is E006's finding.
  if (!PreVacuous && !PostConjuncts.empty()) {
    std::vector<Expr> Combined = PreFormulas;
    Combined.insert(Combined.end(), PostConjuncts.begin(),
                    PostConjuncts.end());
    if (Solv.checkSat(Combined) == SatResult::Unsat) {
      std::vector<Expr> Core = minimizeCore(Solv, Combined);
      Diagnostic D;
      D.Code = code::PostUnsatGivenPre;
      D.Entity = S.Func;
      D.Message =
          "postcondition is unsatisfiable under the precondition — no "
          "implementation can meet this contract (unsat core of " +
          std::to_string(Core.size()) + " of " +
          std::to_string(Combined.size()) + " pure conjuncts)";
      for (const Expr &E : Core)
        D.Notes.push_back("core: " + exprToString(E));
      DE.report(std::move(D));
    }
  }
}

void gilr::analysis::collectPredNames(const AssertionP &A,
                                      std::set<std::string> &Out) {
  if (!A)
    return;
  switch (A->Kind) {
  case AsrtKind::PredCall:
  case AsrtKind::GuardedCall:
    Out.insert(A->Name);
    return;
  case AsrtKind::Star:
    for (const AssertionP &P : A->Parts)
      collectPredNames(P, Out);
    return;
  case AsrtKind::Exists:
    collectPredNames(A->Body, Out);
    return;
  default:
    return;
  }
}

void gilr::analysis::checkUnusedEntities(
    const rmir::Program &Prog, const PredTable &Preds, const SpecTable &Specs,
    const std::vector<std::string> &LemmaNames,
    const std::set<std::string> &ExtraUsedPreds,
    const std::set<std::string> &ExtraUsedLemmas, DiagnosticEngine &DE) {
  // Roots: predicates referenced by specs, by ghost statements, or by outer
  // layers (e.g. the incremental DepGraph's recorded proof dependencies).
  // Predicate-to-predicate references only count when the referrer is
  // itself reachable — a recursive predicate does not keep itself alive.
  std::set<std::string> UsedPreds = ExtraUsedPreds;
  std::set<std::string> UsedLemmas = ExtraUsedLemmas;

  for (const auto &[Name, S] : Specs.all()) {
    (void)Name;
    collectPredNames(S.Pre, UsedPreds);
    collectPredNames(S.Post, UsedPreds);
  }
  for (const auto &[FName, F] : Prog.Funcs) {
    (void)FName;
    for (const rmir::BasicBlock &BB : F.Blocks)
      for (const rmir::Statement &St : BB.Stmts) {
        if (St.Kind != rmir::Statement::GhostStmt)
          continue;
        switch (St.G.Kind) {
        case rmir::GhostKind::Unfold:
        case rmir::GhostKind::Fold:
        case rmir::GhostKind::GUnfold:
        case rmir::GhostKind::GFold:
          UsedPreds.insert(St.G.Name);
          break;
        case rmir::GhostKind::ApplyLemma:
          UsedLemmas.insert(St.G.Name);
          break;
        default:
          break;
        }
      }
  }

  // Closure through the clause bodies of reachable predicates.
  std::vector<std::string> Work(UsedPreds.begin(), UsedPreds.end());
  while (!Work.empty()) {
    std::string Name = std::move(Work.back());
    Work.pop_back();
    const PredDecl *D = Preds.lookup(Name);
    if (!D)
      continue;
    std::set<std::string> Here;
    for (const AssertionP &Cl : D->Clauses)
      collectPredNames(Cl, Here);
    for (const std::string &N : Here)
      if (UsedPreds.insert(N).second)
        Work.push_back(N);
  }

  for (const auto &[Name, D] : Preds.all()) {
    // Derived predicates (own$T, mutref_inner$T, ...) are materialised on
    // demand by the Ownable registry; their "uses" are dynamic. Abstract
    // predicates exist to be opaque. Neither is lintable as unused.
    if (D.Abstract || Name.find('$') != std::string::npos)
      continue;
    if (UsedPreds.count(Name))
      continue;
    Diagnostic Diag;
    Diag.Code = code::UnusedPred;
    Diag.Entity = "pred:" + Name;
    Diag.Message = "predicate '" + Name +
                   "' is never referenced by any specification, reachable "
                   "predicate clause or ghost statement";
    DE.report(std::move(Diag));
  }
  for (const std::string &Name : LemmaNames) {
    if (UsedLemmas.count(Name))
      continue;
    Diagnostic Diag;
    Diag.Code = code::UnusedLemma;
    Diag.Entity = "lemma:" + Name;
    Diag.Message =
        "lemma '" + Name + "' is never applied by any ghost statement";
    DE.report(std::move(Diag));
  }
}
