//===- analysis/Analysis.cpp - Pre-verification analysis driver ------------===//

#include "analysis/Analysis.h"

#include "analysis/Interproc.h"
#include "gilsonite/Parser.h"
#include "solver/Flight.h"
#include "support/Deps.h"
#include "support/Metrics.h"
#include "support/SourceMgr.h"
#include "support/Trace.h"

#include <algorithm>
#include <chrono>
#include <sstream>

using namespace gilr;
using namespace gilr::analysis;

EntityVerdict gilr::analysis::lintEntity(const AnalysisInput &In,
                                         const std::string &Name) {
  GILR_TRACE_SCOPE_D("analysis", "lint-entity", Name);
  // Flight-recorder provenance: the spec lints below may issue solver
  // queries (vacuity checks); attribute them to this entity.
  flight::ObligationScope FlightScope(Name, 'L');
  EntityVerdict V;
  if (!In.Cfg.Enabled)
    return V;

  DiagnosticEngine DE(In.Cfg);

  const rmir::Function *F = In.Prog ? In.Prog->lookup(Name) : nullptr;
  if (F) {
    // Program::lookup is header-inline (no deps hook); note it here, exactly
    // as engine::Verifier::verifyFunction does, so a DepRecorder installed
    // around a lint job captures the body dependency.
    deps::note(deps::Kind::Function, Name);
    for (const std::string &Code : F->LintSuppress)
      DE.suppress(Name, Code);
  }

  // SpecTable::lookup notes the Spec dependency itself.
  const gilsonite::Spec *S =
      In.Specs ? In.Specs->lookup(Name) : nullptr;

  if (F && In.Cfg.FunctionLints) {
    checkWellFormed(*F, DE);
    checkDeadCode(*F, DE);
    checkUnsafeSurface(*F, S, DE);
    if (In.Summaries)
      checkUnsafeEscape(*F, S, *In.Summaries, DE);
  }
  if (S && In.Cfg.SpecLints && In.Solv)
    checkSpec(*S, *In.Solv, DE);
  if (F && S && In.Cfg.FunctionLints && In.Cfg.SpecLints)
    checkFrameRule(*F, *S, In.Summaries, DE);

  V.Diags = DE.sorted();
  V.Suppressed = DE.suppressedCount();
  V.Blocked = In.Cfg.FailOnError && DE.errorCount() > 0;
  return V;
}

std::vector<Diagnostic>
gilr::analysis::lintProgramLevel(const AnalysisInput &In) {
  GILR_TRACE_SCOPE("analysis", "lint-program");
  if (!In.Cfg.Enabled || !In.Cfg.SpecLints || !In.Prog || !In.Preds ||
      !In.Specs)
    return {};
  DiagnosticEngine DE(In.Cfg);
  checkUnusedEntities(*In.Prog, *In.Preds, *In.Specs, In.LemmaNames,
                      In.ExtraUsedPreds, In.ExtraUsedLemmas, DE);
  if (In.Summaries)
    checkRecursionVariant(*In.Prog, *In.Specs, *In.Summaries, DE);
  return DE.sorted();
}

AnalysisResult gilr::analysis::finalizeAnalysis(
    const AnalysisConfig &Cfg,
    const std::vector<std::pair<std::string, EntityVerdict>> &PerEntity,
    std::vector<Diagnostic> ProgramDiags, double Seconds) {
  AnalysisResult R;
  R.Enabled = Cfg.Enabled;
  R.Seconds = Seconds;
  R.Diags = std::move(ProgramDiags);
  for (const auto &[Name, V] : PerEntity) {
    (void)Name;
    R.Diags.insert(R.Diags.end(), V.Diags.begin(), V.Diags.end());
    R.Suppressed += V.Suppressed;
    if (V.Cached)
      ++R.EntitiesCached;
    else
      ++R.EntitiesAnalyzed;
    if (V.Blocked)
      ++R.EntitiesBlocked;
  }
  std::sort(R.Diags.begin(), R.Diags.end(), diagnosticLess);
  for (const Diagnostic &D : R.Diags)
    (D.Sev == Severity::Error ? R.Errors : R.Warnings) += 1;

  if (trace::enabled()) {
    metrics::Registry::get().add("analysis.entities",
                                 R.EntitiesAnalyzed + R.EntitiesCached);
    metrics::Registry::get().add("analysis.cached", R.EntitiesCached);
    metrics::Registry::get().add("analysis.blocked", R.EntitiesBlocked);
    metrics::Registry::get().add("analysis.errors", R.Errors);
    metrics::Registry::get().add("analysis.warnings", R.Warnings);
  }

  metrics::AnalysisReport M;
  M.Valid = true;
  M.Enabled = Cfg.Enabled;
  M.Entities = R.EntitiesAnalyzed + R.EntitiesCached;
  M.Cached = R.EntitiesCached;
  M.Blocked = R.EntitiesBlocked;
  M.Errors = R.Errors;
  M.Warnings = R.Warnings;
  M.Suppressed = R.Suppressed;
  M.Seconds = R.Seconds;
  metrics::Registry::get().setAnalysisReport(std::move(M));
  return R;
}

AnalysisResult
gilr::analysis::analyzeProgram(const AnalysisInput &In,
                               const std::vector<std::string> &Entities) {
  GILR_TRACE_SCOPE("analysis", "pre-pass");
  const auto T0 = std::chrono::steady_clock::now();
  // The serial convenience path computes its own summary table when the
  // caller did not supply one (the scheduler computes/caches its table and
  // passes it down instead).
  AnalysisInput Local = In;
  SummaryTable Computed;
  if (!Local.Summaries && Local.Cfg.Enabled && Local.Prog && Local.Preds &&
      Local.Specs) {
    Computed = computeSummaries(*Local.Prog, *Local.Preds, *Local.Specs);
    Local.Summaries = &Computed;
  }
  std::vector<std::pair<std::string, EntityVerdict>> PerEntity;
  if (Local.Cfg.Enabled)
    for (const std::string &Name : Entities)
      PerEntity.emplace_back(Name, lintEntity(Local, Name));
  std::vector<Diagnostic> ProgDiags = lintProgramLevel(Local);
  const double Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();
  return finalizeAnalysis(In.Cfg, PerEntity, std::move(ProgDiags), Seconds);
}

std::string AnalysisResult::renderText() const {
  std::ostringstream OS;
  OS << "== pre-verification analysis ==\n";
  if (!Enabled) {
    OS << "disabled\n";
    return OS.str();
  }
  OS << renderDiagnosticsText(Diags);
  OS << Errors << " error(s), " << Warnings << " warning(s), " << Suppressed
     << " suppressed; " << EntitiesAnalyzed << " entit"
     << (EntitiesAnalyzed == 1 ? "y" : "ies") << " analyzed, "
     << EntitiesCached << " cached, " << EntitiesBlocked << " blocked\n";
  return OS.str();
}

std::string AnalysisResult::renderJson() const {
  // Deliberately omits Seconds and the analyzed/cached split: report JSON
  // is byte-identical across worker counts and across cold/warm incremental
  // runs (the determinism contract of docs/SCHEDULER.md), and those fields
  // are run-dependent. They are published to the metrics registry instead
  // (the \c analysis section of the gilr-telemetry-v1 stats).
  std::ostringstream OS;
  OS << "{\"enabled\":" << (Enabled ? "true" : "false")
     << ",\"errors\":" << Errors << ",\"warnings\":" << Warnings
     << ",\"suppressed\":" << Suppressed
     << ",\"entities_blocked\":" << EntitiesBlocked
     << ",\"diagnostics\":" << renderDiagnosticsJson(Diags) << "}";
  return OS.str();
}

std::optional<gilsonite::Spec>
gilr::analysis::parseSpecChecked(const std::string &Text,
                                 const rmir::TyCtx &Types,
                                 const std::string &Entity,
                                 std::vector<Diagnostic> &Diags) {
  gilsonite::ParseDiag PD;
  Outcome<gilsonite::Spec> O = gilsonite::parseSpec(Text, Types, &PD);
  if (O.ok())
    return std::move(O.value());
  Diagnostic D;
  D.Code = code::ParseError;
  D.Sev = Severity::Error;
  D.Entity = Entity;
  D.Message = "malformed Gilsonite specification: " +
              (O.failed() ? O.error() : std::string("assertion vanished"));
  if (!PD.Message.empty()) {
    // Position-tracked failure: record where in the spec text it happened
    // and attach a caret snippet. The location stays in the notes (not
    // File/Line/Col) because the "file" here is an inline spec string.
    support::SourceMgr SM("<spec>", Text);
    support::LineCol LC = SM.lineCol(PD.Offset);
    D.Line = LC.Line;
    D.Col = LC.Col;
    D.Notes.push_back("at " + SM.locString(PD.Offset));
    D.Notes.push_back(SM.lineText(LC.Line));
    std::string Caret = SM.caretSnippet(PD.Offset);
    D.Notes.push_back(Caret.substr(Caret.find('\n') + 1));
  }
  Diags.push_back(std::move(D));
  return std::nullopt;
}
