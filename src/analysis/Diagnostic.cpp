//===- analysis/Diagnostic.cpp ---------------------------------------------===//

#include "analysis/Diagnostic.h"

#include <algorithm>
#include <sstream>

using namespace gilr;
using namespace gilr::analysis;

const char *gilr::analysis::severityName(Severity S) {
  return S == Severity::Error ? "error" : "warning";
}

Severity gilr::analysis::codeSeverity(const std::string &Code) {
  // Codes are "GILR-E..." / "GILR-W...". Unknown shapes default to warning
  // (the gentle direction for a diagnostic about diagnostics).
  if (Code.size() > 5 && Code[5] == 'E')
    return Severity::Error;
  return Severity::Warning;
}

const std::vector<CodeDoc> &gilr::analysis::codeRegistry() {
  static const std::vector<CodeDoc> Registry = {
      {code::BadTarget, "terminator target out of range",
       "A Goto/SwitchInt/Call terminator names a basic block the function "
       "does not declare. The CFG edge is dropped for analysis; the body "
       "cannot be executed."},
      {code::BadLocal, "reference to an undeclared local",
       "A place or operand names a local beyond the function's declared "
       "local list."},
      {code::TypeMismatch, "place/operand type disagreement",
       "A projection or operand's type does not match the declared local "
       "types (deref of a non-pointer, field out of range, downcast of a "
       "non-enum, ...)."},
      {code::UninitUse, "use of a possibly-uninitialized local",
       "A forward may-analysis found a path on which the local is read "
       "before any assignment reaches it."},
      {code::MovedUse, "use of a moved local",
       "A local is read after an operand moved its value out on some "
       "path."},
      {code::VacuousPre, "unsatisfiable precondition",
       "The pure fragment of the spec's precondition is UNSAT: no caller "
       "can ever invoke the function, so the proof is vacuous. The message "
       "carries a minimized unsat core."},
      {code::ParseError, "malformed Gilsonite spec or assertion",
       "The textual spec failed to parse; the entity is skipped."},
      {code::SyntaxError, ".gilr syntax error",
       "The frontend lexer/parser rejected the module text."},
      {code::NameError, "unresolved name in a .gilr module",
       "A reference names a function, predicate, lemma or type the module "
       "does not declare."},
      {code::FrontendError, ".gilr lowering or typecheck error",
       "The module parsed but could not be lowered onto the verification "
       "tables."},
      {code::UnreachableBlock, "basic block unreachable from entry",
       "No CFG path from block 0 reaches the block; its code is dead."},
      {code::DeadStore, "store whose value is never read",
       "A backward liveness pass found an assignment to a plain local that "
       "no later use observes. Side-effecting assignments are exempt."},
      {code::UnsafeSurface, "raw-pointer operations outside ownership",
       "The body performs raw-pointer operations (AddrOf, PtrOffset, "
       "Alloc, Free, raw deref) but its spec carries no ownership "
       "assertion to contain them."},
      {code::TrivialPost, "trivially-true postcondition conjunct",
       "A pure conjunct of the postcondition holds in the empty context: "
       "it promises nothing."},
      {code::UnusedPred, "predicate never referenced",
       "No spec, predicate clause or ghost statement mentions the "
       "predicate."},
      {code::UnusedLemma, "lemma never applied",
       "No ghost statement applies the lemma."},
      {code::PostImpliedByPre, "postcondition conjunct implied by the pre",
       "The pure precondition fragment alone already entails the conjunct, "
       "so it says nothing about the function's behaviour."},
      {code::PostUnsatGivenPre, "postcondition contradicts the precondition",
       "The combined pure fragments are UNSAT while the pre alone is "
       "satisfiable: no implementation can meet the contract. Carries a "
       "minimized core."},
      {code::FrameWiderThanFootprint, "spec owns memory the body never touches",
       "The precondition claims ownership rooted at a parameter the body "
       "never reads through, writes through, frees, passes on or returns. "
       "With interprocedural summaries available, predicate calls in the "
       "pre are resolved through their footprint summaries instead of "
       "muting the lint; a residual opaque (abstract) predicate call is "
       "named in the note."},
      {code::UnsafeEscape, "callee's unsafe surface escapes into a spec-free caller",
       "The function has no spec and calls a function whose interprocedural "
       "summary says its raw-pointer operations are not contained by any "
       "ownership-bearing spec on the call chain: the unsafety leaks "
       "through two unguarded layers."},
      {code::RecursionNoVariant, "recursive cycle with no decreasing argument",
       "A call-graph SCC is recursive (self or mutual), yet no member's "
       "body applies a lemma and no member's spec mentions an inductive "
       "predicate: nothing in the cycle justifies termination of a proof "
       "by unfolding."},
  };
  return Registry;
}

const CodeDoc *gilr::analysis::lookupCodeDoc(const std::string &Code) {
  for (const CodeDoc &D : codeRegistry())
    if (Code == D.Code)
      return &D;
  return nullptr;
}

std::string Diagnostic::str() const {
  std::ostringstream OS;
  if (!File.empty())
    OS << File << ':' << Line << ':' << Col << ": ";
  OS << severityName(Sev) << '[' << Code << "] " << Entity << ": " << Message;
  if (Block >= 0) {
    OS << " (bb" << Block;
    if (Stmt >= 0)
      OS << ", st " << Stmt;
    OS << ')';
  }
  return OS.str();
}

bool gilr::analysis::diagnosticLess(const Diagnostic &A, const Diagnostic &B) {
  auto Key = [](const Diagnostic &D) {
    return std::tie(D.Entity, D.Block, D.Stmt, D.Code, D.Message, D.Notes,
                    D.File, D.Line, D.Col);
  };
  return Key(A) < Key(B);
}

void DiagnosticEngine::suppress(const std::string &Entity,
                                const std::string &Code) {
  std::lock_guard<std::mutex> L(Mu);
  Suppressions.insert({Entity, Code});
}

bool DiagnosticEngine::report(Diagnostic D) {
  D.Sev = codeSeverity(D.Code);
  if (Cfg.WarningsAsErrors)
    D.Sev = Severity::Error;
  std::lock_guard<std::mutex> L(Mu);
  if (Cfg.DisabledCodes.count(D.Code) ||
      Suppressions.count({D.Entity, D.Code}) ||
      Suppressions.count({D.Entity, "all"})) {
    ++Suppressed;
    return false;
  }
  Diags.push_back(std::move(D));
  return true;
}

std::vector<Diagnostic> DiagnosticEngine::sorted() const {
  std::lock_guard<std::mutex> L(Mu);
  std::vector<Diagnostic> Out = Diags;
  std::sort(Out.begin(), Out.end(), diagnosticLess);
  return Out;
}

uint64_t DiagnosticEngine::errorCount() const {
  std::lock_guard<std::mutex> L(Mu);
  uint64_t N = 0;
  for (const Diagnostic &D : Diags)
    if (D.Sev == Severity::Error)
      ++N;
  return N;
}

uint64_t DiagnosticEngine::warningCount() const {
  std::lock_guard<std::mutex> L(Mu);
  uint64_t N = 0;
  for (const Diagnostic &D : Diags)
    if (D.Sev == Severity::Warning)
      ++N;
  return N;
}

uint64_t DiagnosticEngine::suppressedCount() const {
  std::lock_guard<std::mutex> L(Mu);
  return Suppressed;
}

std::string
gilr::analysis::renderDiagnosticsText(const std::vector<Diagnostic> &Diags) {
  std::ostringstream OS;
  for (const Diagnostic &D : Diags) {
    OS << D.str() << '\n';
    for (const std::string &N : D.Notes)
      OS << "  note: " << N << '\n';
  }
  return OS.str();
}

static void jsonEscape(std::ostringstream &OS, const std::string &S) {
  for (char C : S) {
    switch (C) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\t':
      OS << "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        OS << Buf;
      } else {
        OS << C;
      }
    }
  }
}

std::string
gilr::analysis::renderDiagnosticsJson(const std::vector<Diagnostic> &Diags) {
  std::ostringstream OS;
  OS << '[';
  bool First = true;
  for (const Diagnostic &D : Diags) {
    if (!First)
      OS << ',';
    First = false;
    OS << "{\"code\":\"";
    jsonEscape(OS, D.Code);
    OS << "\",\"severity\":\"" << severityName(D.Sev) << "\",\"entity\":\"";
    jsonEscape(OS, D.Entity);
    OS << "\"";
    if (D.Block >= 0) {
      OS << ",\"block\":" << D.Block;
      if (D.Stmt >= 0)
        OS << ",\"stmt\":" << D.Stmt;
    }
    OS << ",\"message\":\"";
    jsonEscape(OS, D.Message);
    OS << "\"";
    if (!D.File.empty()) {
      OS << ",\"file\":\"";
      jsonEscape(OS, D.File);
      OS << "\",\"line\":" << D.Line << ",\"col\":" << D.Col;
    }
    if (!D.Notes.empty()) {
      OS << ",\"notes\":[";
      for (std::size_t I = 0; I < D.Notes.size(); ++I) {
        if (I)
          OS << ',';
        OS << '"';
        jsonEscape(OS, D.Notes[I]);
        OS << '"';
      }
      OS << ']';
    }
    OS << '}';
  }
  OS << ']';
  return OS.str();
}
