//===- analysis/Diagnostic.cpp ---------------------------------------------===//

#include "analysis/Diagnostic.h"

#include <algorithm>
#include <sstream>

using namespace gilr;
using namespace gilr::analysis;

const char *gilr::analysis::severityName(Severity S) {
  return S == Severity::Error ? "error" : "warning";
}

Severity gilr::analysis::codeSeverity(const std::string &Code) {
  // Codes are "GILR-E..." / "GILR-W...". Unknown shapes default to warning
  // (the gentle direction for a diagnostic about diagnostics).
  if (Code.size() > 5 && Code[5] == 'E')
    return Severity::Error;
  return Severity::Warning;
}

std::string Diagnostic::str() const {
  std::ostringstream OS;
  if (!File.empty())
    OS << File << ':' << Line << ':' << Col << ": ";
  OS << severityName(Sev) << '[' << Code << "] " << Entity << ": " << Message;
  if (Block >= 0) {
    OS << " (bb" << Block;
    if (Stmt >= 0)
      OS << ", st " << Stmt;
    OS << ')';
  }
  return OS.str();
}

bool gilr::analysis::diagnosticLess(const Diagnostic &A, const Diagnostic &B) {
  auto Key = [](const Diagnostic &D) {
    return std::tie(D.Entity, D.Block, D.Stmt, D.Code, D.Message, D.Notes,
                    D.File, D.Line, D.Col);
  };
  return Key(A) < Key(B);
}

void DiagnosticEngine::suppress(const std::string &Entity,
                                const std::string &Code) {
  std::lock_guard<std::mutex> L(Mu);
  Suppressions.insert({Entity, Code});
}

bool DiagnosticEngine::report(Diagnostic D) {
  D.Sev = codeSeverity(D.Code);
  if (Cfg.WarningsAsErrors)
    D.Sev = Severity::Error;
  std::lock_guard<std::mutex> L(Mu);
  if (Cfg.DisabledCodes.count(D.Code) ||
      Suppressions.count({D.Entity, D.Code}) ||
      Suppressions.count({D.Entity, "all"})) {
    ++Suppressed;
    return false;
  }
  Diags.push_back(std::move(D));
  return true;
}

std::vector<Diagnostic> DiagnosticEngine::sorted() const {
  std::lock_guard<std::mutex> L(Mu);
  std::vector<Diagnostic> Out = Diags;
  std::sort(Out.begin(), Out.end(), diagnosticLess);
  return Out;
}

uint64_t DiagnosticEngine::errorCount() const {
  std::lock_guard<std::mutex> L(Mu);
  uint64_t N = 0;
  for (const Diagnostic &D : Diags)
    if (D.Sev == Severity::Error)
      ++N;
  return N;
}

uint64_t DiagnosticEngine::warningCount() const {
  std::lock_guard<std::mutex> L(Mu);
  uint64_t N = 0;
  for (const Diagnostic &D : Diags)
    if (D.Sev == Severity::Warning)
      ++N;
  return N;
}

uint64_t DiagnosticEngine::suppressedCount() const {
  std::lock_guard<std::mutex> L(Mu);
  return Suppressed;
}

std::string
gilr::analysis::renderDiagnosticsText(const std::vector<Diagnostic> &Diags) {
  std::ostringstream OS;
  for (const Diagnostic &D : Diags) {
    OS << D.str() << '\n';
    for (const std::string &N : D.Notes)
      OS << "  note: " << N << '\n';
  }
  return OS.str();
}

static void jsonEscape(std::ostringstream &OS, const std::string &S) {
  for (char C : S) {
    switch (C) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\t':
      OS << "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        OS << Buf;
      } else {
        OS << C;
      }
    }
  }
}

std::string
gilr::analysis::renderDiagnosticsJson(const std::vector<Diagnostic> &Diags) {
  std::ostringstream OS;
  OS << '[';
  bool First = true;
  for (const Diagnostic &D : Diags) {
    if (!First)
      OS << ',';
    First = false;
    OS << "{\"code\":\"";
    jsonEscape(OS, D.Code);
    OS << "\",\"severity\":\"" << severityName(D.Sev) << "\",\"entity\":\"";
    jsonEscape(OS, D.Entity);
    OS << "\"";
    if (D.Block >= 0) {
      OS << ",\"block\":" << D.Block;
      if (D.Stmt >= 0)
        OS << ",\"stmt\":" << D.Stmt;
    }
    OS << ",\"message\":\"";
    jsonEscape(OS, D.Message);
    OS << "\"";
    if (!D.File.empty()) {
      OS << ",\"file\":\"";
      jsonEscape(OS, D.File);
      OS << "\",\"line\":" << D.Line << ",\"col\":" << D.Col;
    }
    if (!D.Notes.empty()) {
      OS << ",\"notes\":[";
      for (std::size_t I = 0; I < D.Notes.size(); ++I) {
        if (I)
          OS << ',';
        OS << '"';
        jsonEscape(OS, D.Notes[I]);
        OS << '"';
      }
      OS << ']';
    }
    OS << '}';
  }
  OS << ']';
  return OS.str();
}
