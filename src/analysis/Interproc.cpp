//===- analysis/Interproc.cpp - Triage predicate and W009/W010 -------------===//

#include "analysis/Interproc.h"

#include "analysis/Passes.h"
#include "support/Deps.h"

#include <set>

using namespace gilr;
using namespace gilr::analysis;

namespace {

/// Recursively emp: a Star whose parts are all emp (gilsonite::emp() is the
/// empty Star). Anything else — including Exists-wrapped emp — is not
/// "trivially" emp; the executor would have work to do.
bool isEmp(const gilsonite::AssertionP &A) {
  if (!A || A->Kind != gilsonite::AsrtKind::Star)
    return false;
  for (const gilsonite::AssertionP &P : A->Parts)
    if (!isEmp(P))
      return false;
  return true;
}

/// Scalar types whose validity invariant is trivially satisfiable and whose
/// values the executor moves without solver work.
bool isScalar(rmir::TypeRef Ty) {
  if (!Ty)
    return false;
  switch (Ty->Kind) {
  case rmir::TypeKind::Bool:
  case rmir::TypeKind::Int:
  case rmir::TypeKind::Unit:
    return true;
  default:
    return false;
  }
}

bool isPlainLocal(const rmir::Place &P, std::size_t NumLocals) {
  return P.Elems.empty() && P.Local < NumLocals;
}

/// A comparison operator: the executor evaluates it without an in-range
/// obligation (engine/Executor.cpp's checked-arithmetic split).
bool isComparison(rmir::BinOp Op) {
  switch (Op) {
  case rmir::BinOp::Eq:
  case rmir::BinOp::Ne:
  case rmir::BinOp::Lt:
  case rmir::BinOp::Le:
  case rmir::BinOp::Gt:
  case rmir::BinOp::Ge:
    return true;
  default:
    return false;
  }
}

} // namespace

bool gilr::analysis::triviallyStatic(const rmir::Function &F,
                                     const gilsonite::Spec &S,
                                     const SummaryTable &T) {
  if (S.Trusted || !S.SpecVars.empty())
    return false;
  if (!isEmp(S.Pre) || !isEmp(S.Post))
    return false;
  if (F.Blocks.empty() || F.Locals.empty() ||
      F.Locals.size() < 1 + static_cast<std::size_t>(F.NumParams))
    return false;

  const FnSummary *Sum = T.fn(F.Name);
  if (!Sum || !Sum->Known || !Sum->Leaf || !Sum->Pure || Sum->Recursive ||
      Sum->HasGhost || Sum->HasCheckedArith || Sum->HasUnreachable)
    return false;

  for (const rmir::Local &L : F.Locals)
    if (!isScalar(L.Ty))
      return false;

  // Straight-line walk mirroring the executor: Goto/Return only, each
  // block at most once, statements confined to the query-free subset, and
  // a definite-initialization simulation that accepts exactly when
  // execReturn cannot fail.
  std::set<rmir::BlockId> Visited;
  std::set<rmir::LocalId> Init;
  for (unsigned I = 0; I != F.NumParams; ++I)
    Init.insert(1 + I);

  rmir::BlockId B = 0;
  for (;;) {
    if (B >= F.Blocks.size() || !Visited.insert(B).second)
      return false;
    const rmir::BasicBlock &BB = F.Blocks[B];
    for (const rmir::Statement &St : BB.Stmts) {
      switch (St.Kind) {
      case rmir::Statement::Nop:
        continue;
      case rmir::Statement::Assign:
        break;
      default:
        return false;
      }
      if (!isPlainLocal(St.Dest, F.Locals.size()))
        return false;
      const rmir::Rvalue &RV = St.RV;
      switch (RV.Kind) {
      case rmir::Rvalue::Use:
        break;
      case rmir::Rvalue::BinaryOp:
        if (!isComparison(RV.BOp))
          return false;
        break;
      case rmir::Rvalue::UnaryOp:
        if (RV.UOp != rmir::UnOp::Not)
          return false;
        break;
      default:
        return false;
      }
      for (const rmir::Operand &Op : RV.Ops) {
        if (Op.Kind == rmir::Operand::Const) {
          if (!Op.ConstVal || !Op.ConstTy)
            return false;
          continue;
        }
        if (!isPlainLocal(Op.P, F.Locals.size()) || !Init.count(Op.P.Local))
          return false;
        if (Op.Kind == rmir::Operand::Move)
          Init.erase(Op.P.Local);
      }
      Init.insert(St.Dest.Local);
    }
    switch (BB.Term.Kind) {
    case rmir::Terminator::Goto:
      B = BB.Term.Target;
      continue;
    case rmir::Terminator::Return:
      return Init.count(0) ||
             F.returnType()->Kind == rmir::TypeKind::Unit;
    default:
      return false;
    }
  }
}

void gilr::analysis::checkUnsafeEscape(const rmir::Function &F,
                                       const gilsonite::Spec *CallerSpec,
                                       const SummaryTable &T,
                                       DiagnosticEngine &DE) {
  // A caller with a spec of its own is a contract boundary; the escape
  // lint targets the spec-free gap between two unguarded layers.
  if (CallerSpec)
    return;
  for (std::size_t BI = 0; BI != F.Blocks.size(); ++BI) {
    const rmir::Terminator &Term = F.Blocks[BI].Term;
    if (Term.Kind != rmir::Terminator::Call)
      continue;
    // The verdict — fired or not — depends on everything the callee's
    // summary saw: any reachable body or spec edit must invalidate a cached
    // lint verdict, including one that found nothing.
    deps::note(deps::Kind::Function, Term.Callee);
    deps::note(deps::Kind::Spec, Term.Callee);
    const FnSummary *CS = T.fn(Term.Callee);
    if (CS) {
      for (const std::string &Dep : CS->DepFns) {
        deps::note(deps::Kind::Function, Dep);
        deps::note(deps::Kind::Spec, Dep);
      }
      for (const std::string &Dep : CS->DepPreds)
        deps::note(deps::Kind::Pred, Dep);
    }
    if (!CS || !CS->UnsafeEscapes)
      continue;
    Diagnostic D;
    D.Code = code::UnsafeEscape;
    D.Sev = codeSeverity(D.Code);
    D.Entity = F.Name;
    D.Block = static_cast<int>(BI);
    D.Message = "call to '" + Term.Callee +
                "' lets its unsafe surface escape: the callee performs "
                "raw-pointer operations with no ownership-bearing spec, and "
                "this caller has no spec to contain them";
    D.Notes.push_back(
        "give '" + Term.Callee +
        "' (or this caller) a spec with a spatial footprint, or drop the "
        "raw-pointer operations from the call chain");
    DE.report(std::move(D));
  }
}

void gilr::analysis::checkRecursionVariant(const rmir::Program &Prog,
                                           const gilsonite::SpecTable &Specs,
                                           const SummaryTable &T,
                                           DiagnosticEngine &DE) {
  for (const Scc &S : T.FnSccs) {
    if (!S.Recursive || S.Members.empty())
      continue;
    bool HasEvidence = false;
    for (const std::string &Name : S.Members) {
      if (const FnSummary *Sum = T.fn(Name))
        if (Sum->HasLemmaApply)
          HasEvidence = true;
      if (const gilsonite::Spec *Sp = Specs.lookup(Name)) {
        std::set<std::string> SpecPreds;
        collectPredNames(Sp->Pre, SpecPreds);
        collectPredNames(Sp->Post, SpecPreds);
        // An inductive predicate in the spec is the usual decreasing
        // structure (the proof recurses over its unfolding).
        if (!SpecPreds.empty())
          HasEvidence = true;
      }
      if (HasEvidence)
        break;
    }
    if (HasEvidence)
      continue;
    // One finding per cycle, pinned to the least member so the report is
    // deterministic whatever order the SCC was discovered in.
    std::string Cycle;
    for (const std::string &Name : S.Members) {
      if (!Cycle.empty())
        Cycle += ", ";
      Cycle += Name;
    }
    Diagnostic D;
    D.Code = code::RecursionNoVariant;
    D.Sev = codeSeverity(D.Code);
    D.Entity = S.Members.front();
    D.Message = "recursive cycle {" + Cycle +
                "} has no decreasing argument: no lemma application in any "
                "body and no inductive predicate in any spec of the cycle";
    D.Notes.push_back(
        "termination-sensitive proofs need a variant: apply a decreasing "
        "lemma in the cycle or specify a member against an inductive "
        "predicate");
    DE.report(std::move(D));
  }
}
