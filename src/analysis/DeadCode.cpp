//===- analysis/DeadCode.cpp - Unreachable blocks + dead stores ------------===//
///
/// GILR-W001 (block unreachable from entry) and GILR-W002 (store to a plain
/// local whose value is never read — backward liveness). Side-effecting
/// assignments are exempt from W002: Alloc (allocation), RefOf (borrow
/// creation attaches a prophecy), AddrOf (pointer identity escapes), and any
/// store to the return slot (unit-returning bodies conventionally assign _0
/// without a matching read at Return).
///
//===----------------------------------------------------------------------===//

#include "analysis/Dataflow.h"
#include "analysis/Passes.h"

using namespace gilr;
using namespace gilr::analysis;
using namespace gilr::rmir;

namespace {

struct LiveState {
  std::vector<uint8_t> Live; // 1 = live (read before any overwrite).
};

struct Liveness {
  using Domain = LiveState;
  static constexpr Direction Dir = Direction::Backward;

  const Function &F;
  explicit Liveness(const Function &F) : F(F) {}

  Domain boundary() {
    LiveState S;
    S.Live.assign(F.Locals.size(), 0);
    // Return reads the return slot for non-unit functions.
    if (!F.Locals.empty() && F.Locals[0].Ty &&
        F.Locals[0].Ty->Kind != TypeKind::Unit)
      S.Live[0] = 1;
    return S;
  }
  Domain top() {
    LiveState S;
    S.Live.assign(F.Locals.size(), 0);
    return S;
  }
  bool meetInto(Domain &Into, const Domain &From) {
    bool Changed = false;
    for (std::size_t I = 0; I < Into.Live.size(); ++I)
      if (From.Live[I] && !Into.Live[I]) {
        Into.Live[I] = 1;
        Changed = true;
      }
    return Changed;
  }

  void gen(LiveState &S, LocalId L) {
    if (L < S.Live.size())
      S.Live[L] = 1;
  }
  void genPlace(LiveState &S, const Place &P) { gen(S, P.Local); }
  void genOperand(LiveState &S, const Operand &Op) {
    if (Op.Kind != Operand::Const)
      genPlace(S, Op.P);
  }

  /// Transfers one statement backwards over \p S (kill def, then gen uses).
  void stepBack(LiveState &S, const Statement &St) {
    switch (St.Kind) {
    case Statement::Assign:
    case Statement::Alloc:
      if (St.Dest.Elems.empty()) {
        if (St.Dest.Local < S.Live.size())
          S.Live[St.Dest.Local] = 0;
      } else {
        genPlace(S, St.Dest); // Writing through a projection reads the base.
      }
      if (St.Kind == Statement::Alloc)
        return;
      switch (St.RV.Kind) {
      case Rvalue::Use:
      case Rvalue::BinaryOp:
      case Rvalue::UnaryOp:
      case Rvalue::Aggregate:
      case Rvalue::PtrOffset:
        for (const Operand &Op : St.RV.Ops)
          genOperand(S, Op);
        return;
      case Rvalue::Discriminant:
      case Rvalue::RefOf:
      case Rvalue::AddrOf:
        genPlace(S, St.RV.P);
        return;
      }
      return;
    case Statement::Free:
      genOperand(S, St.FreeArg);
      return;
    case Statement::GhostStmt:
      // Ghost arguments read program values: a store feeding only a proof
      // step is *not* dead.
      for (const Operand &Op : St.G.Args)
        genOperand(S, Op);
      return;
    case Statement::Nop:
      return;
    }
  }

  void stepBackTerminator(LiveState &S, const Terminator &T) {
    switch (T.Kind) {
    case Terminator::SwitchInt:
      genOperand(S, T.Discr);
      return;
    case Terminator::Call:
      if (T.Dest.Elems.empty()) {
        if (T.Dest.Local < S.Live.size())
          S.Live[T.Dest.Local] = 0;
      } else {
        genPlace(S, T.Dest);
      }
      for (const Operand &Op : T.Args)
        genOperand(S, Op);
      return;
    case Terminator::Goto:
    case Terminator::Return:
    case Terminator::Unreachable:
      return;
    }
  }

  Domain transfer(unsigned B, Domain Out) {
    const BasicBlock &BB = F.Blocks[B];
    stepBackTerminator(Out, BB.Term);
    for (std::size_t I = BB.Stmts.size(); I-- > 0;)
      stepBack(Out, BB.Stmts[I]);
    return Out;
  }
};

/// True if overwriting the result of \p St discards only a value (no
/// allocation, borrow or pointer-identity side effect).
bool storeIsPureValue(const Statement &St) {
  if (St.Kind != Statement::Assign)
    return false;
  switch (St.RV.Kind) {
  case Rvalue::Use:
  case Rvalue::BinaryOp:
  case Rvalue::UnaryOp:
  case Rvalue::Aggregate:
  case Rvalue::Discriminant:
  case Rvalue::PtrOffset:
    return true;
  case Rvalue::RefOf:
  case Rvalue::AddrOf:
    return false;
  }
  return false;
}

} // namespace

void gilr::analysis::checkDeadCode(const Function &F, DiagnosticEngine &DE) {
  if (F.Blocks.empty() || F.Locals.empty())
    return; // Well-formedness already rejects the body.

  Cfg C = Cfg::build(F);

  for (std::size_t B = 0; B < F.Blocks.size(); ++B)
    if (!C.Reachable[B]) {
      Diagnostic D;
      D.Code = code::UnreachableBlock;
      D.Entity = F.Name;
      D.Block = static_cast<int>(B);
      D.Message = "basic block bb" + std::to_string(B) +
                  " is unreachable from the entry block";
      DE.report(std::move(D));
    }

  Liveness A(F);
  std::vector<LiveState> Out = solveDataflow(C, A);

  for (std::size_t B = 0; B < F.Blocks.size(); ++B) {
    if (!C.Reachable[B])
      continue; // Already covered by W001; liveness there is meaningless.
    LiveState S = Out[B];
    A.stepBackTerminator(S, F.Blocks[B].Term);
    for (std::size_t I = F.Blocks[B].Stmts.size(); I-- > 0;) {
      const Statement &St = F.Blocks[B].Stmts[I];
      if (storeIsPureValue(St) && St.Dest.Elems.empty() &&
          St.Dest.Local != 0 && St.Dest.Local < F.Locals.size() &&
          !S.Live[St.Dest.Local]) {
        Diagnostic D;
        D.Code = code::DeadStore;
        D.Entity = F.Name;
        D.Block = static_cast<int>(B);
        D.Stmt = static_cast<int>(I);
        D.Message = "value stored to local _" +
                    std::to_string(St.Dest.Local) +
                    (F.Locals[St.Dest.Local].Name.empty()
                         ? std::string()
                         : " '" + F.Locals[St.Dest.Local].Name + "'") +
                    " is never read";
        DE.report(std::move(D));
      }
      A.stepBack(S, St);
    }
  }
}
