//===- heap/LaidOut.h - Laid-out node manipulation (Fig. 5) ----------------===//
///
/// \file
/// The pointer-arithmetic side of the hybrid heap: splitting, reading,
/// overwriting and reassembling the segments of a laid-out node, with all
/// range comparisons decided by the solver against the path condition.
/// These are the operations of Fig. 5 in the paper (isolate the region,
/// overwrite it, keep the rest).
///
//===----------------------------------------------------------------------===//

#ifndef GILR_HEAP_LAIDOUT_H
#define GILR_HEAP_LAIDOUT_H

#include "heap/TreeNode.h"

namespace gilr {
namespace heap {

/// Restructures laid-out node \p N so that one segment covers exactly
/// [From, To), splitting a covering segment if necessary (Fig. 5 middle).
/// Returns the index of that segment.
Outcome<std::size_t> focusRange(TreeNode &N, const Expr &From, const Expr &To,
                                HeapCtx &Ctx);

/// Reads [From, To) as a sequence of (To - From) values.
Outcome<Expr> readRange(TreeNode &N, const Expr &From, const Expr &To,
                        HeapCtx &Ctx);

/// Overwrites [From, To) with \p SeqVal (Fig. 5 right). The memory must be
/// owned (Val or Uninit). Asserts |SeqVal| = To - From into the path
/// condition.
Outcome<Unit> writeRange(TreeNode &N, const Expr &From, const Expr &To,
                         const Expr &SeqVal, HeapCtx &Ctx);

/// Consumer for array resources: reads [From, To) and marks it Missing.
Outcome<Expr> consumeRange(TreeNode &N, const Expr &From, const Expr &To,
                           HeapCtx &Ctx);

/// Consumer for possibly-uninitialised array resources: marks [From, To)
/// Missing regardless of its init state, returning Some(seq) if it was
/// fully initialised and None otherwise.
Outcome<Expr> consumeRangeMaybeUninit(TreeNode &N, const Expr &From,
                                      const Expr &To, HeapCtx &Ctx);

/// Producer for array resources: fills a Missing [From, To) with \p SeqVal.
/// Producing over owned memory vanishes the branch (duplicated resource).
Outcome<Unit> produceRange(TreeNode &N, const Expr &From, const Expr &To,
                           const Expr &SeqVal, HeapCtx &Ctx);

/// Producer for uninitialised ranges.
Outcome<Unit> produceRangeUninit(TreeNode &N, const Expr &From,
                                 const Expr &To, HeapCtx &Ctx);

/// Merges adjacent segments of equal kind whose boundary expressions match
/// (Fig. 5 reassembly). Purely an optimisation; never loses information.
void coalesce(TreeNode &N, HeapCtx &Ctx);

} // namespace heap
} // namespace gilr

#endif // GILR_HEAP_LAIDOUT_H
