//===- heap/LaidOut.cpp --------------------------------------------------------===//

#include "heap/LaidOut.h"

#include "support/Diagnostics.h"
#include "sym/ExprBuilder.h"
#include "sym/Printer.h"

#include <cassert>

using namespace gilr;
using namespace gilr::heap;

/// Splits segment \p S at the sub-range [From, To) (which must be covered),
/// producing 1-3 segments in order.
static std::vector<Segment> splitSegment(const Segment &S, const Expr &From,
                                         const Expr &To, HeapCtx &Ctx) {
  std::vector<Segment> Out;
  bool HasLeft = !Ctx.entails(mkEq(S.From, From));
  bool HasRight = !Ctx.entails(mkEq(S.To, To));

  auto slice = [&](const Expr &Lo, const Expr &Hi) -> Segment {
    switch (S.Kind) {
    case Segment::Val:
      return Segment::val(Lo, Hi,
                          mkSeqSub(S.Seq, mkSub(Lo, S.From), mkSub(Hi, Lo)));
    case Segment::Uninit:
      return Segment::uninit(Lo, Hi);
    case Segment::Missing:
      return Segment::missing(Lo, Hi);
    }
    GILR_UNREACHABLE("unknown segment kind");
  };

  if (HasLeft)
    Out.push_back(slice(S.From, From));
  Out.push_back(slice(From, To));
  if (HasRight)
    Out.push_back(slice(To, S.To));
  return Out;
}

Outcome<std::size_t> gilr::heap::focusRange(TreeNode &N, const Expr &From,
                                            const Expr &To, HeapCtx &Ctx) {
  assert(N.Kind == TreeNode::LaidOut && "focusRange on non-laid-out node");
  for (std::size_t I = 0, E = N.Segs.size(); I != E; ++I) {
    Segment &S = N.Segs[I];
    // Exact match fast path.
    if (exprEquals(S.From, From) && exprEquals(S.To, To))
      return Outcome<std::size_t>::success(I);
    if (!Ctx.entails(mkAnd(mkLe(S.From, From), mkLe(To, S.To))))
      continue;
    // Covered: split this segment (Fig. 5, middle).
    std::vector<Segment> Parts = splitSegment(S, From, To, Ctx);
    std::size_t MiddleOffset = Parts.size() == 1 ? 0
                               : exprEquals(Parts[0].From, From) ? 0
                                                                 : 1;
    N.Segs.erase(N.Segs.begin() + static_cast<long>(I));
    N.Segs.insert(N.Segs.begin() + static_cast<long>(I), Parts.begin(),
                  Parts.end());
    return Outcome<std::size_t>::success(I + MiddleOffset);
  }
  return Outcome<std::size_t>::failure(
      "laid-out range [" + exprToString(From) + ", " + exprToString(To) +
      ") is not covered by a single owned segment");
}

Outcome<Expr> gilr::heap::readRange(TreeNode &N, const Expr &From,
                                    const Expr &To, HeapCtx &Ctx) {
  Outcome<std::size_t> Idx = focusRange(N, From, To, Ctx);
  if (!Idx.ok())
    return Idx.forward<Expr>();
  Segment &S = N.Segs[Idx.value()];
  switch (S.Kind) {
  case Segment::Val:
    return Outcome<Expr>::success(S.Seq);
  case Segment::Uninit:
    return Outcome<Expr>::failure("read of uninitialised laid-out memory");
  case Segment::Missing:
    return Outcome<Expr>::failure("read of framed-off laid-out memory");
  }
  GILR_UNREACHABLE("unknown segment kind");
}

Outcome<Unit> gilr::heap::writeRange(TreeNode &N, const Expr &From,
                                     const Expr &To, const Expr &SeqVal,
                                     HeapCtx &Ctx) {
  Outcome<std::size_t> Idx = focusRange(N, From, To, Ctx);
  if (!Idx.ok())
    return Idx.forward<Unit>();
  Segment &S = N.Segs[Idx.value()];
  if (S.Kind == Segment::Missing)
    return Outcome<Unit>::failure("write to framed-off laid-out memory");
  Ctx.assume(mkEq(mkSeqLen(SeqVal), mkSub(To, From)));
  S = Segment::val(From, To, SeqVal);
  return Outcome<Unit>::success(Unit());
}

Outcome<Expr> gilr::heap::consumeRange(TreeNode &N, const Expr &From,
                                       const Expr &To, HeapCtx &Ctx) {
  Outcome<std::size_t> Idx = focusRange(N, From, To, Ctx);
  if (!Idx.ok())
    return Idx.forward<Expr>();
  Segment &S = N.Segs[Idx.value()];
  if (S.Kind != Segment::Val)
    return Outcome<Expr>::failure(
        "consume of laid-out range that is not fully initialised");
  Expr V = S.Seq;
  S = Segment::missing(From, To);
  return Outcome<Expr>::success(V);
}

Outcome<Expr> gilr::heap::consumeRangeMaybeUninit(TreeNode &N,
                                                  const Expr &From,
                                                  const Expr &To,
                                                  HeapCtx &Ctx) {
  Outcome<std::size_t> Idx = focusRange(N, From, To, Ctx);
  if (!Idx.ok())
    return Idx.forward<Expr>();
  Segment &S = N.Segs[Idx.value()];
  if (S.Kind == Segment::Missing)
    return Outcome<Expr>::failure("consume of framed-off laid-out memory");
  Expr Result = S.Kind == Segment::Val ? mkSome(S.Seq) : mkNone();
  S = Segment::missing(From, To);
  return Outcome<Expr>::success(Result);
}

/// If [From, To) is provably disjoint from every existing segment, a
/// producer may append it as new resource (extending the known footprint of
/// the laid-out node). Returns false when overlap cannot be excluded.
static bool disjointFromAll(TreeNode &N, const Expr &From, const Expr &To,
                            HeapCtx &Ctx) {
  for (const Segment &S : N.Segs)
    if (!Ctx.entails(mkOr(mkLe(To, S.From), mkLe(S.To, From))))
      return false;
  return true;
}

Outcome<Unit> gilr::heap::produceRange(TreeNode &N, const Expr &From,
                                       const Expr &To, const Expr &SeqVal,
                                       HeapCtx &Ctx) {
  Outcome<std::size_t> Idx = focusRange(N, From, To, Ctx);
  if (!Idx.ok()) {
    if (!disjointFromAll(N, From, To, Ctx))
      return Idx.forward<Unit>();
    Ctx.assume(mkEq(mkSeqLen(SeqVal), mkSub(To, From)));
    N.Segs.push_back(Segment::val(From, To, SeqVal));
    return Outcome<Unit>::success(Unit());
  }
  Segment &S = N.Segs[Idx.value()];
  if (S.Kind != Segment::Missing)
    return Outcome<Unit>::vanish(); // Duplicated resource: assume False.
  Ctx.assume(mkEq(mkSeqLen(SeqVal), mkSub(To, From)));
  S = Segment::val(From, To, SeqVal);
  return Outcome<Unit>::success(Unit());
}

Outcome<Unit> gilr::heap::produceRangeUninit(TreeNode &N, const Expr &From,
                                             const Expr &To, HeapCtx &Ctx) {
  Outcome<std::size_t> Idx = focusRange(N, From, To, Ctx);
  if (!Idx.ok()) {
    if (!disjointFromAll(N, From, To, Ctx))
      return Idx.forward<Unit>();
    N.Segs.push_back(Segment::uninit(From, To));
    return Outcome<Unit>::success(Unit());
  }
  Segment &S = N.Segs[Idx.value()];
  if (S.Kind != Segment::Missing)
    return Outcome<Unit>::vanish();
  S = Segment::uninit(From, To);
  return Outcome<Unit>::success(Unit());
}

void gilr::heap::coalesce(TreeNode &N, HeapCtx &Ctx) {
  assert(N.Kind == TreeNode::LaidOut && "coalesce on non-laid-out node");
  std::vector<Segment> Out;
  for (Segment &S : N.Segs) {
    if (!Out.empty() && Out.back().Kind == S.Kind &&
        (exprEquals(Out.back().To, S.From) ||
         Ctx.entails(mkEq(Out.back().To, S.From)))) {
      Segment &Prev = Out.back();
      if (S.Kind == Segment::Val)
        Prev.Seq = mkSeqConcat(Prev.Seq, S.Seq);
      Prev.To = S.To;
      continue;
    }
    Out.push_back(std::move(S));
  }
  N.Segs = std::move(Out);
}
