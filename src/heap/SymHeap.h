//===- heap/SymHeap.h - The Rust symbolic heap (§3) ------------------------===//
///
/// \file
/// The symbolic heap h of a Gillian-Rust state: a forest of hybrid trees
/// indexed by abstract location. Exposes the *actions* used by the symbolic
/// executor (alloc / free / load / store, §3.2) and the consumers/producers
/// of the typed points-to core predicate and its variants (§3.3):
///
///   a |->_T v        points_to   (consume returns v; produce installs v)
///   a |->_T maybe    maybe_uninit (possibly uninitialised memory)
///   a |->_[T;n] seq  array       (laid-out ranges, Fig. 5)
///
/// Loads in move context deinitialise the source; loads/stores maintain the
/// validity invariants of the values involved.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_HEAP_SYMHEAP_H
#define GILR_HEAP_SYMHEAP_H

#include "heap/Projection.h"
#include "heap/TreeNode.h"

#include <map>

namespace gilr {
namespace heap {

/// Navigation intent; controls how missing/uninitialised structure may be
/// materialised along the way.
enum class NavMode {
  Read,    ///< Must reach owned memory.
  Write,   ///< May expand Uninit structs/enums for partial initialisation.
  Produce, ///< May expand Missing skeletons (installing new resource).
};

/// The symbolic heap.
class SymHeap {
public:
  SymHeap() = default;

  //===--------------------------------------------------------------------===//
  // Executor actions
  //===--------------------------------------------------------------------===//

  /// Allocates an object of type \p Ty (the Box / allocator path); returns
  /// the pointer value.
  Expr alloc(rmir::TypeRef Ty, HeapCtx &Ctx);

  /// Allocates \p Count contiguous elements of \p ElemTy as a laid-out node
  /// (the explicit allocator API, §3.2); returns the base pointer.
  Expr allocArray(rmir::TypeRef ElemTy, const Expr &Count, HeapCtx &Ctx);

  /// Deallocates a typed object. Requires full ownership of the object
  /// (detects double-free and freeing through a frame).
  Outcome<Unit> freeTyped(const Expr &Ptr, rmir::TypeRef Ty, HeapCtx &Ctx);

  /// Loads a value of type \p Ty from \p Ptr. With \p Move, deinitialises
  /// the source (§3.2). On success also assumes the validity invariant of
  /// the loaded value.
  Outcome<Expr> load(const Expr &Ptr, rmir::TypeRef Ty, bool Move,
                     HeapCtx &Ctx);

  /// Stores \p Val of type \p Ty to \p Ptr, assuming its validity invariant.
  Outcome<Unit> store(const Expr &Ptr, rmir::TypeRef Ty, const Expr &Val,
                      HeapCtx &Ctx);

  //===--------------------------------------------------------------------===//
  // Core predicate consumers / producers (§3.3)
  //===--------------------------------------------------------------------===//

  Outcome<Expr> consumePointsTo(const Expr &Ptr, rmir::TypeRef Ty,
                                HeapCtx &Ctx);
  Outcome<Unit> producePointsTo(const Expr &Ptr, rmir::TypeRef Ty,
                                const Expr &Val, HeapCtx &Ctx);

  /// maybe_uninit: consume returns Some(v) / None for init / uninit memory.
  Outcome<Expr> consumeMaybeUninit(const Expr &Ptr, rmir::TypeRef Ty,
                                   HeapCtx &Ctx);
  Outcome<Unit> produceUninit(const Expr &Ptr, rmir::TypeRef Ty, HeapCtx &Ctx);

  /// Arrays over laid-out nodes: [Ptr, Ptr + Count) at element type.
  Outcome<Expr> consumeArray(const Expr &Ptr, rmir::TypeRef ElemTy,
                             const Expr &Count, HeapCtx &Ctx);
  Outcome<Unit> produceArray(const Expr &Ptr, rmir::TypeRef ElemTy,
                             const Expr &Count, const Expr &Seq, HeapCtx &Ctx);
  Outcome<Unit> produceArrayUninit(const Expr &Ptr, rmir::TypeRef ElemTy,
                                   const Expr &Count, HeapCtx &Ctx);
  /// Consumes an uninitialised laid-out range (fails on initialised or
  /// missing memory).
  Outcome<Unit> consumeArrayUninit(const Expr &Ptr, rmir::TypeRef ElemTy,
                                   const Expr &Count, HeapCtx &Ctx);

  //===--------------------------------------------------------------------===//
  // Introspection
  //===--------------------------------------------------------------------===//

  bool hasLoc(uint64_t Loc) const { return Objects.count(Loc) != 0; }
  std::size_t numObjects() const { return Objects.size(); }
  std::string dump() const;

  /// Resolves a pointer expression into (location, projection): decodes
  /// structural pointers, falls back to path-condition equalities, and (only
  /// when \p AllocateIfFresh) binds an opaque pointer to a fresh location.
  Outcome<DecodedPtr> resolvePtr(const Expr &Ptr, HeapCtx &Ctx,
                                 bool AllocateIfFresh);

private:
  Outcome<TreeNode *> navigate(TreeNode &Root, const Projection &Proj,
                               HeapCtx &Ctx, NavMode Mode);

  /// Accesses the laid-out element range [Start, Start + Count) denoted by a
  /// single trailing Offset element.
  struct ArrayAccess {
    TreeNode *Node;
    Expr From;
    Expr To;
  };
  Outcome<ArrayAccess> arrayAccess(const Expr &Ptr, rmir::TypeRef ElemTy,
                                   const Expr &Count, HeapCtx &Ctx);

  std::map<uint64_t, TreeNode> Objects;
};

} // namespace heap
} // namespace gilr

#endif // GILR_HEAP_SYMHEAP_H
