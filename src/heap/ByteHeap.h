//===- heap/ByteHeap.h - Fixed-layout byte-model baseline ------------------===//
///
/// \file
/// The comparator memory model for experiment A2 (DESIGN.md): a Kani-style
/// heap that *instantiates one concrete layout* chosen by a LayoutEngine and
/// addresses memory by concrete byte offsets. A program verified against a
/// ByteHeap is only verified for that one layout (§8, Kani discussion),
/// whereas the SymHeap's structural nodes are layout-independent. The
/// benchmark contrasts both the per-operation cost and the number of layout
/// choices covered.
///
/// Scalar values are stored whole at their offset (no bit-blasting); the
/// model rejects overlapping mixed-size accesses, which is sufficient for
/// the workloads compared.
///
//===----------------------------------------------------------------------===//

#ifndef GILR_HEAP_BYTEHEAP_H
#define GILR_HEAP_BYTEHEAP_H

#include "heap/TreeNode.h"
#include "rmir/Layout.h"

#include <map>

namespace gilr {
namespace heap {

/// The baseline heap: loc -> (byte offset -> scalar cell).
class ByteHeap {
public:
  explicit ByteHeap(rmir::LayoutEngine &Layout) : Layout(Layout) {}

  /// Allocates an object of type \p Ty; returns the location id.
  uint64_t alloc(rmir::TypeRef Ty);

  /// Frees an allocation.
  Outcome<Unit> free(uint64_t Loc);

  /// Stores scalar \p Val of type \p Ty at (Loc, ByteOffset).
  Outcome<Unit> store(uint64_t Loc, uint64_t ByteOffset, rmir::TypeRef Ty,
                      const Expr &Val);

  /// Loads the scalar of type \p Ty at (Loc, ByteOffset).
  Outcome<Expr> load(uint64_t Loc, uint64_t ByteOffset, rmir::TypeRef Ty);

  rmir::LayoutEngine &layout() { return Layout; }
  std::size_t numObjects() const { return Objects.size(); }

private:
  struct Cell {
    Expr Val;
    uint64_t Size;
  };
  struct Object {
    uint64_t Size;
    std::map<uint64_t, Cell> Cells;
  };

  rmir::LayoutEngine &Layout;
  std::map<uint64_t, Object> Objects;
  uint64_t NextLoc = 1;
};

} // namespace heap
} // namespace gilr

#endif // GILR_HEAP_BYTEHEAP_H
