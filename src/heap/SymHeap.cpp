//===- heap/SymHeap.cpp --------------------------------------------------------===//

#include "heap/SymHeap.h"

#include "heap/LaidOut.h"
#include "solver/Simplify.h"
#include "support/Diagnostics.h"
#include "sym/ExprBuilder.h"
#include "sym/Printer.h"

#include <cassert>

using namespace gilr;
using namespace gilr::heap;
using rmir::TypeKind;
using rmir::TypeRef;

//===----------------------------------------------------------------------===//
// Pointer resolution
//===----------------------------------------------------------------------===//

/// Resolves a location expression to a concrete allocation identity.
static Outcome<uint64_t> resolveLocId(const Expr &LocIn, HeapCtx &Ctx,
                                      bool AllocateIfFresh) {
  if (LocIn->Kind == ExprKind::LocLit)
    return Outcome<uint64_t>::success(LocIn->LocId);
  Expr Loc = reduceWithFacts(LocIn, Ctx.PC.facts());
  if (Loc->Kind == ExprKind::LocLit)
    return Outcome<uint64_t>::success(Loc->LocId);
  // Look for an aliasing equality recorded in the path condition.
  for (const Expr &Fact : Ctx.PC.facts()) {
    if (Fact->Kind != ExprKind::Eq)
      continue;
    for (int Side = 0; Side != 2; ++Side) {
      if (!exprEquals(Fact->Kids[Side], Loc))
        continue;
      const Expr &Other = Fact->Kids[1 - Side];
      if (Other->Kind == ExprKind::LocLit)
        return Outcome<uint64_t>::success(Other->LocId);
    }
  }
  if (AllocateIfFresh) {
    Expr Fresh = Ctx.VG.freshLoc();
    Ctx.assume(mkEq(Loc, Fresh));
    return Outcome<uint64_t>::success(Fresh->LocId);
  }
  return Outcome<uint64_t>::failure("cannot resolve symbolic location " +
                                    exprToString(Loc));
}

Outcome<DecodedPtr> SymHeap::resolvePtr(const Expr &Ptr, HeapCtx &Ctx,
                                        bool AllocateIfFresh) {
  auto normalize = [&](DecodedPtr DP) {
    // Drop offset elements that are provably zero (a no-op projection).
    Projection Kept;
    for (const ProjElem &E : DP.Proj) {
      if (E.Kind == ProjElem::Offset &&
          (isTrueLit(mkEq(E.Count, mkInt(0))) ||
           Ctx.entails(mkEq(E.Count, mkInt(0)))))
        continue;
      Kept.push_back(E);
    }
    DP.Proj = std::move(Kept);
    return DP;
  };

  if (auto DP = decodePtr(Ptr, Ctx.Types))
    return Outcome<DecodedPtr>::success(normalize(*DP));

  // Normalise projection chains (Unwrap(TupleGet(v, 0)) etc.) using the
  // equalities recorded in the path condition, then retry decoding.
  Expr Reduced = reduceWithFacts(Ptr, Ctx.PC.facts());
  if (auto DP = decodePtr(Reduced, Ctx.Types))
    return Outcome<DecodedPtr>::success(normalize(*DP));

  // Fall back to path-condition equalities binding this pointer.
  for (const Expr &Fact : Ctx.PC.facts()) {
    if (Fact->Kind != ExprKind::Eq)
      continue;
    for (int Side = 0; Side != 2; ++Side) {
      if (!exprEquals(Fact->Kids[Side], Ptr))
        continue;
      if (auto DP = decodePtr(Fact->Kids[1 - Side], Ctx.Types))
        return Outcome<DecodedPtr>::success(normalize(*DP));
    }
  }

  if (AllocateIfFresh) {
    // Find the opaque *base* pointer: a projected pointer built by
    // appendProjElem has the shape (TupleGet(base,0), TupleGet(base,1) ++
    // elems); binding the base (not the whole pointer) keeps siblings of
    // the projection on the same allocation.
    Expr Base = Reduced;
    while (Base->Kind == ExprKind::TupleLit && Base->Kids.size() == 2 &&
           Base->Kids[0]->Kind == ExprKind::TupleGet &&
           Base->Kids[0]->Index == 0) {
      Expr Inner = Base->Kids[0]->Kids[0];
      // The projection component must start with Inner's own projection.
      Expr ProjPart = Base->Kids[1];
      Expr Lead = ProjPart->Kind == ExprKind::SeqConcat
                      ? ProjPart->Kids[0]
                      : ProjPart;
      if (Lead->Kind == ExprKind::TupleGet && Lead->Index == 1 &&
          exprEquals(Lead->Kids[0], Inner)) {
        Base = Inner;
        continue;
      }
      break;
    }
    Expr Loc = Ctx.VG.freshLoc();
    Ctx.assume(mkEq(Base, encodePtr(Loc, {})));
    // Re-resolve: the new equality rewrites the projection chain.
    Expr Again = reduceWithFacts(Ptr, Ctx.PC.facts());
    if (auto DP = decodePtr(Again, Ctx.Types))
      return Outcome<DecodedPtr>::success(normalize(*DP));
    return Outcome<DecodedPtr>::success(DecodedPtr{Loc, {}});
  }
  return Outcome<DecodedPtr>::failure("cannot resolve pointer value " +
                                      exprToString(Ptr));
}

//===----------------------------------------------------------------------===//
// Allocation
//===----------------------------------------------------------------------===//

Expr SymHeap::alloc(TypeRef Ty, HeapCtx &Ctx) {
  Expr Loc = Ctx.VG.freshLoc();
  Objects.emplace(Loc->LocId, TreeNode::uninit(Ty));
  return encodePtr(Loc, {});
}

Expr SymHeap::allocArray(TypeRef ElemTy, const Expr &Count, HeapCtx &Ctx) {
  Expr Loc = Ctx.VG.freshLoc();
  Ctx.assume(mkLe(mkInt(0), Count));
  Objects.emplace(Loc->LocId,
                  TreeNode::laidOut(
                      ElemTy, {Segment::uninit(mkInt(0), Count)}));
  return encodePtr(Loc, {});
}

Outcome<Unit> SymHeap::freeTyped(const Expr &Ptr, TypeRef Ty, HeapCtx &Ctx) {
  Outcome<DecodedPtr> DP = resolvePtr(Ptr, Ctx, /*AllocateIfFresh=*/false);
  if (!DP.ok())
    return DP.forward<Unit>();
  if (!DP.value().Proj.empty())
    return Outcome<Unit>::failure(
        "free of an interior pointer (projection is not empty)");
  Outcome<uint64_t> Loc = resolveLocId(DP.value().Loc, Ctx, false);
  if (!Loc.ok())
    return Loc.forward<Unit>();
  auto It = Objects.find(Loc.value());
  if (It == Objects.end())
    return Outcome<Unit>::failure(
        "double free or free of unallocated location");
  if (It->second.Ty != Ty && It->second.Kind != TreeNode::LaidOut)
    return Outcome<Unit>::failure("free at wrong type: allocation is " +
                                  (It->second.Ty ? It->second.Ty->str()
                                                 : std::string("?")) +
                                  ", freeing as " + Ty->str());
  if (!It->second.fullyOwned())
    return Outcome<Unit>::failure(
        "free of partially framed-off object (ownership incomplete)");
  Objects.erase(It);
  return Outcome<Unit>::success(Unit());
}

//===----------------------------------------------------------------------===//
// Navigation
//===----------------------------------------------------------------------===//

Outcome<TreeNode *> SymHeap::navigate(TreeNode &Root, const Projection &Proj,
                                      HeapCtx &Ctx, NavMode Mode) {
  TreeNode *N = &Root;
  for (const ProjElem &E : Proj) {
    switch (E.Kind) {
    case ProjElem::Offset: {
      if (N->Kind == TreeNode::LaidOut)
        return Outcome<TreeNode *>::failure(
            "structural navigation reached a laid-out node; element access "
            "must use the array actions");
      if (Ctx.entails(mkEq(E.Count, mkInt(0))))
        continue; // +T 0 is a no-op on a structural node.
      return Outcome<TreeNode *>::failure(
          "pointer arithmetic on a structural node (offset " +
          exprToString(E.Count) + " of type " + E.Ty->str() + ")");
    }
    case ProjElem::Field: {
      if (N->Kind == TreeNode::Missing) {
        if (Mode != NavMode::Produce)
          return Outcome<TreeNode *>::failure(
              "missing resource while navigating field ." +
              std::to_string(E.Index) + " of " + E.Ty->str());
        // Materialise an all-missing skeleton for the produced structure.
        std::vector<TreeNode> Fields;
        for (const rmir::FieldDef &F : E.Ty->Fields)
          Fields.push_back(TreeNode::missing(F.Ty));
        *N = TreeNode::structNode(E.Ty, std::move(Fields));
      }
      if (N->Ty != E.Ty)
        return Outcome<TreeNode *>::failure(
            "type mismatch navigating field of " + E.Ty->str() +
            ": node has type " + (N->Ty ? N->Ty->str() : "?"));
      if (!expandStructNode(*N))
        return Outcome<TreeNode *>::failure(
            "cannot expand node into struct " + E.Ty->str());
      assert(E.Index < N->Children.size() && "field index out of range");
      N = &N->Children[E.Index];
      break;
    }
    case ProjElem::VariantField: {
      if (N->Kind == TreeNode::Missing) {
        if (Mode != NavMode::Produce)
          return Outcome<TreeNode *>::failure(
              "missing resource while navigating variant field of " +
              E.Ty->str());
        std::vector<TreeNode> Fields;
        for (const rmir::FieldDef &F :
             E.Ty->Variants.at(E.Variant).Fields)
          Fields.push_back(TreeNode::missing(F.Ty));
        *N = TreeNode::enumNode(E.Ty, E.Variant, std::move(Fields));
      }
      if (N->Ty != E.Ty)
        return Outcome<TreeNode *>::failure(
            "type mismatch navigating variant field of " + E.Ty->str());
      Outcome<Unit> Exp =
          expandEnumNode(*N, E.Variant, Ctx, Mode != NavMode::Read);
      if (!Exp.ok())
        return Exp.forward<TreeNode *>();
      if (N->Discr != E.Variant)
        return Outcome<TreeNode *>::failure(
            "variant mismatch: node is in variant " +
            std::to_string(N->Discr) + ", projection wants " +
            std::to_string(E.Variant));
      assert(E.Index < N->Children.size() && "variant field out of range");
      N = &N->Children[E.Index];
      break;
    }
    }
  }
  return Outcome<TreeNode *>::success(N);
}

//===----------------------------------------------------------------------===//
// Load / store
//===----------------------------------------------------------------------===//

/// Detects the laid-out element access pattern: the projection is at most a
/// single offset element over the node's indexing type.
static bool isArrayElemProj(const TreeNode &Root, const Projection &Proj,
                            TypeRef Ty, Expr &StartOut) {
  if (Root.Kind != TreeNode::LaidOut || Root.Ty != Ty)
    return false;
  if (Proj.empty()) {
    StartOut = mkInt(0);
    return true;
  }
  if (Proj.size() == 1 && Proj[0].Kind == ProjElem::Offset &&
      Proj[0].Ty == Ty) {
    StartOut = Proj[0].Count;
    return true;
  }
  return false;
}

Outcome<Expr> SymHeap::load(const Expr &Ptr, TypeRef Ty, bool Move,
                            HeapCtx &Ctx) {
  Outcome<DecodedPtr> DP = resolvePtr(Ptr, Ctx, false);
  if (!DP.ok())
    return DP.forward<Expr>();
  Outcome<uint64_t> Loc = resolveLocId(DP.value().Loc, Ctx, false);
  if (!Loc.ok())
    return Loc.forward<Expr>();
  auto It = Objects.find(Loc.value());
  if (It == Objects.end())
    return Outcome<Expr>::failure("load from dangling pointer (location " +
                                  std::to_string(Loc.value()) + " is dead)");
  TreeNode &Root = It->second;

  Expr Start;
  if (isArrayElemProj(Root, DP.value().Proj, Ty, Start)) {
    Expr End = mkAdd(Start, mkInt(1));
    Outcome<Expr> Seq = readRange(Root, Start, End, Ctx);
    if (!Seq.ok())
      return Seq;
    Expr V = mkSeqNth(Seq.value(), mkInt(0));
    if (Move) {
      Outcome<std::size_t> Idx = focusRange(Root, Start, End, Ctx);
      assert(Idx.ok() && "range vanished after readRange");
      Root.Segs[Idx.value()] = Segment::uninit(Start, End);
    }
    Ctx.assume(validityInvariant(Ty, V));
    return Outcome<Expr>::success(V);
  }

  Outcome<TreeNode *> NodeO =
      navigate(Root, DP.value().Proj, Ctx, NavMode::Read);
  if (!NodeO.ok())
    return NodeO.forward<Expr>();
  TreeNode *N = NodeO.value();
  if (N->Ty != Ty)
    return Outcome<Expr>::failure("load at type " + Ty->str() +
                                  " from node of type " +
                                  (N->Ty ? N->Ty->str() : "?"));
  Outcome<Expr> V = N->toValue();
  if (!V.ok())
    return V;
  if (Move)
    *N = TreeNode::uninit(Ty);
  Ctx.assume(validityInvariant(Ty, V.value()));
  return V;
}

Outcome<Unit> SymHeap::store(const Expr &Ptr, TypeRef Ty, const Expr &Val,
                             HeapCtx &Ctx) {
  Outcome<DecodedPtr> DP = resolvePtr(Ptr, Ctx, false);
  if (!DP.ok())
    return DP.forward<Unit>();
  Outcome<uint64_t> Loc = resolveLocId(DP.value().Loc, Ctx, false);
  if (!Loc.ok())
    return Loc.forward<Unit>();
  auto It = Objects.find(Loc.value());
  if (It == Objects.end())
    return Outcome<Unit>::failure("store to dangling pointer");
  TreeNode &Root = It->second;

  Expr Start;
  if (isArrayElemProj(Root, DP.value().Proj, Ty, Start)) {
    Expr End = mkAdd(Start, mkInt(1));
    Ctx.assume(validityInvariant(Ty, Val));
    return writeRange(Root, Start, End, mkSeqUnit(Val), Ctx);
  }

  Outcome<TreeNode *> NodeO =
      navigate(Root, DP.value().Proj, Ctx, NavMode::Write);
  if (!NodeO.ok())
    return NodeO.forward<Unit>();
  TreeNode *N = NodeO.value();
  if (N->Ty != Ty)
    return Outcome<Unit>::failure("store at type " + Ty->str() +
                                  " into node of type " +
                                  (N->Ty ? N->Ty->str() : "?"));
  if (N->Kind == TreeNode::Missing)
    return Outcome<Unit>::failure("store into framed-off memory");
  Ctx.assume(validityInvariant(Ty, Val));
  *N = nodeFromValue(Ty, Val);
  return Outcome<Unit>::success(Unit());
}

//===----------------------------------------------------------------------===//
// points_to / maybe_uninit consumers and producers
//===----------------------------------------------------------------------===//

Outcome<Expr> SymHeap::consumePointsTo(const Expr &Ptr, TypeRef Ty,
                                       HeapCtx &Ctx) {
  Outcome<DecodedPtr> DP = resolvePtr(Ptr, Ctx, false);
  if (!DP.ok())
    return DP.forward<Expr>();
  Outcome<uint64_t> Loc = resolveLocId(DP.value().Loc, Ctx, false);
  if (!Loc.ok())
    return Loc.forward<Expr>();
  auto It = Objects.find(Loc.value());
  if (It == Objects.end())
    return Outcome<Expr>::failure(
        "consume points-to: location not present in heap");
  TreeNode &Root = It->second;

  Expr Start;
  if (isArrayElemProj(Root, DP.value().Proj, Ty, Start)) {
    Expr End = mkAdd(Start, mkInt(1));
    Outcome<Expr> Seq = consumeRange(Root, Start, End, Ctx);
    if (!Seq.ok())
      return Seq;
    return Outcome<Expr>::success(mkSeqNth(Seq.value(), mkInt(0)));
  }

  Outcome<TreeNode *> NodeO =
      navigate(Root, DP.value().Proj, Ctx, NavMode::Read);
  if (!NodeO.ok())
    return NodeO.forward<Expr>();
  TreeNode *N = NodeO.value();
  if (N->Ty != Ty)
    return Outcome<Expr>::failure("consume points-to at type " + Ty->str() +
                                  " from node of type " +
                                  (N->Ty ? N->Ty->str() : "?"));
  Outcome<Expr> V = N->toValue();
  if (!V.ok())
    return V;
  *N = TreeNode::missing(Ty);
  return V;
}

Outcome<Unit> SymHeap::producePointsTo(const Expr &Ptr, TypeRef Ty,
                                       const Expr &Val, HeapCtx &Ctx) {
  Outcome<DecodedPtr> DP = resolvePtr(Ptr, Ctx, /*AllocateIfFresh=*/true);
  if (!DP.ok())
    return DP.forward<Unit>();
  Outcome<uint64_t> Loc = resolveLocId(DP.value().Loc, Ctx, true);
  if (!Loc.ok())
    return Loc.forward<Unit>();
  const Projection &Proj = DP.value().Proj;

  auto It = Objects.find(Loc.value());
  if (It == Objects.end()) {
    // Fresh location: build a skeleton root for the projection.
    TreeNode Root = TreeNode::missing(Ty);
    if (!Proj.empty()) {
      const ProjElem &First = Proj.front();
      if (First.Kind == ProjElem::Offset)
        Root = TreeNode::laidOut(First.Ty, {});
      else
        Root = TreeNode::missing(First.Ty);
    }
    It = Objects.emplace(Loc.value(), std::move(Root)).first;
  }
  TreeNode &Root = It->second;

  Expr Start;
  if (isArrayElemProj(Root, Proj, Ty, Start)) {
    Expr End = mkAdd(Start, mkInt(1));
    Ctx.assume(validityInvariant(Ty, Val));
    return produceRange(Root, Start, End, mkSeqUnit(Val), Ctx);
  }

  Outcome<TreeNode *> NodeO = navigate(Root, Proj, Ctx, NavMode::Produce);
  if (!NodeO.ok())
    return NodeO.forward<Unit>();
  TreeNode *N = NodeO.value();
  if (N->Ty != Ty)
    return Outcome<Unit>::failure("produce points-to at type " + Ty->str() +
                                  " into node of type " +
                                  (N->Ty ? N->Ty->str() : "?"));
  if (N->Kind != TreeNode::Missing)
    return Outcome<Unit>::vanish(); // Overlapping resource: assume False.
  Ctx.assume(validityInvariant(Ty, Val));
  *N = nodeFromValue(Ty, Val);
  return Outcome<Unit>::success(Unit());
}

Outcome<Expr> SymHeap::consumeMaybeUninit(const Expr &Ptr, TypeRef Ty,
                                          HeapCtx &Ctx) {
  Outcome<DecodedPtr> DP = resolvePtr(Ptr, Ctx, false);
  if (!DP.ok())
    return DP.forward<Expr>();
  Outcome<uint64_t> Loc = resolveLocId(DP.value().Loc, Ctx, false);
  if (!Loc.ok())
    return Loc.forward<Expr>();
  auto It = Objects.find(Loc.value());
  if (It == Objects.end())
    return Outcome<Expr>::failure(
        "consume maybe-uninit: location not present in heap");
  TreeNode &Root = It->second;

  Expr Start;
  if (isArrayElemProj(Root, DP.value().Proj, Ty, Start))
    return consumeRangeMaybeUninit(Root, Start, mkAdd(Start, mkInt(1)), Ctx);

  Outcome<TreeNode *> NodeO =
      navigate(Root, DP.value().Proj, Ctx, NavMode::Write);
  if (!NodeO.ok())
    return NodeO.forward<Expr>();
  TreeNode *N = NodeO.value();
  if (N->Kind == TreeNode::Missing)
    return Outcome<Expr>::failure("consume maybe-uninit of missing memory");
  Expr Result = mkNone();
  if (N->fullyInit()) {
    Outcome<Expr> V = N->toValue();
    if (!V.ok())
      return V;
    Result = mkSome(V.value());
  }
  *N = TreeNode::missing(Ty);
  return Outcome<Expr>::success(Result);
}

Outcome<Unit> SymHeap::produceUninit(const Expr &Ptr, TypeRef Ty,
                                     HeapCtx &Ctx) {
  Outcome<DecodedPtr> DP = resolvePtr(Ptr, Ctx, true);
  if (!DP.ok())
    return DP.forward<Unit>();
  Outcome<uint64_t> Loc = resolveLocId(DP.value().Loc, Ctx, true);
  if (!Loc.ok())
    return Loc.forward<Unit>();
  auto It = Objects.find(Loc.value());
  if (It == Objects.end())
    It = Objects.emplace(Loc.value(), TreeNode::missing(Ty)).first;
  TreeNode &Root = It->second;

  Expr Start;
  if (isArrayElemProj(Root, DP.value().Proj, Ty, Start))
    return produceRangeUninit(Root, Start, mkAdd(Start, mkInt(1)), Ctx);

  Outcome<TreeNode *> NodeO =
      navigate(Root, DP.value().Proj, Ctx, NavMode::Produce);
  if (!NodeO.ok())
    return NodeO.forward<Unit>();
  TreeNode *N = NodeO.value();
  if (N->Kind != TreeNode::Missing)
    return Outcome<Unit>::vanish();
  *N = TreeNode::uninit(Ty);
  return Outcome<Unit>::success(Unit());
}

//===----------------------------------------------------------------------===//
// Arrays
//===----------------------------------------------------------------------===//

Outcome<SymHeap::ArrayAccess> SymHeap::arrayAccess(const Expr &Ptr,
                                                   TypeRef ElemTy,
                                                   const Expr &Count,
                                                   HeapCtx &Ctx) {
  Outcome<DecodedPtr> DP = resolvePtr(Ptr, Ctx, true);
  if (!DP.ok())
    return DP.forward<ArrayAccess>();
  Outcome<uint64_t> Loc = resolveLocId(DP.value().Loc, Ctx, true);
  if (!Loc.ok())
    return Loc.forward<ArrayAccess>();
  auto It = Objects.find(Loc.value());
  if (It == Objects.end())
    It = Objects.emplace(Loc.value(), TreeNode::laidOut(ElemTy, {})).first;
  TreeNode &Root = It->second;
  if (Root.Kind != TreeNode::LaidOut || Root.Ty != ElemTy)
    return Outcome<ArrayAccess>::failure(
        "array access on non-laid-out object or wrong indexing type");
  coalesce(Root, Ctx); // Reassemble adjacent segments (Fig. 5, right).
  Expr Start = mkInt(0);
  const Projection &Proj = DP.value().Proj;
  if (!Proj.empty()) {
    if (Proj.size() != 1 || Proj[0].Kind != ProjElem::Offset ||
        Proj[0].Ty != ElemTy)
      return Outcome<ArrayAccess>::failure(
          "array access through a structural projection");
    Start = Proj[0].Count;
  }
  return Outcome<ArrayAccess>::success(
      ArrayAccess{&Root, Start, mkAdd(Start, Count)});
}

Outcome<Expr> SymHeap::consumeArray(const Expr &Ptr, TypeRef ElemTy,
                                    const Expr &Count, HeapCtx &Ctx) {
  Outcome<ArrayAccess> A = arrayAccess(Ptr, ElemTy, Count, Ctx);
  if (!A.ok())
    return A.forward<Expr>();
  return consumeRange(*A.value().Node, A.value().From, A.value().To, Ctx);
}

Outcome<Unit> SymHeap::produceArray(const Expr &Ptr, TypeRef ElemTy,
                                    const Expr &Count, const Expr &Seq,
                                    HeapCtx &Ctx) {
  Outcome<ArrayAccess> A = arrayAccess(Ptr, ElemTy, Count, Ctx);
  if (!A.ok())
    return A.forward<Unit>();
  return produceRange(*A.value().Node, A.value().From, A.value().To, Seq,
                      Ctx);
}

Outcome<Unit> SymHeap::produceArrayUninit(const Expr &Ptr, TypeRef ElemTy,
                                          const Expr &Count, HeapCtx &Ctx) {
  Outcome<ArrayAccess> A = arrayAccess(Ptr, ElemTy, Count, Ctx);
  if (!A.ok())
    return A.forward<Unit>();
  return produceRangeUninit(*A.value().Node, A.value().From, A.value().To,
                            Ctx);
}

Outcome<Unit> SymHeap::consumeArrayUninit(const Expr &Ptr, TypeRef ElemTy,
                                          const Expr &Count, HeapCtx &Ctx) {
  Outcome<ArrayAccess> A = arrayAccess(Ptr, ElemTy, Count, Ctx);
  if (!A.ok())
    return A.forward<Unit>();
  Outcome<Expr> R = consumeRangeMaybeUninit(*A.value().Node, A.value().From,
                                            A.value().To, Ctx);
  if (!R.ok())
    return R.forward<Unit>();
  if (R.value()->Kind != ExprKind::NoneLit)
    return Outcome<Unit>::failure(
        "uninit array consume found initialised memory");
  return Outcome<Unit>::success(Unit());
}

//===----------------------------------------------------------------------===//
// Introspection
//===----------------------------------------------------------------------===//

std::string SymHeap::dump() const {
  std::string Out;
  for (const auto &[Loc, Node] : Objects)
    Out += "$l" + std::to_string(Loc) + " -> " + Node.str() + "\n";
  return Out;
}
