//===- heap/TreeNode.cpp -------------------------------------------------------===//

#include "heap/TreeNode.h"

#include "support/Diagnostics.h"
#include "support/StringUtils.h"
#include "sym/ExprBuilder.h"
#include "sym/Printer.h"

#include <cassert>

using namespace gilr;
using namespace gilr::heap;
using rmir::TypeKind;
using rmir::TypeRef;

TreeNode TreeNode::value(TypeRef T, Expr V) {
  TreeNode N;
  N.Kind = Value;
  N.Ty = T;
  N.Val = std::move(V);
  return N;
}

TreeNode TreeNode::uninit(TypeRef T) {
  TreeNode N;
  N.Kind = Uninit;
  N.Ty = T;
  return N;
}

TreeNode TreeNode::missing(TypeRef T) {
  TreeNode N;
  N.Kind = Missing;
  N.Ty = T;
  return N;
}

TreeNode TreeNode::structNode(TypeRef T, std::vector<TreeNode> Fields) {
  assert(T->Kind == TypeKind::Struct && "structNode on non-struct type");
  assert(Fields.size() == T->Fields.size() && "field arity mismatch");
  TreeNode N;
  N.Kind = StructNode;
  N.Ty = T;
  N.Children = std::move(Fields);
  return N;
}

TreeNode TreeNode::enumNode(TypeRef T, unsigned Discr,
                            std::vector<TreeNode> Fields) {
  assert(T->Kind == TypeKind::Enum && "enumNode on non-enum type");
  assert(Discr < T->Variants.size() && "variant out of range");
  assert(Fields.size() == T->Variants[Discr].Fields.size() &&
         "variant field arity mismatch");
  TreeNode N;
  N.Kind = EnumNode;
  N.Ty = T;
  N.Discr = Discr;
  N.Children = std::move(Fields);
  return N;
}

TreeNode TreeNode::laidOut(TypeRef IndexTy, std::vector<Segment> Segs) {
  TreeNode N;
  N.Kind = LaidOut;
  N.Ty = IndexTy;
  N.Segs = std::move(Segs);
  return N;
}

bool TreeNode::fullyOwned() const {
  switch (Kind) {
  case Missing:
    return false;
  case StructNode:
  case EnumNode:
    for (const TreeNode &C : Children)
      if (!C.fullyOwned())
        return false;
    return true;
  case LaidOut:
    for (const Segment &S : Segs)
      if (S.Kind == Segment::Missing)
        return false;
    return true;
  default:
    return true;
  }
}

bool TreeNode::fullyMissing() const {
  switch (Kind) {
  case Missing:
    return true;
  case StructNode:
  case EnumNode:
    for (const TreeNode &C : Children)
      if (!C.fullyMissing())
        return false;
    return !Children.empty();
  case LaidOut:
    for (const Segment &S : Segs)
      if (S.Kind != Segment::Missing)
        return false;
    return !Segs.empty();
  default:
    return false;
  }
}

bool TreeNode::fullyInit() const {
  switch (Kind) {
  case Missing:
  case Uninit:
    return false;
  case StructNode:
  case EnumNode:
    for (const TreeNode &C : Children)
      if (!C.fullyInit())
        return false;
    return true;
  case LaidOut:
    for (const Segment &S : Segs)
      if (S.Kind != Segment::Val)
        return false;
    return true;
  case Value:
    return true;
  }
  GILR_UNREACHABLE("unknown node kind");
}

Outcome<Expr> TreeNode::toValue() const {
  switch (Kind) {
  case Value:
    return Outcome<Expr>::success(Val);
  case Uninit:
    return Outcome<Expr>::failure("read of uninitialised memory at type " +
                                  (Ty ? Ty->str() : "?"));
  case Missing:
    return Outcome<Expr>::failure("read of framed-off (missing) memory");
  case StructNode: {
    std::vector<Expr> Fields;
    Fields.reserve(Children.size());
    for (const TreeNode &C : Children) {
      Outcome<Expr> V = C.toValue();
      if (!V.ok())
        return V;
      Fields.push_back(V.value());
    }
    return Outcome<Expr>::success(mkTuple(std::move(Fields)));
  }
  case EnumNode: {
    std::vector<Expr> Fields;
    Fields.reserve(Children.size());
    for (const TreeNode &C : Children) {
      Outcome<Expr> V = C.toValue();
      if (!V.ok())
        return V;
      Fields.push_back(V.value());
    }
    if (Ty->isOption())
      return Outcome<Expr>::success(Discr == 0 ? mkNone()
                                               : mkSome(Fields.at(0)));
    return Outcome<Expr>::success(
        mkTuple({mkInt(Discr), mkTuple(std::move(Fields))}));
  }
  case LaidOut: {
    // A fully-initialised contiguous laid-out node reads back as the
    // concatenation of its segments.
    std::vector<Expr> Parts;
    for (const Segment &S : Segs) {
      if (S.Kind != Segment::Val)
        return Outcome<Expr>::failure(
            "read of laid-out node with non-value segment");
      Parts.push_back(S.Seq);
    }
    return Outcome<Expr>::success(mkSeqConcat(std::move(Parts)));
  }
  }
  GILR_UNREACHABLE("unknown node kind");
}

std::string TreeNode::str() const {
  switch (Kind) {
  case Value:
    return "(" + (Ty ? Ty->str() : "?") + " " + exprToString(Val) + ")";
  case Uninit:
    return "(uninit " + (Ty ? Ty->str() : "?") + ")";
  case Missing:
    return "(missing " + (Ty ? Ty->str() : "?") + ")";
  case StructNode: {
    std::vector<std::string> Parts;
    for (const TreeNode &C : Children)
      Parts.push_back(C.str());
    return "(struct " + Ty->str() + " " + join(Parts, " ") + ")";
  }
  case EnumNode: {
    std::vector<std::string> Parts;
    for (const TreeNode &C : Children)
      Parts.push_back(C.str());
    return "(enum " + Ty->str() + "#" + std::to_string(Discr) + " " +
           join(Parts, " ") + ")";
  }
  case LaidOut: {
    std::vector<std::string> Parts;
    for (const Segment &S : Segs) {
      std::string Body = S.Kind == Segment::Val      ? exprToString(S.Seq)
                         : S.Kind == Segment::Uninit ? "uninit"
                                                     : "missing";
      Parts.push_back("[" + exprToString(S.From) + "," + exprToString(S.To) +
                      "):" + Body);
    }
    return "(laidout " + Ty->str() + " " + join(Parts, " ") + ")";
  }
  }
  GILR_UNREACHABLE("unknown node kind");
}

TreeNode gilr::heap::nodeFromValue(TypeRef T, const Expr &V) {
  if (T->Kind == TypeKind::Struct && V->Kind == ExprKind::TupleLit &&
      V->Kids.size() == T->Fields.size()) {
    std::vector<TreeNode> Fields;
    for (std::size_t I = 0, E = T->Fields.size(); I != E; ++I)
      Fields.push_back(nodeFromValue(T->Fields[I].Ty, V->Kids[I]));
    return TreeNode::structNode(T, std::move(Fields));
  }
  if (T->isOption()) {
    if (V->Kind == ExprKind::NoneLit)
      return TreeNode::enumNode(T, 0, {});
    if (V->Kind == ExprKind::Some)
      return TreeNode::enumNode(
          T, 1, {nodeFromValue(T->optionPayload(), V->Kids[0])});
  }
  return TreeNode::value(T, V);
}

bool gilr::heap::expandStructNode(TreeNode &N) {
  if (N.Kind == TreeNode::StructNode)
    return true;
  if (!N.Ty || N.Ty->Kind != TypeKind::Struct)
    return false;
  if (N.Kind == TreeNode::Value) {
    std::vector<TreeNode> Fields;
    for (std::size_t I = 0, E = N.Ty->Fields.size(); I != E; ++I)
      Fields.push_back(nodeFromValue(N.Ty->Fields[I].Ty,
                                     mkTupleGet(N.Val, I)));
    N = TreeNode::structNode(N.Ty, std::move(Fields));
    return true;
  }
  if (N.Kind == TreeNode::Uninit) {
    std::vector<TreeNode> Fields;
    for (const rmir::FieldDef &F : N.Ty->Fields)
      Fields.push_back(TreeNode::uninit(F.Ty));
    N = TreeNode::structNode(N.Ty, std::move(Fields));
    return true;
  }
  return false;
}

Outcome<Unit> gilr::heap::expandEnumNode(TreeNode &N, unsigned WantVariant,
                                         HeapCtx &Ctx, bool ForWrite) {
  if (N.Kind == TreeNode::EnumNode)
    return Outcome<Unit>::success(Unit());
  if (!N.Ty || N.Ty->Kind != TypeKind::Enum)
    return Outcome<Unit>::failure("variant access on non-enum node");

  if (N.Kind == TreeNode::Uninit) {
    if (!ForWrite)
      return Outcome<Unit>::failure("read of uninitialised enum memory");
    std::vector<TreeNode> Fields;
    for (const rmir::FieldDef &F : N.Ty->Variants.at(WantVariant).Fields)
      Fields.push_back(TreeNode::uninit(F.Ty));
    N = TreeNode::enumNode(N.Ty, WantVariant, std::move(Fields));
    return Outcome<Unit>::success(Unit());
  }

  if (N.Kind != TreeNode::Value)
    return Outcome<Unit>::failure("variant access on missing enum memory");

  if (N.Ty->isOption()) {
    TypeRef Payload = N.Ty->optionPayload();
    // Syntactic fast path first, then solver decision.
    if (N.Val->Kind == ExprKind::NoneLit ||
        Ctx.entails(mkIsNone(N.Val))) {
      N = TreeNode::enumNode(N.Ty, 0, {});
      return Outcome<Unit>::success(Unit());
    }
    if (N.Val->Kind == ExprKind::Some || Ctx.entails(mkIsSome(N.Val))) {
      N = TreeNode::enumNode(
          N.Ty, 1, {nodeFromValue(Payload, mkUnwrap(N.Val))});
      return Outcome<Unit>::success(Unit());
    }
    return Outcome<Unit>::failure(
        "undecided option discriminant; branch on it before projecting");
  }

  // General enums: value encoding is (discr, (fields...)).
  Expr DiscrE = mkTupleGet(N.Val, 0);
  __int128 D;
  if (!getIntLit(DiscrE, D)) {
    // Try each candidate variant via the solver.
    bool Found = false;
    for (unsigned V = 0; V != N.Ty->Variants.size(); ++V)
      if (Ctx.entails(mkEq(DiscrE, mkInt(V)))) {
        D = V;
        Found = true;
        break;
      }
    if (!Found)
      return Outcome<Unit>::failure(
          "undecided enum discriminant; branch on it before projecting");
  }
  unsigned Discr = static_cast<unsigned>(D);
  const rmir::VariantDef &Var = N.Ty->Variants.at(Discr);
  Expr FieldsTuple = mkTupleGet(N.Val, 1);
  std::vector<TreeNode> Fields;
  for (std::size_t I = 0, E = Var.Fields.size(); I != E; ++I)
    Fields.push_back(
        nodeFromValue(Var.Fields[I].Ty, mkTupleGet(FieldsTuple, I)));
  N = TreeNode::enumNode(N.Ty, Discr, std::move(Fields));
  return Outcome<Unit>::success(Unit());
}

Expr gilr::heap::validityInvariant(TypeRef T, const Expr &V) {
  switch (T->Kind) {
  case TypeKind::Int:
    return mkAnd(mkLe(mkInt(rmir::intMinValue(T->IntK)), V),
                 mkLe(V, mkInt(rmir::intMaxValue(T->IntK))));
  case TypeKind::Struct: {
    std::vector<Expr> Parts;
    for (std::size_t I = 0, E = T->Fields.size(); I != E; ++I)
      Parts.push_back(validityInvariant(T->Fields[I].Ty, mkTupleGet(V, I)));
    return mkAnd(std::move(Parts));
  }
  default:
    return mkTrue();
  }
}
