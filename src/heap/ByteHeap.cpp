//===- heap/ByteHeap.cpp --------------------------------------------------------===//

#include "heap/ByteHeap.h"

using namespace gilr;
using namespace gilr::heap;

uint64_t ByteHeap::alloc(rmir::TypeRef Ty) {
  uint64_t Loc = NextLoc++;
  Objects.emplace(Loc, Object{Layout.sizeOf(Ty), {}});
  return Loc;
}

Outcome<Unit> ByteHeap::free(uint64_t Loc) {
  auto It = Objects.find(Loc);
  if (It == Objects.end())
    return Outcome<Unit>::failure("byteheap: double free");
  Objects.erase(It);
  return Outcome<Unit>::success(Unit());
}

Outcome<Unit> ByteHeap::store(uint64_t Loc, uint64_t ByteOffset,
                              rmir::TypeRef Ty, const Expr &Val) {
  auto It = Objects.find(Loc);
  if (It == Objects.end())
    return Outcome<Unit>::failure("byteheap: store to dead location");
  uint64_t Size = Layout.sizeOf(Ty);
  if (ByteOffset + Size > It->second.Size)
    return Outcome<Unit>::failure("byteheap: out-of-bounds store");
  // Reject overlapping mixed-granularity accesses.
  auto &Cells = It->second.Cells;
  auto Next = Cells.lower_bound(ByteOffset);
  if (Next != Cells.end() && Next->first < ByteOffset + Size &&
      Next->first != ByteOffset)
    return Outcome<Unit>::failure("byteheap: overlapping store");
  if (Next != Cells.begin()) {
    auto Prev = std::prev(Next);
    if (Prev->first != ByteOffset &&
        Prev->first + Prev->second.Size > ByteOffset)
      return Outcome<Unit>::failure("byteheap: overlapping store");
  }
  Cells[ByteOffset] = Cell{Val, Size};
  return Outcome<Unit>::success(Unit());
}

Outcome<Expr> ByteHeap::load(uint64_t Loc, uint64_t ByteOffset,
                             rmir::TypeRef Ty) {
  auto It = Objects.find(Loc);
  if (It == Objects.end())
    return Outcome<Expr>::failure("byteheap: load from dead location");
  auto CIt = It->second.Cells.find(ByteOffset);
  if (CIt == It->second.Cells.end())
    return Outcome<Expr>::failure("byteheap: load of uninitialised bytes");
  if (CIt->second.Size != Layout.sizeOf(Ty))
    return Outcome<Expr>::failure("byteheap: mixed-size load");
  return Outcome<Expr>::success(CIt->second.Val);
}
