//===- heap/Projection.h - Layout-independent addresses (§3.1) ------------===//
///
/// \file
/// Addresses in the Gillian-Rust heap are pairs (l, prs) of an abstract
/// location and a *projection*: a sequence of projection elements
///
///   pr ::= +T e | .T i | .T j.i
///
/// (§3.1 of the paper). A projection element denotes an offset of e times
/// size_of::<T>(), the relative offset of field i of struct T, or of field i
/// of variant j of enum T. Interpretation is parametric in the compiler-
/// chosen layout: this file provides both the symbolic encoding of pointer
/// *values* (as expressions, so the solver can reason about pointer
/// equality) and the concrete interpretation under a LayoutEngine (Fig. 4).
///
/// A key property, tested in tests/heap_projection_test.cpp: field
/// projection elements commute — [.T i, .U j] and [.U j, .T i] have equal
/// interpretations under every layout (their interpretation is a sum).
///
//===----------------------------------------------------------------------===//

#ifndef GILR_HEAP_PROJECTION_H
#define GILR_HEAP_PROJECTION_H

#include "rmir/Layout.h"
#include "rmir/Type.h"
#include "sym/Expr.h"

#include <optional>
#include <string>
#include <vector>

namespace gilr {
namespace heap {

/// One projection element.
struct ProjElem {
  enum PKind : uint8_t {
    Offset,       ///< +T e : e elements of type T.
    Field,        ///< .T i : field i of struct T.
    VariantField, ///< .T j.i : field i of variant j of enum T.
  };
  PKind Kind;
  rmir::TypeRef Ty = nullptr;
  Expr Count;           ///< Offset element count (symbolic).
  unsigned Variant = 0; ///< VariantField.
  unsigned Index = 0;   ///< Field / VariantField.

  static ProjElem offset(rmir::TypeRef T, Expr E) {
    return {Offset, T, std::move(E), 0, 0};
  }
  static ProjElem field(rmir::TypeRef T, unsigned I) {
    return {Field, T, nullptr, 0, I};
  }
  static ProjElem variantField(rmir::TypeRef T, unsigned V, unsigned I) {
    return {VariantField, T, nullptr, V, I};
  }

  std::string str() const;
};

/// A projection: the offset part of an address.
using Projection = std::vector<ProjElem>;

std::string projectionToString(const Projection &P);

/// Encodes a pointer value (location, projection) as an expression, so that
/// pointer equality is decidable by the solver's structural reasoning.
Expr encodePtr(const Expr &Loc, const Projection &P);

/// Encodes one projection element (the tuple payload used inside encoded
/// pointers).
Expr encodeProjElem(const ProjElem &E);

/// Appends a projection element to a pointer *expression*: works even for
/// opaque pointers, since pointer values are (location, projection-sequence)
/// tuples and appending is sequence concatenation on the second component.
Expr appendProjElem(const Expr &Ptr, const ProjElem &E);

/// A decoded pointer value.
struct DecodedPtr {
  Expr Loc;
  Projection Proj;
};

/// Decodes an encoded pointer value; returns nullopt for opaque (purely
/// symbolic) pointers. \p Types resolves type tokens back to TypeRefs.
std::optional<DecodedPtr> decodePtr(const Expr &PtrVal,
                                    const rmir::TyCtx &Types);

/// Interprets \p P as a concrete byte offset under \p Layout. All Offset
/// counts must be integer literals. (The Fig. 4 experiment.)
uint64_t interpretProjection(rmir::LayoutEngine &Layout, const Projection &P);

/// Symbolic interpretation: byte offset as an expression, using the layout
/// for field offsets and sizes.
Expr interpretProjectionExpr(rmir::LayoutEngine &Layout, const Projection &P);

} // namespace heap
} // namespace gilr

#endif // GILR_HEAP_PROJECTION_H
