//===- heap/TreeNode.h - Structural and laid-out heap nodes (§3.2) --------===//
///
/// \file
/// Objects in the Rust symbolic heap are hybrid trees (§3.2 of the paper):
///
/// * *structural nodes* represent memory whose structure is known but whose
///   layout is not — a single node holding a symbolic value, Uninit, or
///   Missing (framed-off) memory; a struct with children for its fields; or
///   an enum with a concrete discriminant and children for the fields of
///   that variant. No pointer arithmetic is allowed through them.
///
/// * *laid-out nodes* represent array-like memory (indexing type T): a list
///   of segments, each covering a symbolic range [From, To) in multiples of
///   size_of::<T>() and holding either a symbolic sequence of values,
///   uninitialised memory, or framed-off memory. Laid-out nodes admit the
///   indexing pointer arithmetic of Fig. 5 (split / overwrite / reassemble).
///
//===----------------------------------------------------------------------===//

#ifndef GILR_HEAP_TREENODE_H
#define GILR_HEAP_TREENODE_H

#include "rmir/Type.h"
#include "solver/PathCondition.h"
#include "support/Outcome.h"
#include "sym/Expr.h"
#include "sym/VarGen.h"

#include <string>
#include <vector>

namespace gilr {
namespace heap {

/// Shared context for heap operations that need solver decisions.
struct HeapCtx {
  Solver &S;
  PathCondition &PC;
  VarGen &VG;
  const rmir::TyCtx &Types;

  bool entails(const Expr &Goal) { return PC.entails(S, Goal); }
  /// Adds an assumption to the path condition; returns false if it became
  /// trivially false.
  bool assume(const Expr &Fact) { return PC.add(Fact); }
};

/// One segment of a laid-out node: the range [From, To) in units of the
/// node's indexing type.
struct Segment {
  enum SKind : uint8_t {
    Val,     ///< Holds a sequence expression of (To - From) values.
    Uninit,  ///< Uninitialised memory: illegal to read.
    Missing, ///< Framed-off memory: not owned here.
  };
  SKind Kind = Uninit;
  Expr From;
  Expr To;
  Expr Seq; ///< Only for Val.

  static Segment val(Expr From, Expr To, Expr Seq) {
    return {Val, std::move(From), std::move(To), std::move(Seq)};
  }
  static Segment uninit(Expr From, Expr To) {
    return {Uninit, std::move(From), std::move(To), nullptr};
  }
  static Segment missing(Expr From, Expr To) {
    return {Missing, std::move(From), std::move(To), nullptr};
  }
};

/// A node of the symbolic heap forest.
struct TreeNode {
  enum NKind : uint8_t {
    Value,      ///< Single node: symbolic value of type Ty.
    Uninit,     ///< Single node: uninitialised memory of type Ty.
    Missing,    ///< Single node: framed-off memory of type Ty.
    StructNode, ///< Internal node: Children are the fields of struct Ty.
    EnumNode,   ///< Internal node: concrete Discr, Children of that variant.
    LaidOut,    ///< Array-like node: Ty is the *indexing type*; Segs.
  };

  NKind Kind = Uninit;
  rmir::TypeRef Ty = nullptr;
  Expr Val;           ///< Value payload.
  unsigned Discr = 0; ///< EnumNode discriminant.
  std::vector<TreeNode> Children;
  std::vector<Segment> Segs;

  static TreeNode value(rmir::TypeRef T, Expr V);
  static TreeNode uninit(rmir::TypeRef T);
  static TreeNode missing(rmir::TypeRef T);
  static TreeNode structNode(rmir::TypeRef T, std::vector<TreeNode> Fields);
  static TreeNode enumNode(rmir::TypeRef T, unsigned Discr,
                           std::vector<TreeNode> Fields);
  static TreeNode laidOut(rmir::TypeRef IndexTy, std::vector<Segment> Segs);

  /// True if no part of this subtree is Missing (required e.g. to free).
  bool fullyOwned() const;
  /// True if the entire subtree is Missing (frame is empty here).
  bool fullyMissing() const;
  /// True if no part is Uninit or Missing (safe to read whole).
  bool fullyInit() const;

  /// Reads the whole node back as a value of its annotated type. Struct
  /// nodes become tuples; option-like enum nodes become None/Some; other
  /// enums become (discr, (fields...)) tuples.
  Outcome<Expr> toValue() const;

  /// Renders the node for diagnostics.
  std::string str() const;
};

/// Builds a (lazy) node holding value \p V at type \p T.
TreeNode nodeFromValue(rmir::TypeRef T, const Expr &V);

/// Expands a Value/Uninit node of struct type into a StructNode whose
/// children are TupleGet projections (resp. Uninit leaves). No-op when the
/// node is already structural. Returns false if the node cannot be expanded
/// (e.g. Missing).
bool expandStructNode(TreeNode &N);

/// Expands a Value node of option-like enum type into an EnumNode, deciding
/// the discriminant with the path condition (branching must have happened
/// upstream; an undecidable discriminant is a failure). Uninit nodes expand
/// for *writing* into the requested variant.
Outcome<Unit> expandEnumNode(TreeNode &N, unsigned WantVariant, HeapCtx &Ctx,
                             bool ForWrite);

/// The validity invariant of type \p T for value \p V (§3.2 "load/store are
/// in charge of ensuring validity invariants"): integer range constraints,
/// boolean bit patterns, recursive tuples for structs. True when no
/// constraint applies.
Expr validityInvariant(rmir::TypeRef T, const Expr &V);

} // namespace heap
} // namespace gilr

#endif // GILR_HEAP_TREENODE_H
