//===- heap/Projection.cpp ----------------------------------------------------===//

#include "heap/Projection.h"

#include "support/Diagnostics.h"
#include "support/StringUtils.h"
#include "sym/ExprBuilder.h"
#include "sym/Printer.h"

#include <cassert>

using namespace gilr;
using namespace gilr::heap;

std::string ProjElem::str() const {
  switch (Kind) {
  case Offset:
    return "+<" + Ty->str() + "> " + exprToString(Count);
  case Field:
    return ".<" + Ty->str() + "> " + std::to_string(Index);
  case VariantField:
    return ".<" + Ty->str() + "> " + std::to_string(Variant) + "." +
           std::to_string(Index);
  }
  GILR_UNREACHABLE("unknown projection element kind");
}

std::string gilr::heap::projectionToString(const Projection &P) {
  std::vector<std::string> Parts;
  Parts.reserve(P.size());
  for (const ProjElem &E : P)
    Parts.push_back(E.str());
  return "[" + join(Parts, ", ") + "]";
}

/// Opaque per-type token used inside encoded pointers.
static Expr tyToken(rmir::TypeRef T) {
  return mkApp("ty$" + T->str(), {}, Sort::Any);
}

Expr gilr::heap::encodeProjElem(const ProjElem &E) {
  switch (E.Kind) {
  case ProjElem::Offset:
    return mkTuple({mkInt(0), tyToken(E.Ty), E.Count});
  case ProjElem::Field:
    return mkTuple({mkInt(1), tyToken(E.Ty), mkInt(E.Index)});
  case ProjElem::VariantField:
    return mkTuple({mkInt(2), tyToken(E.Ty), mkInt(E.Variant),
                    mkInt(E.Index)});
  }
  GILR_UNREACHABLE("unknown projection element kind");
}

Expr gilr::heap::encodePtr(const Expr &Loc, const Projection &P) {
  std::vector<Expr> Elems;
  Elems.reserve(P.size());
  for (const ProjElem &E : P)
    Elems.push_back(encodeProjElem(E));
  return mkTuple({Loc, mkSeqLit(Elems)});
}

Expr gilr::heap::appendProjElem(const Expr &Ptr, const ProjElem &E) {
  return mkTuple({mkTupleGet(Ptr, 0),
                  mkSeqConcat(mkTupleGet(Ptr, 1),
                              mkSeqUnit(encodeProjElem(E)))});
}

/// Parses a type token back into a TypeRef.
static rmir::TypeRef decodeTyToken(const Expr &Tok,
                                   const rmir::TyCtx &Types) {
  if (!Tok || Tok->Kind != ExprKind::App || !startsWith(Tok->Name, "ty$"))
    return nullptr;
  return Types.byName(Tok->Name.substr(3));
}

std::optional<DecodedPtr> gilr::heap::decodePtr(const Expr &PtrVal,
                                                const rmir::TyCtx &Types) {
  if (!PtrVal || PtrVal->Kind != ExprKind::TupleLit ||
      PtrVal->Kids.size() != 2)
    return std::nullopt;
  DecodedPtr Out;
  Out.Loc = PtrVal->Kids[0];

  // Flatten the projection sequence (built by mkSeqLit: nil / unit / concat
  // of units).
  std::vector<Expr> Elems;
  std::vector<Expr> Stack = {PtrVal->Kids[1]};
  while (!Stack.empty()) {
    Expr S = Stack.back();
    Stack.pop_back();
    switch (S->Kind) {
    case ExprKind::SeqNil:
      break;
    case ExprKind::SeqUnit:
      Elems.push_back(S->Kids[0]);
      break;
    case ExprKind::SeqConcat:
      for (auto It = S->Kids.rbegin(); It != S->Kids.rend(); ++It)
        Stack.push_back(*It);
      break;
    default:
      return std::nullopt; // Symbolic projection tail.
    }
  }

  for (const Expr &E : Elems) {
    if (E->Kind != ExprKind::TupleLit || E->Kids.size() < 3)
      return std::nullopt;
    __int128 Tag;
    if (!getIntLit(E->Kids[0], Tag))
      return std::nullopt;
    rmir::TypeRef Ty = decodeTyToken(E->Kids[1], Types);
    if (!Ty)
      return std::nullopt;
    switch (static_cast<int>(Tag)) {
    case 0:
      Out.Proj.push_back(ProjElem::offset(Ty, E->Kids[2]));
      break;
    case 1: {
      __int128 Idx;
      if (!getIntLit(E->Kids[2], Idx))
        return std::nullopt;
      Out.Proj.push_back(
          ProjElem::field(Ty, static_cast<unsigned>(Idx)));
      break;
    }
    case 2: {
      __int128 Var, Idx;
      if (E->Kids.size() != 4 || !getIntLit(E->Kids[2], Var) ||
          !getIntLit(E->Kids[3], Idx))
        return std::nullopt;
      Out.Proj.push_back(ProjElem::variantField(
          Ty, static_cast<unsigned>(Var), static_cast<unsigned>(Idx)));
      break;
    }
    default:
      return std::nullopt;
    }
  }
  return Out;
}

uint64_t gilr::heap::interpretProjection(rmir::LayoutEngine &Layout,
                                         const Projection &P) {
  uint64_t Offset = 0;
  for (const ProjElem &E : P) {
    switch (E.Kind) {
    case ProjElem::Offset: {
      __int128 N;
      bool IsLit = getIntLit(E.Count, N);
      assert(IsLit && "concrete interpretation of symbolic offset");
      (void)IsLit;
      Offset += static_cast<uint64_t>(N) * Layout.sizeOf(E.Ty);
      break;
    }
    case ProjElem::Field:
      Offset += Layout.fieldOffset(E.Ty, E.Index);
      break;
    case ProjElem::VariantField:
      Offset += Layout.variantFieldOffset(E.Ty, E.Variant, E.Index);
      break;
    }
  }
  return Offset;
}

Expr gilr::heap::interpretProjectionExpr(rmir::LayoutEngine &Layout,
                                         const Projection &P) {
  std::vector<Expr> Terms;
  for (const ProjElem &E : P) {
    switch (E.Kind) {
    case ProjElem::Offset:
      Terms.push_back(
          mkMul(mkIntU64(Layout.sizeOf(E.Ty)), E.Count));
      break;
    case ProjElem::Field:
      Terms.push_back(mkIntU64(Layout.fieldOffset(E.Ty, E.Index)));
      break;
    case ProjElem::VariantField:
      Terms.push_back(
          mkIntU64(Layout.variantFieldOffset(E.Ty, E.Variant, E.Index)));
      break;
    }
  }
  return mkAdd(std::move(Terms));
}
