//===- tests/incr_test.cpp - Incremental verification -----------------------===//
//
// The incremental subsystem's contract:
//
//  * stable fingerprints are intern-id independent and canonical under
//    commutative operand order;
//  * the proof store round-trips verdicts and survives corruption by
//    degrading to a cold run, never an error;
//  * a warm run replays every verdict (zero solver work) and its report is
//    byte-identical to the cold run's, modulo the "cached" markers;
//  * editing one lemma / contract re-verifies exactly its dependents;
//  * semantic salvage (incr/SpecDiff.h): clause reorders and doc edits
//    revalidate with zero solver work, equivalence-preserving pure-clause
//    rewrites revalidate through implication queries, and deleting a clause
//    the proof relied on falls back to full re-verification.
//
//===----------------------------------------------------------------------===//

#include "creusot/Pearlite.h"
#include "incr/Fingerprint.h"
#include "incr/ProofStore.h"
#include "incr/Session.h"
#include "rustlib/Clients.h"
#include "rustlib/LinkedList.h"
#include "rustlib/Vec.h"
#include "sched/Scheduler.h"
#include "support/Trace.h"
#include "sym/ExprBuilder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>

using namespace gilr;
using namespace gilr::rustlib;

namespace {

std::string stripCachedMarkers(std::string S) {
  const std::string Key = ", \"cached\": true";
  std::size_t Pos;
  while ((Pos = S.find(Key)) != std::string::npos)
    S.erase(Pos, Key.size());
  return S;
}

std::string tempStorePath(const std::string &Name) {
  std::string Path = ::testing::TempDir() + "gilr_incr_" + Name + ".prf";
  std::remove(Path.c_str());
  return Path;
}

std::string readFileBytes(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

/// The functional set plus front_mut — the one function whose proof applies
/// lemmas, so lemma-edit invalidation has a dependent to find.
std::vector<std::string> unsafeFuncs() {
  std::vector<std::string> F = functionalFunctions();
  F.push_back("LinkedList::front_mut");
  return F;
}

class IncrTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    Lib = buildLinkedListLib(SpecMode::Functional).release();
  }
  static void TearDownTestSuite() {
    delete Lib;
    Lib = nullptr;
  }
  static LinkedListLib *Lib;
};

LinkedListLib *IncrTest::Lib = nullptr;

//===----------------------------------------------------------------------===//
// Fingerprints
//===----------------------------------------------------------------------===//

TEST_F(IncrTest, StableExprHashIsCommutativeAndDiscriminating) {
  Expr A = mkVar("a", Sort::Int);
  Expr B = mkVar("b", Sort::Int);
  EXPECT_EQ(exprStableHash(mkAdd(A, B)), exprStableHash(mkAdd(B, A)));
  EXPECT_EQ(exprStableHash(mkAnd(mkLe(A, B), mkLe(B, A))),
            exprStableHash(mkAnd(mkLe(B, A), mkLe(A, B))));
  EXPECT_NE(exprStableHash(mkAdd(A, B)), exprStableHash(mkAdd(A, A)));
  // Non-commutative operands keep their order.
  EXPECT_NE(exprStableHash(mkLe(A, B)), exprStableHash(mkLe(B, A)));
  EXPECT_NE(exprStableHash(A), 0u);
}

TEST_F(IncrTest, FingerprintsAreStableAcrossRebuilds) {
  // A second, independently interned universe (fresh intern ids throughout)
  // must produce identical fingerprints for identical entities — the
  // process-stability requirement of the on-disk store.
  auto Lib2 = buildLinkedListLib(SpecMode::Functional);
  for (const std::string &Name : allFunctions()) {
    const rmir::Function *F1 = Lib->Prog.lookup(Name);
    const rmir::Function *F2 = Lib2->Prog.lookup(Name);
    ASSERT_NE(F1, nullptr) << Name;
    ASSERT_NE(F2, nullptr) << Name;
    EXPECT_EQ(incr::fpFunction(*F1), incr::fpFunction(*F2)) << Name;
  }
  for (const auto &[Name, Spec] : Lib->Contracts.all()) {
    const creusot::PearliteSpec *S2 = Lib2->Contracts.lookup(Name);
    ASSERT_NE(S2, nullptr) << Name;
    EXPECT_EQ(incr::fpContract(Spec), incr::fpContract(*S2)) << Name;
  }
  const auto *L1 = Lib->Lemmas.lookup("ll_extract_head");
  const auto *L2 = Lib2->Lemmas.lookup("ll_extract_head");
  ASSERT_NE(L1, nullptr);
  ASSERT_NE(L2, nullptr);
  EXPECT_EQ(incr::fpLemma(*L1), incr::fpLemma(*L2));
}

TEST_F(IncrTest, FingerprintsCoverEdits) {
  const creusot::PearliteSpec *PS =
      Lib->Contracts.lookup("LinkedList::push_front");
  ASSERT_NE(PS, nullptr);
  creusot::PearliteSpec Edited = *PS;
  Edited.Doc += " (edited)";
  EXPECT_NE(incr::fpContract(*PS), incr::fpContract(Edited));

  const auto *LV = Lib->Lemmas.lookup("ll_extract_head");
  ASSERT_NE(LV, nullptr);
  auto EditedLemma = *LV;
  std::get<engine::ExtractLemma>(EditedLemma).ToPred += "x";
  EXPECT_NE(incr::fpLemma(*LV), incr::fpLemma(EditedLemma));
}

//===----------------------------------------------------------------------===//
// Proof store
//===----------------------------------------------------------------------===//

engine::VerifyReport sampleReport() {
  engine::VerifyReport R;
  R.Func = "f";
  R.Ok = true;
  R.Seconds = 1.25;
  R.PathsCompleted = 3;
  R.StatesExplored = 7;
  R.GhostAnnotations = 2;
  R.Errors = {"a note", "another"};
  R.Solver.SatQueries = 5;
  R.Solver.EntailQueries = 11;
  R.Solver.Branches = 13;
  R.Phases = {{"engine.consume", 4, 123456}};
  return R;
}

TEST_F(IncrTest, ProofStoreRoundTrips) {
  std::string Path = tempStorePath("roundtrip");

  incr::ProofStore W(Path);
  incr::StoredObligation Ob;
  Ob.S = incr::Side::Unsafe;
  Ob.Name = "f";
  Ob.SelfFp = 0xabc;
  Ob.ConfigFp = 0xdef;
  Ob.Deps = {{deps::Kind::Lemma, "ll_extract_head", 42, false, {}},
             {deps::Kind::Spec, "f", 43, false, {}}};
  Ob.Blob = incr::encodeVerifyReport(sampleReport());
  W.put(Ob);
  W.setSolverEntries({{11, 22, {SatResult::Unsat, 9, 4}}});
  ASSERT_TRUE(W.flush());

  incr::ProofStore Rd(Path);
  ASSERT_TRUE(Rd.load());
  EXPECT_FALSE(Rd.truncated());
  const incr::StoredObligation *Got = Rd.lookup(incr::Side::Unsafe, "f");
  ASSERT_NE(Got, nullptr);
  EXPECT_EQ(Got->SelfFp, 0xabcu);
  EXPECT_EQ(Got->ConfigFp, 0xdefu);
  ASSERT_EQ(Got->Deps.size(), 2u);
  EXPECT_EQ(Got->Deps[0].K, deps::Kind::Lemma);
  EXPECT_EQ(Got->Deps[0].Name, "ll_extract_head");
  EXPECT_EQ(Got->Deps[0].Fp, 42u);

  engine::VerifyReport R;
  ASSERT_TRUE(incr::decodeVerifyReport(Got->Blob, R));
  engine::VerifyReport Want = sampleReport();
  EXPECT_EQ(R.Func, Want.Func);
  EXPECT_EQ(R.Ok, Want.Ok);
  EXPECT_EQ(R.Seconds, Want.Seconds);
  EXPECT_EQ(R.PathsCompleted, Want.PathsCompleted);
  EXPECT_EQ(R.StatesExplored, Want.StatesExplored);
  EXPECT_EQ(R.GhostAnnotations, Want.GhostAnnotations);
  EXPECT_EQ(R.Errors, Want.Errors);
  EXPECT_EQ(static_cast<uint64_t>(R.Solver.SatQueries), 5u);
  EXPECT_EQ(static_cast<uint64_t>(R.Solver.EntailQueries), 11u);
  ASSERT_EQ(R.Phases.size(), 1u);
  EXPECT_EQ(R.Phases[0].Key, "engine.consume");
  EXPECT_EQ(R.Phases[0].Nanos, 123456u);

  ASSERT_EQ(Rd.solverEntries().size(), 1u);
  EXPECT_EQ(Rd.solverEntries()[0].Fp, 11u);
  EXPECT_EQ(Rd.solverEntries()[0].V.R, SatResult::Unsat);
  EXPECT_EQ(Rd.solverEntries()[0].V.Branches, 9u);
}

TEST_F(IncrTest, MissingAndForeignStoresRunCold) {
  incr::ProofStore Missing(tempStorePath("missing"));
  EXPECT_FALSE(Missing.load());
  EXPECT_EQ(Missing.size(), 0u);

  std::string Path = tempStorePath("foreign");
  {
    std::ofstream Out(Path, std::ios::binary);
    Out << "this is not a proof store at all, but it is long enough";
  }
  incr::ProofStore Foreign(Path);
  EXPECT_FALSE(Foreign.load());
  EXPECT_EQ(Foreign.size(), 0u);
}

TEST_F(IncrTest, TruncatedStoreKeepsValidPrefix) {
  std::string Path = tempStorePath("truncated");
  {
    incr::ProofStore W(Path);
    for (const char *Name : {"first", "second"}) {
      incr::StoredObligation Ob;
      Ob.S = incr::Side::Unsafe;
      Ob.Name = Name;
      Ob.SelfFp = 1;
      Ob.ConfigFp = 1;
      Ob.Blob = incr::encodeVerifyReport(sampleReport());
      W.put(Ob);
    }
    ASSERT_TRUE(W.flush());
  }
  std::string Bytes = readFileBytes(Path);
  ASSERT_GT(Bytes.size(), 24u);
  {
    // Tear the tail off the last record — a crash mid-append.
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size() - 7));
  }
  incr::ProofStore Rd(Path);
  EXPECT_TRUE(Rd.load());
  EXPECT_TRUE(Rd.truncated());
  EXPECT_EQ(Rd.size(), 1u); // The valid prefix survives.

  // Flipping a payload byte must fail that record's checksum.
  std::string Flipped = Bytes;
  Flipped[Flipped.size() / 2] ^= 0x40;
  {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out.write(Flipped.data(), static_cast<std::streamsize>(Flipped.size()));
  }
  incr::ProofStore Rd2(Path);
  EXPECT_TRUE(Rd2.load());
  EXPECT_TRUE(Rd2.truncated());
  EXPECT_LT(Rd2.size(), 2u);
}

// Raw little helpers mirroring the store's wire format, for hand-rolling a
// previous-version file the current writer can no longer produce.
void appendU32(std::string &S, uint32_t V) {
  S.append(reinterpret_cast<const char *>(&V), sizeof V);
}
void appendU64(std::string &S, uint64_t V) {
  S.append(reinterpret_cast<const char *>(&V), sizeof V);
}
void appendStr(std::string &S, const std::string &T) {
  appendU32(S, static_cast<uint32_t>(T.size()));
  S += T;
}
uint64_t recordFnv1a(uint8_t Type, const std::string &Payload) {
  uint64_t H = 0xcbf29ce484222325ull;
  auto Step = [&H](unsigned char C) {
    H ^= C;
    H *= 0x100000001b3ull;
  };
  Step(Type);
  for (unsigned char C : Payload)
    Step(C);
  return H;
}

TEST_F(IncrTest, V3StoreLoadsAndUpgradesOnCompaction) {
  // A hand-rolled format-v3 store: one obligation whose dep carries no
  // clause signature (the field did not exist yet).
  std::string Payload;
  Payload.push_back(0); // Side::Unsafe.
  appendStr(Payload, "f");
  appendU64(Payload, 0xabc);
  appendU64(Payload, 0xdef);
  appendU32(Payload, 1); // One dep, v3 layout: kind | name | fp.
  Payload.push_back(static_cast<char>(deps::Kind::Spec));
  appendStr(Payload, "f");
  appendU64(Payload, 42);
  appendStr(Payload, "blob");

  std::string File = "GILRPRF1";
  appendU32(File, 3); // Previous format version.
  appendU32(File, 0); // Reserved.
  File.push_back(1);  // RecObligation.
  appendU32(File, static_cast<uint32_t>(Payload.size()));
  File += Payload;
  appendU64(File, recordFnv1a(1, Payload));

  std::string Path = tempStorePath("v3_compat");
  {
    std::ofstream Out(Path, std::ios::binary);
    Out.write(File.data(), static_cast<std::streamsize>(File.size()));
  }

  // A read-only load understands v3 — deps simply carry no signature (so
  // they fall back to plain fingerprint equality) — and leaves the file
  // byte-identical.
  incr::ProofStore RO(Path);
  ASSERT_TRUE(RO.load(/*AllowCompaction=*/false));
  EXPECT_FALSE(RO.truncated());
  EXPECT_EQ(RO.compactions(), 0u);
  ASSERT_EQ(RO.size(), 1u);
  const incr::StoredObligation *Got = RO.lookup(incr::Side::Unsafe, "f");
  ASSERT_NE(Got, nullptr);
  EXPECT_EQ(Got->SelfFp, 0xabcu);
  EXPECT_EQ(Got->ConfigFp, 0xdefu);
  ASSERT_EQ(Got->Deps.size(), 1u);
  EXPECT_EQ(Got->Deps[0].K, deps::Kind::Spec);
  EXPECT_EQ(Got->Deps[0].Fp, 42u);
  EXPECT_FALSE(Got->Deps[0].HasSig);
  EXPECT_EQ(Got->Blob, "blob");
  EXPECT_EQ(readFileBytes(Path), File);

  // A writable load upgrades the file to the current version in a single
  // compaction rewrite; afterwards loads are rewrite-free.
  incr::ProofStore W(Path);
  ASSERT_TRUE(W.load(/*AllowCompaction=*/true));
  EXPECT_EQ(W.compactions(), 1u);
  EXPECT_NE(readFileBytes(Path), File);

  incr::ProofStore Again(Path);
  ASSERT_TRUE(Again.load(/*AllowCompaction=*/true));
  EXPECT_EQ(Again.compactions(), 0u);
  const incr::StoredObligation *G2 = Again.lookup(incr::Side::Unsafe, "f");
  ASSERT_NE(G2, nullptr);
  EXPECT_EQ(G2->Blob, "blob");
  ASSERT_EQ(G2->Deps.size(), 1u);
  EXPECT_FALSE(G2->Deps[0].HasSig);
}

TEST_F(IncrTest, LoadCompactionDropsSupersededRecords) {
  std::string Path = tempStorePath("compaction");
  auto MakeOb = [](const std::string &Blob) {
    incr::StoredObligation Ob;
    Ob.S = incr::Side::Unsafe;
    Ob.Name = "f";
    Ob.SelfFp = 1;
    Ob.ConfigFp = 1;
    Ob.Blob = Blob;
    return Ob;
  };
  {
    incr::ProofStore W(Path);
    W.put(MakeOb("first"));
    ASSERT_TRUE(W.flush());
  }
  std::size_t Snapshot = readFileBytes(Path).size();

  // Re-putting the same key onto an intact log appends a superseding
  // record: cheap warm-loop write, growing file.
  {
    incr::ProofStore W(Path);
    ASSERT_TRUE(W.load(/*AllowCompaction=*/true));
    EXPECT_EQ(W.compactions(), 0u);
    W.put(MakeOb("second blob, strictly longer than the first"));
    ASSERT_TRUE(W.flush());
  }
  std::size_t Appended = readFileBytes(Path).size();
  EXPECT_GT(Appended, Snapshot);

  // The next writable load collapses the supersede chain: one compaction,
  // the last record wins, and the file shrinks back to one record.
  {
    incr::ProofStore R(Path);
    ASSERT_TRUE(R.load(/*AllowCompaction=*/true));
    EXPECT_EQ(R.compactions(), 1u);
    ASSERT_EQ(R.size(), 1u);
    const incr::StoredObligation *Got = R.lookup(incr::Side::Unsafe, "f");
    ASSERT_NE(Got, nullptr);
    EXPECT_EQ(Got->Blob, "second blob, strictly longer than the first");
  }
  EXPECT_LT(readFileBytes(Path).size(), Appended);

  incr::ProofStore R2(Path);
  ASSERT_TRUE(R2.load(/*AllowCompaction=*/true));
  EXPECT_EQ(R2.compactions(), 0u);
}

//===----------------------------------------------------------------------===//
// Cold / warm end-to-end
//===----------------------------------------------------------------------===//

TEST_F(IncrTest, WarmRunReplaysEverythingWithZeroSolverWork) {
  std::string Path = tempStorePath("warm");
  incr::IncrConfig Inc;
  Inc.Enabled = true;
  Inc.StorePath = Path;
  sched::SchedulerConfig C;
  std::vector<std::string> Funcs = unsafeFuncs();
  std::vector<creusot::SafeFn> Clients = makeClients();
  std::size_t Total = Funcs.size() + Clients.size();

  incr::IncrRunStats S1;
  engine::VerifEnv E1 = Lib->env();
  hybrid::HybridDriver D1(E1, Lib->Contracts);
  hybrid::HybridReport Cold = D1.run(Funcs, Clients, C, Inc, &S1);
  ASSERT_TRUE(Cold.ok());
  EXPECT_EQ(S1.cached(), 0u);
  EXPECT_EQ(S1.verified(), Total);
  EXPECT_FALSE(S1.StoreLoaded);

  incr::IncrRunStats S2;
  engine::VerifEnv E2 = Lib->env();
  hybrid::HybridDriver D2(E2, Lib->Contracts);
  hybrid::HybridReport Warm;
  {
    metrics::ScopedSolverStatsReset Zero;
    Warm = D2.run(Funcs, Clients, C, Inc, &S2);
    EXPECT_EQ(static_cast<uint64_t>(Zero.accrued().SatQueries), 0u);
    EXPECT_EQ(static_cast<uint64_t>(Zero.accrued().EntailQueries), 0u);
    EXPECT_EQ(static_cast<uint64_t>(Zero.accrued().Branches), 0u);
  }
  ASSERT_TRUE(Warm.ok());
  EXPECT_TRUE(S2.StoreLoaded);
  EXPECT_EQ(S2.cached(), Total);
  EXPECT_EQ(S2.verified(), 0u);
  EXPECT_EQ(S2.Invalidated, 0u);

  // Reports round-trip byte-for-byte — timing included, since the stored
  // blob carries the cold run's wall time — modulo the cached markers.
  EXPECT_EQ(Cold.renderJson(), stripCachedMarkers(Warm.renderJson()));
  EXPECT_NE(Warm.renderJson().find("\"cached\": true"), std::string::npos);
  EXPECT_NE(Warm.summaryText().find("ok (cached)"), std::string::npos);
}

TEST_F(IncrTest, WarmRunIsWorkerCountIndependent) {
  std::string Path = tempStorePath("warm_parallel");
  incr::IncrConfig Inc;
  Inc.Enabled = true;
  Inc.StorePath = Path;
  std::vector<std::string> Funcs = unsafeFuncs();
  std::vector<creusot::SafeFn> Clients = makeClients();

  sched::SchedulerConfig Serial;
  engine::VerifEnv E1 = Lib->env();
  hybrid::HybridDriver D1(E1, Lib->Contracts);
  hybrid::HybridReport Cold = D1.run(Funcs, Clients, Serial, Inc);
  ASSERT_TRUE(Cold.ok());

  for (unsigned Threads : {1u, 4u}) {
    sched::SchedulerConfig C;
    C.Threads = Threads;
    incr::IncrRunStats S;
    engine::VerifEnv E = Lib->env();
    hybrid::HybridDriver D(E, Lib->Contracts);
    hybrid::HybridReport Warm = D.run(Funcs, Clients, C, Inc, &S);
    ASSERT_TRUE(Warm.ok());
    EXPECT_EQ(S.cached(), Funcs.size() + Clients.size()) << Threads;
    EXPECT_EQ(Cold.renderJson(), stripCachedMarkers(Warm.renderJson()))
        << Threads << " workers";
  }
}

TEST_F(IncrTest, CorruptStoreDegradesToColdRunWithoutError) {
  std::string Path = tempStorePath("corrupt_e2e");
  {
    std::ofstream Out(Path, std::ios::binary);
    Out << "GILRPRF1 garbage follows the magic: \x01\x02\x03";
  }
  incr::IncrConfig Inc;
  Inc.Enabled = true;
  Inc.StorePath = Path;
  sched::SchedulerConfig C;
  incr::IncrRunStats S;
  engine::VerifEnv E = Lib->env();
  hybrid::HybridDriver D(E, Lib->Contracts);
  hybrid::HybridReport R = D.run(unsafeFuncs(), makeClients(), C, Inc, &S);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(S.cached(), 0u);

  // The flush at the end replaced the corrupt file with a usable store.
  incr::IncrRunStats S2;
  engine::VerifEnv E2 = Lib->env();
  hybrid::HybridDriver D2(E2, Lib->Contracts);
  hybrid::HybridReport R2 = D2.run(unsafeFuncs(), makeClients(), C, Inc, &S2);
  ASSERT_TRUE(R2.ok());
  EXPECT_EQ(S2.verified(), 0u);
}

TEST_F(IncrTest, ReadOnlyModeNeverWritesTheStore) {
  std::string Path = tempStorePath("readonly");
  incr::IncrConfig Inc;
  Inc.Enabled = true;
  Inc.StorePath = Path;
  sched::SchedulerConfig C;
  engine::VerifEnv E1 = Lib->env();
  hybrid::HybridDriver D1(E1, Lib->Contracts);
  ASSERT_TRUE(D1.run(unsafeFuncs(), makeClients(), C, Inc).ok());

  std::string Before = readFileBytes(Path);
  ASSERT_FALSE(Before.empty());

  incr::IncrConfig RO = Inc;
  RO.ReadOnly = true;
  incr::IncrRunStats S;
  engine::VerifEnv E2 = Lib->env();
  hybrid::HybridDriver D2(E2, Lib->Contracts);
  ASSERT_TRUE(D2.run(unsafeFuncs(), makeClients(), C, RO, &S).ok());
  EXPECT_EQ(S.cached(), unsafeFuncs().size() + makeClients().size());
  EXPECT_EQ(readFileBytes(Path), Before);
}

//===----------------------------------------------------------------------===//
// Dependency-aware invalidation
//===----------------------------------------------------------------------===//

TEST_F(IncrTest, DependencyGraphAttributesLemmasToFrontMut) {
  std::string Path = tempStorePath("depgraph");
  incr::IncrConfig Inc;
  Inc.Enabled = true;
  Inc.StorePath = Path;
  sched::SchedulerConfig C;
  C.StableCacheKeys = true;
  sched::Scheduler S(C);
  engine::VerifEnv Env = Lib->env();
  incr::Session Sess(Inc, Env, &Lib->Contracts);
  hybrid::HybridReport R =
      S.runHybrid(Env, Lib->Contracts, unsafeFuncs(), makeClients(), &Sess);
  ASSERT_TRUE(R.ok());

  // front_mut is the only function whose proof applies the lemmas.
  for (const char *Lemma : {"ll_extract_head", "ll_freeze_list"}) {
    std::vector<incr::ObligationId> Dependents =
        Sess.graph().dependentsOf(incr::DepKey{deps::Kind::Lemma, Lemma});
    ASSERT_EQ(Dependents.size(), 1u) << Lemma;
    EXPECT_EQ(Dependents[0].S, incr::Side::Unsafe);
    EXPECT_EQ(Dependents[0].Name, "LinkedList::front_mut");
  }

  // Every obligation depends on (at least) its own spec/contract context.
  const std::set<incr::DepKey> *FrontDeps = Sess.graph().depsOf(
      incr::ObligationId{incr::Side::Unsafe, "LinkedList::front_mut"});
  ASSERT_NE(FrontDeps, nullptr);
  EXPECT_TRUE(FrontDeps->count(
      incr::DepKey{deps::Kind::Function, "LinkedList::front_mut"}));
  EXPECT_TRUE(FrontDeps->count(
      incr::DepKey{deps::Kind::Spec, "LinkedList::front_mut"}));
}

TEST_F(IncrTest, LemmaEditReverifiesExactlyItsDependents) {
  std::string Path = tempStorePath("lemma_edit");
  incr::IncrConfig Inc;
  Inc.Enabled = true;
  Inc.StorePath = Path;
  // Blanket invalidation: any dependency fingerprint change re-verifies the
  // dependent. (With semantic salvage on, this particular edit is instead
  // rescued by an implication query — the companion test below.)
  Inc.SemanticSalvage = false;
  sched::SchedulerConfig C;
  std::vector<std::string> Funcs = unsafeFuncs();
  std::vector<creusot::SafeFn> Clients = makeClients();

  engine::VerifEnv E1 = Lib->env();
  hybrid::HybridDriver D1(E1, Lib->Contracts);
  ASSERT_TRUE(D1.run(Funcs, Clients, C, Inc).ok());

  // Simulate an edit: conjoin a LinArith-true but syntactically irreducible
  // fact onto the extraction lemma's pure requirement. The lemma's meaning
  // is unchanged (the proof still goes through); its fingerprint is not.
  auto *LV = Lib->Lemmas.lookupMutable("ll_extract_head");
  ASSERT_NE(LV, nullptr);
  auto &Ex = std::get<engine::ExtractLemma>(*LV);
  Expr Old = Ex.Requires;
  Expr Z = mkVar("incr$edit", Sort::Int);
  Ex.Requires = mkAnd(Old, mkLe(Z, mkAdd(Z, mkInt(1))));

  incr::IncrRunStats S;
  engine::VerifEnv E2 = Lib->env();
  hybrid::HybridDriver D2(E2, Lib->Contracts);
  hybrid::HybridReport Warm = D2.run(Funcs, Clients, C, Inc, &S);
  Ex.Requires = Old; // Restore before asserting (the fixture is shared).

  ASSERT_TRUE(Warm.ok());
  EXPECT_EQ(S.Invalidated, 1u);
  EXPECT_EQ(S.VerifiedUnsafe, 1u);
  EXPECT_EQ(S.CachedUnsafe, Funcs.size() - 1);
  EXPECT_EQ(S.CachedSafe, Clients.size());
  for (const engine::VerifyReport &R : Warm.UnsafeSide)
    EXPECT_EQ(R.Cached, R.Func != "LinkedList::front_mut") << R.Func;
  for (const creusot::SafeReport &R : Warm.SafeSide)
    EXPECT_TRUE(R.Cached) << R.Func;
}

TEST_F(IncrTest, LemmaEditSalvagesThroughImplication) {
  std::string Path = tempStorePath("lemma_salvage");
  incr::IncrConfig Inc;
  Inc.Enabled = true;
  Inc.StorePath = Path;
  sched::SchedulerConfig C;
  std::vector<std::string> Funcs = unsafeFuncs();
  std::vector<creusot::SafeFn> Clients = makeClients();
  std::size_t Total = Funcs.size() + Clients.size();

  engine::VerifEnv E1 = Lib->env();
  hybrid::HybridDriver D1(E1, Lib->Contracts);
  ASSERT_TRUE(D1.run(Funcs, Clients, C, Inc).ok());

  // The same equivalence-preserving edit as the blanket test: conjoin a
  // LinArith-true fact onto the extraction lemma's requirement. A lemma
  // requirement behaves like a precondition at the application site, so the
  // salvage obligation is old-requires => added-conjunct — which the solver
  // discharges, keeping front_mut's cached verdict.
  auto *LV = Lib->Lemmas.lookupMutable("ll_extract_head");
  ASSERT_NE(LV, nullptr);
  auto &Ex = std::get<engine::ExtractLemma>(*LV);
  Expr Old = Ex.Requires;
  Expr Z = mkVar("incr$edit", Sort::Int);
  Ex.Requires = mkAnd(Old, mkLe(Z, mkAdd(Z, mkInt(1))));

  incr::IncrRunStats S;
  engine::VerifEnv E2 = Lib->env();
  hybrid::HybridDriver D2(E2, Lib->Contracts);
  hybrid::HybridReport Warm = D2.run(Funcs, Clients, C, Inc, &S);
  ASSERT_TRUE(Warm.ok());
  EXPECT_EQ(S.Invalidated, 0u);
  EXPECT_EQ(S.verified(), 0u);
  EXPECT_EQ(S.cached(), Total);
  EXPECT_EQ(S.Implied, 1u);
  EXPECT_EQ(S.Salvaged, 0u);
  EXPECT_GE(S.SalvageQueries, 1u);
  for (const engine::VerifyReport &R : Warm.UnsafeSide)
    EXPECT_TRUE(R.Cached) << R.Func;
  for (const creusot::SafeReport &R : Warm.SafeSide)
    EXPECT_TRUE(R.Cached) << R.Func;

  // The salvaged record was refreshed under the current fingerprints, so
  // the next run (same edited lemma) is a plain warm hit.
  incr::IncrRunStats S3;
  engine::VerifEnv E3 = Lib->env();
  hybrid::HybridDriver D3(E3, Lib->Contracts);
  hybrid::HybridReport Again = D3.run(Funcs, Clients, C, Inc, &S3);
  Ex.Requires = Old; // Restore before asserting (the fixture is shared).
  ASSERT_TRUE(Again.ok());
  EXPECT_EQ(S3.cached(), Total);
  EXPECT_EQ(S3.verified(), 0u);
  EXPECT_EQ(S3.Salvaged + S3.Implied, 0u);
  EXPECT_EQ(S3.SalvageQueries, 0u);
}

TEST_F(IncrTest, SalvagedWarmRunIsWorkerCountIndependent) {
  std::string Path = tempStorePath("salvage_parallel");
  incr::IncrConfig Inc;
  Inc.Enabled = true;
  Inc.StorePath = Path;
  std::vector<std::string> Funcs = unsafeFuncs();
  std::vector<creusot::SafeFn> Clients = makeClients();

  sched::SchedulerConfig Serial;
  engine::VerifEnv E1 = Lib->env();
  hybrid::HybridDriver D1(E1, Lib->Contracts);
  hybrid::HybridReport Cold = D1.run(Funcs, Clients, Serial, Inc);
  ASSERT_TRUE(Cold.ok());
  std::string ColdStore = readFileBytes(Path);
  ASSERT_FALSE(ColdStore.empty());

  auto *LV = Lib->Lemmas.lookupMutable("ll_extract_head");
  ASSERT_NE(LV, nullptr);
  auto &Ex = std::get<engine::ExtractLemma>(*LV);
  Expr Old = Ex.Requires;
  Expr Z = mkVar("incr$edit", Sort::Int);
  Ex.Requires = mkAnd(Old, mkLe(Z, mkAdd(Z, mkInt(1))));

  // Both runs start from the cold store bytes (a salvage refreshes the
  // record on disk), so each takes the implication-salvage path; the
  // rendered reports must not depend on the worker count.
  std::vector<std::string> Rendered;
  for (unsigned Threads : {1u, 4u}) {
    {
      std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
      Out.write(ColdStore.data(),
                static_cast<std::streamsize>(ColdStore.size()));
    }
    sched::SchedulerConfig C;
    C.Threads = Threads;
    incr::IncrRunStats S;
    engine::VerifEnv E = Lib->env();
    hybrid::HybridDriver D(E, Lib->Contracts);
    hybrid::HybridReport Warm = D.run(Funcs, Clients, C, Inc, &S);
    ASSERT_TRUE(Warm.ok()) << Threads;
    EXPECT_EQ(S.Implied, 1u) << Threads;
    EXPECT_EQ(S.verified(), 0u) << Threads;
    Rendered.push_back(Warm.renderJson());
  }
  Ex.Requires = Old;
  EXPECT_EQ(Rendered[0], Rendered[1]);
  EXPECT_EQ(Cold.renderJson(), stripCachedMarkers(Rendered[0]));
}

TEST_F(IncrTest, ContractDocEditSalvagesWithZeroSolverWork) {
  std::string Path = tempStorePath("contract_doc_edit");
  incr::IncrConfig Inc;
  Inc.Enabled = true;
  Inc.StorePath = Path;
  sched::SchedulerConfig SC;
  SC.StableCacheKeys = true;
  std::vector<std::string> Funcs = unsafeFuncs();
  std::vector<creusot::SafeFn> Clients = makeClients();

  engine::VerifEnv E1 = Lib->env();
  incr::Session Cold(Inc, E1, &Lib->Contracts);
  {
    sched::Scheduler S(SC);
    ASSERT_TRUE(
        S.runHybrid(E1, Lib->Contracts, Funcs, Clients, &Cold).ok());
    Cold.saveSolverEntries(S.exportCacheEntries());
    ASSERT_TRUE(Cold.flush());
  }

  // An edited contract: push_front's documentation string changes. The
  // whole-entity fingerprint moves, but the clause multiset is untouched
  // (doc strings are outside the skeleton), so every dependent client is
  // salvaged with zero solver work instead of re-verified.
  creusot::PearliteSpecTable Edited;
  for (const auto &[Name, Spec] : Lib->Contracts.all()) {
    creusot::PearliteSpec Copy = Spec;
    if (Name == "LinkedList::push_front")
      Copy.Doc += " (edited)";
    Edited.add(std::move(Copy));
  }

  incr::DepKey EditedKey{deps::Kind::Contract, "LinkedList::push_front"};
  unsigned Users = 0;
  for (const creusot::SafeFn &F : Clients) {
    const std::set<incr::DepKey> *Deps =
        Cold.graph().depsOf(incr::ObligationId{incr::Side::Safe, F.Name});
    ASSERT_NE(Deps, nullptr) << F.Name;
    Users += Deps->count(EditedKey) != 0;
  }
  ASSERT_GE(Users, 1u);

  engine::VerifEnv E2 = Lib->env();
  incr::Session WarmSess(Inc, E2, &Edited);
  sched::Scheduler S2(SC);
  hybrid::HybridReport Warm;
  {
    metrics::ScopedSolverStatsReset Zero;
    Warm = S2.runHybrid(E2, Edited, Funcs, Clients, &WarmSess);
    EXPECT_EQ(static_cast<uint64_t>(Zero.accrued().SatQueries), 0u);
    EXPECT_EQ(static_cast<uint64_t>(Zero.accrued().EntailQueries), 0u);
  }
  ASSERT_TRUE(Warm.ok());
  for (const engine::VerifyReport &R : Warm.UnsafeSide)
    EXPECT_TRUE(R.Cached) << R.Func;
  for (const creusot::SafeReport &R : Warm.SafeSide)
    EXPECT_TRUE(R.Cached) << R.Func;
  EXPECT_EQ(WarmSess.stats().verified(), 0u);
  EXPECT_EQ(WarmSess.stats().Invalidated, 0u);
  EXPECT_EQ(WarmSess.stats().Salvaged, Users);
  EXPECT_EQ(WarmSess.stats().Implied, 0u);
  EXPECT_EQ(WarmSess.stats().SalvageQueries, 0u);
}

TEST_F(IncrTest, ContractClauseEditReverifiesExactlyItsDependents) {
  std::string Path = tempStorePath("contract_clause_edit");
  incr::IncrConfig Inc;
  Inc.Enabled = true;
  Inc.StorePath = Path;
  sched::SchedulerConfig SC;
  SC.StableCacheKeys = true;
  std::vector<std::string> Funcs = unsafeFuncs();
  std::vector<creusot::SafeFn> Clients = makeClients();

  engine::VerifEnv E1 = Lib->env();
  incr::Session Cold(Inc, E1, &Lib->Contracts);
  {
    sched::Scheduler S(SC);
    ASSERT_TRUE(
        S.runHybrid(E1, Lib->Contracts, Funcs, Clients, &Cold).ok());
    Cold.saveSolverEntries(S.exportCacheEntries());
    ASSERT_TRUE(Cold.flush());
  }

  // A real clause edit: conjoin `true` onto push_front's ensures. Contract
  // clauses never get implication salvage (Pearlite terms have no journal
  // grammar), so every client whose cold proof consulted the contract must
  // re-verify — and only those.
  creusot::PearliteSpecTable Edited;
  for (const auto &[Name, Spec] : Lib->Contracts.all()) {
    creusot::PearliteSpec Copy = Spec;
    if (Name == "LinkedList::push_front")
      Copy.Post = creusot::pAnd(Copy.Post, creusot::pBool(true));
    Edited.add(std::move(Copy));
  }

  engine::VerifEnv E2 = Lib->env();
  incr::Session WarmSess(Inc, E2, &Edited);
  sched::Scheduler S2(SC);
  hybrid::HybridReport Warm =
      S2.runHybrid(E2, Edited, Funcs, Clients, &WarmSess);
  ASSERT_TRUE(Warm.ok());

  // The unsafe side never consults the Pearlite table during proofs (its
  // specs were encoded at build time), so it stays fully cached; a safe
  // client re-verifies iff its cold proof consulted the edited contract.
  incr::DepKey EditedKey{deps::Kind::Contract, "LinkedList::push_front"};
  for (const engine::VerifyReport &R : Warm.UnsafeSide)
    EXPECT_TRUE(R.Cached) << R.Func;
  unsigned Reverified = 0;
  for (std::size_t I = 0; I != Clients.size(); ++I) {
    const std::set<incr::DepKey> *Deps = Cold.graph().depsOf(
        incr::ObligationId{incr::Side::Safe, Clients[I].Name});
    ASSERT_NE(Deps, nullptr) << Clients[I].Name;
    bool UsesPushFront = Deps->count(EditedKey) != 0;
    EXPECT_EQ(Warm.SafeSide[I].Cached, !UsesPushFront) << Clients[I].Name;
    Reverified += !Warm.SafeSide[I].Cached;
  }
  EXPECT_GE(Reverified, 1u);
  EXPECT_EQ(WarmSess.stats().VerifiedSafe, Reverified);
  EXPECT_EQ(WarmSess.stats().Invalidated, Reverified);
  EXPECT_EQ(WarmSess.stats().Salvaged + WarmSess.stats().Implied, 0u);
}

//===----------------------------------------------------------------------===//
// Semantic salvage across Gilsonite spec edits (Vec universe)
//===----------------------------------------------------------------------===//

/// Scaffold for the spec-edit tests: a private Vec universe (the edits
/// mutate the spec table in place), lints off so the runs measure proof
/// obligations only.
struct VecEditRun {
  std::unique_ptr<VecLib> VL = buildVecLib();
  std::vector<std::string> Funcs = vecFunctions();
  incr::IncrConfig Inc;
  sched::SchedulerConfig C;

  explicit VecEditRun(const std::string &StoreName) {
    Inc.Enabled = true;
    Inc.StorePath = tempStorePath(StoreName);
  }

  std::vector<engine::VerifyReport> run(incr::IncrRunStats &S) {
    engine::VerifEnv E = VL->env();
    E.Lint.Enabled = false;
    engine::Verifier V(E);
    return V.verifyAll(Funcs, C, Inc, &S);
  }
};

TEST_F(IncrTest, SpecConjunctReorderSalvagesWithZeroSolverWork) {
  VecEditRun R("spec_reorder");
  incr::IncrRunStats S1;
  for (const engine::VerifyReport &Rep : R.run(S1))
    ASSERT_TRUE(Rep.Ok) << Rep.Func;
  EXPECT_EQ(S1.verified(), R.Funcs.size());

  // Rotate the *-conjuncts of get_raw's precondition. Star parts are
  // hashed in order, so the whole-entity fingerprint moves — but the
  // clause multiset is unchanged, so the cached verdict is salvaged
  // without a single solver query.
  gilsonite::Spec *Sp = R.VL->Specs.lookupMutable("Vec::get_raw");
  ASSERT_NE(Sp, nullptr);
  uint64_t FpBefore = incr::fpSpec(*Sp);
  std::vector<gilsonite::AssertionP> Parts = Sp->Pre->Parts;
  ASSERT_GE(Parts.size(), 2u);
  std::rotate(Parts.begin(), Parts.begin() + 1, Parts.end());
  Sp->Pre = gilsonite::star(std::move(Parts));
  ASSERT_NE(incr::fpSpec(*Sp), FpBefore); // The premise: order is hashed.

  incr::IncrRunStats S2;
  {
    metrics::ScopedSolverStatsReset Zero;
    for (const engine::VerifyReport &Rep : R.run(S2)) {
      EXPECT_TRUE(Rep.Ok) << Rep.Func;
      EXPECT_TRUE(Rep.Cached) << Rep.Func;
    }
    EXPECT_EQ(static_cast<uint64_t>(Zero.accrued().SatQueries), 0u);
    EXPECT_EQ(static_cast<uint64_t>(Zero.accrued().EntailQueries), 0u);
  }
  EXPECT_EQ(S2.cached(), R.Funcs.size());
  EXPECT_EQ(S2.verified(), 0u);
  EXPECT_EQ(S2.Invalidated, 0u);
  EXPECT_EQ(S2.Salvaged, 1u);
  EXPECT_EQ(S2.Implied, 0u);
  EXPECT_EQ(S2.SalvageQueries, 0u);
}

TEST_F(IncrTest, SpecConjunctStrengthenSalvagesThroughImplication) {
  VecEditRun R("spec_strengthen");
  incr::IncrRunStats S1;
  for (const engine::VerifyReport &Rep : R.run(S1))
    ASSERT_TRUE(Rep.Ok) << Rep.Func;

  // An equivalence-preserving rewrite of one pure pre conjunct of get_raw:
  // `i < len` becomes `i + 1 <= len`. The salvage pass reconstructs the old
  // clause from its journal text and proves both implication directions
  // (the spec is a self dependency), keeping the cached verdict.
  gilsonite::Spec *Sp = R.VL->Specs.lookupMutable("Vec::get_raw");
  ASSERT_NE(Sp, nullptr);
  Expr I = mkVar("i", Sort::Int);
  Expr Len = mkVar("len", Sort::Int);
  std::vector<gilsonite::AssertionP> Parts = Sp->Pre->Parts;
  ASSERT_GE(Parts.size(), 2u);
  Parts[1] = gilsonite::pure(mkLe(mkAdd(I, mkInt(1)), Len));
  Sp->Pre = gilsonite::star(std::move(Parts));

  incr::IncrRunStats S2;
  for (const engine::VerifyReport &Rep : R.run(S2)) {
    EXPECT_TRUE(Rep.Ok) << Rep.Func;
    EXPECT_TRUE(Rep.Cached) << Rep.Func;
  }
  EXPECT_EQ(S2.cached(), R.Funcs.size());
  EXPECT_EQ(S2.verified(), 0u);
  EXPECT_EQ(S2.Invalidated, 0u);
  EXPECT_EQ(S2.Implied, 1u);
  EXPECT_EQ(S2.Salvaged, 0u);
  // One removed pre conjunct (self direction) + one added (use direction).
  EXPECT_GE(S2.SalvageQueries, 2u);

  // The refreshed record makes the next run a plain warm hit.
  incr::IncrRunStats S3;
  for (const engine::VerifyReport &Rep : R.run(S3))
    EXPECT_TRUE(Rep.Cached) << Rep.Func;
  EXPECT_EQ(S3.cached(), R.Funcs.size());
  EXPECT_EQ(S3.Salvaged + S3.Implied, 0u);
  EXPECT_EQ(S3.SalvageQueries, 0u);
}

TEST_F(IncrTest, SpecConjunctDeleteOnUsedSideReverifies) {
  VecEditRun R("spec_delete");
  incr::IncrRunStats S1;
  for (const engine::VerifyReport &Rep : R.run(S1))
    ASSERT_TRUE(Rep.Ok) << Rep.Func;

  // Delete the pure post conjunct `ret == s[i]` the proof established. The
  // salvage obligation (new post must imply the removed conjunct) has an
  // empty context and fails, so the verdict is re-proved from scratch —
  // successfully, since the remaining post is weaker.
  gilsonite::Spec *Sp = R.VL->Specs.lookupMutable("Vec::get_raw");
  ASSERT_NE(Sp, nullptr);
  std::vector<gilsonite::AssertionP> Parts = Sp->Post->Parts;
  ASSERT_GE(Parts.size(), 2u);
  ASSERT_EQ(Parts[0]->Kind, gilsonite::AsrtKind::Pure);
  Parts.erase(Parts.begin());
  Sp->Post = gilsonite::star(std::move(Parts));

  incr::IncrRunStats S2;
  for (const engine::VerifyReport &Rep : R.run(S2))
    EXPECT_TRUE(Rep.Ok) << Rep.Func;
  EXPECT_EQ(S2.Invalidated, 1u);
  EXPECT_EQ(S2.VerifiedUnsafe, 1u);
  EXPECT_EQ(S2.CachedUnsafe, R.Funcs.size() - 1);
  EXPECT_EQ(S2.Salvaged + S2.Implied, 0u);
}

//===----------------------------------------------------------------------===//
// Telemetry / metrics satellites
//===----------------------------------------------------------------------===//

TEST_F(IncrTest, TelemetryReportsPerShardCacheHitRates) {
  sched::SchedulerConfig C;
  C.Threads = 2;
  sched::Scheduler S(C);
  engine::VerifEnv Env = Lib->env();
  ASSERT_TRUE(
      S.runHybrid(Env, Lib->Contracts, unsafeFuncs(), makeClients()).ok());

  metrics::QueryCacheReport QC = metrics::Registry::get().queryCacheReport();
  ASSERT_TRUE(QC.Valid);
  EXPECT_EQ(QC.Shards.size(), sched::QueryCache::NumShards);
  EXPECT_GT(QC.Hits + QC.Misses, 0u);

  std::string Json = trace::renderStatsJson({});
  EXPECT_NE(Json.find("\"query_cache\""), std::string::npos);
  EXPECT_NE(Json.find("\"shards\""), std::string::npos);
  EXPECT_NE(Json.find("\"hit_rate\""), std::string::npos);
  EXPECT_NE(Json.find("\"entail_seen_overflow\""), std::string::npos);
}

TEST_F(IncrTest, ScopedSolverStatsResetRestoresOuterCounts) {
  uint64_t Before = metrics::solverStats().SatQueries;
  {
    metrics::ScopedSolverStatsReset Zero;
    EXPECT_EQ(static_cast<uint64_t>(metrics::solverStats().SatQueries), 0u);
    metrics::solverStats().SatQueries += 2;
    metrics::threadSolverStats().SatQueries += 2;
    EXPECT_EQ(static_cast<uint64_t>(Zero.accrued().SatQueries), 2u);
  }
  EXPECT_EQ(static_cast<uint64_t>(metrics::solverStats().SatQueries),
            Before + 2);
}

} // namespace
