//===- tests/proph_test.cpp - Observations and prophecies (§5, Figs. 10-11) -===//

#include "proph/ObsCtx.h"
#include "proph/ProphecyCtx.h"
#include "sym/ExprBuilder.h"
#include "sym/VarGen.h"

#include <gtest/gtest.h>

using namespace gilr;
using namespace gilr::proph;

namespace {

class ProphTest : public ::testing::Test {
protected:
  Solver S;
  PathCondition PC;
  ObsCtx Obs;
  ProphecyCtx Pcy;
  VarGen VG;
};

TEST_F(ProphTest, ObservationProduceMerges) {
  // Obs-Merge: <ψ> * <ψ'> = <ψ /\ ψ'>.
  Expr X = VG.freshProphecy("x", Sort::Int);
  ASSERT_TRUE(Obs.produce(mkLt(mkInt(0), X), S, PC).ok());
  ASSERT_TRUE(Obs.produce(mkLt(X, mkInt(10)), S, PC).ok());
  EXPECT_TRUE(Obs.consume(mkAnd(mkLt(mkInt(0), X), mkLt(X, mkInt(10))), S,
                          PC)
                  .ok());
}

TEST_F(ProphTest, InconsistentObservationVanishes) {
  // Proph-Sat: an observation must be satisfiable with the current state.
  Expr X = VG.freshProphecy("x", Sort::Int);
  ASSERT_TRUE(Obs.produce(mkEq(X, mkInt(1)), S, PC).ok());
  EXPECT_TRUE(Obs.produce(mkEq(X, mkInt(2)), S, PC).vanished());
}

TEST_F(ProphTest, PathConditionFlowsIntoObservations) {
  // Proph-True / Observation-Consume: facts true outside the prophetic
  // world hold inside it.
  Expr Y = mkVar("y", Sort::Int);
  PC.add(mkEq(Y, mkInt(5)));
  EXPECT_TRUE(Obs.consume(mkLt(Y, mkInt(6)), S, PC).ok());
}

TEST_F(ProphTest, ObservationsAreDuplicable) {
  Expr X = VG.freshProphecy("x", Sort::Int);
  ASSERT_TRUE(Obs.produce(mkEq(X, mkInt(3)), S, PC).ok());
  EXPECT_TRUE(Obs.consume(mkEq(X, mkInt(3)), S, PC).ok());
  EXPECT_TRUE(Obs.consume(mkEq(X, mkInt(3)), S, PC).ok()); // Again.
}

TEST_F(ProphTest, UnentailedObservationFails) {
  Expr X = VG.freshProphecy("x", Sort::Int);
  EXPECT_TRUE(Obs.consume(mkEq(X, mkInt(1)), S, PC).failed());
}

//===----------------------------------------------------------------------===//
// Value observers / prophecy controllers (Fig. 11)
//===----------------------------------------------------------------------===//

TEST_F(ProphTest, ObserverThenControllerAgree) {
  // Mut-Agree automated: producing the missing half equates values.
  Expr A = mkVar("a", Sort::Int);
  Expr B = mkVar("b", Sort::Int);
  ASSERT_TRUE(Pcy.produceVO("x", A, S, PC).ok());
  ASSERT_TRUE(Pcy.producePC("x", B, S, PC).ok());
  EXPECT_TRUE(PC.entails(S, mkEq(A, B)));
}

TEST_F(ProphTest, ControllerThenObserverAgree) {
  Expr A = mkVar("a", Sort::Int);
  Expr B = mkVar("b", Sort::Int);
  ASSERT_TRUE(Pcy.producePC("x", A, S, PC).ok());
  ASSERT_TRUE(Pcy.produceVO("x", B, S, PC).ok());
  EXPECT_TRUE(PC.entails(S, mkEq(A, B)));
}

TEST_F(ProphTest, DuplicateHalvesVanish) {
  ASSERT_TRUE(Pcy.produceVO("x", mkInt(1), S, PC).ok());
  EXPECT_TRUE(Pcy.produceVO("x", mkInt(1), S, PC).vanished());
  ASSERT_TRUE(Pcy.producePC("y", mkInt(2), S, PC).ok());
  EXPECT_TRUE(Pcy.producePC("y", mkInt(2), S, PC).vanished());
}

TEST_F(ProphTest, ConsumeReturnsTrackedValue) {
  ASSERT_TRUE(Pcy.produceVO("x", mkInt(7), S, PC).ok());
  Outcome<Expr> V = Pcy.consumeVO("x");
  ASSERT_TRUE(V.ok());
  EXPECT_TRUE(exprEquals(V.value(), mkInt(7)));
  EXPECT_TRUE(Pcy.consumeVO("x").failed());
}

TEST_F(ProphTest, UpdateNeedsBothHalves) {
  // Mut-Update: VO_x(a) * PC_x(a) => VO_x(a') * PC_x(a').
  ASSERT_TRUE(Pcy.produceVO("x", mkInt(1), S, PC).ok());
  EXPECT_TRUE(Pcy.update("x", mkInt(2)).failed());
  ASSERT_TRUE(Pcy.producePC("x", mkInt(1), S, PC).ok());
  EXPECT_TRUE(Pcy.update("x", mkInt(2)).ok());
  Outcome<Expr> V = Pcy.consumeVO("x");
  ASSERT_TRUE(V.ok());
  EXPECT_TRUE(exprEquals(V.value(), mkInt(2)));
}

TEST_F(ProphTest, EntryRemovedWhenBothHalvesGone) {
  ASSERT_TRUE(Pcy.produceVO("x", mkInt(1), S, PC).ok());
  ASSERT_TRUE(Pcy.producePC("x", mkInt(1), S, PC).ok());
  ASSERT_TRUE(Pcy.consumeVO("x").ok());
  ASSERT_TRUE(Pcy.consumePC("x").ok());
  EXPECT_FALSE(Pcy.currentValue("x").has_value());
  // A fresh cycle can start over.
  EXPECT_TRUE(Pcy.produceVO("x", mkInt(9), S, PC).ok());
}

TEST_F(ProphTest, MutRefResolveScenario) {
  // The §5.3 resolution flow: open (PC appears with Mut-Agree), update,
  // close, observe final = current.
  Expr Cur = mkVar("cur", Sort::Seq);
  Expr X = VG.freshProphecy("pcy", Sort::Seq);
  ASSERT_TRUE(Pcy.produceVO(X->Name, Cur, S, PC).ok());
  // Borrow opens: the controller appears with the invariant's repr.
  Expr A = mkVar("a", Sort::Seq);
  ASSERT_TRUE(Pcy.producePC(X->Name, A, S, PC).ok());
  EXPECT_TRUE(PC.entails(S, mkEq(Cur, A)));
  // Mutation changes the repr; Mut-Update before closing.
  Expr A2 = mkVar("a2", Sort::Seq);
  ASSERT_TRUE(Pcy.update(X->Name, A2).ok());
  // Closing consumes the controller; resolution consumes the observer and
  // observes <current = prophecy>.
  ASSERT_TRUE(Pcy.consumePC(X->Name).ok());
  Outcome<Expr> Final = Pcy.consumeVO(X->Name);
  ASSERT_TRUE(Final.ok());
  ASSERT_TRUE(Obs.produce(mkEq(Final.value(), X), S, PC).ok());
  EXPECT_TRUE(Obs.consume(mkEq(A2, X), S, PC).ok());
}

} // namespace
