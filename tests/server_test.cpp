//===- tests/server_test.cpp - gilrd daemon + shared proof cache ------------===//
//
// The verification-as-a-service contract:
//
//  * the content-addressed SharedDirBackend round-trips records, degrades
//    corruption and foreign files to misses, enforces its size budget in
//    LRU order (pinned keys exempt), and its GC is idempotent;
//  * two backends over the same directory (two daemons, or a daemon and a
//    CI job) share records without torn reads under concurrent get/put;
//  * the gilr-server-v1 protocol round-trips requests and rejects
//    malformed, unversioned and unknown-method lines;
//  * the admission queue enforces per-client and global budgets and
//    schedules round-robin across clients;
//  * end to end over a real socket: a second submission of an unchanged
//    module replays every verdict with zero solver work and renders the
//    byte-identical `verdicts` array, and a *fresh* daemon pointed at the
//    same cache directory starts warm too.
//
//===----------------------------------------------------------------------===//

#include "incr/CacheBackend.h"
#include "incr/ProofStore.h"
#include "server/Admission.h"
#include "server/Client.h"
#include "server/Protocol.h"
#include "server/Server.h"
#include "support/Files.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

using namespace gilr;

namespace {

std::string tempDir(const std::string &Name) {
  std::string Path = ::testing::TempDir() + "gilr_server_" + Name;
  std::filesystem::remove_all(Path);
  return Path;
}

/// A small but realistic blob: a ProofStore obligation record, the payload
/// both cache levels share.
std::string sampleBlob(const std::string &Name, uint64_t SelfFp) {
  incr::StoredObligation Ob;
  Ob.S = incr::Side::Unsafe;
  Ob.Name = Name;
  Ob.SelfFp = SelfFp;
  Ob.ConfigFp = 42;
  Ob.Blob = "verdict:" + Name;
  return incr::encodeObligationRecord(Ob);
}

//===----------------------------------------------------------------------===//
// Cache keys
//===----------------------------------------------------------------------===//

TEST(CacheKey, DiscriminatesEveryComponent) {
  incr::CacheKey Base =
      incr::obligationCacheKey(incr::Side::Unsafe, "f", 1, 2);
  EXPECT_EQ(Base, incr::obligationCacheKey(incr::Side::Unsafe, "f", 1, 2));
  EXPECT_FALSE(Base ==
               incr::obligationCacheKey(incr::Side::Safe, "f", 1, 2));
  EXPECT_FALSE(Base ==
               incr::obligationCacheKey(incr::Side::Unsafe, "g", 1, 2));
  EXPECT_FALSE(Base ==
               incr::obligationCacheKey(incr::Side::Unsafe, "f", 3, 2));
  EXPECT_FALSE(Base ==
               incr::obligationCacheKey(incr::Side::Unsafe, "f", 1, 3));
  EXPECT_EQ(Base.hex().size(), 32u);
  EXPECT_EQ(Base.hex().find_first_not_of("0123456789abcdef"),
            std::string::npos);
}

//===----------------------------------------------------------------------===//
// SharedDirBackend
//===----------------------------------------------------------------------===//

TEST(SharedDirBackend, PutGetRoundTripAndMiss) {
  incr::SharedDirConfig C;
  C.Dir = tempDir("roundtrip");
  incr::SharedDirBackend B(C);
  incr::CacheKey K = incr::obligationCacheKey(incr::Side::Unsafe, "f", 1, 2);
  std::string Blob = sampleBlob("f", 1);

  std::string Got;
  EXPECT_FALSE(B.get(K, Got));
  ASSERT_TRUE(B.put(K, Blob));
  ASSERT_TRUE(B.get(K, Got));
  EXPECT_EQ(Got, Blob);

  // The record decodes back to the obligation we stored.
  incr::StoredObligation Ob;
  ASSERT_TRUE(incr::decodeObligationRecord(Got, Ob));
  EXPECT_EQ(Ob.Name, "f");
  EXPECT_EQ(Ob.Blob, "verdict:f");

  // A second put of the same key is first-writer-wins (skipped, not an
  // error); a second backend over the same directory sees the record.
  EXPECT_TRUE(B.put(K, Blob));
  incr::SharedDirBackend B2(C);
  ASSERT_TRUE(B2.get(K, Got));
  EXPECT_EQ(Got, Blob);

  incr::CacheBackendStats St = B.stats();
  EXPECT_EQ(St.Puts, 1u);
  EXPECT_EQ(St.PutsSkipped, 1u);
  EXPECT_GE(St.Hits, 1u);
}

TEST(SharedDirBackend, CorruptionAndForeignFilesReadAsMisses) {
  incr::SharedDirConfig C;
  C.Dir = tempDir("corrupt");
  C.MemCacheEntries = 0; // Force every get through the file.
  incr::SharedDirBackend B(C);
  incr::CacheKey K = incr::obligationCacheKey(incr::Side::Unsafe, "f", 1, 2);
  ASSERT_TRUE(B.put(K, sampleBlob("f", 1)));

  // Flip a payload byte: the checksum catches it.
  std::string Path = B.recordPath(K);
  std::string Bytes;
  ASSERT_TRUE(files::readFile(Path, Bytes, "record"));
  Bytes[Bytes.size() / 2] ^= 0x40;
  ASSERT_TRUE(files::writeFile(Path, Bytes, "record"));
  std::string Got;
  EXPECT_FALSE(B.get(K, Got));

  // Truncated record: miss, not an error.
  ASSERT_TRUE(files::writeFile(Path, Bytes.substr(0, 10), "record"));
  EXPECT_FALSE(B.get(K, Got));

  // A record renamed under the wrong key: the embedded key guards it.
  incr::CacheKey K2 = incr::obligationCacheKey(incr::Side::Unsafe, "g", 7, 2);
  ASSERT_TRUE(B.put(K2, sampleBlob("g", 7)));
  std::string Renamed;
  ASSERT_TRUE(files::readFile(B.recordPath(K2), Renamed, "record"));
  ASSERT_TRUE(files::writeFile(Path, Renamed, "record"));
  EXPECT_FALSE(B.get(K, Got));
}

TEST(SharedDirBackend, GcEnforcesBudgetSparesPinnedAndIsIdempotent) {
  incr::SharedDirConfig C;
  C.Dir = tempDir("gc");
  C.MemCacheEntries = 0;
  incr::SharedDirBackend B(C);

  // Ten records, ~identical sizes; pin one of the oldest.
  std::vector<incr::CacheKey> Keys;
  uint64_t RecordBytes = 0;
  for (uint64_t I = 0; I < 10; ++I) {
    incr::CacheKey K = incr::obligationCacheKey(
        incr::Side::Unsafe, "f" + std::to_string(I), I, 2);
    Keys.push_back(K);
    ASSERT_TRUE(B.put(K, sampleBlob("f" + std::to_string(I), I)));
    std::string Bytes;
    ASSERT_TRUE(files::readFile(B.recordPath(K), Bytes, "record"));
    RecordBytes = Bytes.size();
    // Distinct mtimes so the LRU order is well defined.
    std::filesystem::last_write_time(
        B.recordPath(K), std::filesystem::file_time_type::clock::now() -
                             std::chrono::seconds(100 - I));
  }
  B.pin(Keys[0]);

  // Budget for roughly four records: GC must evict down to it, oldest
  // first, skipping the pinned key.
  incr::SharedDirConfig Budgeted = C;
  Budgeted.SizeBudgetBytes = RecordBytes * 4;
  incr::SharedDirBackend Owner(Budgeted);
  Owner.pin(Keys[0]);
  ASSERT_TRUE(Owner.gc());
  incr::CacheBackendStats St = Owner.stats();
  EXPECT_LE(St.Bytes, Budgeted.SizeBudgetBytes);
  EXPECT_GE(St.Evictions, 1u);

  std::string Got;
  EXPECT_TRUE(Owner.get(Keys[0], Got)) << "pinned record was evicted";
  // The newest records survive, the oldest unpinned ones go first.
  EXPECT_TRUE(Owner.get(Keys[9], Got));
  EXPECT_FALSE(Owner.get(Keys[1], Got));

  // Idempotence: a second GC with no intervening traffic evicts nothing.
  uint64_t EvictionsAfterFirst = St.Evictions;
  ASSERT_TRUE(Owner.gc());
  EXPECT_EQ(Owner.stats().Evictions, EvictionsAfterFirst);
}

TEST(SharedDirBackend, ConcurrentGetPutAcrossTwoBackends) {
  incr::SharedDirConfig C;
  C.Dir = tempDir("concurrent");
  incr::SharedDirBackend A(C), B(C);

  constexpr int N = 64;
  std::atomic<int> Misdelivered{0};
  auto Writer = [&](incr::SharedDirBackend &Back, int Lo, int Hi) {
    for (int I = Lo; I < Hi; ++I) {
      std::string Name = "f" + std::to_string(I);
      incr::CacheKey K = incr::obligationCacheKey(
          incr::Side::Unsafe, Name, static_cast<uint64_t>(I), 2);
      if (!Back.put(K, sampleBlob(Name, static_cast<uint64_t>(I))))
        ++Misdelivered;
    }
  };
  auto Reader = [&](incr::SharedDirBackend &Back) {
    for (int Round = 0; Round < 4; ++Round)
      for (int I = 0; I < N; ++I) {
        std::string Name = "f" + std::to_string(I);
        incr::CacheKey K = incr::obligationCacheKey(
            incr::Side::Unsafe, Name, static_cast<uint64_t>(I), 2);
        std::string Got;
        // Misses are fine while writes race; a hit must be intact.
        if (Back.get(K, Got) && Got != sampleBlob(Name, uint64_t(I)))
          ++Misdelivered;
      }
  };
  std::thread T1(Writer, std::ref(A), 0, N / 2);
  std::thread T2(Writer, std::ref(B), N / 2, N);
  std::thread T3(Reader, std::ref(A));
  std::thread T4(Reader, std::ref(B));
  T1.join();
  T2.join();
  T3.join();
  T4.join();
  EXPECT_EQ(Misdelivered.load(), 0);

  // After the dust settles both backends serve all records.
  for (int I = 0; I < N; ++I) {
    std::string Name = "f" + std::to_string(I);
    incr::CacheKey K = incr::obligationCacheKey(
        incr::Side::Unsafe, Name, static_cast<uint64_t>(I), 2);
    std::string Got;
    EXPECT_TRUE(A.get(K, Got)) << Name;
    EXPECT_TRUE(B.get(K, Got)) << Name;
  }
}

TEST(LocalStoreBackend, AdaptsTheAppendLog) {
  std::string Path = ::testing::TempDir() + "gilr_server_localstore.prf";
  std::remove(Path.c_str());
  incr::LocalStoreBackend B(Path);
  incr::CacheKey K = incr::obligationCacheKey(incr::Side::Unsafe, "f", 1, 42);
  std::string Got;
  EXPECT_FALSE(B.get(K, Got));
  ASSERT_TRUE(B.put(K, sampleBlob("f", 1)));
  ASSERT_TRUE(B.get(K, Got));
  EXPECT_EQ(Got, sampleBlob("f", 1));
  ASSERT_TRUE(B.flush());

  // A fresh backend over the flushed file still serves the record.
  incr::LocalStoreBackend B2(Path);
  ASSERT_TRUE(B2.get(K, Got));
  EXPECT_EQ(Got, sampleBlob("f", 1));
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Protocol
//===----------------------------------------------------------------------===//

TEST(Protocol, RequestRoundTripAndRejection) {
  server::Request R;
  std::string Err;
  ASSERT_TRUE(server::parseRequest(
      "{\"gilr\": \"gilr-server-v1\", \"id\": \"r1\", \"method\": "
      "\"verify\", \"name\": \"m\", \"module\": \"fn f() {}\", \"client\": "
      "\"ci\", \"jobs\": 4, \"timeout_ms\": 250}",
      R, Err))
      << Err;
  EXPECT_EQ(R.Id, "r1");
  EXPECT_EQ(R.Method, "verify");
  EXPECT_EQ(R.Name, "m");
  EXPECT_EQ(R.Module, "fn f() {}");
  EXPECT_EQ(R.Client, "ci");
  EXPECT_EQ(R.Jobs, 4u);
  EXPECT_EQ(R.TimeoutMs, 250u);

  // Control methods need no module.
  EXPECT_TRUE(server::parseRequest(
      "{\"gilr\": \"gilr-server-v1\", \"id\": \"p\", \"method\": \"ping\"}",
      R, Err));

  // Rejected: not JSON, missing version tag, foreign version, unknown
  // method, verify without a module.
  EXPECT_FALSE(server::parseRequest("not json", R, Err));
  EXPECT_FALSE(server::parseRequest(
      "{\"id\": \"x\", \"method\": \"ping\"}", R, Err));
  EXPECT_FALSE(server::parseRequest(
      "{\"gilr\": \"gilr-server-v99\", \"id\": \"x\", \"method\": "
      "\"ping\"}",
      R, Err));
  EXPECT_FALSE(server::parseRequest(
      "{\"gilr\": \"gilr-server-v1\", \"id\": \"x\", \"method\": "
      "\"explode\"}",
      R, Err));
  EXPECT_FALSE(server::parseRequest(
      "{\"gilr\": \"gilr-server-v1\", \"id\": \"x\", \"method\": "
      "\"verify\"}",
      R, Err));
}

TEST(Protocol, EventsAreVersionedOneLineJson) {
  for (const std::string &Line :
       {server::renderAccepted("r1", 3),
        server::renderDiagnostic("r1", "warning: something\nwith newline"),
        server::renderError("r1", "broken", 4)}) {
    json::ValuePtr V = json::parse(Line);
    ASSERT_TRUE(V && V->isObject()) << Line;
    json::ValuePtr Tag = V->get("gilr");
    ASSERT_TRUE(Tag && Tag->isString());
    EXPECT_EQ(Tag->Str, server::protocolVersion());
    json::ValuePtr Id = V->get("id");
    ASSERT_TRUE(Id && Id->isString());
    EXPECT_EQ(Id->Str, "r1");
    EXPECT_EQ(Line.find('\n'), std::string::npos) << "NDJSON framing";
  }
}

TEST(Protocol, VerdictArrayIsStableAcrossRenderings) {
  std::vector<server::Verdict> Vs = {{"Vec::push_raw", false, true},
                                     {"client_sum", true, false}};
  std::string A = server::renderVerdicts(Vs);
  EXPECT_EQ(A, server::renderVerdicts(Vs));
  EXPECT_NE(A.find("\"unsafe\""), std::string::npos);
  EXPECT_NE(A.find("\"safe\""), std::string::npos);
  // Replay-stable: no timing or cache provenance in the array.
  EXPECT_EQ(A.find("seconds"), std::string::npos);
  EXPECT_EQ(A.find("cached"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Admission
//===----------------------------------------------------------------------===//

TEST(Admission, PerClientAndGlobalBudgets) {
  server::AdmissionConfig C;
  C.MaxQueued = 4;
  C.PerClientMaxQueued = 2;
  server::AdmissionQueue Q(C);

  std::size_t Pos = 0;
  uint64_t A1 = Q.enqueue("a", Pos);
  ASSERT_NE(A1, 0u);
  // A1 is immediately active; "a" may queue one more (running + queued = 2)
  // and the third is rejected.
  uint64_t A2 = Q.enqueue("a", Pos);
  ASSERT_NE(A2, 0u);
  EXPECT_EQ(Q.enqueue("a", Pos), 0u);

  // Other clients have their own budget until the global cap bites.
  uint64_t B1 = Q.enqueue("b", Pos);
  ASSERT_NE(B1, 0u);
  uint64_t C1 = Q.enqueue("c", Pos);
  ASSERT_NE(C1, 0u);
  EXPECT_EQ(Q.enqueue("d", Pos), 0u) << "global MaxQueued";

  server::AdmissionStats St = Q.stats();
  EXPECT_EQ(St.Admitted, 4u);
  EXPECT_EQ(St.Rejected, 2u);
  EXPECT_EQ(St.Clients, 3u);

  // Round-robin: after a's first job finishes, b and c go before a's
  // second (they are behind in the rotation but have queued work).
  EXPECT_TRUE(Q.waitTurn(A1));
  Q.done(A1);
  EXPECT_TRUE(Q.waitTurn(B1));
  Q.done(B1);
  EXPECT_TRUE(Q.waitTurn(C1));
  Q.done(C1);
  EXPECT_TRUE(Q.waitTurn(A2));
  Q.done(A2);
  EXPECT_EQ(Q.stats().Completed, 4u);
  EXPECT_EQ(Q.stats().Queued, 0u);
}

TEST(Admission, ShutdownWakesWaiters) {
  server::AdmissionQueue Q({});
  std::size_t Pos = 0;
  uint64_t T1 = Q.enqueue("a", Pos);
  uint64_t T2 = Q.enqueue("a", Pos);
  ASSERT_NE(T1, 0u);
  ASSERT_NE(T2, 0u);
  std::thread Waiter([&] { EXPECT_FALSE(Q.waitTurn(T2)); });
  Q.shutdown();
  Waiter.join();
  EXPECT_EQ(Q.enqueue("a", Pos), 0u) << "stopped queue admits nothing";
}

//===----------------------------------------------------------------------===//
// End to end over a real socket
//===----------------------------------------------------------------------===//

std::string corpusPath(const std::string &Name) {
  return std::string(GILR_CORPUS_DIR) + "/" + Name;
}

/// Runs `gilr client --json` against \p Socket for one module and returns
/// (exit code, parsed result object).
struct ClientRun {
  int Exit = -1;
  std::string RawLine;
  json::ValuePtr Result;
};

ClientRun submit(const std::string &Socket, const std::string &File) {
  server::ClientOptions Opt;
  Opt.SocketPath = Socket;
  Opt.Files = {File};
  Opt.Json = true;
  std::ostringstream Out, Err;
  ClientRun R;
  R.Exit = server::runClient(Opt, Out, Err);
  R.RawLine = Out.str();
  R.Result = json::parse(R.RawLine);
  EXPECT_TRUE(R.Result && R.Result->isObject())
      << "stdout: " << Out.str() << "\nstderr: " << Err.str();
  return R;
}

uint64_t field(const json::ValuePtr &Obj, const std::string &Path) {
  json::ValuePtr V = Obj ? Obj->at(Path) : nullptr;
  return V ? static_cast<uint64_t>(V->numberOr(0)) : ~0ull;
}

/// The raw `"verdicts": [...]` slice of a result line — compared as bytes,
/// because byte-identity (not just semantic equality) is the contract.
std::string verdictSlice(const std::string &Line) {
  std::size_t Start = Line.find("\"verdicts\": [");
  if (Start == std::string::npos)
    return "<no verdicts>";
  std::size_t End = Line.find(']', Start);
  return Line.substr(Start, End == std::string::npos ? End : End - Start + 1);
}

class ServerEndToEnd : public ::testing::Test {
protected:
  std::string startServer(server::Server &S) {
    std::string Err;
    if (!S.start(Err)) {
      ADD_FAILURE() << "server start: " << Err;
      return "";
    }
    Serving = std::thread([&S] { S.serve(); });
    return S.config().SocketPath;
  }
  void TearDown() override {
    if (Serving.joinable())
      Serving.join();
  }
  std::thread Serving;
};

TEST_F(ServerEndToEnd, WarmReplayAndSharedCacheAcrossDaemons) {
  std::string Dir = tempDir("e2e");
  server::ServerConfig Cfg;
  Cfg.SocketPath = Dir + ".sock";
  Cfg.CacheDir = Dir;

  std::string ColdVerdicts, ColdLine;
  {
    server::Server S(Cfg);
    ASSERT_FALSE(startServer(S).empty());

    // Cold: everything is verified, nothing cached.
    ClientRun Cold = submit(Cfg.SocketPath, corpusPath("vec.gilr"));
    EXPECT_EQ(Cold.Exit, 0);
    EXPECT_EQ(field(Cold.Result, "incremental.cached"), 0u);
    EXPECT_GT(field(Cold.Result, "incremental.verified"), 0u);
    EXPECT_GT(field(Cold.Result, "incremental.shared_puts"), 0u);
    ColdVerdicts = verdictSlice(Cold.RawLine);
    ASSERT_NE(ColdVerdicts, "<no verdicts>");

    // Warm, same daemon: replayed verdicts, zero solver work, and the
    // byte-identical verdicts array.
    ClientRun Warm = submit(Cfg.SocketPath, corpusPath("vec.gilr"));
    EXPECT_EQ(Warm.Exit, 0);
    EXPECT_EQ(field(Warm.Result, "incremental.verified"), 0u);
    EXPECT_GT(field(Warm.Result, "incremental.cached"), 0u);
    EXPECT_GT(field(Warm.Result, "incremental.shared_hits"), 0u);
    EXPECT_EQ(field(Warm.Result, "solver.sat_queries"), 0u);
    EXPECT_EQ(field(Warm.Result, "solver.entail_queries"), 0u);
    EXPECT_EQ(field(Warm.Result, "solver.branches"), 0u);
    EXPECT_EQ(verdictSlice(Warm.RawLine), ColdVerdicts);

    S.stop();
    Serving.join(); // serve() must drain before S is destroyed
  }

  // A fresh daemon over the same cache directory: no resident state, yet
  // the shared cache alone replays everything.
  {
    server::Server S2(Cfg);
    ASSERT_FALSE(startServer(S2).empty());
    ClientRun Fresh = submit(Cfg.SocketPath, corpusPath("vec.gilr"));
    EXPECT_EQ(Fresh.Exit, 0);
    EXPECT_EQ(field(Fresh.Result, "incremental.verified"), 0u);
    EXPECT_GT(field(Fresh.Result, "incremental.shared_hits"), 0u);
    EXPECT_EQ(field(Fresh.Result, "solver.sat_queries"), 0u);
    EXPECT_EQ(field(Fresh.Result, "solver.entail_queries"), 0u);
    EXPECT_EQ(verdictSlice(Fresh.RawLine), ColdVerdicts);
    S2.stop();
    Serving.join();
  }
}

TEST_F(ServerEndToEnd, ControlRequestsAndParseFailures) {
  std::string Dir = tempDir("ctl");
  server::ServerConfig Cfg;
  Cfg.SocketPath = Dir + ".sock";
  server::Server S(Cfg);
  ASSERT_FALSE(startServer(S).empty());

  // ping / stats round-trip with exit 0.
  for (const char *Method : {"ping", "stats"}) {
    server::ClientOptions Opt;
    Opt.SocketPath = Cfg.SocketPath;
    Opt.Method = Method;
    std::ostringstream Out, Err;
    EXPECT_EQ(server::runClient(Opt, Out, Err), 0)
        << Method << ": " << Err.str();
  }

  // A module that does not parse: exit 3 through the wire.
  std::string Bad = tempDir("badmod") + ".gilr";
  ASSERT_TRUE(files::writeFile(Bad, "fn broken(", "test module"));
  server::ClientOptions Opt;
  Opt.SocketPath = Cfg.SocketPath;
  Opt.Files = {Bad};
  std::ostringstream Out, Err;
  EXPECT_EQ(server::runClient(Opt, Out, Err), 3);
  std::remove(Bad.c_str());

  // Shutdown request stops the daemon; serve() returns (TearDown joins).
  Opt.Files.clear();
  Opt.Method = "shutdown";
  std::ostringstream Out2, Err2;
  EXPECT_EQ(server::runClient(Opt, Out2, Err2), 0) << Err2.str();

  // Connecting after shutdown is a transport failure (exit 4).
  Serving.join();
  std::ostringstream Out3, Err3;
  Opt.Method = "ping";
  EXPECT_EQ(server::runClient(Opt, Out3, Err3), 4);
}

} // namespace
