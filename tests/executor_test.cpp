//===- tests/executor_test.cpp - Symbolic executor unit tests ---------------===//
//
// Small hand-built RMIR programs driving the executor: arithmetic with
// overflow obligations, branching, calls through specs, ghost assertions,
// heap round trips, and failure modes (dangling loads, double frees,
// reachable unreachable).
//
//===----------------------------------------------------------------------===//

#include "engine/Verifier.h"
#include "rmir/Builder.h"
#include "sym/ExprBuilder.h"

#include <gtest/gtest.h>

using namespace gilr;
using namespace gilr::engine;
using namespace gilr::rmir;
using namespace gilr::gilsonite;

namespace {

class ExecutorTest : public ::testing::Test {
protected:
  ExecutorTest() : Ownables(Prog.Types, Preds) {
    U32 = Prog.Types.intTy(IntKind::U32);
    Usize = Prog.Types.usize();
    P32 = Prog.Types.rawPtr(U32);
    BoolTy = Prog.Types.boolTy();
  }

  VerifyReport verify(const std::string &Name) {
    VerifEnv Env{Prog, Preds, Specs, Ownables, Lemmas, Solv, Auto,
                 analysis::AnalysisConfig{}};
    Verifier V(Env);
    return V.verifyFunction(Name);
  }

  void addFn(Function F) {
    std::string N = F.Name;
    Prog.Funcs.emplace(std::move(N), std::move(F));
  }

  /// Adds a spec { pure Pre } f { pure Post } with the given spec vars.
  void addSpec(const std::string &Func, AssertionP Pre, AssertionP Post,
               std::vector<Binder> Vars = {}) {
    Spec S;
    S.Func = Func;
    S.SpecVars = std::move(Vars);
    S.Pre = std::move(Pre);
    S.Post = std::move(Post);
    Specs.add(std::move(S));
  }

  rmir::Program Prog;
  PredTable Preds;
  SpecTable Specs;
  OwnableRegistry Ownables;
  LemmaTable Lemmas;
  Solver Solv;
  Automation Auto;
  TypeRef U32, Usize, P32, BoolTy;
};

TEST_F(ExecutorTest, StraightLineArithmetic) {
  FunctionBuilder B("inc", Prog.Types);
  LocalId X = B.addParam("x", U32);
  B.setReturnType(U32);
  BlockId E = B.newBlock();
  B.atBlock(E);
  B.assign(Place(0), Rvalue::binary(BinOp::Add, Operand::copy(Place(X)),
                                    Operand::constant(mkInt(1), U32)));
  B.ret();
  addFn(B.finish());

  Expr XV = mkVar("x", Sort::Int);
  addSpec("inc", pure(mkLt(XV, mkInt(100))),
          pure(mkEq(mkVar(retVarName(), Sort::Int), mkAdd(XV, mkInt(1)))));
  VerifyReport R = verify("inc");
  EXPECT_TRUE(R.Ok) << (R.Errors.empty() ? "" : R.Errors.front());
  EXPECT_EQ(R.PathsCompleted, 1u);
}

TEST_F(ExecutorTest, OverflowObligationFailsWithoutPrecondition) {
  FunctionBuilder B("inc2", Prog.Types);
  LocalId X = B.addParam("x", U32);
  B.setReturnType(U32);
  BlockId E = B.newBlock();
  B.atBlock(E);
  B.assign(Place(0), Rvalue::binary(BinOp::Add, Operand::copy(Place(X)),
                                    Operand::constant(mkInt(1), U32)));
  B.ret();
  addFn(B.finish());
  addSpec("inc2", emp(), emp());
  VerifyReport R = verify("inc2");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Errors.front().find("overflow"), std::string::npos);
}

TEST_F(ExecutorTest, OverflowBecomesSafePanicWhenAllowed) {
  FunctionBuilder B("inc3", Prog.Types);
  LocalId X = B.addParam("x", U32);
  B.setReturnType(U32);
  BlockId E = B.newBlock();
  B.atBlock(E);
  B.assign(Place(0), Rvalue::binary(BinOp::Add, Operand::copy(Place(X)),
                                    Operand::constant(mkInt(1), U32)));
  B.ret();
  addFn(B.finish());
  addSpec("inc3", emp(), emp());
  Auto.PanicsAllowed = true;
  VerifyReport R = verify("inc3");
  EXPECT_TRUE(R.Ok) << (R.Errors.empty() ? "" : R.Errors.front());
  EXPECT_EQ(R.PathsCompleted, 2u); // Normal path + the aborting path.
}

TEST_F(ExecutorTest, BranchingJoinsBothPaths) {
  // fn max(a, b) -> u32 { if a < b { b } else { a } }.
  FunctionBuilder B("max", Prog.Types);
  LocalId A = B.addParam("a", U32);
  LocalId Bp = B.addParam("b", U32);
  B.setReturnType(U32);
  LocalId C = B.addLocal("c", BoolTy);
  LocalId D = B.addLocal("d", Usize);
  BlockId E = B.newBlock();
  BlockId TakeB = B.newBlock();
  BlockId TakeA = B.newBlock();
  B.atBlock(E);
  B.assign(Place(C), Rvalue::binary(BinOp::Lt, Operand::copy(Place(A)),
                                    Operand::copy(Place(Bp))));
  // Lower bool to a switch through an Ite-valued discriminant.
  B.assign(Place(D),
           Rvalue::use(Operand::copy(Place(C))));
  B.switchInt(Operand::copy(Place(C)), {{0, TakeA}}, TakeB);
  B.atBlock(TakeB);
  B.assign(Place(0), Rvalue::use(Operand::copy(Place(Bp))));
  B.ret();
  B.atBlock(TakeA);
  B.assign(Place(0), Rvalue::use(Operand::copy(Place(A))));
  B.ret();
  addFn(B.finish());

  Expr AV = mkVar("a", Sort::Int);
  Expr BV = mkVar("b", Sort::Int);
  Expr Ret = mkVar(retVarName(), Sort::Int);
  addSpec("max", emp(),
          pure(mkAnd({mkLe(AV, Ret), mkLe(BV, Ret),
                      mkOr(mkEq(Ret, AV), mkEq(Ret, BV))})));
  VerifyReport R = verify("max");
  EXPECT_TRUE(R.Ok) << (R.Errors.empty() ? "" : R.Errors.front());
  EXPECT_EQ(R.PathsCompleted, 2u);
}

TEST_F(ExecutorTest, HeapRoundTripThroughRawPointer) {
  // fn bump(p: *mut u32) { *p = *p + 1 } with { p |-> v /\ v < 10 }.
  FunctionBuilder B("bump", Prog.Types);
  LocalId P = B.addParam("p", P32);
  LocalId T = B.addLocal("t", U32);
  BlockId E = B.newBlock();
  B.atBlock(E);
  B.assign(Place(T),
           Rvalue::binary(BinOp::Add, Operand::copy(Place(P).deref()),
                          Operand::constant(mkInt(1), U32)));
  B.assign(Place(P).deref(), Rvalue::use(Operand::copy(Place(T))));
  B.ret();
  addFn(B.finish());

  Expr PV = mkVar("p", Sort::Tuple);
  Expr V = mkVar("v$", Sort::Int);
  addSpec("bump",
          star({pointsTo(PV, U32, V), pure(mkLt(V, mkInt(10)))}),
          pointsTo(PV, U32, mkAdd(V, mkInt(1))),
          {Binder{"v$", Sort::Int}});
  VerifyReport R = verify("bump");
  EXPECT_TRUE(R.Ok) << (R.Errors.empty() ? "" : R.Errors.front());
}

TEST_F(ExecutorTest, WrongPostconditionFails) {
  FunctionBuilder B("bad", Prog.Types);
  B.addParam("p", P32);
  BlockId E = B.newBlock();
  B.atBlock(E);
  B.ret();
  addFn(B.finish());
  Expr PV = mkVar("p", Sort::Tuple);
  Expr V = mkVar("v$", Sort::Int);
  addSpec("bad", pointsTo(PV, U32, V),
          pointsTo(PV, U32, mkAdd(V, mkInt(1))), {Binder{"v$", Sort::Int}});
  VerifyReport R = verify("bad");
  EXPECT_FALSE(R.Ok);
}

TEST_F(ExecutorTest, UseAfterFreeIsCaught) {
  // fn uaf(p: *mut u32) -> u32 { free(p); *p }.
  FunctionBuilder B("uaf", Prog.Types);
  LocalId P = B.addParam("p", P32);
  B.setReturnType(U32);
  BlockId E = B.newBlock();
  B.atBlock(E);
  B.free(Operand::copy(Place(P)), U32);
  B.assign(Place(0), Rvalue::use(Operand::copy(Place(P).deref())));
  B.ret();
  addFn(B.finish());
  Expr PV = mkVar("p", Sort::Tuple);
  addSpec("uaf", pointsTo(PV, U32, mkVar("v$", Sort::Int)), emp(),
          {Binder{"v$", Sort::Int}});
  VerifyReport R = verify("uaf");
  EXPECT_FALSE(R.Ok);
}

TEST_F(ExecutorTest, DoubleFreeIsCaught) {
  FunctionBuilder B("df", Prog.Types);
  LocalId P = B.addParam("p", P32);
  BlockId E = B.newBlock();
  B.atBlock(E);
  B.free(Operand::copy(Place(P)), U32);
  B.free(Operand::copy(Place(P)), U32);
  B.ret();
  addFn(B.finish());
  Expr PV = mkVar("p", Sort::Tuple);
  addSpec("df", pointsTo(PV, U32, mkVar("v$", Sort::Int)), emp(),
          {Binder{"v$", Sort::Int}});
  VerifyReport R = verify("df");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Errors.front().find("free"), std::string::npos);
}

TEST_F(ExecutorTest, AllocStoreFreeVerifies) {
  // fn scratch() { let p = alloc(); *p = 3; free(p); }.
  FunctionBuilder B("scratch", Prog.Types);
  LocalId P = B.addLocal("p", P32);
  BlockId E = B.newBlock();
  B.atBlock(E);
  B.alloc(Place(P), U32);
  B.assign(Place(P).deref(),
           Rvalue::use(Operand::constant(mkInt(3), U32)));
  B.free(Operand::copy(Place(P)), U32);
  B.ret();
  addFn(B.finish());
  addSpec("scratch", emp(), emp());
  VerifyReport R = verify("scratch");
  EXPECT_TRUE(R.Ok) << (R.Errors.empty() ? "" : R.Errors.front());
}

TEST_F(ExecutorTest, CompositionalCallUsesSpecNotBody) {
  // Callee with a deliberately WRONG body but a consistent spec pair:
  // the caller verifies against the spec (compositionality); verifying the
  // callee itself fails.
  {
    FunctionBuilder B("lies", Prog.Types);
    B.addParam("x", U32);
    B.setReturnType(U32);
    BlockId E = B.newBlock();
    B.atBlock(E);
    B.assign(Place(0), Rvalue::use(Operand::constant(mkInt(0), U32)));
    B.ret();
    addFn(B.finish());
    Expr XV = mkVar("x", Sort::Int);
    addSpec("lies", emp(),
            pure(mkEq(mkVar(retVarName(), Sort::Int), mkAdd(XV, mkInt(1)))));
  }
  {
    FunctionBuilder B("caller", Prog.Types);
    B.setReturnType(U32);
    LocalId T = B.addLocal("t", U32);
    BlockId E = B.newBlock();
    BlockId Cont = B.newBlock();
    B.atBlock(E);
    B.call("lies", {Operand::constant(mkInt(1), U32)}, Place(T), Cont);
    B.atBlock(Cont);
    B.assign(Place(0), Rvalue::use(Operand::copy(Place(T))));
    B.ret();
    addFn(B.finish());
    addSpec("caller", emp(),
            pure(mkEq(mkVar(retVarName(), Sort::Int), mkInt(2))));
  }
  EXPECT_TRUE(verify("caller").Ok);
  EXPECT_FALSE(verify("lies").Ok);
}

TEST_F(ExecutorTest, ReachableUnreachableFails) {
  FunctionBuilder B("oops", Prog.Types);
  BlockId E = B.newBlock();
  B.atBlock(E);
  B.unreachable();
  addFn(B.finish());
  addSpec("oops", emp(), emp());
  VerifyReport R = verify("oops");
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Errors.front().find("unreachable"), std::string::npos);
}

TEST_F(ExecutorTest, UnreachableUnderContradictionIsFine) {
  FunctionBuilder B("fine", Prog.Types);
  LocalId X = B.addParam("x", U32);
  LocalId D = B.addLocal("d", BoolTy);
  BlockId E = B.newBlock();
  BlockId Dead = B.newBlock();
  BlockId Live = B.newBlock();
  B.atBlock(E);
  B.assign(Place(D), Rvalue::binary(BinOp::Lt, Operand::copy(Place(X)),
                                    Operand::copy(Place(X))));
  B.switchInt(Operand::copy(Place(D)), {{0, Live}}, Dead);
  B.atBlock(Dead);
  B.unreachable(); // x < x is impossible.
  B.atBlock(Live);
  B.ret();
  addFn(B.finish());
  addSpec("fine", emp(), emp());
  VerifyReport R = verify("fine");
  EXPECT_TRUE(R.Ok) << (R.Errors.empty() ? "" : R.Errors.front());
}

TEST_F(ExecutorTest, GhostAssertChecksLocalFacts) {
  FunctionBuilder B("ghostly", Prog.Types);
  LocalId X = B.addParam("x", U32);
  BlockId E = B.newBlock();
  B.atBlock(E);
  B.ghost({GhostKind::AssertPure, "", {},
           mkLe(mkInt(0), mkVar("x", Sort::Int))});
  B.ret();
  addFn(B.finish());
  addSpec("ghostly", pure(mkLe(mkInt(0), mkVar("x", Sort::Int))), emp());
  (void)X;
  EXPECT_TRUE(verify("ghostly").Ok);

  // And a false ghost assertion fails.
  FunctionBuilder B2("ghostly2", Prog.Types);
  B2.addParam("x", U32);
  BlockId E2 = B2.newBlock();
  B2.atBlock(E2);
  B2.ghost({GhostKind::AssertPure, "", {},
            mkLt(mkVar("x", Sort::Int), mkInt(0))});
  B2.ret();
  addFn(B2.finish());
  addSpec("ghostly2", emp(), emp());
  EXPECT_FALSE(verify("ghostly2").Ok);
}

TEST_F(ExecutorTest, StructAggregateAndFieldUpdate) {
  TypeRef Pair = Prog.Types.declareStruct(
      "PairU32", {FieldDef{"a", U32}, FieldDef{"b", U32}});
  FunctionBuilder B("mk", Prog.Types);
  LocalId X = B.addParam("x", U32);
  B.setReturnType(Pair);
  LocalId T = B.addLocal("t", Pair);
  BlockId E = B.newBlock();
  B.atBlock(E);
  B.assign(Place(T), Rvalue::aggregate(Pair, 0,
                                       {Operand::copy(Place(X)),
                                        Operand::constant(mkInt(0), U32)}));
  // Pure field update on a local.
  B.assign(Place(T).field(1), Rvalue::use(Operand::copy(Place(X))));
  B.assign(Place(0), Rvalue::use(Operand::copy(Place(T))));
  B.ret();
  addFn(B.finish());
  Expr XV = mkVar("x", Sort::Int);
  addSpec("mk", emp(),
          pure(mkEq(mkVar(retVarName(), Sort::Tuple), mkTuple({XV, XV}))));
  EXPECT_TRUE(verify("mk").Ok);
}

TEST_F(ExecutorTest, MissingSpecOrFunctionIsReported) {
  VerifyReport R1 = verify("nonexistent");
  EXPECT_FALSE(R1.Ok | R1.Errors.empty());
  FunctionBuilder B("nospec", Prog.Types);
  BlockId E = B.newBlock();
  B.atBlock(E);
  B.ret();
  addFn(B.finish());
  VerifyReport R2 = verify("nospec");
  EXPECT_FALSE(R2.Ok | R2.Errors.empty());
}

} // namespace

namespace {

TEST_F(ExecutorTest, TrustedSpecsAreAssumedNotVerified) {
  // A trusted spec over a wrong body: the verifier must not run the body
  // (paper §4.3: the conclusion lemma of an extraction is trusted), but
  // callers may still use it compositionally.
  FunctionBuilder B("axiom", Prog.Types);
  B.addParam("x", U32);
  B.setReturnType(U32);
  BlockId E = B.newBlock();
  B.atBlock(E);
  B.assign(Place(0), Rvalue::use(Operand::constant(mkInt(0), U32)));
  B.ret();
  addFn(B.finish());
  Spec S;
  S.Func = "axiom";
  S.Pre = emp();
  S.Post = pure(mkEq(mkVar(retVarName(), Sort::Int), mkInt(42)));
  S.Trusted = true;
  Specs.add(std::move(S));

  VerifyReport R = verify("axiom");
  EXPECT_TRUE(R.Ok);
  ASSERT_FALSE(R.Errors.empty());
  EXPECT_NE(R.Errors.front().find("trusted"), std::string::npos);

  // A caller relies on the axiom.
  FunctionBuilder B2("relies", Prog.Types);
  B2.setReturnType(U32);
  LocalId T = B2.addLocal("t", U32);
  BlockId E2 = B2.newBlock();
  BlockId Cont = B2.newBlock();
  B2.atBlock(E2);
  B2.call("axiom", {Operand::constant(mkInt(1), U32)}, Place(T), Cont);
  B2.atBlock(Cont);
  B2.assign(Place(0), Rvalue::use(Operand::copy(Place(T))));
  B2.ret();
  addFn(B2.finish());
  addSpec("relies", emp(),
          pure(mkEq(mkVar(retVarName(), Sort::Int), mkInt(42))));
  EXPECT_TRUE(verify("relies").Ok);
}

TEST_F(ExecutorTest, VerifyAllCollectsReports) {
  FunctionBuilder B("va1", Prog.Types);
  BlockId E = B.newBlock();
  B.atBlock(E);
  B.ret();
  addFn(B.finish());
  addSpec("va1", emp(), emp());
  VerifEnv Env{Prog, Preds, Specs, Ownables, Lemmas, Solv, Auto,
               analysis::AnalysisConfig{}};
  Verifier V(Env);
  std::vector<VerifyReport> Rs = V.verifyAll({"va1", "missing"});
  ASSERT_EQ(Rs.size(), 2u);
  EXPECT_TRUE(Rs[0].Ok);
  EXPECT_FALSE(Rs[1].Ok);
}

} // namespace

namespace {

TEST_F(ExecutorTest, UnboundedLoopHitsStepLimit) {
  // There is no loop-invariant mechanism (the paper's case studies are
  // loop-free); an unbounded loop must terminate the *engine* cleanly via
  // the step limit rather than hanging.
  FunctionBuilder B("spin", Prog.Types);
  LocalId X = B.addParam("x", U32);
  BlockId E = B.newBlock();
  BlockId Body = B.newBlock();
  B.atBlock(E);
  B.gotoBlock(Body);
  B.atBlock(Body);
  B.assign(Place(X), Rvalue::use(Operand::copy(Place(X))));
  B.gotoBlock(Body);
  addFn(B.finish());
  addSpec("spin", emp(), emp());
  VerifyReport R = verify("spin");
  EXPECT_FALSE(R.Ok);
  ASSERT_FALSE(R.Errors.empty());
  EXPECT_NE(R.Errors.front().find("step limit"), std::string::npos);
}

TEST_F(ExecutorTest, BoundedLoopUnrollsFine) {
  // A finite goto chain (a loop the branching fully determines) verifies.
  FunctionBuilder B("thrice", Prog.Types);
  B.setReturnType(U32);
  LocalId Acc = B.addLocal("acc", U32);
  LocalId I = B.addLocal("i", U32);
  LocalId C = B.addLocal("c", BoolTy);
  BlockId E = B.newBlock();
  BlockId Head = B.newBlock();
  BlockId Body = B.newBlock();
  BlockId Done = B.newBlock();
  B.atBlock(E);
  B.assign(Place(Acc), Rvalue::use(Operand::constant(mkInt(0), U32)));
  B.assign(Place(I), Rvalue::use(Operand::constant(mkInt(0), U32)));
  B.gotoBlock(Head);
  B.atBlock(Head);
  B.assign(Place(C), Rvalue::binary(BinOp::Lt, Operand::copy(Place(I)),
                                    Operand::constant(mkInt(3), U32)));
  B.switchInt(Operand::copy(Place(C)), {{0, Done}}, Body);
  B.atBlock(Body);
  B.assign(Place(Acc), Rvalue::binary(BinOp::Add, Operand::copy(Place(Acc)),
                                      Operand::constant(mkInt(2), U32)));
  B.assign(Place(I), Rvalue::binary(BinOp::Add, Operand::copy(Place(I)),
                                    Operand::constant(mkInt(1), U32)));
  B.gotoBlock(Head);
  B.atBlock(Done);
  B.assign(Place(0), Rvalue::use(Operand::copy(Place(Acc))));
  B.ret();
  addFn(B.finish());
  addSpec("thrice", emp(),
          pure(mkEq(mkVar(retVarName(), Sort::Int), mkInt(6))));
  VerifyReport R = verify("thrice");
  EXPECT_TRUE(R.Ok) << (R.Errors.empty() ? "" : R.Errors.front());
}

} // namespace
