//===- tests/trace_test.cpp - Telemetry layer unit tests --------------------===//
//
// The tracing sink (support/Trace.h) and metrics registry
// (support/Metrics.h): span nesting and phase aggregation, the
// zero-side-effect guarantee of the disabled mode, and well-formedness of
// the Chrome trace / stats JSON documents (checked with a small
// recursive-descent JSON parser below).
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"
#include "support/StringUtils.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstring>

using namespace gilr;

namespace {

//===----------------------------------------------------------------------===//
// A minimal JSON well-formedness checker (values are validated and
// discarded; enough to reject any malformed document we could emit).
//===----------------------------------------------------------------------===//

class JsonChecker {
public:
  explicit JsonChecker(const std::string &S) : S(S) {}

  bool valid() {
    skipWs();
    if (!value())
      return false;
    skipWs();
    return Pos == S.size();
  }

private:
  bool value() {
    if (Pos >= S.size())
      return false;
    switch (S[Pos]) {
    case '{':
      return object();
    case '[':
      return array();
    case '"':
      return string();
    case 't':
      return literal("true");
    case 'f':
      return literal("false");
    case 'n':
      return literal("null");
    default:
      return number();
    }
  }

  bool object() {
    ++Pos; // '{'
    skipWs();
    if (peek() == '}') {
      ++Pos;
      return true;
    }
    while (true) {
      skipWs();
      if (!string())
        return false;
      skipWs();
      if (peek() != ':')
        return false;
      ++Pos;
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == '}') {
        ++Pos;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++Pos; // '['
    skipWs();
    if (peek() == ']') {
      ++Pos;
      return true;
    }
    while (true) {
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == ']') {
        ++Pos;
        return true;
      }
      return false;
    }
  }

  bool string() {
    if (peek() != '"')
      return false;
    ++Pos;
    while (Pos < S.size() && S[Pos] != '"') {
      if (S[Pos] == '\\') {
        if (Pos + 1 >= S.size())
          return false;
        char E = S[Pos + 1];
        if (E == 'u') {
          if (Pos + 5 >= S.size())
            return false;
          for (std::size_t I = 2; I != 6; ++I)
            if (!std::isxdigit(static_cast<unsigned char>(S[Pos + I])))
              return false;
          Pos += 6;
          continue;
        }
        if (E != '"' && E != '\\' && E != '/' && E != 'b' && E != 'f' &&
            E != 'n' && E != 'r' && E != 't')
          return false;
        Pos += 2;
        continue;
      }
      if (static_cast<unsigned char>(S[Pos]) < 0x20)
        return false; // Raw control character: invalid JSON.
      ++Pos;
    }
    if (Pos >= S.size())
      return false;
    ++Pos; // closing '"'
    return true;
  }

  bool number() {
    std::size_t Start = Pos;
    if (peek() == '-')
      ++Pos;
    while (Pos < S.size() && std::isdigit(static_cast<unsigned char>(S[Pos])))
      ++Pos;
    if (Pos == Start || (S[Start] == '-' && Pos == Start + 1))
      return false;
    if (peek() == '.') {
      ++Pos;
      if (!std::isdigit(static_cast<unsigned char>(peek())))
        return false;
      while (Pos < S.size() &&
             std::isdigit(static_cast<unsigned char>(S[Pos])))
        ++Pos;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++Pos;
      if (peek() == '+' || peek() == '-')
        ++Pos;
      if (!std::isdigit(static_cast<unsigned char>(peek())))
        return false;
      while (Pos < S.size() &&
             std::isdigit(static_cast<unsigned char>(S[Pos])))
        ++Pos;
    }
    return true;
  }

  bool literal(const char *L) {
    std::size_t Len = std::strlen(L);
    if (S.compare(Pos, Len, L) != 0)
      return false;
    Pos += Len;
    return true;
  }

  char peek() const { return Pos < S.size() ? S[Pos] : '\0'; }
  void skipWs() {
    while (Pos < S.size() &&
           (S[Pos] == ' ' || S[Pos] == '\n' || S[Pos] == '\t' ||
            S[Pos] == '\r'))
      ++Pos;
  }

  const std::string &S;
  std::size_t Pos = 0;
};

bool jsonValid(const std::string &S) { return JsonChecker(S).valid(); }

//===----------------------------------------------------------------------===//
// Fixture: every test starts from a clean, disabled sink and registry.
//===----------------------------------------------------------------------===//

class TraceTest : public ::testing::Test {
protected:
  void SetUp() override { cleanSlate(); }
  void TearDown() override { cleanSlate(); }

  static void cleanSlate() {
    trace::Options Off;
    trace::configure(Off); // Mode::Off; no files.
    trace::reset();
    metrics::Registry::get().reset();
  }

  static void enable(trace::Mode M) {
    trace::Options O;
    O.M = M;
    O.TraceFile.clear(); // Never write files from unit tests.
    O.StatsFile.clear();
    trace::configure(O);
  }
};

TEST_F(TraceTest, DisabledByDefaultAndZeroSideEffects) {
  EXPECT_FALSE(trace::enabled());
  bool DetailEvaluated = false;
  {
    GILR_TRACE_SCOPE("test", "outer");
    trace::Scope S("test", "inner", [&] {
      DetailEvaluated = true;
      return std::string("should never be built");
    });
    EXPECT_EQ(trace::spanStack(), "");
    trace::instant("test", "point", [&] {
      DetailEvaluated = true;
      return std::string("nor this");
    });
  }
  EXPECT_FALSE(DetailEvaluated); // Lazy details stay unevaluated when off.
  EXPECT_EQ(trace::eventCount(), 0u);
  EXPECT_TRUE(trace::phases().empty());
  EXPECT_TRUE(metrics::Registry::get().counters().empty());
}

TEST_F(TraceTest, SpanNestingAndStackRendering) {
  enable(trace::Mode::Text);
  {
    GILR_TRACE_SCOPE("engine", "run");
    {
      GILR_TRACE_SCOPE_D("consume", "pred", std::string("dllSeg"));
      EXPECT_EQ(trace::spanStack(), "engine:run > consume:pred");
    }
    EXPECT_EQ(trace::spanStack(), "engine:run");
  }
  EXPECT_EQ(trace::spanStack(), "");

  std::vector<trace::PhaseStat> Phases = trace::phases();
  ASSERT_EQ(Phases.size(), 2u);
  for (const trace::PhaseStat &P : Phases) {
    EXPECT_TRUE(P.Key == "engine/run" || P.Key == "consume/pred") << P.Key;
    EXPECT_EQ(P.Count, 1u);
  }
  // Text mode buffers no Chrome events.
  EXPECT_EQ(trace::eventCount(), 0u);
}

TEST_F(TraceTest, RecursiveSpansAreNotDoubleCounted) {
  enable(trace::Mode::Text);
  {
    GILR_TRACE_SCOPE("consume", "pred");
    {
      GILR_TRACE_SCOPE("consume", "pred"); // Recursive re-entry.
      GILR_TRACE_SCOPE("consume", "pred");
    }
  }
  std::vector<trace::PhaseStat> Phases = trace::phases();
  ASSERT_EQ(Phases.size(), 1u);
  // Only the outermost span of the key accumulates (count 1, not 3).
  EXPECT_EQ(Phases[0].Count, 1u);
}

TEST_F(TraceTest, DiffPhasesAttributesDeltas) {
  enable(trace::Mode::Text);
  {
    GILR_TRACE_SCOPE("solver", "entails");
  }
  std::vector<trace::PhaseStat> Before = trace::phases();
  {
    GILR_TRACE_SCOPE("solver", "entails");
    GILR_TRACE_SCOPE("engine", "fresh");
  }
  std::vector<trace::PhaseStat> Delta =
      trace::diffPhases(Before, trace::phases());
  ASSERT_EQ(Delta.size(), 2u);
  for (const trace::PhaseStat &P : Delta)
    EXPECT_EQ(P.Count, 1u) << P.Key;
}

TEST_F(TraceTest, TraceJsonIsWellFormed) {
  enable(trace::Mode::Json);
  {
    GILR_TRACE_SCOPE_D("engine", "run",
                       std::string("detail with \"quotes\", \\ and \n"));
    trace::instant("solver", "unknown");
  }
  EXPECT_EQ(trace::eventCount(), 2u);
  std::string J = trace::renderTraceJson();
  EXPECT_TRUE(jsonValid(J)) << J;
  EXPECT_NE(J.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(J.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(J.find("\"ph\":\"i\""), std::string::npos);
}

TEST_F(TraceTest, StatsJsonIsWellFormedAndCarriesCases) {
  enable(trace::Mode::Json);
  metrics::Registry &R = metrics::Registry::get();
  R.Solver.SatQueries = 7;
  R.Solver.EntailQueries = 4;
  R.add("engine.paths", 3);
  R.recordSolverLatencyNs(1500);
  (void)R.noteEntailFingerprint(42);
  EXPECT_TRUE(R.noteEntailFingerprint(42)); // Second sighting: a repeat.
  {
    GILR_TRACE_SCOPE("verify", "function");
  }
  std::string J = trace::renderStatsJson(
      {"{\"name\": \"case-a\", \"ok\": true}"});
  EXPECT_TRUE(jsonValid(J)) << J;
  EXPECT_NE(J.find("\"schema\": \"gilr-telemetry-v1\""), std::string::npos);
  EXPECT_NE(J.find("\"sat_queries\": 7"), std::string::npos);
  EXPECT_NE(J.find("\"entail_repeats\": 1"), std::string::npos);
  EXPECT_NE(J.find("\"engine.paths\": 3"), std::string::npos);
  EXPECT_NE(J.find("case-a"), std::string::npos);
}

TEST_F(TraceTest, SolverStatsDeltaArithmetic) {
  SolverStats A;
  A.SatQueries = 10;
  A.EntailQueries = 20;
  A.Branches = 30;
  A.TheoryChecks = 40;
  A.UnknownResults = 2;
  A.EntailRepeats = 5;
  SolverStats B;
  B.SatQueries = 4;
  B.EntailQueries = 15;
  B.Branches = 30;
  B.TheoryChecks = 10;
  B.UnknownResults = 1;
  B.EntailRepeats = 5;
  SolverStats D = A - B;
  EXPECT_EQ(D.SatQueries, 6u);
  EXPECT_EQ(D.EntailQueries, 5u);
  EXPECT_EQ(D.Branches, 0u);
  EXPECT_EQ(D.TheoryChecks, 30u);
  EXPECT_EQ(D.UnknownResults, 1u);
  EXPECT_EQ(D.EntailRepeats, 0u);
}

TEST_F(TraceTest, RegistryResetClearsEverything) {
  metrics::Registry &R = metrics::Registry::get();
  R.Solver.SatQueries = 3;
  R.add("x", 2);
  R.recordSolverLatencyNs(100);
  (void)R.noteEntailFingerprint(7);
  R.reset();
  EXPECT_EQ(R.Solver.SatQueries, 0u);
  EXPECT_TRUE(R.counters().empty());
  for (uint64_t Bucket : R.latencyHistogram())
    EXPECT_EQ(Bucket, 0u);
  // A fingerprint seen before reset is fresh again afterwards.
  EXPECT_FALSE(R.noteEntailFingerprint(7));
}

TEST_F(TraceTest, JsonEscapeCoversControlCharacters) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(jsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(jsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
  EXPECT_TRUE(jsonValid("\"" + jsonEscape("x\n\"\\\x02") + "\""));
}

} // namespace
