//===- tests/frontend_test.cpp - Textual RMIR frontend tests ----------------===//
//
// The acceptance tests of the .gilr frontend:
//  * every corpus module parses cleanly;
//  * the round trip print -> parse -> print is a fixpoint and preserves
//    every structural fingerprint (incr/Fingerprint.h) — parsed state is
//    indistinguishable from builder state to the incremental layer;
//  * verifying a parsed module yields verdicts identical to running the
//    builder-API equivalent;
//  * the gilr CLI honours the exit-code contract (0 verified, 1 proof
//    failures, 2 lint errors, 3 parse/type errors);
//  * diagnostics carry real source locations (file:line:col + caret), both
//    for .gilr syntax errors and for position-tracked Gilsonite spec errors.
//
//===----------------------------------------------------------------------===//

#include "frontend/Cli.h"
#include "frontend/Frontend.h"
#include "frontend/Printer.h"
#include "hybrid/Driver.h"
#include "incr/Fingerprint.h"
#include "rustlib/Clients.h"
#include "rustlib/LinkedList.h"
#include "rustlib/Stack.h"
#include "rustlib/Vec.h"
#include "support/Files.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <sstream>

using namespace gilr;

namespace {

const char *CorpusFiles[] = {
    "linkedlist_safety", "linkedlist_functional", "linkedlist_buggy",
    "clients_bad",       "stack_safety",          "stack_functional",
    "vec",
};

std::string corpusPath(const std::string &Name) {
  return std::string(GILR_CORPUS_DIR) + "/" + Name + ".gilr";
}

/// Writes \p Text to a unique temp .gilr file and returns the path.
std::string tempModule(const std::string &Tag, const std::string &Text) {
  std::string Path = ::testing::TempDir() + "frontend_test_" + Tag + ".gilr";
  EXPECT_TRUE(files::writeFile(Path, Text, "test module"));
  return Path;
}

/// func -> ok, over both sides of a hybrid report.
std::map<std::string, bool> verdicts(const hybrid::HybridReport &R) {
  std::map<std::string, bool> V;
  for (const engine::VerifyReport &F : R.UnsafeSide)
    V["unsafe:" + F.Func] = F.Ok;
  for (const creusot::SafeReport &F : R.SafeSide)
    V["safe:" + F.Func] = F.Ok;
  return V;
}

hybrid::HybridReport runParsed(frontend::Module &M) {
  EXPECT_TRUE(M.registerLemmas().empty());
  engine::VerifEnv Env = M.env();
  hybrid::HybridDriver D(Env, M.Contracts);
  return D.run(M.verifyFuncs(), M.verifyClients());
}

int cli(std::initializer_list<std::string> Args, std::string *OutText = nullptr,
        std::string *ErrText = nullptr) {
  std::ostringstream Out, Err;
  int Code = frontend::runCli(std::vector<std::string>(Args), Out, Err);
  if (OutText)
    *OutText = Out.str();
  if (ErrText)
    *ErrText = Err.str();
  return Code;
}

// --- Corpus: parse + round trip -----------------------------------------

TEST(Frontend, CorpusParsesClean) {
  for (const char *Name : CorpusFiles) {
    frontend::ParseResult R = frontend::parseFile(corpusPath(Name));
    std::string Msgs;
    for (const analysis::Diagnostic &D : R.Diags)
      Msgs += D.str() + "\n";
    ASSERT_TRUE(R.ok()) << Name << ":\n" << Msgs;
    EXPECT_EQ(R.Mod->Name, Name);
  }
}

TEST(Frontend, RoundTripIsAFixpoint) {
  for (const char *Name : CorpusFiles) {
    frontend::ParseResult R1 = frontend::parseFile(corpusPath(Name));
    ASSERT_TRUE(R1.ok()) << Name;
    std::string P1 = frontend::printModule(*R1.Mod);
    frontend::ParseResult R2 = frontend::parseString(Name, P1);
    std::string Msgs;
    for (const analysis::Diagnostic &D : R2.Diags)
      Msgs += D.str() + "\n";
    ASSERT_TRUE(R2.ok()) << Name << ":\n" << Msgs;
    EXPECT_EQ(P1, frontend::printModule(*R2.Mod)) << Name;
  }
}

TEST(Frontend, RoundTripPreservesFingerprints) {
  for (const char *Name : CorpusFiles) {
    frontend::ParseResult R1 = frontend::parseFile(corpusPath(Name));
    ASSERT_TRUE(R1.ok()) << Name;
    frontend::Module &A = *R1.Mod;
    frontend::ParseResult R2 =
        frontend::parseString(Name, frontend::printModule(A));
    ASSERT_TRUE(R2.ok()) << Name;
    frontend::Module &B = *R2.Mod;

    ASSERT_EQ(A.Prog.Funcs.size(), B.Prog.Funcs.size()) << Name;
    for (const auto &[FN, F] : A.Prog.Funcs) {
      const rmir::Function *G = B.Prog.lookup(FN);
      ASSERT_NE(G, nullptr) << Name << "/" << FN;
      EXPECT_EQ(incr::fpFunction(F), incr::fpFunction(*G))
          << Name << "/" << FN;
    }
    ASSERT_EQ(A.Preds.all().size(), B.Preds.all().size()) << Name;
    for (const auto &[PN, P] : A.Preds.all())
      EXPECT_EQ(incr::fpPred(P), incr::fpPred(B.Preds.all().at(PN)))
          << Name << "/" << PN;
    ASSERT_EQ(A.Specs.all().size(), B.Specs.all().size()) << Name;
    for (const auto &[SN, S] : A.Specs.all())
      EXPECT_EQ(incr::fpSpec(S), incr::fpSpec(B.Specs.all().at(SN)))
          << Name << "/" << SN;
    ASSERT_EQ(A.Contracts.all().size(), B.Contracts.all().size()) << Name;
    for (const auto &[CN, C] : A.Contracts.all())
      EXPECT_EQ(incr::fpContract(C), incr::fpContract(B.Contracts.all().at(CN)))
          << Name << "/" << CN;
    ASSERT_EQ(A.Clients.size(), B.Clients.size()) << Name;
    for (std::size_t I = 0; I < A.Clients.size(); ++I)
      EXPECT_EQ(incr::fpSafeFn(A.Clients[I]), incr::fpSafeFn(B.Clients[I]))
          << Name << "/" << A.Clients[I].Name;
    ASSERT_EQ(A.FreezeDecls.size(), B.FreezeDecls.size()) << Name;
    for (std::size_t I = 0; I < A.FreezeDecls.size(); ++I)
      EXPECT_EQ(incr::fpLemma(A.FreezeDecls[I]),
                incr::fpLemma(B.FreezeDecls[I]))
          << Name << "/" << A.FreezeDecls[I].Name;
    ASSERT_EQ(A.ExtractDecls.size(), B.ExtractDecls.size()) << Name;
    for (std::size_t I = 0; I < A.ExtractDecls.size(); ++I)
      EXPECT_EQ(incr::fpLemma(A.ExtractDecls[I]),
                incr::fpLemma(B.ExtractDecls[I]))
          << Name << "/" << A.ExtractDecls[I].Name;
    EXPECT_EQ(incr::fpAutomation(A.Auto, 64), incr::fpAutomation(B.Auto, 64))
        << Name;
    EXPECT_EQ(A.VerifyList, B.VerifyList) << Name;
  }
}

// --- Verdict identity: parsed text vs builder APIs ----------------------

TEST(Frontend, LinkedListSafetyVerdictsMatchBuilder) {
  auto Lib = rustlib::buildLinkedListLib(rustlib::SpecMode::TypeSafety);
  engine::VerifEnv Env = Lib->env();
  hybrid::HybridDriver D(Env, Lib->Contracts);
  hybrid::HybridReport Want = D.run(rustlib::typeSafetyFunctions(), {});

  frontend::ParseResult R = frontend::parseFile(corpusPath("linkedlist_safety"));
  ASSERT_TRUE(R.ok());
  hybrid::HybridReport Got = runParsed(*R.Mod);

  EXPECT_TRUE(Want.ok());
  EXPECT_TRUE(Got.ok());
  EXPECT_EQ(verdicts(Want), verdicts(Got));
}

TEST(Frontend, LinkedListFunctionalVerdictsMatchBuilder) {
  auto Lib = rustlib::buildLinkedListLib(rustlib::SpecMode::Functional);
  engine::VerifEnv Env = Lib->env();
  hybrid::HybridDriver D(Env, Lib->Contracts);
  hybrid::HybridReport Want =
      D.run(rustlib::functionalFunctions(), rustlib::makeClients());

  frontend::ParseResult R =
      frontend::parseFile(corpusPath("linkedlist_functional"));
  ASSERT_TRUE(R.ok());
  hybrid::HybridReport Got = runParsed(*R.Mod);

  EXPECT_TRUE(Want.ok());
  EXPECT_TRUE(Got.ok());
  EXPECT_EQ(verdicts(Want), verdicts(Got));
}

TEST(Frontend, StackVerdictsMatchBuilder) {
  for (auto Mode : {rustlib::StackSpecMode::TypeSafety,
                    rustlib::StackSpecMode::Functional}) {
    auto Lib = rustlib::buildStackLib(Mode);
    engine::VerifEnv Env = Lib->env();
    hybrid::HybridDriver D(Env, Lib->Contracts);
    hybrid::HybridReport Want = D.run(rustlib::stackFunctions(), {});

    const char *Name = Mode == rustlib::StackSpecMode::TypeSafety
                           ? "stack_safety"
                           : "stack_functional";
    frontend::ParseResult R = frontend::parseFile(corpusPath(Name));
    ASSERT_TRUE(R.ok()) << Name;
    hybrid::HybridReport Got = runParsed(*R.Mod);

    EXPECT_TRUE(Want.ok()) << Name;
    EXPECT_TRUE(Got.ok()) << Name;
    EXPECT_EQ(verdicts(Want), verdicts(Got)) << Name;
  }
}

TEST(Frontend, VecVerdictsMatchBuilder) {
  auto Lib = rustlib::buildVecLib();
  engine::VerifEnv Env = Lib->env();
  hybrid::HybridDriver D(Env, creusot::PearliteSpecTable{});
  hybrid::HybridReport Want = D.run(rustlib::vecFunctions(), {});

  frontend::ParseResult R = frontend::parseFile(corpusPath("vec"));
  ASSERT_TRUE(R.ok());
  hybrid::HybridReport Got = runParsed(*R.Mod);

  EXPECT_TRUE(Want.ok());
  EXPECT_TRUE(Got.ok());
  EXPECT_EQ(verdicts(Want), verdicts(Got));
}

TEST(Frontend, BuggyVariantsFailIdentically) {
  auto Lib = rustlib::buildLinkedListLib(rustlib::SpecMode::TypeSafety);
  std::vector<std::string> Buggy = rustlib::registerBuggyVariants(*Lib);
  engine::VerifEnv Env = Lib->env();
  hybrid::HybridDriver D(Env, Lib->Contracts);
  hybrid::HybridReport Want = D.run(Buggy, {});

  frontend::ParseResult R = frontend::parseFile(corpusPath("linkedlist_buggy"));
  ASSERT_TRUE(R.ok());
  hybrid::HybridReport Got = runParsed(*R.Mod);

  EXPECT_FALSE(Want.ok());
  EXPECT_FALSE(Got.ok());
  EXPECT_EQ(verdicts(Want), verdicts(Got));
}

// --- The CLI exit-code contract -----------------------------------------

TEST(FrontendCli, ExitVerifiedIsZero) {
  EXPECT_EQ(0, cli({"verify", corpusPath("vec")}));
}

TEST(FrontendCli, ExitProofFailureIsOne) {
  EXPECT_EQ(1, cli({"verify", corpusPath("linkedlist_buggy")}));
  EXPECT_EQ(1, cli({"verify", corpusPath("clients_bad")}));
}

TEST(FrontendCli, ExitLintErrorIsTwo) {
  // y = copy x with x never initialized: GILR-E004, error severity, blocks
  // verification -> exit 2 from both lint and verify.
  std::string Path = tempModule("lint",
                                "fn f {\n"
                                "  params 0;\n"
                                "  let x: usize;\n"
                                "  let y: usize;\n"
                                "  bb0: {\n"
                                "    y = copy x;\n"
                                "    return;\n"
                                "  }\n"
                                "}\n");
  EXPECT_EQ(0, cli({"check", Path}));
  EXPECT_EQ(2, cli({"lint", Path}));
  EXPECT_EQ(2, cli({"verify", Path}));
  std::remove(Path.c_str());
}

TEST(FrontendCli, ExitParseErrorIsThree) {
  std::string Path = tempModule("syn", "fn broken {\n  params oops;\n}\n");
  EXPECT_EQ(3, cli({"check", Path}));
  EXPECT_EQ(3, cli({"lint", Path}));
  EXPECT_EQ(3, cli({"verify", Path}));
  std::remove(Path.c_str());
}

TEST(FrontendCli, WorstExitWinsAcrossFiles) {
  std::string Bad = tempModule("multi", "verify nosuch;\n");
  EXPECT_EQ(3, cli({"verify", corpusPath("vec"), Bad}));
  std::remove(Bad.c_str());
}

TEST(FrontendCli, UsageErrorsAreThree) {
  EXPECT_EQ(3, cli({}));
  EXPECT_EQ(3, cli({"frobnicate", corpusPath("vec")}));
  EXPECT_EQ(3, cli({"check"}));
  EXPECT_EQ(3, cli({"check", "--jobs"}));
  EXPECT_EQ(3, cli({"check", "--no-such-flag", corpusPath("vec")}));
}

TEST(FrontendCli, MissingFileIsThree) {
  std::string ErrText;
  EXPECT_EQ(3, cli({"check", "/nonexistent/nope.gilr"}, nullptr, &ErrText));
  EXPECT_NE(ErrText.find("GILR-E010"), std::string::npos);
}

// --- Diagnostics: source locations and carets ---------------------------

TEST(FrontendCli, SyntaxErrorHasCaret) {
  std::string Path = tempModule("caret", "fn broken {\n  params oops;\n}\n");
  std::string ErrText;
  EXPECT_EQ(3, cli({"check", Path}, nullptr, &ErrText));
  // file:line:col prefix and the underline line.
  EXPECT_NE(ErrText.find(Path + ":2:10"), std::string::npos) << ErrText;
  EXPECT_NE(ErrText.find("GILR-E008"), std::string::npos) << ErrText;
  EXPECT_NE(ErrText.find("^"), std::string::npos) << ErrText;
  std::remove(Path.c_str());
}

TEST(Frontend, GilsoniteErrorsCarryPositions) {
  // The spec's pre is malformed ('(pure' never closed): the position-tracked
  // Gilsonite bridge must point INTO the S-expression, not at the item.
  std::string Text = "spec s {\n"
                     "  pre (pure (= 1 1);\n"
                     "}\n";
  frontend::ParseResult R = frontend::parseString("pos.gilr", Text);
  ASSERT_FALSE(R.ok());
  ASSERT_FALSE(R.Diags.empty());
  const analysis::Diagnostic &D = R.Diags.front();
  EXPECT_EQ(D.Code, analysis::code::SyntaxError);
  EXPECT_EQ(D.File, "pos.gilr");
  EXPECT_EQ(D.Line, 2u) << D.str();
  EXPECT_GE(D.Col, 7u) << D.str();
}

TEST(Frontend, NameErrorsCarryPositions) {
  std::string Text = "fn f {\n"
                     "  params 0;\n"
                     "  let x: NoSuchType;\n"
                     "  bb0: {\n"
                     "    return;\n"
                     "  }\n"
                     "}\n";
  frontend::ParseResult R = frontend::parseString("names.gilr", Text);
  ASSERT_FALSE(R.ok());
  ASSERT_FALSE(R.Diags.empty());
  const analysis::Diagnostic &D = R.Diags.front();
  EXPECT_EQ(D.Code, analysis::code::NameError);
  EXPECT_EQ(D.Line, 3u) << D.str();
}

TEST(Frontend, MultipleErrorsSurfaceInOneRun) {
  // Two independently broken items: parsing continues across the first.
  std::string Text = "fn f {\n"
                     "  params 0;\n"
                     "  let x: NoSuchType;\n"
                     "  bb0: { return; }\n"
                     "}\n"
                     "fn g {\n"
                     "  params 0;\n"
                     "  let y: AlsoMissing;\n"
                     "  bb0: { return; }\n"
                     "}\n";
  frontend::ParseResult R = frontend::parseString("multi.gilr", Text);
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.Diags.size(), 2u);
}

// --- JSON output ---------------------------------------------------------

TEST(FrontendCli, JsonSingleFileIsBareObject) {
  std::string OutText;
  EXPECT_EQ(0, cli({"check", "--json", corpusPath("vec")}, &OutText));
  EXPECT_EQ(OutText.front(), '{') << OutText;
  EXPECT_NE(OutText.find("\"command\": \"check\""), std::string::npos);
  EXPECT_NE(OutText.find("\"exit\": 0"), std::string::npos);
}

TEST(FrontendCli, JsonMultiFileIsArray) {
  std::string OutText;
  EXPECT_EQ(0, cli({"check", "--json", corpusPath("vec"),
                    corpusPath("stack_safety")},
                   &OutText));
  EXPECT_EQ(OutText.front(), '[') << OutText;
}

TEST(FrontendCli, JsonVerifyEmbedsReport) {
  std::string OutText;
  EXPECT_EQ(0, cli({"verify", "--json", corpusPath("vec")}, &OutText));
  EXPECT_NE(OutText.find("\"report\": {"), std::string::npos);
  EXPECT_NE(OutText.find("\"ok\": true"), std::string::npos);
}

} // namespace
