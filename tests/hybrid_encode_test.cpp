//===- tests/hybrid_encode_test.cpp - The §5.4 encoding schema --------------===//

#include "hybrid/Encode.h"
#include "rustlib/LinkedList.h"

#include <gtest/gtest.h>

using namespace gilr;
using namespace gilr::rustlib;
using namespace gilr::gilsonite;

namespace {

class EncodeTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    Lib = buildLinkedListLib(SpecMode::TypeSafety).release();
  }
  static void TearDownTestSuite() {
    delete Lib;
    Lib = nullptr;
  }
  static LinkedListLib *Lib;

  Outcome<Spec> encode(const std::string &Name) {
    return hybrid::encodePearliteSpec(*Lib->Contracts.lookup(Name),
                                      *Lib->Prog.lookup(Name),
                                      *Lib->Ownables);
  }
};

LinkedListLib *EncodeTest::Lib = nullptr;

TEST_F(EncodeTest, SchemaShapeForPopFront) {
  // §5.4: { [κ]_q * own(self, m_self, κ) * <P> } f { ∃m_ret.
  //        own(ret, m_ret, κ) * <Q> }.
  Outcome<Spec> S = encode("LinkedList::pop_front");
  ASSERT_TRUE(S.ok()) << S.error();
  std::string Pre = S.value().Pre->str();
  std::string Post = S.value().Post->str();
  EXPECT_NE(Pre.find("['a]_'q"), std::string::npos);
  EXPECT_NE(Pre.find("own$&mut LinkedList<T>(self, m$self, 'a)"),
            std::string::npos);
  EXPECT_NE(Post.find("own$Option<T>(ret, m$ret, 'a)"), std::string::npos);
  // The contract lands inside an observation (prophetic truth).
  EXPECT_NE(Post.find("<("), std::string::npos);
  // The prophetic ^self elaborates to the second projection of the pair.
  EXPECT_NE(Post.find("m$self.1"), std::string::npos);
}

TEST_F(EncodeTest, PreconditionBecomesObservation) {
  Outcome<Spec> S = encode("LinkedList::push_front_node");
  ASSERT_TRUE(S.ok());
  std::string Pre = S.value().Pre->str();
  // self@.len() < usize::MAX, over the representation.
  EXPECT_NE(Pre.find("len"), std::string::npos);
  EXPECT_NE(Pre.find("<("), std::string::npos); // Observation brackets.
}

TEST_F(EncodeTest, SpecVarsCoverLifetimeFractionAndModels) {
  Outcome<Spec> S = encode("LinkedList::push_front");
  ASSERT_TRUE(S.ok());
  std::vector<std::string> Names;
  for (const Binder &B : S.value().SpecVars)
    Names.push_back(B.Name);
  EXPECT_NE(std::find(Names.begin(), Names.end(), "'a"), Names.end());
  EXPECT_NE(std::find(Names.begin(), Names.end(), "'q"), Names.end());
  EXPECT_NE(std::find(Names.begin(), Names.end(), "m$self"), Names.end());
  EXPECT_NE(std::find(Names.begin(), Names.end(), "m$x"), Names.end());
}

TEST_F(EncodeTest, UnitReturnGetsNoOwnership) {
  Outcome<Spec> S = encode("LinkedList::push_front");
  ASSERT_TRUE(S.ok());
  EXPECT_EQ(S.value().Post->str().find("own$()"), std::string::npos);
}

TEST_F(EncodeTest, ArityMismatchIsRejected) {
  // A contract whose parameter list does not match the RMIR signature.
  creusot::PearliteSpec Bad;
  Bad.Func = "LinkedList::push_front";
  Bad.Params = {{"self", true}}; // Missing x.
  Outcome<Spec> S = hybrid::encodePearliteSpec(
      Bad, *Lib->Prog.lookup("LinkedList::push_front"), *Lib->Ownables);
  EXPECT_TRUE(S.failed());
}

TEST_F(EncodeTest, DriverReplacesRegisteredSpec) {
  auto Lib2 = buildLinkedListLib(SpecMode::TypeSafety);
  engine::VerifEnv Env = Lib2->env();
  hybrid::HybridDriver Driver(Env, Lib2->Contracts);
  const Spec *Before = Lib2->Specs.lookup("LinkedList::pop_front_node");
  ASSERT_NE(Before, nullptr);
  EXPECT_NE(Before->Doc.find("show_safety"), std::string::npos);
  ASSERT_TRUE(Driver.encodeAndRegister("LinkedList::pop_front_node").ok());
  const Spec *After = Lib2->Specs.lookup("LinkedList::pop_front_node");
  ASSERT_NE(After, nullptr);
  EXPECT_NE(After->Doc.find("Pearlite"), std::string::npos);
}

TEST_F(EncodeTest, DriverRejectsUnknownFunctions) {
  engine::VerifEnv Env = Lib->env();
  hybrid::HybridDriver Driver(Env, Lib->Contracts);
  EXPECT_TRUE(Driver.encodeAndRegister("LinkedList::reverse").failed());
}

} // namespace
