//===- tests/gilsonite_test.cpp - Assertions, modes, Ownable, parser --------===//

#include "gilsonite/ModeCheck.h"
#include "gilsonite/Ownable.h"
#include "gilsonite/Parser.h"
#include "rmir/Builder.h"
#include "sym/ExprBuilder.h"

#include <gtest/gtest.h>

using namespace gilr;
using namespace gilr::gilsonite;
using namespace gilr::rmir;

namespace {

class GilsoniteTest : public ::testing::Test {
protected:
  GilsoniteTest() : Own(Ty, Preds) {}
  TyCtx Ty;
  PredTable Preds;
  OwnableRegistry Own;
};

TEST_F(GilsoniteTest, StarFlattensAndEmp) {
  AssertionP A = star({pure(mkTrue()), star({pure(mkFalse())})});
  EXPECT_EQ(A->Parts.size(), 2u);
  EXPECT_EQ(emp()->Kind, AsrtKind::Star);
  EXPECT_TRUE(emp()->Parts.empty());
}

TEST_F(GilsoniteTest, SubstRespectsBinders) {
  Expr X = mkVar("x", Sort::Int);
  AssertionP A = exists({Binder{"x", Sort::Int}},
                        pure(mkEq(X, mkVar("y", Sort::Int))));
  Subst S;
  S.bind("x", mkInt(1));
  S.bind("y", mkInt(2));
  AssertionP R = substAssertion(A, S);
  // x is shadowed; y is substituted.
  std::set<std::string> Free;
  collectFreeVars(R, Free);
  EXPECT_EQ(Free.count("y"), 0u);
  EXPECT_NE(R->Body->str().find("x"), std::string::npos);
}

TEST_F(GilsoniteTest, CollectFreeVars) {
  AssertionP A = exists(
      {Binder{"v", Sort::Any}},
      star({pointsTo(mkVar("p", Sort::Tuple), Ty.usize(),
                     mkVar("v", Sort::Any)),
            pure(mkEq(mkVar("v", Sort::Any), mkVar("w", Sort::Any)))}));
  std::set<std::string> Free;
  collectFreeVars(A, Free);
  EXPECT_EQ(Free, (std::set<std::string>{"p", "w"}));
}

TEST_F(GilsoniteTest, InstantiateClauseFreshensBinders) {
  PredDecl D;
  D.Name = "p";
  D.Params = {PredParam{"a", Sort::Int, true}};
  D.Clauses = {exists({Binder{"e", Sort::Int}},
                      pure(mkEq(mkVar("a", Sort::Int),
                                mkVar("e", Sort::Int))))};
  Preds.declare(D);
  VarGen VG;
  AssertionP I1 = instantiateClause(D, 0, {mkInt(5)}, nullptr, VG);
  AssertionP I2 = instantiateClause(D, 0, {mkInt(5)}, nullptr, VG);
  // Binders are renamed apart.
  EXPECT_NE(I1->Binders[0].Name, I2->Binders[0].Name);
  // The argument was substituted.
  EXPECT_NE(I1->str().find("5"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Ownable derivation (§2.2, §5.1)
//===----------------------------------------------------------------------===//

TEST_F(GilsoniteTest, ScalarOwnableIsPure) {
  std::string Name = Own.ownPred(Ty.usize());
  const PredDecl *D = Preds.lookup(Name);
  ASSERT_NE(D, nullptr);
  ASSERT_EQ(D->Clauses.size(), 1u);
  EXPECT_EQ(D->Clauses[0]->Kind, AsrtKind::Pure);
}

TEST_F(GilsoniteTest, ParamOwnableIsAbstract) {
  std::string Name = Own.ownPred(Ty.param("T"));
  const PredDecl *D = Preds.lookup(Name);
  ASSERT_NE(D, nullptr);
  EXPECT_TRUE(D->Abstract);
  EXPECT_TRUE(D->Clauses.empty());
}

TEST_F(GilsoniteTest, OptionOwnableHasTwoClauses) {
  std::string Name = Own.ownPred(Ty.optionOf(Ty.param("T")));
  const PredDecl *D = Preds.lookup(Name);
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Clauses.size(), 2u);
}

TEST_F(GilsoniteTest, MutRefOwnableIsProphetic) {
  std::string Name = Own.ownPred(Ty.mutRef(Ty.param("T")));
  const PredDecl *D = Preds.lookup(Name);
  ASSERT_NE(D, nullptr);
  ASSERT_EQ(D->Clauses.size(), 1u);
  // The clause mentions a value observer and a guarded (borrow) call.
  std::string Body = D->Clauses[0]->str();
  EXPECT_NE(Body.find("VO_"), std::string::npos);
  EXPECT_NE(Body.find("mutref_inner$T"), std::string::npos);
  // The inner predicate exists and is guardable.
  const PredDecl *Inner = Preds.lookup("mutref_inner$T");
  ASSERT_NE(Inner, nullptr);
  EXPECT_TRUE(Inner->Guardable);
}

TEST_F(GilsoniteTest, DerivedPredicatesAreWellModed) {
  Own.ownPred(Ty.mutRef(Ty.param("T")));
  Own.ownPred(Ty.optionOf(Ty.param("T")));
  Own.ownPred(Ty.usize());
  std::vector<std::string> Errors = checkAllModes(Preds);
  EXPECT_TRUE(Errors.empty()) << Errors.front();
}

TEST_F(GilsoniteTest, ModeCheckRejectsUnlearnable) {
  // An existential that nothing determines must be flagged (§7.2).
  PredDecl D;
  D.Name = "bad";
  D.Params = {PredParam{"a", Sort::Int, true}};
  D.Clauses = {exists({Binder{"ghost", Sort::Int}},
                      pure(mkLt(mkVar("ghost", Sort::Int),
                                mkVar("a", Sort::Int))))};
  Preds.declare(D);
  std::vector<std::string> Errors = checkPredModes(D, Preds);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("ghost"), std::string::npos);
}

TEST_F(GilsoniteTest, ShowSafetySpecShape) {
  // Fig. 3 (left): all parameters owned on entry, result owned on exit,
  // under a lifetime token.
  FunctionBuilder B("f", Ty);
  B.addParam("a", Ty.usize());
  B.setReturnType(Ty.boolTy());
  BlockId E = B.newBlock();
  B.atBlock(E);
  B.ret();
  Function F = B.finish();

  Spec S = Own.makeShowSafetySpec(F);
  EXPECT_EQ(S.Func, "f");
  std::string Pre = S.Pre->str();
  std::string Post = S.Post->str();
  EXPECT_NE(Pre.find("own$usize(a"), std::string::npos);
  EXPECT_NE(Pre.find("['a]_"), std::string::npos);
  EXPECT_NE(Post.find("own$bool(ret"), std::string::npos);
  EXPECT_NE(Post.find("['a]_"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

TEST_F(GilsoniteTest, ParsesExpressions) {
  Outcome<Expr> E = parseExpr("(= (+ x 1) (len s))");
  ASSERT_TRUE(E.ok());
  EXPECT_EQ(E.value()->Kind, ExprKind::Eq);
  Outcome<Expr> O = parseExpr("(some 3)");
  ASSERT_TRUE(O.ok());
  EXPECT_EQ(O.value()->Kind, ExprKind::Some);
  Outcome<Expr> C = parseExpr("(cons 1 nil)");
  ASSERT_TRUE(C.ok());
  __int128 Len;
  EXPECT_TRUE(getStaticSeqLen(C.value(), Len));
  EXPECT_EQ(Len, 1);
}

TEST_F(GilsoniteTest, ParsesAssertions) {
  Ty.declareStruct("Pair", {FieldDef{"a", Ty.usize()},
                            FieldDef{"b", Ty.usize()}});
  Outcome<AssertionP> A = parseAssertion(
      "(star (pure (< x 5)) (pt p Pair v) (alive 'a q) "
      "(exists (r) (pred own$usize v r 'a)) (obs (= (fut) 1)) "
      "(vo x cur) (pc x a) (dead 'b))",
      Ty);
  ASSERT_TRUE(A.ok()) << A.error();
  EXPECT_EQ(A.value()->Kind, AsrtKind::Star);
  EXPECT_EQ(A.value()->Parts.size(), 8u);
}

TEST_F(GilsoniteTest, ParserRejectsGarbage) {
  EXPECT_TRUE(parseAssertion("(pt p UnknownType v)", Ty).failed());
  EXPECT_TRUE(parseAssertion("(star (pure)", Ty).failed());
  EXPECT_TRUE(parseExpr(")").failed());
}

TEST_F(GilsoniteTest, ParserComments) {
  Outcome<Expr> E = parseExpr("; a comment\n(+ 1 2)");
  ASSERT_TRUE(E.ok());
  EXPECT_EQ(E.value()->IntVal, 3);
}

} // namespace

//===----------------------------------------------------------------------===//
// Spec parsing and end-to-end parsed verification
//===----------------------------------------------------------------------===//

#include "engine/Verifier.h"
#include "rmir/Builder.h"

namespace {

TEST(ParsedSpecTest, ParsesAndVerifiesSwap) {
  rmir::Program Prog;
  rmir::TypeRef U32 = Prog.Types.intTy(rmir::IntKind::U32);
  rmir::TypeRef P32 = Prog.Types.rawPtr(U32);

  rmir::FunctionBuilder B("swap", Prog.Types);
  rmir::LocalId A = B.addParam("a", P32);
  rmir::LocalId Bp = B.addParam("b", P32);
  rmir::LocalId Ta = B.addLocal("ta", U32);
  rmir::LocalId Tb = B.addLocal("tb", U32);
  rmir::BlockId E = B.newBlock();
  B.atBlock(E);
  using rmir::Operand;
  using rmir::Place;
  using rmir::Rvalue;
  B.assign(Place(Ta), Rvalue::use(Operand::copy(Place(A).deref())));
  B.assign(Place(Tb), Rvalue::use(Operand::copy(Place(Bp).deref())));
  B.assign(Place(A).deref(), Rvalue::use(Operand::copy(Place(Tb))));
  B.assign(Place(Bp).deref(), Rvalue::use(Operand::copy(Place(Ta))));
  B.ret();
  Prog.Funcs.emplace("swap", B.finish());

  Outcome<Spec> S = parseSpec(
      "(spec swap (vars va vb)"
      "  (pre  (star (pt a u32 va) (pt b u32 vb)))"
      "  (post (star (pt a u32 vb) (pt b u32 va))))",
      Prog.Types);
  ASSERT_TRUE(S.ok()) << S.error();

  PredTable Preds;
  SpecTable Specs;
  OwnableRegistry Ownables(Prog.Types, Preds);
  engine::LemmaTable Lemmas;
  Solver Solv;
  Specs.add(std::move(S.value()));
  engine::VerifEnv Env{Prog,   Preds, Specs, Ownables,
                       Lemmas, Solv,  engine::Automation{},
                       analysis::AnalysisConfig{}};
  engine::Verifier V(Env);
  engine::VerifyReport R = V.verifyFunction("swap");
  EXPECT_TRUE(R.Ok) << (R.Errors.empty() ? "" : R.Errors.front());
}

TEST(ParsedSpecTest, RejectsMalformedSpecs) {
  rmir::TyCtx Ty;
  EXPECT_TRUE(parseSpec("(speck f (vars) (pre emp) (post emp))", Ty)
                  .failed());
  EXPECT_TRUE(parseSpec("(spec f (pre emp) (post emp))", Ty).failed());
  EXPECT_TRUE(parseSpec("(spec f (vars) (pre emp))", Ty).failed());
}

} // namespace
