//===- tests/intern_test.cpp - Hash-consed interning ------------------------===//
//
// Pointer-identity guarantees of the intern layer (sym/Intern.h), the
// identity-keyed simplify memo, and the collision resistance of the solver
// query fingerprint built on intern ids.
//
//===----------------------------------------------------------------------===//

#include "solver/PathCondition.h"
#include "solver/Simplify.h"
#include "solver/Solver.h"
#include "sym/ExprBuilder.h"
#include "sym/Intern.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace gilr;

namespace {

/// A moderately deep expression with heavy internal sharing, rebuilt from
/// scratch on every call: (x + y) appears under Ite, Eq and SeqLen chains.
Expr buildShared(int Depth) {
  Expr X = mkVar("x", Sort::Int);
  Expr Y = mkVar("y", Sort::Int);
  Expr Acc = mkAdd(X, Y);
  for (int I = 0; I != Depth; ++I)
    Acc = mkIte(mkLe(X, Acc), mkAdd(Acc, Y), mkSub(Acc, X));
  return mkAnd(mkLe(mkInt(0), Acc), mkEq(Acc, Acc));
}

} // namespace

TEST(InternTest, StructurallyEqualConstructionsArePointerIdentical) {
  Expr A = mkAdd(mkVar("a", Sort::Int), mkInt(1));
  Expr B = mkAdd(mkVar("a", Sort::Int), mkInt(1));
  EXPECT_EQ(A.get(), B.get());
  EXPECT_NE(A->Id, 0u);
  EXPECT_EQ(A->Id, B->Id);
  EXPECT_EQ(A->CanonId, B->CanonId);

  Expr C = buildShared(6);
  Expr D = buildShared(6);
  EXPECT_EQ(C.get(), D.get());
}

TEST(InternTest, DistinctTermsGetDistinctIds) {
  Expr A = mkVar("distinct_a", Sort::Int);
  Expr B = mkVar("distinct_b", Sort::Int);
  EXPECT_NE(A.get(), B.get());
  EXPECT_NE(A->Id, B->Id);
  EXPECT_NE(A->CanonId, B->CanonId);
}

TEST(InternTest, VarSortAnnotationsKeepNodesButShareCanonId) {
  // The same variable written with different sort knowledge (specs use Any,
  // the executor knows Int) must stay exprEquals-equal: distinct interned
  // nodes, one equivalence class.
  Expr Spec = mkVar("vsort", Sort::Any);
  Expr Exec = mkVar("vsort", Sort::Int);
  EXPECT_NE(Spec.get(), Exec.get());
  EXPECT_NE(Spec->Id, Exec->Id);
  EXPECT_EQ(Spec->CanonId, Exec->CanonId);
  EXPECT_TRUE(exprEquals(Spec, Exec));
  EXPECT_FALSE(exprLess(Spec, Exec));
  EXPECT_FALSE(exprLess(Exec, Spec));
}

TEST(InternTest, PointerIdentityAcrossThreads) {
  // Workers racing to intern the same deep term must all observe one node.
  constexpr int NumThreads = 4;
  std::vector<Expr> Results(NumThreads);
  std::vector<std::thread> Threads;
  for (int T = 0; T != NumThreads; ++T)
    Threads.emplace_back([T, &Results] { Results[T] = buildShared(32); });
  for (std::thread &Th : Threads)
    Th.join();
  for (int T = 1; T != NumThreads; ++T)
    EXPECT_EQ(Results[0].get(), Results[T].get());
}

TEST(InternTest, InternExprAdoptsForeignNodes) {
  bool Prev = setInterningEnabled(false);
  Expr Foreign = mkAdd(mkVar("foreign_x", Sort::Int), mkInt(7));
  EXPECT_EQ(Foreign->Id, 0u);
  setInterningEnabled(true);
  Expr Canon = internExpr(Foreign);
  EXPECT_NE(Canon->Id, 0u);
  EXPECT_TRUE(exprEquals(Foreign, Canon));
  // Interning the same shape again returns the same node.
  EXPECT_EQ(internExpr(Foreign).get(), Canon.get());
  EXPECT_EQ(mkAdd(mkVar("foreign_x", Sort::Int), mkInt(7)).get(),
            Canon.get());
  setInterningEnabled(Prev);
}

TEST(InternTest, InternStatsCountHitsAndNodes) {
  InternStats Before = internStats();
  Expr A = mkAdd(mkVar("stats_v", Sort::Int), mkInt(42));
  InternStats Mid = internStats();
  EXPECT_GT(Mid.Nodes, Before.Nodes);
  // Rebuilding the identical term is all hits, no new nodes.
  Expr B = mkAdd(mkVar("stats_v", Sort::Int), mkInt(42));
  ASSERT_EQ(A.get(), B.get());
  InternStats After = internStats();
  EXPECT_EQ(After.Nodes, Mid.Nodes);
  EXPECT_GT(After.Hits, Mid.Hits);
}

TEST(SimplifyMemoTest, SimplifyIsPointerStableIdempotent) {
  Expr E = buildShared(12);
  Expr S1 = simplify(E);
  EXPECT_EQ(simplify(S1).get(), S1.get());
  EXPECT_EQ(simplify(E).get(), S1.get());
}

TEST(SimplifyMemoTest, IdempotenceHoldsWithoutTheMemo) {
  // The fixpoint property must come from simplify itself, not from memo
  // seeding.
  bool Prev = setSimplifyMemoEnabled(false);
  Expr E = buildShared(12);
  Expr S1 = simplify(E);
  EXPECT_EQ(simplify(S1).get(), S1.get());
  setSimplifyMemoEnabled(Prev);
}

TEST(SimplifyMemoTest, RepeatSimplifyHitsTheMemo) {
  Expr E = buildShared(24);
  simplify(E);
  SimplifyStats Before = simplifyMemoStats();
  simplify(E);
  SimplifyStats After = simplifyMemoStats();
  EXPECT_GT(After.Hits, Before.Hits);
  EXPECT_EQ(After.Misses, Before.Misses);
}

TEST(FingerprintTest, SumCollisionMultisetsAreDistinguished) {
  // {1, 4} and {2, 3} have equal sums and equal sizes, so the former
  // commutative-sum fingerprint could not tell these queries apart; the
  // positional hash over sorted ids must.
  uint64_t FpA = 0, FpA2 = 0, FpB = 0, FpB2 = 0;
  satFingerprintFromIds({1, 4}, 50000, FpA, FpA2);
  satFingerprintFromIds({2, 3}, 50000, FpB, FpB2);
  EXPECT_NE(FpA, FpB);
  EXPECT_NE(FpA2, FpB2);
}

TEST(FingerprintTest, DuplicateShufflesWithEqualSumsAreDistinguished) {
  // {0, 2, 2} vs {1, 1, 2}: same size, same sum.
  uint64_t FpA = 0, FpA2 = 0, FpB = 0, FpB2 = 0;
  satFingerprintFromIds({0, 2, 2}, 50000, FpA, FpA2);
  satFingerprintFromIds({1, 1, 2}, 50000, FpB, FpB2);
  EXPECT_NE(FpA, FpB);
  EXPECT_NE(FpA2, FpB2);
}

TEST(FingerprintTest, AssertionOrderIsIrrelevant) {
  Expr A = mkLe(mkVar("fp_a", Sort::Int), mkInt(3));
  Expr B = mkLt(mkInt(0), mkVar("fp_b", Sort::Int));
  Expr C = mkEq(mkVar("fp_c", Sort::Int), mkInt(9));
  uint64_t Fp1 = 0, Fp1b = 0, Fp2 = 0, Fp2b = 0;
  satQueryFingerprint({A, B, C}, 50000, Fp1, Fp1b);
  satQueryFingerprint({C, A, B}, 50000, Fp2, Fp2b);
  EXPECT_EQ(Fp1, Fp2);
  EXPECT_EQ(Fp1b, Fp2b);
}

TEST(FingerprintTest, BudgetIsPartOfTheKey) {
  Expr A = mkLe(mkVar("fp_budget", Sort::Int), mkInt(3));
  uint64_t Fp1 = 0, Fp1b = 0, Fp2 = 0, Fp2b = 0;
  satQueryFingerprint({A}, 50000, Fp1, Fp1b);
  satQueryFingerprint({A}, 1000, Fp2, Fp2b);
  EXPECT_NE(Fp1, Fp2);
}

TEST(PathConditionTest, DuplicateFactsAreDeduplicated) {
  PathCondition PC;
  Expr Fact = mkLe(mkInt(0), mkVar("pc_n", Sort::Int));
  for (int I = 0; I != 64; ++I)
    EXPECT_TRUE(PC.add(mkLe(mkInt(0), mkVar("pc_n", Sort::Int))));
  EXPECT_EQ(PC.size(), 1u);
  EXPECT_TRUE(exprEquals(PC.facts()[0], Fact));
}

TEST(PathConditionTest, EntailmentMemoSurvivesAppends) {
  PathCondition PC;
  Solver S;
  PC.add(mkLe(mkInt(1), mkVar("pc_m", Sort::Int)));
  Expr Goal = mkLe(mkInt(0), mkVar("pc_m", Sort::Int));
  EXPECT_TRUE(PC.entails(S, Goal));
  // Monotone: appending facts cannot unprove the goal, and the memoized
  // answer must agree with a fresh query.
  PC.add(mkLe(mkVar("pc_m", Sort::Int), mkInt(10)));
  EXPECT_TRUE(PC.entails(S, Goal));
}

TEST(FreeVarsTest, MemoizedSummariesMatchStructure) {
  Expr E = mkAnd(mkLe(mkVar("fv_a", Sort::Int), mkVar("fv_b", Sort::Int)),
                 mkEq(mkVar("fv_a", Sort::Int), mkInt(2)));
  std::set<std::string> Vars;
  collectVars(E, Vars);
  EXPECT_EQ(Vars, (std::set<std::string>{"fv_a", "fv_b"}));
  // Second query serves the cached summary; results must be identical.
  std::set<std::string> Again;
  collectVars(E, Again);
  EXPECT_EQ(Vars, Again);
  EXPECT_TRUE(containsVar(E, "fv_a"));
  EXPECT_FALSE(containsVar(E, "fv_c"));
}

TEST(FreeVarsTest, ProphecyFlagIsPrecomputed) {
  Expr P = mkVar(std::string(prophecyVarPrefix()) + "obs", Sort::Int);
  Expr E = mkAdd(P, mkInt(1));
  EXPECT_TRUE(mentionsProphecy(P));
  EXPECT_TRUE(mentionsProphecy(E));
  EXPECT_FALSE(mentionsProphecy(mkAdd(mkVar("plain", Sort::Int), mkInt(1))));
}
