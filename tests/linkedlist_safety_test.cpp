//===- tests/linkedlist_safety_test.cpp - E1: type safety (§6) --------------===//
//
// The first experiment of the paper's evaluation: type safety of
// LinkedList::{new, push_front, pop_front, front_mut} against #[show_safety]
// specs, with only front_mut needing the two declared lemmas.
//
//===----------------------------------------------------------------------===//

#include "rustlib/LinkedList.h"

#include <gtest/gtest.h>

using namespace gilr;
using namespace gilr::rustlib;

namespace {

class SafetyTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    Lib = buildLinkedListLib(SpecMode::TypeSafety).release();
  }
  static void TearDownTestSuite() {
    delete Lib;
    Lib = nullptr;
  }
  static LinkedListLib *Lib;

  engine::VerifyReport verify(const std::string &Name) {
    engine::VerifEnv Env = Lib->env();
    engine::Verifier V(Env);
    return V.verifyFunction(Name);
  }
};

LinkedListLib *SafetyTest::Lib = nullptr;

TEST_F(SafetyTest, LibraryBuilds) {
  ASSERT_NE(Lib, nullptr);
  EXPECT_NE(Lib->Prog.lookup("LinkedList::new"), nullptr);
  EXPECT_NE(Lib->Prog.lookup("LinkedList::pop_front_node"), nullptr);
  EXPECT_TRUE(Lib->Preds.contains("dllSeg"));
  EXPECT_TRUE(Lib->Preds.contains("own$LinkedList<T>"));
  EXPECT_TRUE(Lib->Lemmas.contains("ll_freeze_list"));
  EXPECT_TRUE(Lib->Lemmas.contains("ll_extract_head"));
}

TEST_F(SafetyTest, New) {
  engine::VerifyReport R = verify("LinkedList::new");
  EXPECT_TRUE(R.Ok) << (R.Errors.empty() ? "" : R.Errors.front());
  EXPECT_GE(R.PathsCompleted, 1u);
}

TEST_F(SafetyTest, PushFrontNode) {
  engine::VerifyReport R = verify("LinkedList::push_front_node");
  EXPECT_TRUE(R.Ok) << (R.Errors.empty() ? "" : R.Errors.front());
  // Both the empty-list and non-empty-list paths complete (plus the safe
  // panic path of len + 1).
  EXPECT_GE(R.PathsCompleted, 2u);
}

TEST_F(SafetyTest, PopFrontNode) {
  engine::VerifyReport R = verify("LinkedList::pop_front_node");
  EXPECT_TRUE(R.Ok) << (R.Errors.empty() ? "" : R.Errors.front());
  EXPECT_GE(R.PathsCompleted, 3u); // None, Some-last, Some-more.
}

TEST_F(SafetyTest, PushFront) {
  engine::VerifyReport R = verify("LinkedList::push_front");
  EXPECT_TRUE(R.Ok) << (R.Errors.empty() ? "" : R.Errors.front());
}

TEST_F(SafetyTest, PopFront) {
  engine::VerifyReport R = verify("LinkedList::pop_front");
  EXPECT_TRUE(R.Ok) << (R.Errors.empty() ? "" : R.Errors.front());
}

TEST_F(SafetyTest, FrontMut) {
  engine::VerifyReport R = verify("LinkedList::front_mut");
  EXPECT_TRUE(R.Ok) << (R.Errors.empty() ? "" : R.Errors.front());
  EXPECT_GE(R.PathsCompleted, 2u);
}

TEST_F(SafetyTest, IsEmptyAndLen) {
  EXPECT_TRUE(verify("LinkedList::is_empty").Ok);
  EXPECT_TRUE(verify("LinkedList::len_mut").Ok);
}

TEST_F(SafetyTest, AnnotationCountsMatchPaper) {
  // §6: "no function other than front_mut requires additional annotations"
  // — modulo the mutref_auto_resolve! tactic line the node-level functions
  // carry (Fig. 3 shows it on pop_front).
  EXPECT_EQ(engine::countGhostAnnotations(*Lib->Prog.lookup("LinkedList::new")),
            0u);
  EXPECT_EQ(engine::countGhostAnnotations(
                *Lib->Prog.lookup("LinkedList::push_front")),
            0u);
  EXPECT_EQ(engine::countGhostAnnotations(
                *Lib->Prog.lookup("LinkedList::pop_front")),
            0u);
  // front_mut: the 2 lemma applications the paper reports, plus the
  // branch-local resolve line our functional-front_mut extension adds.
  EXPECT_EQ(engine::countGhostAnnotations(
                *Lib->Prog.lookup("LinkedList::front_mut")),
            3u);
}

TEST_F(SafetyTest, WholeE1SuiteVerifies) {
  engine::VerifEnv Env = Lib->env();
  engine::Verifier V(Env);
  double Total = 0.0;
  for (const std::string &Name : typeSafetyFunctions()) {
    engine::VerifyReport R = V.verifyFunction(Name);
    EXPECT_TRUE(R.Ok) << Name << ": "
                      << (R.Errors.empty() ? "" : R.Errors.front());
    Total += R.Seconds;
  }
  // The paper reports 0.16 s on a 2019 laptop; we only require the same
  // order of magnitude ("the resulting verification process is fast").
  EXPECT_LT(Total, 30.0);
}

TEST_F(SafetyTest, AblationAutoCloseMatters) {
  // A1's fourth row (bench_ablation): with automatic borrow closing off,
  // replace_front — the one function without a mutref_auto_resolve! tactic
  // line — fails at return with an open borrow, while front_mut (whose
  // resolve ghost closes explicitly) still verifies.
  auto Lib2 = buildLinkedListLib(SpecMode::TypeSafety);
  Lib2->Auto.AutoCloseAtReturn = false;
  engine::VerifEnv Env = Lib2->env();
  engine::Verifier V(Env);
  EXPECT_FALSE(V.verifyFunction("LinkedList::replace_front").Ok);
  EXPECT_TRUE(V.verifyFunction("LinkedList::front_mut").Ok);
}

} // namespace

//===----------------------------------------------------------------------===//
// Negative tests: injected bugs must be rejected (the Fig. 7 story).
//===----------------------------------------------------------------------===//

namespace {

class BuggyVariantTest : public ::testing::TestWithParam<std::string> {
protected:
  static void SetUpTestSuite() {
    Lib = buildLinkedListLib(SpecMode::TypeSafety).release();
    registerBuggyVariants(*Lib);
  }
  static void TearDownTestSuite() {
    delete Lib;
    Lib = nullptr;
  }
  static LinkedListLib *Lib;
};

LinkedListLib *BuggyVariantTest::Lib = nullptr;

TEST_P(BuggyVariantTest, VerificationRejectsTheBug) {
  engine::VerifEnv Env = Lib->env();
  engine::Verifier V(Env);
  engine::VerifyReport R = V.verifyFunction(GetParam());
  EXPECT_FALSE(R.Ok) << GetParam()
                     << " verified despite the injected bug";
  EXPECT_FALSE(R.Errors.empty());
}

INSTANTIATE_TEST_SUITE_P(
    InjectedBugs, BuggyVariantTest,
    ::testing::Values("LinkedList::push_front_node_noprev",
                      "LinkedList::push_front_node_cycle",
                      "LinkedList::push_front_node_nolen"),
    [](const ::testing::TestParamInfo<std::string> &Info) {
      return Info.param.substr(Info.param.rfind('_') + 1);
    });

} // namespace
