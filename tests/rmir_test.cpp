//===- tests/rmir_test.cpp - RMIR types, layouts, builder -------------------===//

#include "rmir/Builder.h"
#include "rmir/Layout.h"
#include "rmir/Printer.h"
#include "sym/ExprBuilder.h"

#include <gtest/gtest.h>

using namespace gilr;
using namespace gilr::rmir;

TEST(TypeTest, IntKindsCoverTwelvePrimitives) {
  // The paper notes Rust's 12 machine integer types (§3).
  TyCtx Ty;
  for (int K = 0; K <= static_cast<int>(IntKind::USize); ++K) {
    TypeRef T = Ty.intTy(static_cast<IntKind>(K));
    EXPECT_TRUE(T->isInt());
    EXPECT_GE(intByteWidth(T->IntK), 1u);
    EXPECT_LE(intByteWidth(T->IntK), 16u);
  }
  EXPECT_EQ(intMaxValue(IntKind::U8), 255);
  EXPECT_EQ(intMinValue(IntKind::I8), -128);
  EXPECT_EQ(intMaxValue(IntKind::U64),
            (static_cast<__int128>(1) << 64) - 1);
  EXPECT_FALSE(intIsSigned(IntKind::USize));
  EXPECT_TRUE(intIsSigned(IntKind::ISize));
}

TEST(TypeTest, InterningIsCanonical) {
  TyCtx Ty;
  TypeRef T = Ty.param("T");
  EXPECT_EQ(T, Ty.param("T"));
  EXPECT_EQ(Ty.rawPtr(T), Ty.rawPtr(T));
  EXPECT_EQ(Ty.optionOf(T), Ty.optionOf(T));
  EXPECT_NE(Ty.rawPtr(T), Ty.mutRef(T));
}

TEST(TypeTest, RecursiveStructThroughForwardDecl) {
  TyCtx Ty;
  TypeRef Node = Ty.declareStructForward("Node");
  TypeRef OptPtr = Ty.optionOf(Ty.rawPtr(Node));
  Ty.defineStructFields(Node, {FieldDef{"next", OptPtr}});
  EXPECT_EQ(Node->Fields.size(), 1u);
  EXPECT_EQ(Node->Fields[0].Ty->optionPayload()->Pointee, Node);
}

TEST(TypeTest, ByNameFindsDerivedTypes) {
  TyCtx Ty;
  TypeRef T = Ty.param("T");
  TypeRef P = Ty.rawPtr(T);
  EXPECT_EQ(Ty.byName("*mut T"), P);
  EXPECT_EQ(Ty.byName("T"), T);
  EXPECT_EQ(Ty.byName("u32"), Ty.intTy(IntKind::U32));
  EXPECT_EQ(Ty.byName("nonexistent"), nullptr);
}

TEST(TypeTest, SizeOfExpr) {
  TyCtx Ty;
  EXPECT_EQ(Ty.sizeOfExpr(Ty.intTy(IntKind::U32))->IntVal, 4);
  EXPECT_EQ(Ty.sizeOfExpr(Ty.unitTy())->IntVal, 0); // Zero-sized type.
  EXPECT_EQ(Ty.sizeOfExpr(Ty.rawPtr(Ty.param("T")))->IntVal, 8);
  // Parametric sizes are opaque but fixed.
  Expr S1 = Ty.sizeOfExpr(Ty.param("T"));
  Expr S2 = Ty.sizeOfExpr(Ty.param("T"));
  EXPECT_TRUE(exprEquals(S1, S2));
  EXPECT_EQ(S1->Kind, ExprKind::App);
}

//===----------------------------------------------------------------------===//
// Layout strategies (Fig. 4)
//===----------------------------------------------------------------------===//

TEST(LayoutTest, StructOrderingsDiffer) {
  // Fig. 4: struct S { x: u32, y: u64 } has different layouts under
  // largest-first vs smallest-first.
  TyCtx Ty;
  TypeRef S = Ty.declareStruct("S", {FieldDef{"x", Ty.intTy(IntKind::U32)},
                                     FieldDef{"y", Ty.intTy(IntKind::U64)}});
  LayoutEngine Large(Ty, LayoutStrategy::LargestFirst);
  LayoutEngine Small(Ty, LayoutStrategy::SmallestFirst);
  LayoutEngine Decl(Ty, LayoutStrategy::DeclOrder);

  // Largest-first: y at 0, x at 8, size 16 (tail padding to align 8).
  EXPECT_EQ(Large.fieldOffset(S, 1), 0u);
  EXPECT_EQ(Large.fieldOffset(S, 0), 8u);
  EXPECT_EQ(Large.sizeOf(S), 16u);
  // Smallest-first: x at 0, y at 8 (padding), size 16.
  EXPECT_EQ(Small.fieldOffset(S, 0), 0u);
  EXPECT_EQ(Small.fieldOffset(S, 1), 8u);
  // Decl order coincides with smallest-first here.
  EXPECT_EQ(Decl.fieldOffset(S, 0), 0u);
  EXPECT_EQ(Decl.sizeOf(S), 16u);
  EXPECT_EQ(Large.alignOf(S), 8u);
}

TEST(LayoutTest, NicheOptimisationForOptionPointer) {
  TyCtx Ty;
  TypeRef P = Ty.rawPtr(Ty.intTy(IntKind::U32));
  TypeRef Opt = Ty.optionOf(P);
  LayoutEngine WithNiche(Ty, LayoutStrategy::LargestFirst, true);
  LayoutEngine NoNiche(Ty, LayoutStrategy::LargestFirst, false);
  // Niche: same size as the pointer (§3, niche optimization).
  EXPECT_EQ(WithNiche.sizeOf(Opt), 8u);
  EXPECT_TRUE(WithNiche.of(Opt).IsNiche);
  // Without: tag + padding + pointer.
  EXPECT_EQ(NoNiche.sizeOf(Opt), 16u);
  EXPECT_FALSE(NoNiche.of(Opt).IsNiche);
}

TEST(LayoutTest, EnumTaggedLayout) {
  TyCtx Ty;
  TypeRef E = Ty.declareEnum(
      "E", {VariantDef{"A", {FieldDef{"0", Ty.intTy(IntKind::U16)}}},
            VariantDef{"B", {FieldDef{"0", Ty.intTy(IntKind::U64)}}}});
  LayoutEngine L(Ty, LayoutStrategy::DeclOrder);
  const ConcreteLayout &CL = L.of(E);
  EXPECT_EQ(CL.DiscrOffset, 0u);
  EXPECT_EQ(CL.DiscrSize, 1u);
  // Payloads are placed after the tag with proper alignment.
  EXPECT_GE(CL.VariantFieldOffsets[0][0], 1u);
  EXPECT_EQ(CL.VariantFieldOffsets[1][0] % 8, 0u);
  EXPECT_EQ(CL.Size % CL.Align, 0u);
}

TEST(LayoutTest, ArraysAreContiguous) {
  TyCtx Ty;
  TypeRef A = Ty.array(Ty.intTy(IntKind::U32), 5);
  LayoutEngine L(Ty, LayoutStrategy::LargestFirst);
  EXPECT_EQ(L.sizeOf(A), 20u);
  EXPECT_EQ(L.alignOf(A), 4u);
}

//===----------------------------------------------------------------------===//
// Programs and the builder
//===----------------------------------------------------------------------===//

TEST(BuilderTest, BuildsAWellFormedFunction) {
  TyCtx Ty;
  FunctionBuilder B("double", Ty);
  LocalId X = B.addParam("x", Ty.intTy(IntKind::U32));
  B.setReturnType(Ty.intTy(IntKind::U32));
  BlockId Entry = B.newBlock();
  B.atBlock(Entry);
  B.assign(Place(0), Rvalue::binary(BinOp::Add, Operand::copy(Place(X)),
                                    Operand::copy(Place(X))));
  B.ret();
  Function F = B.finish();
  EXPECT_EQ(F.NumParams, 1u);
  EXPECT_EQ(F.Blocks.size(), 1u);
  EXPECT_EQ(F.returnType()->IntK, IntKind::U32);
  EXPECT_EQ(placeType(F, Place(X)), Ty.intTy(IntKind::U32));
}

TEST(BuilderTest, PlaceTypeWalksProjections) {
  TyCtx Ty;
  TypeRef Inner = Ty.declareStruct("Inner", {FieldDef{"a", Ty.usize()}});
  TypeRef Outer = Ty.declareStruct(
      "Outer", {FieldDef{"p", Ty.rawPtr(Inner)}, FieldDef{"n", Ty.usize()}});
  FunctionBuilder B("f", Ty);
  LocalId O = B.addParam("o", Outer);
  BlockId Entry = B.newBlock();
  B.atBlock(Entry);
  B.ret();
  Function F = B.finish();
  EXPECT_EQ(placeType(F, Place(O).field(0)), Ty.rawPtr(Inner));
  EXPECT_EQ(placeType(F, Place(O).field(0).deref()), Inner);
  EXPECT_EQ(placeType(F, Place(O).field(0).deref().field(0)), Ty.usize());
}

TEST(BuilderTest, OptionDowncastType) {
  TyCtx Ty;
  TypeRef Opt = Ty.optionOf(Ty.usize());
  FunctionBuilder B("g", Ty);
  LocalId O = B.addParam("o", Opt);
  BlockId Entry = B.newBlock();
  B.atBlock(Entry);
  B.ret();
  Function F = B.finish();
  EXPECT_EQ(placeType(F, Place(O).downcast(1).field(0)), Ty.usize());
}

TEST(PrinterTest, RendersFunction) {
  TyCtx Ty;
  FunctionBuilder B("id", Ty);
  LocalId X = B.addParam("x", Ty.usize());
  B.setReturnType(Ty.usize());
  BlockId Entry = B.newBlock();
  B.atBlock(Entry);
  B.assign(Place(0), Rvalue::use(Operand::copy(Place(X))));
  B.ret();
  Function F = B.finish();
  std::string Text = functionToString(F);
  EXPECT_NE(Text.find("fn id"), std::string::npos);
  EXPECT_NE(Text.find("return"), std::string::npos);
  EXPECT_NE(Text.find("bb0"), std::string::npos);
}
