//===- tests/solver_property_test.cpp - Property sweeps for the solver ------===//
//
// Parameterized property-style tests: soundness of the SMT-lite engine is
// checked against brute-force evaluation over small concrete domains, and
// the simplifier's invariants (idempotence, model preservation) are swept
// over a family of generated expressions.
//
//===----------------------------------------------------------------------===//

#include "solver/Simplify.h"
#include "solver/Solver.h"
#include "sym/ExprBuilder.h"
#include "sym/Printer.h"
#include "sym/Subst.h"

#include <gtest/gtest.h>

using namespace gilr;

namespace {

/// A tiny deterministic PRNG (no std::random to keep runs reproducible).
struct Lcg {
  uint64_t State;
  explicit Lcg(uint64_t Seed) : State(Seed * 2654435761u + 12345) {}
  uint64_t next() {
    State = State * 6364136223846793005ull + 1442695040888963407ull;
    return State >> 33;
  }
  int range(int Lo, int Hi) {
    return Lo + static_cast<int>(next() % static_cast<uint64_t>(Hi - Lo + 1));
  }
};

/// Generates a random boolean formula over integer variables x0..x2.
Expr genFormula(Lcg &Rng, int Depth) {
  if (Depth == 0) {
    Expr A = mkVar("x" + std::to_string(Rng.range(0, 2)), Sort::Int);
    Expr B = Rng.range(0, 1) == 0
                 ? mkInt(Rng.range(-2, 2))
                 : mkVar("x" + std::to_string(Rng.range(0, 2)), Sort::Int);
    switch (Rng.range(0, 2)) {
    case 0:
      return mkEq(A, B);
    case 1:
      return mkLt(A, B);
    default:
      return mkLe(A, B);
    }
  }
  switch (Rng.range(0, 3)) {
  case 0:
    return mkAnd(genFormula(Rng, Depth - 1), genFormula(Rng, Depth - 1));
  case 1:
    return mkOr(genFormula(Rng, Depth - 1), genFormula(Rng, Depth - 1));
  case 2:
    return mkNot(genFormula(Rng, Depth - 1));
  default:
    return mkImplies(genFormula(Rng, Depth - 1), genFormula(Rng, Depth - 1));
  }
}

/// Brute-force satisfiability over x0, x1, x2 in [-3, 3].
bool bruteForceSat(const Expr &F) {
  for (int X0 = -3; X0 <= 3; ++X0)
    for (int X1 = -3; X1 <= 3; ++X1)
      for (int X2 = -3; X2 <= 3; ++X2) {
        Subst S;
        S.bind("x0", mkInt(X0));
        S.bind("x1", mkInt(X1));
        S.bind("x2", mkInt(X2));
        Expr V = S.apply(F);
        if (isTrueLit(V))
          return true;
      }
  return false;
}

class SolverSoundness : public ::testing::TestWithParam<int> {};

TEST_P(SolverSoundness, AgreesWithBruteForceOnSmallDomains) {
  // Caveat: the solver decides over unbounded integers; a formula SAT over
  // Z but not over [-3,3] would be a spurious mismatch. The generated
  // atoms compare variables with each other and with constants in [-2,2],
  // for which any satisfying assignment can be shifted into the window.
  Lcg Rng(static_cast<uint64_t>(GetParam()));
  Expr F = genFormula(Rng, 3);
  bool Brute = bruteForceSat(F);
  SatResult Sr = Solver().checkSat({F});
  if (Sr == SatResult::Unknown)
    GTEST_SKIP() << "solver gave up on " << exprToString(F);
  // Unsat from the solver must mean brute force finds nothing.
  if (Sr == SatResult::Unsat)
    EXPECT_FALSE(Brute) << exprToString(F);
  // Brute-force SAT must never be reported Unsat.
  if (Brute)
    EXPECT_EQ(Sr, SatResult::Sat) << exprToString(F);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverSoundness,
                         ::testing::Range(1, 120));

class SimplifierProps : public ::testing::TestWithParam<int> {};

TEST_P(SimplifierProps, SimplifyIsIdempotentAndModelPreserving) {
  Lcg Rng(static_cast<uint64_t>(GetParam()) * 977);
  Expr F = genFormula(Rng, 3);
  Expr S1 = simplify(F);
  Expr S2 = simplify(S1);
  EXPECT_TRUE(exprEquals(S1, S2)) << exprToString(F);
  // Model preservation on a concrete assignment sweep.
  for (int X0 = -2; X0 <= 2; ++X0)
    for (int X1 = -2; X1 <= 2; ++X1) {
      Subst Sub;
      Sub.bind("x0", mkInt(X0));
      Sub.bind("x1", mkInt(X1));
      Sub.bind("x2", mkInt(1));
      Expr VF = Sub.apply(F);
      Expr VS = Sub.apply(S1);
      ASSERT_TRUE(VF->Kind == ExprKind::BoolLit &&
                  VS->Kind == ExprKind::BoolLit)
          << exprToString(F);
      EXPECT_EQ(VF->BoolVal, VS->BoolVal) << exprToString(F);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplifierProps, ::testing::Range(1, 60));

class NegateProps : public ::testing::TestWithParam<int> {};

TEST_P(NegateProps, NegationIsComplementOnAssignments) {
  Lcg Rng(static_cast<uint64_t>(GetParam()) * 31337);
  Expr F = genFormula(Rng, 2);
  Expr NF = negate(F);
  for (int X0 = -2; X0 <= 2; ++X0) {
    Subst Sub;
    Sub.bind("x0", mkInt(X0));
    Sub.bind("x1", mkInt(-X0));
    Sub.bind("x2", mkInt(0));
    Expr VF = Sub.apply(F);
    Expr VN = Sub.apply(NF);
    ASSERT_EQ(VF->Kind, ExprKind::BoolLit);
    ASSERT_EQ(VN->Kind, ExprKind::BoolLit);
    EXPECT_NE(VF->BoolVal, VN->BoolVal) << exprToString(F);
  }
  // And the solver agrees F /\ not F is unsatisfiable.
  EXPECT_EQ(Solver().checkSat({F, NF}), SatResult::Unsat);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NegateProps, ::testing::Range(1, 60));

/// Sequence property: for any split point, sub(s,0,i) ++ sub(s,i,|s|-i) = s.
class SeqSplitProps : public ::testing::TestWithParam<int> {};

TEST_P(SeqSplitProps, ConcreteSplitsReassemble) {
  int N = GetParam();
  std::vector<Expr> Elems;
  for (int I = 0; I != N; ++I)
    Elems.push_back(mkInt(I * 7));
  Expr S = mkSeqLit(Elems);
  for (int I = 0; I <= N; ++I) {
    Expr L = mkSeqSub(S, mkInt(0), mkInt(I));
    Expr R = mkSeqSub(S, mkInt(I), mkInt(N - I));
    EXPECT_TRUE(isTrueLit(mkEq(mkSeqConcat(L, R), S)))
        << "N=" << N << " I=" << I;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SeqSplitProps, ::testing::Range(0, 8));

/// Rational arithmetic sweep: field laws on a small grid.
class RationalProps
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RationalProps, FieldLaws) {
  auto [NA, NB] = GetParam();
  Rational A(NA, 3), B(NB, 4);
  EXPECT_EQ((A + B).str(), (B + A).str());
  EXPECT_EQ((A * B).str(), (B * A).str());
  EXPECT_EQ((A - A).str(), "0");
  EXPECT_EQ(((A + B) - B).str(), A.str());
  Rational Zero(0, 1);
  EXPECT_EQ((A + Zero).str(), A.str());
}

INSTANTIATE_TEST_SUITE_P(Grid, RationalProps,
                         ::testing::Combine(::testing::Range(-3, 4),
                                            ::testing::Range(-3, 4)));

} // namespace
