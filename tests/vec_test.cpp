//===- tests/vec_test.cpp - Laid-out node case study (Fig. 5) ---------------===//

#include "rustlib/Vec.h"

#include <gtest/gtest.h>

using namespace gilr;
using namespace gilr::rustlib;

namespace {

class VecTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() { Lib = buildVecLib().release(); }
  static void TearDownTestSuite() {
    delete Lib;
    Lib = nullptr;
  }
  static VecLib *Lib;

  engine::VerifyReport verify(const std::string &Name) {
    engine::VerifEnv Env = Lib->env();
    engine::Verifier V(Env);
    return V.verifyFunction(Name);
  }
};

VecLib *VecTest::Lib = nullptr;

TEST_F(VecTest, PushRaw) {
  // Fig. 5 end-to-end: write at offset len into the uninitialised range,
  // postcondition reassembles [0, len+1) as s ++ [x].
  engine::VerifyReport R = verify("Vec::push_raw");
  EXPECT_TRUE(R.Ok) << (R.Errors.empty() ? "" : R.Errors.front());
}

TEST_F(VecTest, GetRaw) {
  engine::VerifyReport R = verify("Vec::get_raw");
  EXPECT_TRUE(R.Ok) << (R.Errors.empty() ? "" : R.Errors.front());
}

TEST_F(VecTest, SetRaw) {
  engine::VerifyReport R = verify("Vec::set_raw");
  EXPECT_TRUE(R.Ok) << (R.Errors.empty() ? "" : R.Errors.front());
}

TEST_F(VecTest, AllVerifyQuickly) {
  engine::VerifEnv Env = Lib->env();
  engine::Verifier V(Env);
  double Total = 0.0;
  for (const std::string &Name : vecFunctions()) {
    engine::VerifyReport R = V.verifyFunction(Name);
    EXPECT_TRUE(R.Ok) << Name;
    Total += R.Seconds;
  }
  EXPECT_LT(Total, 30.0);
}

} // namespace

namespace {

TEST(VecMoveTest, PopRawDeinitialisesTheSlot) {
  auto Lib = buildVecLib();
  engine::VerifEnv Env = Lib->env();
  engine::Verifier V(Env);
  engine::VerifyReport R = V.verifyFunction("Vec::pop_raw");
  EXPECT_TRUE(R.Ok) << (R.Errors.empty() ? "" : R.Errors.front());
}

} // namespace
