//===- tests/sym_expr_test.cpp - Expression DAG unit tests -----------------===//

#include "sym/Expr.h"
#include "sym/ExprBuilder.h"
#include "sym/Printer.h"
#include "sym/Subst.h"
#include "sym/VarGen.h"

#include <gtest/gtest.h>

using namespace gilr;

TEST(Rational, NormalisesSign) {
  Rational R(2, -4);
  EXPECT_EQ(R.Num, -1);
  EXPECT_EQ(R.Den, 2);
  EXPECT_TRUE(R.isNegative());
}

TEST(Rational, Arithmetic) {
  Rational Half(1, 2), Third(1, 3);
  EXPECT_EQ((Half + Third).str(), "5/6");
  EXPECT_EQ((Half - Third).str(), "1/6");
  EXPECT_EQ((Half * Third).str(), "1/6");
  EXPECT_TRUE(Third < Half);
}

TEST(Rational, HoldsUsizeMax) {
  __int128 Max = (static_cast<__int128>(1) << 64) - 1;
  Rational R(Max, 1);
  EXPECT_EQ(R.str(), "18446744073709551615");
}

TEST(ExprBuilder, ConstantFoldingArithmetic) {
  Expr E = mkAdd(mkInt(2), mkInt(3));
  ASSERT_EQ(E->Kind, ExprKind::IntLit);
  EXPECT_EQ(E->IntVal, 5);
  EXPECT_EQ(mkMul(mkInt(4), mkInt(6))->IntVal, 24);
  EXPECT_EQ(mkSub(mkInt(4), mkInt(6))->IntVal, -2);
  EXPECT_EQ(mkNeg(mkInt(9))->IntVal, -9);
}

TEST(ExprBuilder, AddFlattensAndCollectsConstants) {
  Expr X = mkVar("x", Sort::Int);
  Expr E = mkAdd({mkInt(1), mkAdd(X, mkInt(2)), mkInt(3)});
  // x + 6.
  ASSERT_EQ(E->Kind, ExprKind::Add);
  EXPECT_EQ(exprToString(E), "(+ x 6)");
}

TEST(ExprBuilder, AddCancelsNegatedTerms) {
  Expr X = mkVar("x", Sort::Int);
  Expr Y = mkVar("y", Sort::Int);
  // (x + y) - (x) - (y) == 0.
  Expr E = mkSub(mkSub(mkAdd(X, Y), X), Y);
  ASSERT_EQ(E->Kind, ExprKind::IntLit);
  EXPECT_EQ(E->IntVal, 0);
}

TEST(ExprBuilder, SubOfIdenticalIsZero) {
  Expr X = mkVar("x", Sort::Int);
  Expr E = mkSub(mkAdd(X, mkInt(1)), mkAdd(X, mkInt(1)));
  ASSERT_EQ(E->Kind, ExprKind::IntLit);
  EXPECT_EQ(E->IntVal, 0);
}

TEST(ExprBuilder, BooleanIdentities) {
  Expr X = mkVar("b", Sort::Bool);
  EXPECT_TRUE(isTrueLit(mkAnd(mkTrue(), mkTrue())));
  EXPECT_TRUE(isFalseLit(mkAnd(X, mkFalse())));
  EXPECT_TRUE(isTrueLit(mkOr(X, mkTrue())));
  EXPECT_TRUE(exprEquals(mkAnd(X, mkTrue()), X));
  EXPECT_TRUE(exprEquals(mkNot(mkNot(X)), X));
  EXPECT_TRUE(isTrueLit(mkImplies(mkFalse(), X)));
}

TEST(ExprBuilder, AndDeduplicates) {
  Expr X = mkVar("b", Sort::Bool);
  Expr E = mkAnd(X, X);
  EXPECT_TRUE(exprEquals(E, X));
}

TEST(ExprBuilder, EqConstructorClash) {
  EXPECT_TRUE(isFalseLit(mkEq(mkNone(), mkSome(mkInt(1)))));
  EXPECT_TRUE(isFalseLit(mkEq(mkInt(1), mkInt(2))));
  EXPECT_TRUE(isTrueLit(mkEq(mkInt(3), mkInt(3))));
  EXPECT_TRUE(isFalseLit(mkEq(mkSeqNil(), mkSeqUnit(mkInt(1)))));
  EXPECT_TRUE(isFalseLit(mkEq(mkLoc(1), mkLoc(2))));
  EXPECT_TRUE(isTrueLit(mkEq(mkUnit(), mkUnit())));
}

TEST(ExprBuilder, EqDecomposesConstructors) {
  Expr X = mkVar("x", Sort::Int);
  // Some(x) = Some(3)  -->  x = 3.
  Expr E = mkEq(mkSome(X), mkSome(mkInt(3)));
  ASSERT_EQ(E->Kind, ExprKind::Eq);
  // Tuples decompose to conjunctions.
  Expr T = mkEq(mkTuple({X, mkInt(1)}), mkTuple({mkInt(2), mkInt(1)}));
  EXPECT_TRUE(exprEquals(T, mkEq(X, mkInt(2))));
  // Arity mismatch is false.
  EXPECT_TRUE(isFalseLit(mkEq(mkTuple({X}), mkTuple({X, X}))));
}

TEST(ExprBuilder, OptionFolding) {
  Expr X = mkVar("x", Sort::Int);
  EXPECT_TRUE(isTrueLit(mkIsSome(mkSome(X))));
  EXPECT_TRUE(isFalseLit(mkIsSome(mkNone())));
  EXPECT_TRUE(exprEquals(mkUnwrap(mkSome(X)), X));
  EXPECT_TRUE(isTrueLit(mkIsNone(mkNone())));
}

TEST(ExprBuilder, SequenceFolding) {
  Expr X = mkVar("x", Sort::Int);
  Expr S = mkSeqLit({mkInt(1), mkInt(2), X});
  EXPECT_EQ(mkSeqLen(S)->IntVal, 3);
  EXPECT_EQ(mkSeqNth(S, mkInt(0))->IntVal, 1);
  EXPECT_EQ(mkSeqNth(S, mkInt(1))->IntVal, 2);
  EXPECT_TRUE(exprEquals(mkSeqNth(S, mkInt(2)), X));
  // Concat flattens and drops nil.
  Expr C = mkSeqConcat({mkSeqNil(), S, mkSeqNil()});
  EXPECT_TRUE(exprEquals(C, S));
}

TEST(ExprBuilder, SeqSubFolding) {
  Expr S = mkSeqLit({mkInt(1), mkInt(2), mkInt(3)});
  Expr Sub = mkSeqSub(S, mkInt(1), mkInt(2));
  __int128 Len;
  ASSERT_TRUE(getStaticSeqLen(Sub, Len));
  EXPECT_EQ(Len, 2);
  EXPECT_EQ(mkSeqNth(Sub, mkInt(0))->IntVal, 2);
  // Empty slice is nil.
  EXPECT_EQ(mkSeqSub(S, mkInt(1), mkInt(0))->Kind, ExprKind::SeqNil);
  // Whole-sequence slice is the sequence.
  EXPECT_TRUE(exprEquals(mkSeqSub(S, mkInt(0), mkInt(3)), S));
}

TEST(ExprBuilder, NestedSeqSubComposition) {
  Expr S = mkVar("s", Sort::Seq);
  Expr Inner = mkSeqSub(S, mkVar("a", Sort::Int), mkVar("b", Sort::Int));
  Expr Outer = mkSeqSub(Inner, mkInt(1), mkInt(1));
  // sub(sub(s,a,b),1,1) = sub(s, a+1, 1).
  ASSERT_EQ(Outer->Kind, ExprKind::SeqSub);
  EXPECT_TRUE(exprEquals(Outer->Kids[0], S));
}

TEST(ExprBuilder, TupleFolding) {
  Expr X = mkVar("x", Sort::Int);
  Expr T = mkTuple({X, mkInt(2)});
  EXPECT_TRUE(exprEquals(mkTupleGet(T, 0), X));
  EXPECT_EQ(mkTupleGet(T, 1)->IntVal, 2);
}

TEST(ExprBuilder, IteFolding) {
  Expr X = mkVar("x", Sort::Int);
  Expr Y = mkVar("y", Sort::Int);
  EXPECT_TRUE(exprEquals(mkIte(mkTrue(), X, Y), X));
  EXPECT_TRUE(exprEquals(mkIte(mkFalse(), X, Y), Y));
  EXPECT_TRUE(exprEquals(mkIte(mkVar("c", Sort::Bool), X, X), X));
}

TEST(ExprBuilder, ComparisonFolding) {
  EXPECT_TRUE(isTrueLit(mkLt(mkInt(1), mkInt(2))));
  EXPECT_TRUE(isFalseLit(mkLt(mkInt(2), mkInt(2))));
  EXPECT_TRUE(isTrueLit(mkLe(mkVar("x", Sort::Int), mkVar("x", Sort::Int))));
  EXPECT_TRUE(isFalseLit(mkLt(mkVar("x", Sort::Int), mkVar("x", Sort::Int))));
}

TEST(Expr, StructuralEqualityAndHash) {
  Expr A = mkAdd(mkVar("x", Sort::Int), mkInt(1));
  Expr B = mkAdd(mkVar("x", Sort::Int), mkInt(1));
  EXPECT_TRUE(exprEquals(A, B));
  EXPECT_EQ(A->hash(), B->hash());
  Expr C = mkAdd(mkVar("y", Sort::Int), mkInt(1));
  EXPECT_FALSE(exprEquals(A, C));
}

TEST(Expr, CollectVarsAndContains) {
  Expr E = mkAdd(mkVar("x", Sort::Int),
                 mkMul(mkInt(2), mkVar("y", Sort::Int)));
  std::set<std::string> Vars;
  collectVars(E, Vars);
  EXPECT_EQ(Vars, (std::set<std::string>{"x", "y"}));
  EXPECT_TRUE(containsVar(E, "x"));
  EXPECT_FALSE(containsVar(E, "z"));
}

TEST(Expr, ProphecyVarDetection) {
  VarGen VG;
  Expr P = VG.freshProphecy("fut");
  Expr X = VG.fresh("x", Sort::Int);
  EXPECT_TRUE(isProphecyVarName(P->Name));
  EXPECT_FALSE(isProphecyVarName(X->Name));
  EXPECT_TRUE(mentionsProphecy(mkAdd(X, P)));
  EXPECT_FALSE(mentionsProphecy(mkAdd(X, mkInt(1))));
}

TEST(Subst, AppliesAndResimplifies) {
  Subst S;
  S.bind("x", mkInt(2));
  Expr E = mkAdd(mkVar("x", Sort::Int), mkInt(3));
  Expr R = S.apply(E);
  ASSERT_EQ(R->Kind, ExprKind::IntLit);
  EXPECT_EQ(R->IntVal, 5);
  // Substitution into an equality can decide it.
  Expr Eq = mkEq(mkVar("x", Sort::Int), mkInt(2));
  EXPECT_TRUE(isTrueLit(S.apply(Eq)));
}

TEST(Subst, UnboundVariablesStay) {
  Subst S;
  S.bind("x", mkInt(1));
  Expr E = mkAdd(mkVar("y", Sort::Int), mkVar("x", Sort::Int));
  Expr R = S.apply(E);
  EXPECT_TRUE(containsVar(R, "y"));
  EXPECT_FALSE(containsVar(R, "x"));
}

TEST(VarGen, FreshNamesAreUnique) {
  VarGen VG;
  Expr A = VG.fresh("v", Sort::Int);
  Expr B = VG.fresh("v", Sort::Int);
  EXPECT_NE(A->Name, B->Name);
  Expr L1 = VG.freshLoc();
  Expr L2 = VG.freshLoc();
  EXPECT_NE(L1->LocId, L2->LocId);
}

TEST(Printer, RendersReadably) {
  Expr E = mkEq(mkSome(mkVar("x", Sort::Int)), mkNone());
  // Constructor clash folds to false before printing.
  EXPECT_EQ(exprToString(E), "false");
  EXPECT_EQ(exprToString(mkSeqLit({mkInt(1)})), "[1]");
  EXPECT_EQ(exprToString(mkTuple({mkInt(1), mkInt(2)})), "(1, 2)");
}
