//===- tests/lemma_test.cpp - Borrow extraction / freezing lemmas (§4.3) ----===//
//
// The lemma machinery is exercised end-to-end by front_mut; here we test
// registration-time verification in isolation: sound lemmas are accepted
// (their hypothesis proofs run automatically, §6) and unsound ones are
// rejected.
//
//===----------------------------------------------------------------------===//

#include "engine/Lemma.h"
#include "engine/Produce.h"
#include "sym/ExprBuilder.h"
#include "rustlib/LinkedList.h"

#include <gtest/gtest.h>

using namespace gilr;
using namespace gilr::engine;
using namespace gilr::gilsonite;

namespace {

class LemmaTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    Lib = rustlib::buildLinkedListLib(rustlib::SpecMode::TypeSafety)
              .release();
  }
  static void TearDownTestSuite() {
    delete Lib;
    Lib = nullptr;
  }
  static rustlib::LinkedListLib *Lib;
};

rustlib::LinkedListLib *LemmaTest::Lib = nullptr;

TEST_F(LemmaTest, FrontMutLemmasWereProvenAtBuild) {
  // buildLinkedListLib registers ll_freeze_list and ll_extract_head; their
  // hypothesis proofs ran automatically (a failure aborts the build).
  EXPECT_TRUE(Lib->Lemmas.contains("ll_freeze_list"));
  EXPECT_TRUE(Lib->Lemmas.contains("ll_extract_head"));
}

TEST_F(LemmaTest, FreezeOverUndeclaredPredicateIsRejected) {
  engine::VerifEnv Env = Lib->env();
  FreezeLemma L;
  L.Name = "bogus";
  L.FromPred = "no_such_pred";
  L.ToPred = "frozen$LL";
  EXPECT_TRUE(Lib->Lemmas.registerFreeze(L, Env).failed());
}

TEST_F(LemmaTest, FreezeWithNonEntailingBodyIsRejected) {
  // A "frozen" predicate whose body does NOT contain the original borrow's
  // content cannot justify closing the borrow: registration must fail.
  engine::VerifEnv Env = Lib->env();
  PredDecl Bad;
  Bad.Name = "frozen$broken";
  Bad.Params = {PredParam{"p", Sort::Any, true},
                PredParam{"x", Sort::Any, true}};
  Bad.Guardable = true;
  Bad.Clauses = {pure(mkTrue())}; // Contains nothing.
  Lib->Preds.declareIfAbsent(Bad);

  FreezeLemma L;
  L.Name = "bad_freeze";
  L.FromPred = OwnableRegistry::mutRefInnerName(Lib->LLTy);
  L.ToPred = "frozen$broken";
  Outcome<Unit> R = Lib->Lemmas.registerFreeze(L, Env);
  EXPECT_TRUE(R.failed());
  EXPECT_FALSE(Lib->Lemmas.contains("bad_freeze"));
}

TEST_F(LemmaTest, ExtractionOfUnrelatedMemoryIsRejected) {
  // Extracting a borrow of memory the source borrow does not own: the
  // wand-packaging hypothesis proof must fail.
  engine::VerifEnv Env = Lib->env();
  ExtractLemma L;
  L.Name = "bad_extract";
  L.Params = {"r", "p", "x", "v"};
  L.GivenParams = 1;
  L.MutRefParams = {"r"};
  L.FromPred = "frozen$LL";
  L.FromArgs = {mkVar("p", Sort::Any), mkVar("x", Sort::Any),
                mkVar("v", Sort::Tuple)};
  // No Requires linking r's pointer to the list's content: the extracted
  // pointer is arbitrary memory.
  L.ToPred = OwnableRegistry::mutRefInnerName(Lib->T);
  L.ToArgs = {mkTupleGet(mkVar("r", Sort::Tuple), 0),
              mkTupleGet(mkVar("r", Sort::Tuple), 1)};
  L.NewProphecyHole = "r";
  Outcome<Unit> R = Lib->Lemmas.registerExtract(L, Env);
  EXPECT_TRUE(R.failed());
}

TEST_F(LemmaTest, ApplyingUnknownLemmaFails) {
  engine::VerifEnv Env = Lib->env();
  SymState St;
  EXPECT_TRUE(Lib->Lemmas.apply("no_such_lemma", {}, St, Env).failed());
}

TEST_F(LemmaTest, FreezeApplicationNeedsAnOpenBorrow) {
  engine::VerifEnv Env = Lib->env();
  SymState St; // No closing token anywhere.
  Outcome<Unit> R = Lib->Lemmas.apply("ll_freeze_list", {}, St, Env);
  EXPECT_TRUE(R.failed());
  EXPECT_NE(R.error().find("no open borrow"), std::string::npos);
}

} // namespace
