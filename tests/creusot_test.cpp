//===- tests/creusot_test.cpp - Pearlite and the safe-code verifier ---------===//

#include "creusot/SafeVerifier.h"
#include "creusot/StdSpecs.h"
#include "sym/ExprBuilder.h"
#include "sym/Printer.h"

#include <gtest/gtest.h>

using namespace gilr;
using namespace gilr::creusot;

namespace {

//===----------------------------------------------------------------------===//
// Pearlite lowering (§5.4)
//===----------------------------------------------------------------------===//

class PearliteTest : public ::testing::Test {
protected:
  LowerEnv Env;
};

TEST_F(PearliteTest, PlainVariableLowersToModel) {
  Env.Values["x"] = mkVar("m", Sort::Int);
  Outcome<Expr> R = lowerPearlite(pVar("x"), Env);
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(exprEquals(R.value(), mkVar("m", Sort::Int)));
}

TEST_F(PearliteTest, MutRefRequiresProjection) {
  Env.Values["self"] = mkTuple({mkVar("cur", Sort::Seq),
                                mkVar("fut", Sort::Seq)});
  Env.IsMutRef["self"] = true;
  // Bare use is an error...
  EXPECT_TRUE(lowerPearlite(pVar("self"), Env).failed());
  // ...self@ is the current model...
  Outcome<Expr> Cur = lowerPearlite(pModel(pVar("self")), Env);
  ASSERT_TRUE(Cur.ok());
  EXPECT_TRUE(exprEquals(Cur.value(), mkVar("cur", Sort::Seq)));
  // ...and ^self / (^self)@ the final one (§5.1 representation pairs).
  Outcome<Expr> Fin = lowerPearlite(pModel(pFinal(pVar("self"))), Env);
  ASSERT_TRUE(Fin.ok());
  EXPECT_TRUE(exprEquals(Fin.value(), mkVar("fut", Sort::Seq)));
}

TEST_F(PearliteTest, ResultLowersOnlyInPostconditions) {
  EXPECT_TRUE(lowerPearlite(pResult(), Env).failed());
  Env.ResultVal = mkVar("r", Sort::Any);
  EXPECT_TRUE(lowerPearlite(pResult(), Env).ok());
}

TEST_F(PearliteTest, MatchOptionLowersToIte) {
  Env.ResultVal = mkVar("r", Sort::Opt);
  PTermP T = pMatchOpt(pResult(), pBool(false), "x",
                       pEq(pVar("x"), pInt(3)));
  Outcome<Expr> R = lowerPearlite(T, Env);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.value()->Kind, ExprKind::Ite);
  // The binder lowers to the unwrapped scrutinee.
  EXPECT_NE(exprToString(R.value()).find("unwrap"), std::string::npos);
}

TEST_F(PearliteTest, MatchBinderShadowsOuterVariable) {
  Env.Values["x"] = mkVar("outer", Sort::Int);
  Env.ResultVal = mkVar("r", Sort::Opt);
  PTermP T = pMatchOpt(pResult(), pEq(pVar("x"), pInt(0)), "x",
                       pEq(pVar("x"), pInt(1)));
  Outcome<Expr> R = lowerPearlite(T, Env);
  ASSERT_TRUE(R.ok());
  std::string Text = exprToString(R.value());
  // The Some branch uses unwrap(r), the None branch the outer variable.
  EXPECT_NE(Text.find("unwrap"), std::string::npos);
  EXPECT_NE(Text.find("outer"), std::string::npos);
}

TEST_F(PearliteTest, SequenceOperators) {
  Env.Values["s"] = mkVar("m", Sort::Seq);
  PTermP T = pEq(pSeqLen(pVar("s")), pInt(2));
  Outcome<Expr> R = lowerPearlite(T, Env);
  ASSERT_TRUE(R.ok());
  PTermP C = pSeqCons(pInt(1), pSeqEmpty());
  Outcome<Expr> RC = lowerPearlite(C, Env);
  ASSERT_TRUE(RC.ok());
  __int128 Len;
  EXPECT_TRUE(getStaticSeqLen(RC.value(), Len));
  EXPECT_EQ(Len, 1);
  Outcome<Expr> RN = lowerPearlite(pSeqNth(pVar("s"), pInt(0)), Env);
  ASSERT_TRUE(RN.ok());
}

TEST_F(PearliteTest, UnknownVariableFails) {
  EXPECT_TRUE(lowerPearlite(pVar("ghost"), Env).failed());
}

TEST_F(PearliteTest, PrettyPrinting) {
  PTermP T = pImplies(pLt(pSeqLen(pModel(pVar("self"))), pInt(5)),
                      pNe(pFinal(pVar("self")), pVar("x")));
  EXPECT_EQ(T->str(),
            "((self@.len() < 5) ==> (^self != x))");
}

//===----------------------------------------------------------------------===//
// The contract table
//===----------------------------------------------------------------------===//

TEST(StdSpecsTest, LinkedListContractsArePresent) {
  PearliteSpecTable T = makeLinkedListSpecs();
  for (const char *Name :
       {"LinkedList::new", "LinkedList::push_front", "LinkedList::pop_front",
        "LinkedList::push_front_node", "LinkedList::pop_front_node"})
    EXPECT_NE(T.lookup(Name), nullptr) << Name;
  // push_front carries the §7.3 length precondition.
  const PearliteSpec *Push = T.lookup("LinkedList::push_front");
  ASSERT_NE(Push->Pre, nullptr);
  EXPECT_NE(Push->Pre->str().find("len()"), std::string::npos);
  // pop_front's postcondition matches on the result (Fig. 3).
  const PearliteSpec *Pop = T.lookup("LinkedList::pop_front");
  EXPECT_NE(Pop->Post->str().find("match"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// The safe-code verifier
//===----------------------------------------------------------------------===//

class SafeVerifierTest : public ::testing::Test {
protected:
  SafeVerifierTest() : Specs(makeLinkedListSpecs()) {}
  PearliteSpecTable Specs;
  Solver Solv;

  SafeStmt call(std::string Callee, std::vector<std::string> Args,
                std::vector<bool> Refs, std::string Dest = "") {
    SafeStmt S;
    S.Kind = SafeStmt::Call;
    S.Callee = std::move(Callee);
    S.Args = std::move(Args);
    S.ByMutRef = std::move(Refs);
    S.Dest = std::move(Dest);
    return S;
  }
  SafeStmt let(std::string Dest, PTermP T) {
    SafeStmt S;
    S.Kind = SafeStmt::Let;
    S.Dest = std::move(Dest);
    S.Term = std::move(T);
    return S;
  }
  SafeStmt check(PTermP T) {
    SafeStmt S;
    S.Kind = SafeStmt::Assert;
    S.Term = std::move(T);
    return S;
  }
};

TEST_F(SafeVerifierTest, NewGivesEmptyModel) {
  SafeFn F;
  F.Name = "t";
  F.Body = {call("LinkedList::new", {}, {}, "l"),
            check(pEq(pVar("l"), pSeqEmpty())),
            check(pEq(pSeqLen(pVar("l")), pInt(0)))};
  SafeReport R = SafeVerifier(Specs, Solv).verify(F);
  EXPECT_TRUE(R.Ok) << (R.Errors.empty() ? "" : R.Errors.front());
}

TEST_F(SafeVerifierTest, ProphecyThreadingAdvancesModels) {
  // After push, the variable's model is the prophesied final value.
  SafeFn F;
  F.Name = "t";
  F.Body = {call("LinkedList::new", {}, {}, "l"), let("v", pInt(9)),
            call("LinkedList::push_front", {"l", "v"}, {true, false}),
            check(pEq(pVar("l"), pSeqCons(pInt(9), pSeqEmpty()))),
            check(pEq(pSeqLen(pVar("l")), pInt(1)))};
  SafeReport R = SafeVerifier(Specs, Solv).verify(F);
  EXPECT_TRUE(R.Ok) << (R.Errors.empty() ? "" : R.Errors.front());
}

TEST_F(SafeVerifierTest, FalseAssertFails) {
  SafeFn F;
  F.Name = "t";
  F.Body = {call("LinkedList::new", {}, {}, "l"),
            check(pEq(pSeqLen(pVar("l")), pInt(1)))};
  SafeReport R = SafeVerifier(Specs, Solv).verify(F);
  EXPECT_FALSE(R.Ok);
  ASSERT_EQ(R.Obligations.size(), 1u);
  EXPECT_FALSE(R.Obligations[0].Ok);
}

TEST_F(SafeVerifierTest, MutabilityMismatchIsRejected) {
  SafeFn F;
  F.Name = "t";
  F.Body = {call("LinkedList::new", {}, {}, "l"), let("v", pInt(1)),
            // push_front's self must be by-ref: passing by value is an error.
            call("LinkedList::push_front", {"l", "v"}, {false, false})};
  SafeReport R = SafeVerifier(Specs, Solv).verify(F);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Errors.front().find("mutability"), std::string::npos);
}

TEST_F(SafeVerifierTest, UnknownCalleeIsRejected) {
  SafeFn F;
  F.Name = "t";
  F.Body = {call("LinkedList::reverse", {"l"}, {true})};
  SafeReport R = SafeVerifier(Specs, Solv).verify(F);
  EXPECT_FALSE(R.Ok);
}

TEST_F(SafeVerifierTest, PopOnUnknownListGivesConditionalKnowledge) {
  // A list parameter has an unconstrained model: pop's result is unknown,
  // but the disjunctive postcondition still supports conditional facts.
  SafeFn F;
  F.Name = "t";
  F.Params = {"l"};
  F.Body = {call("LinkedList::pop_front", {"l"}, {true}, "r"),
            // If the result is None the final model is empty:
            check(pImplies(pEq(pVar("r"), pNone()),
                           pEq(pVar("l"), pSeqEmpty())))};
  SafeReport R = SafeVerifier(Specs, Solv).verify(F);
  EXPECT_TRUE(R.Ok) << (R.Errors.empty() ? "" : R.Errors.front());
}

} // namespace
