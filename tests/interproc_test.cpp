//===- tests/interproc_test.cpp - Interprocedural summary analysis tests ---===//
//
// Coverage for the interprocedural layer: call-graph/SCC condensation,
// bottom-up function and predicate summaries (recursive and mutual SCCs,
// opaque callees), the static triage tier (verdict identity with the
// executor, byte stability across worker counts, never-stored verdicts),
// the summary-powered lints (W008 de-opaqued through predicate footprints,
// W009 unsafe-escape, W010 recursion-without-variant), the Side::Summary
// incremental cache (warm reuse, SCC-exact invalidation), and the generic
// dataflow framework (loops, nested back-edges, unreachable-then-rejoined
// blocks, fixpoint termination, deterministic iteration order).
//
//===----------------------------------------------------------------------===//

#include "analysis/Analysis.h"
#include "analysis/CallGraph.h"
#include "analysis/Dataflow.h"
#include "analysis/Interproc.h"
#include "analysis/Summary.h"
#include "engine/Verifier.h"
#include "incr/Session.h"
#include "rmir/Builder.h"
#include "sched/Scheduler.h"
#include "support/Metrics.h"
#include "sym/ExprBuilder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

using namespace gilr;
using namespace gilr::analysis;
using namespace gilr::engine;
using namespace gilr::rmir;
using namespace gilr::gilsonite;

namespace {

bool hasCode(const std::vector<Diagnostic> &Diags, const char *Code) {
  return std::any_of(Diags.begin(), Diags.end(),
                     [&](const Diagnostic &D) { return D.Code == Code; });
}

unsigned countCode(const std::vector<Diagnostic> &Diags, const char *Code) {
  return static_cast<unsigned>(
      std::count_if(Diags.begin(), Diags.end(),
                    [&](const Diagnostic &D) { return D.Code == Code; }));
}

const Diagnostic *findCode(const std::vector<Diagnostic> &Diags,
                           const char *Code) {
  auto It = std::find_if(Diags.begin(), Diags.end(),
                         [&](const Diagnostic &D) { return D.Code == Code; });
  return It == Diags.end() ? nullptr : &*It;
}

class InterprocTest : public ::testing::Test {
protected:
  InterprocTest() : Ownables(Prog.Types, Preds) {
    U32 = Prog.Types.intTy(IntKind::U32);
    P32 = Prog.Types.rawPtr(U32);
    BoolTy = Prog.Types.boolTy();
  }

  void addFn(Function F) {
    std::string N = F.Name;
    Prog.Funcs.emplace(std::move(N), std::move(F));
  }

  void addSpec(const std::string &Func, AssertionP Pre, AssertionP Post,
               std::vector<Binder> Vars = {}) {
    Spec S;
    S.Func = Func;
    S.SpecVars = std::move(Vars);
    S.Pre = std::move(Pre);
    S.Post = std::move(Post);
    Specs.add(std::move(S));
  }

  AnalysisInput input() {
    AnalysisInput In;
    In.Prog = &Prog;
    In.Preds = &Preds;
    In.Specs = &Specs;
    In.Solv = &Solv;
    return In;
  }

  SummaryTable summarize() { return computeSummaries(Prog, Preds, Specs); }

  /// `ret = x + 1`: a pure leaf.
  Function cleanInc(const std::string &Name) {
    FunctionBuilder B(Name, Prog.Types);
    LocalId X = B.addParam("x", U32);
    B.setReturnType(U32);
    BlockId E = B.newBlock();
    B.atBlock(E);
    B.assign(Place(0), Rvalue::binary(BinOp::Add, Operand::copy(Place(X)),
                                      Operand::constant(mkInt(1), U32)));
    B.ret();
    return B.finish();
  }

  /// `t = callee(x); ret = t`: a single-call wrapper.
  Function callThrough(const std::string &Name, const std::string &Callee) {
    FunctionBuilder B(Name, Prog.Types);
    LocalId X = B.addParam("x", U32);
    B.setReturnType(U32);
    LocalId T = B.addLocal("t", U32);
    BlockId E = B.newBlock();
    BlockId C = B.newBlock();
    B.atBlock(E);
    B.call(Callee, {Operand::copy(Place(X))}, Place(T), C);
    B.atBlock(C);
    B.assign(Place(0), Rvalue::use(Operand::copy(Place(T))));
    B.ret();
    return B.finish();
  }

  /// `*p = 1; ret = 0`: an uncontained raw-pointer write.
  Function rawWrite(const std::string &Name) {
    FunctionBuilder B(Name, Prog.Types);
    LocalId P = B.addParam("p", P32);
    B.setReturnType(U32);
    BlockId E = B.newBlock();
    B.atBlock(E);
    B.assign(Place(P).deref(), Rvalue::use(Operand::constant(mkInt(1), U32)));
    B.assign(Place(0), Rvalue::use(Operand::constant(mkInt(0), U32)));
    B.ret();
    return B.finish();
  }

  /// `ret = *p` with a second pointer parameter `q` the body never touches.
  Function derefFirstOfTwo(const std::string &Name) {
    FunctionBuilder B(Name, Prog.Types);
    LocalId P = B.addParam("p", P32);
    B.addParam("q", P32);
    B.setReturnType(U32);
    BlockId E = B.newBlock();
    B.atBlock(E);
    B.assign(Place(0), Rvalue::use(Operand::copy(Place(P).deref())));
    B.ret();
    return B.finish();
  }

  /// `ret = 1` with an emp/emp spec: the triage tier's bread and butter.
  void addTriageEligible(const std::string &Name) {
    FunctionBuilder B(Name, Prog.Types);
    B.setReturnType(U32);
    BlockId E = B.newBlock();
    B.atBlock(E);
    B.assign(Place(0), Rvalue::use(Operand::constant(mkInt(1), U32)));
    B.ret();
    addFn(B.finish());
    addSpec(Name, emp(), emp());
  }

  /// even/odd mutual recursion (no specs unless the test adds them).
  void addMutualRecursion() {
    for (const char *Pair : {"even", "odd"}) {
      const std::string Other = std::string(Pair) == "even" ? "odd" : "even";
      FunctionBuilder B(Pair, Prog.Types);
      LocalId X = B.addParam("x", U32);
      B.setReturnType(BoolTy);
      BlockId E = B.newBlock();
      BlockId C = B.newBlock();
      B.atBlock(E);
      B.call(Other, {Operand::copy(Place(X))}, Place(0), C);
      B.atBlock(C);
      B.ret();
      addFn(B.finish());
    }
  }

  rmir::Program Prog;
  PredTable Preds;
  SpecTable Specs;
  OwnableRegistry Ownables;
  LemmaTable Lemmas;
  Solver Solv;
  Automation Auto;
  TypeRef U32, P32, BoolTy;
};

//===----------------------------------------------------------------------===//
// Call graph and SCC condensation
//===----------------------------------------------------------------------===//

TEST_F(InterprocTest, CondensationIsBottomUp) {
  addFn(cleanInc("c"));
  addFn(callThrough("b", "c"));
  addFn(callThrough("a", "b"));
  CallGraph G = CallGraph::build(Prog, Preds, Specs);
  std::vector<Scc> Sccs = condenseSccs(G.FnCalls);
  ASSERT_EQ(Sccs.size(), 3u);
  // Callees strictly before callers, no recursion anywhere.
  std::map<std::string, std::size_t> Pos;
  for (std::size_t I = 0; I != Sccs.size(); ++I) {
    ASSERT_EQ(Sccs[I].Members.size(), 1u);
    EXPECT_FALSE(Sccs[I].Recursive);
    Pos[Sccs[I].Members[0]] = I;
  }
  EXPECT_LT(Pos["c"], Pos["b"]);
  EXPECT_LT(Pos["b"], Pos["a"]);
}

TEST_F(InterprocTest, MutualRecursionFormsOneRecursiveScc) {
  addMutualRecursion();
  CallGraph G = CallGraph::build(Prog, Preds, Specs);
  std::vector<Scc> Sccs = condenseSccs(G.FnCalls);
  ASSERT_EQ(Sccs.size(), 1u);
  EXPECT_TRUE(Sccs[0].Recursive);
  EXPECT_EQ(Sccs[0].Members, (std::vector<std::string>{"even", "odd"}));
}

TEST_F(InterprocTest, UnknownCalleeRecordedSeparately) {
  addFn(callThrough("caller", "phantom"));
  CallGraph G = CallGraph::build(Prog, Preds, Specs);
  EXPECT_TRUE(G.FnCalls["caller"].empty());
  EXPECT_EQ(G.FnUnknownCallees["caller"].count("phantom"), 1u);
}

//===----------------------------------------------------------------------===//
// Function summaries
//===----------------------------------------------------------------------===//

TEST_F(InterprocTest, PureLeafSummary) {
  addFn(cleanInc("inc"));
  SummaryTable T = summarize();
  const FnSummary *S = T.fn("inc");
  ASSERT_NE(S, nullptr);
  EXPECT_TRUE(S->Known);
  EXPECT_TRUE(S->Leaf);
  EXPECT_TRUE(S->Pure);
  EXPECT_FALSE(S->Recursive);
  EXPECT_FALSE(S->HeapReads);
  EXPECT_FALSE(S->HeapWrites);
  EXPECT_FALSE(S->UnsafeOps);
  EXPECT_TRUE(S->HasCheckedArith); // The Add.
  EXPECT_TRUE(S->WritesReturn);
  EXPECT_EQ(S->DepFns.count("inc"), 1u);
}

TEST_F(InterprocTest, SelfRecursivePureFunctionStaysPure) {
  addFn(callThrough("selfy", "selfy"));
  SummaryTable T = summarize();
  const FnSummary *S = T.fn("selfy");
  ASSERT_NE(S, nullptr);
  EXPECT_TRUE(S->Known);
  EXPECT_TRUE(S->Recursive);
  EXPECT_FALSE(S->Leaf);
  // The optimistic in-SCC seed converges to the least solution: nothing in
  // the body dirties the heap, so the cycle is pure.
  EXPECT_TRUE(S->Pure);
}

TEST_F(InterprocTest, MutualSccSummariesRecursiveAndPure) {
  addMutualRecursion();
  SummaryTable T = summarize();
  for (const char *Name : {"even", "odd"}) {
    const FnSummary *S = T.fn(Name);
    ASSERT_NE(S, nullptr) << Name;
    EXPECT_TRUE(S->Recursive) << Name;
    EXPECT_TRUE(S->Pure) << Name;
    // Each member's dep closure contains the whole cycle.
    EXPECT_EQ(S->DepFns.count("even"), 1u) << Name;
    EXPECT_EQ(S->DepFns.count("odd"), 1u) << Name;
  }
}

TEST_F(InterprocTest, OpaqueCalleePoisonsCallerSummary) {
  addFn(callThrough("caller", "phantom"));
  SummaryTable T = summarize();
  const FnSummary *S = T.fn("caller");
  ASSERT_NE(S, nullptr);
  EXPECT_TRUE(S->Known); // The caller's own body is known...
  EXPECT_FALSE(S->Leaf);
  EXPECT_FALSE(S->Pure); // ...but the opaque callee makes it conservative.
  EXPECT_TRUE(S->HeapWrites);
  EXPECT_TRUE(S->UnsafeEscapes);
  EXPECT_EQ(S->DepFns.count("phantom"), 1u);
}

TEST_F(InterprocTest, RawPointerWriteImpureAndEscapingWithoutSpec) {
  addFn(rawWrite("store"));
  SummaryTable T = summarize();
  const FnSummary *S = T.fn("store");
  ASSERT_NE(S, nullptr);
  EXPECT_TRUE(S->HeapWrites);
  EXPECT_TRUE(S->UnsafeOps);
  EXPECT_FALSE(S->Pure);
  ASSERT_EQ(S->Params.size(), 1u);
  EXPECT_TRUE(S->Params[0].Written);
  EXPECT_TRUE(S->UnsafeEscapes); // No spec to contain the unsafety.

  // An ownership-bearing spec is a containment boundary.
  Expr Pv = mkVar("p", Sort::Loc), Vv = mkVar("v", Sort::Int);
  addSpec("store", pointsTo(Pv, U32, Vv), pointsTo(Pv, U32, mkInt(1)),
          {{"p", Sort::Loc}, {"v", Sort::Int}});
  SummaryTable T2 = summarize();
  const FnSummary *S2 = T2.fn("store");
  ASSERT_NE(S2, nullptr);
  EXPECT_FALSE(S2->UnsafeEscapes);
  EXPECT_TRUE(S2->UnsafeOps); // The body fact is unchanged.
}

//===----------------------------------------------------------------------===//
// Predicate footprint summaries
//===----------------------------------------------------------------------===//

TEST_F(InterprocTest, PredicateFootprintSummaries) {
  Expr Xv = mkVar("x", Sort::Loc), Vv = mkVar("v", Sort::Int);
  {
    PredDecl D;
    D.Name = "own";
    D.Params = {{"x", Sort::Loc, /*In=*/true}};
    D.Clauses.push_back(exists({{"v", Sort::Int}}, pointsTo(Xv, U32, Vv)));
    Preds.declare(std::move(D));
  }
  {
    PredDecl D;
    D.Name = "nothing";
    D.Params = {{"x", Sort::Loc, /*In=*/true}};
    D.Clauses.push_back(pure(mkTrue()));
    Preds.declare(std::move(D));
  }
  {
    PredDecl D;
    D.Name = "wrap";
    D.Params = {{"y", Sort::Loc, /*In=*/true}};
    D.Clauses.push_back(predCall("own", {mkVar("y", Sort::Loc)}));
    Preds.declare(std::move(D));
  }
  {
    PredDecl D;
    D.Name = "inv";
    D.Params = {{"x", Sort::Loc, /*In=*/true}};
    D.Abstract = true;
    Preds.declare(std::move(D));
  }

  SummaryTable T = summarize();
  const PredSummary *Own = T.pred("own");
  ASSERT_NE(Own, nullptr);
  EXPECT_TRUE(Own->Known);
  EXPECT_FALSE(Own->OwnsUnknown);
  ASSERT_EQ(Own->MayOwnParam.size(), 1u);
  EXPECT_TRUE(Own->MayOwnParam[0]);

  const PredSummary *Nothing = T.pred("nothing");
  ASSERT_NE(Nothing, nullptr);
  EXPECT_TRUE(Nothing->Known);
  ASSERT_EQ(Nothing->MayOwnParam.size(), 1u);
  EXPECT_FALSE(Nothing->MayOwnParam[0]);

  // Ownership flows through the reference closure.
  const PredSummary *Wrap = T.pred("wrap");
  ASSERT_NE(Wrap, nullptr);
  EXPECT_TRUE(Wrap->Known);
  ASSERT_EQ(Wrap->MayOwnParam.size(), 1u);
  EXPECT_TRUE(Wrap->MayOwnParam[0]);
  EXPECT_EQ(Wrap->DepPreds.count("own"), 1u);

  const PredSummary *Inv = T.pred("inv");
  ASSERT_NE(Inv, nullptr);
  EXPECT_FALSE(Inv->Known);
  EXPECT_TRUE(Inv->OwnsUnknown);
}

//===----------------------------------------------------------------------===//
// W008 through summaries (and the satellite opaque-culprit note)
//===----------------------------------------------------------------------===//

TEST_F(InterprocTest, SummariesDeopaqueW008WhereSyntacticStayedSilent) {
  addFn(derefFirstOfTwo("deref_first"));
  PredDecl D;
  D.Name = "own";
  D.Params = {{"x", Sort::Loc, /*In=*/true}};
  D.Clauses.push_back(exists({{"v", Sort::Int}},
                             pointsTo(mkVar("x", Sort::Loc), U32,
                                      mkVar("v", Sort::Int))));
  Preds.declare(std::move(D));
  Expr Pv = mkVar("p", Sort::Loc), Qv = mkVar("q", Sort::Loc);
  Expr Wv = mkVar("w", Sort::Int);
  // `own(p)` resolves to a p-rooted footprint through the summary; `q` is
  // owned directly and untouched.
  addSpec("deref_first", star({predCall("own", {Pv}), pointsTo(Qv, U32, Wv)}),
          pure(mkTrue()),
          {{"p", Sort::Loc}, {"q", Sort::Loc}, {"w", Sort::Int}});

  // Syntactic mode: the predicate call keeps the footprint opaque.
  EntityVerdict Syntactic = lintEntity(input(), "deref_first");
  EXPECT_FALSE(hasCode(Syntactic.Diags, code::FrameWiderThanFootprint));

  // Summary mode: the same spec now warns about the untouched `q`.
  SummaryTable T = summarize();
  AnalysisInput In = input();
  In.Summaries = &T;
  EntityVerdict V = lintEntity(In, "deref_first");
  EXPECT_EQ(countCode(V.Diags, code::FrameWiderThanFootprint), 1u);
  const Diagnostic *W = findCode(V.Diags, code::FrameWiderThanFootprint);
  ASSERT_NE(W, nullptr);
  EXPECT_NE(W->Message.find("'q'"), std::string::npos);
}

TEST_F(InterprocTest, OpaquePredicateNamedInW008Note) {
  addFn(derefFirstOfTwo("deref_first"));
  PredDecl Abs;
  Abs.Name = "inv";
  Abs.Params = {{"x", Sort::Loc, /*In=*/true}};
  Abs.Abstract = true;
  Preds.declare(std::move(Abs));
  Expr Pv = mkVar("p", Sort::Loc), Qv = mkVar("q", Sort::Loc);
  Expr Wv = mkVar("w", Sort::Int);
  addSpec("deref_first", star({predCall("inv", {Pv}), pointsTo(Qv, U32, Wv)}),
          pure(mkTrue()),
          {{"p", Sort::Loc}, {"q", Sort::Loc}, {"w", Sort::Int}});

  SummaryTable T = summarize();
  AnalysisInput In = input();
  In.Summaries = &T;
  EntityVerdict V = lintEntity(In, "deref_first");
  // `p` is shielded by the opaque call; `q` still fires — with the culprit
  // named in a note.
  const Diagnostic *W = findCode(V.Diags, code::FrameWiderThanFootprint);
  ASSERT_NE(W, nullptr);
  EXPECT_NE(W->Message.find("'q'"), std::string::npos);
  bool Named = std::any_of(W->Notes.begin(), W->Notes.end(),
                           [](const std::string &N) {
                             return N.find("predicate 'inv'") !=
                                        std::string::npos &&
                                    N.find("keeps its footprint opaque") !=
                                        std::string::npos;
                           });
  EXPECT_TRUE(Named);
}

//===----------------------------------------------------------------------===//
// W009: unsafe surface escaping into a spec-free caller
//===----------------------------------------------------------------------===//

TEST_F(InterprocTest, UnsafeEscapeWarnedInSpecFreeCaller) {
  addFn(rawWrite("raw_write"));
  addFn(callThrough("wrapper", "raw_write"));
  SummaryTable T = summarize();
  AnalysisInput In = input();
  In.Summaries = &T;
  EntityVerdict V = lintEntity(In, "wrapper");
  ASSERT_TRUE(hasCode(V.Diags, code::UnsafeEscape));
  const Diagnostic *W = findCode(V.Diags, code::UnsafeEscape);
  EXPECT_NE(W->Message.find("raw_write"), std::string::npos);
}

TEST_F(InterprocTest, UnsafeEscapeSilentWhenCallerHasSpec) {
  addFn(rawWrite("raw_write"));
  addFn(callThrough("wrapper", "raw_write"));
  Expr Xv = mkVar("x", Sort::Int);
  addSpec("wrapper", pure(mkLt(Xv, mkInt(100))), pure(mkTrue()),
          {{"x", Sort::Int}});
  SummaryTable T = summarize();
  AnalysisInput In = input();
  In.Summaries = &T;
  EntityVerdict V = lintEntity(In, "wrapper");
  EXPECT_FALSE(hasCode(V.Diags, code::UnsafeEscape));
}

TEST_F(InterprocTest, UnsafeEscapeSilentWhenCalleeSpecContainsIt) {
  addFn(rawWrite("raw_write"));
  addFn(callThrough("wrapper", "raw_write"));
  Expr Pv = mkVar("p", Sort::Loc), Vv = mkVar("v", Sort::Int);
  addSpec("raw_write", pointsTo(Pv, U32, Vv), pointsTo(Pv, U32, mkInt(1)),
          {{"p", Sort::Loc}, {"v", Sort::Int}});
  SummaryTable T = summarize();
  AnalysisInput In = input();
  In.Summaries = &T;
  EntityVerdict V = lintEntity(In, "wrapper");
  EXPECT_FALSE(hasCode(V.Diags, code::UnsafeEscape));
}

//===----------------------------------------------------------------------===//
// W010: recursive cycle without a decreasing argument
//===----------------------------------------------------------------------===//

TEST_F(InterprocTest, RecursiveCycleWithoutVariantWarnedOnce) {
  addMutualRecursion();
  AnalysisResult R = analyzeProgram(input(), {"even", "odd"});
  EXPECT_EQ(countCode(R.Diags, code::RecursionNoVariant), 1u);
  const Diagnostic *W = findCode(R.Diags, code::RecursionNoVariant);
  ASSERT_NE(W, nullptr);
  EXPECT_EQ(W->Entity, "even"); // Least member: deterministic anchor.
  EXPECT_NE(W->Message.find("even, odd"), std::string::npos);
}

TEST_F(InterprocTest, InductivePredicateInSpecCountsAsVariant) {
  addMutualRecursion();
  PredDecl D;
  D.Name = "nat";
  D.Params = {{"x", Sort::Loc, /*In=*/true}};
  D.Abstract = true;
  Preds.declare(std::move(D));
  addSpec("even", predCall("nat", {mkVar("p", Sort::Loc)}), pure(mkTrue()),
          {{"p", Sort::Loc}});
  AnalysisResult R = analyzeProgram(input(), {"even", "odd"});
  EXPECT_FALSE(hasCode(R.Diags, code::RecursionNoVariant));
}

//===----------------------------------------------------------------------===//
// Static triage: verdict identity, byte stability, counters
//===----------------------------------------------------------------------===//

TEST_F(InterprocTest, TriviallyStaticAcceptsAndRejectsCorrectly) {
  addTriageEligible("konst");
  addFn(cleanInc("inc")); // Checked Add: never triaged.
  addSpec("inc", emp(), emp());
  SummaryTable T = summarize();
  EXPECT_TRUE(
      triviallyStatic(*Prog.lookup("konst"), *Specs.lookup("konst"), T));
  EXPECT_FALSE(triviallyStatic(*Prog.lookup("inc"), *Specs.lookup("inc"), T));
}

TEST_F(InterprocTest, TriageVerdictMatchesExecutor) {
  addTriageEligible("konst");

  // Triage path: the scheduler skips the executor and reports `static`.
  engine::VerifyReport Triaged;
  {
    VerifEnv Env{Prog,   Preds, Specs, Ownables,
                 Lemmas, Solv,  Auto,  analysis::AnalysisConfig{}};
    sched::SchedulerConfig SC;
    Verifier V(Env);
    std::vector<VerifyReport> Rs = V.verifyAll({"konst"}, SC);
    ASSERT_EQ(Rs.size(), 1u);
    Triaged = Rs[0];
  }
  EXPECT_TRUE(Triaged.Ok);
  EXPECT_TRUE(Triaged.Static);
  EXPECT_TRUE(Triaged.Errors.empty());
  EXPECT_EQ(Triaged.Solver.EntailQueries, 0u);

  // Executor path (analysis off disables the summary phase and the tier):
  // the verdict agrees.
  engine::VerifyReport Executed;
  {
    VerifEnv Env{Prog,   Preds, Specs, Ownables,
                 Lemmas, Solv,  Auto,  analysis::AnalysisConfig{}};
    Env.Lint.Enabled = false;
    sched::SchedulerConfig SC;
    Verifier V(Env);
    std::vector<VerifyReport> Rs = V.verifyAll({"konst"}, SC);
    ASSERT_EQ(Rs.size(), 1u);
    Executed = Rs[0];
  }
  EXPECT_TRUE(Executed.Ok);
  EXPECT_FALSE(Executed.Static);
  EXPECT_EQ(Triaged.Ok, Executed.Ok);
}

TEST_F(InterprocTest, TriageByteStableAcrossWorkerCounts) {
  for (int I = 0; I < 3; ++I)
    addTriageEligible("konst" + std::to_string(I));
  for (int I = 0; I < 3; ++I) {
    std::string Name = "f" + std::to_string(I);
    addFn(cleanInc(Name));
    Expr Xv = mkVar("x", Sort::Int);
    addSpec(Name, pure(mkLt(Xv, mkInt(100))),
            pure(mkEq(mkVar(retVarName(), Sort::Int), mkAdd(Xv, mkInt(1)))),
            {{"x", Sort::Int}});
  }
  const std::vector<std::string> Names = {"f0",     "konst0", "f1",
                                          "konst1", "f2",     "konst2"};

  auto runAt = [&](unsigned Threads) {
    metrics::Registry::get().reset();
    VerifEnv Env{Prog,   Preds, Specs, Ownables,
                 Lemmas, Solv,  Auto,  analysis::AnalysisConfig{}};
    sched::SchedulerConfig C;
    C.Threads = Threads;
    Verifier V(Env);
    std::vector<VerifyReport> Rs = V.verifyAll(Names, C);
    std::string Digest = V.lastAnalysis().renderJson() + "\n";
    for (const VerifyReport &R : Rs)
      Digest += R.Func + "|" + (R.Ok ? "ok" : "fail") + "|" +
                (R.Static ? "static" : "run") + "|" +
                std::to_string(R.PathsCompleted) + "\n";
    metrics::InterprocReport IP = metrics::Registry::get().interprocReport();
    return std::make_pair(Digest, IP);
  };

  auto Serial = runAt(1);
  auto Parallel = runAt(4);
  EXPECT_EQ(Serial.first, Parallel.first);
  EXPECT_TRUE(Serial.second.Valid);
  EXPECT_TRUE(Parallel.second.Valid);
  EXPECT_EQ(Serial.second.TriagedStatic, 3u);
  EXPECT_EQ(Parallel.second.TriagedStatic, 3u);
  EXPECT_EQ(Serial.second.FnSummaries, 6u);
}

//===----------------------------------------------------------------------===//
// Incremental summary cache (Side::Summary)
//===----------------------------------------------------------------------===//

/// Self-contained call-chain env: a -> b -> c plus an unrelated d. \p EditC
/// rewrites c's body (same meaning, different shape), so a rebuild with it
/// set edits exactly c — and must invalidate exactly the summaries whose
/// closures reach c (a, b, c), never d's.
struct ChainBundle {
  rmir::Program Prog;
  PredTable Preds;
  SpecTable Specs;
  OwnableRegistry Ownables{Prog.Types, Preds};
  LemmaTable Lemmas;
  Solver Solv;
  Automation Auto;

  explicit ChainBundle(bool EditC) {
    TypeRef U32 = Prog.Types.intTy(IntKind::U32);

    // All four share the identity contract `emp / ret == x`, which the
    // executor can both prove directly and apply at call sites.
    auto addSpecFor = [&](const std::string &Name) {
      Spec S;
      S.Func = Name;
      S.Pre = emp();
      S.Post = pure(mkEq(mkVar(retVarName(), Sort::Int),
                         mkVar("x", Sort::Int)));
      Specs.add(std::move(S));
    };
    // `ret = x`, optionally through an intermediate local (the edit knob).
    auto addIdentity = [&](const std::string &Name, bool Indirect) {
      FunctionBuilder B(Name, Prog.Types);
      LocalId X = B.addParam("x", U32);
      B.setReturnType(U32);
      BlockId E = B.newBlock();
      B.atBlock(E);
      if (Indirect) {
        LocalId T = B.addLocal("t2", U32);
        B.assign(Place(T), Rvalue::use(Operand::copy(Place(X))));
        B.assign(Place(0), Rvalue::use(Operand::copy(Place(T))));
      } else {
        B.assign(Place(0), Rvalue::use(Operand::copy(Place(X))));
      }
      B.ret();
      Function F = B.finish();
      std::string N = Name;
      Prog.Funcs.emplace(std::move(N), std::move(F));
      addSpecFor(Name);
    };
    // `t = callee(x); ret = t`.
    auto addCaller = [&](const std::string &Name, const std::string &Callee) {
      FunctionBuilder B(Name, Prog.Types);
      LocalId X = B.addParam("x", U32);
      B.setReturnType(U32);
      LocalId T = B.addLocal("t", U32);
      BlockId E = B.newBlock();
      BlockId C = B.newBlock();
      B.atBlock(E);
      B.call(Callee, {Operand::copy(Place(X))}, Place(T), C);
      B.atBlock(C);
      B.assign(Place(0), Rvalue::use(Operand::copy(Place(T))));
      B.ret();
      Function F = B.finish();
      std::string N = Name;
      Prog.Funcs.emplace(std::move(N), std::move(F));
      addSpecFor(Name);
    };

    addIdentity("c", EditC);
    addCaller("b", "c");
    addCaller("a", "b");
    addIdentity("d", false);
  }

  VerifEnv env() {
    return VerifEnv{Prog,   Preds, Specs, Ownables,
                    Lemmas, Solv,  Auto,  analysis::AnalysisConfig{}};
  }
};

TEST(InterprocIncrTest, WarmRunReusesSummariesAndEditInvalidatesSccClosure) {
  std::string Path = ::testing::TempDir() + "gilr_interproc_summaries.prf";
  std::remove(Path.c_str());
  const std::vector<std::string> Names = {"a", "b", "c", "d"};
  sched::SchedulerConfig SC;
  incr::IncrConfig Inc;
  Inc.Enabled = true;
  Inc.StorePath = Path;

  {
    // Cold: every summary is computed and recorded.
    ChainBundle L(false);
    VerifEnv Env = L.env();
    Verifier V(Env);
    incr::IncrRunStats St;
    std::vector<VerifyReport> Rs = V.verifyAll(Names, SC, Inc, &St);
    for (const VerifyReport &R : Rs)
      EXPECT_TRUE(R.Ok) << R.Func << (R.Errors.empty() ? "" : ": " + R.Errors.front());
    EXPECT_EQ(St.SummariesComputed, 4u);
    EXPECT_EQ(St.SummariesReused, 0u);
  }
  {
    // Identical rebuild: every summary replays from the store.
    ChainBundle L(false);
    VerifEnv Env = L.env();
    Verifier V(Env);
    incr::IncrRunStats St;
    std::vector<VerifyReport> Rs = V.verifyAll(Names, SC, Inc, &St);
    for (const VerifyReport &R : Rs)
      EXPECT_TRUE(R.Ok) << R.Func << (R.Errors.empty() ? "" : ": " + R.Errors.front());
    EXPECT_EQ(St.SummariesComputed, 0u);
    EXPECT_EQ(St.SummariesReused, 4u);
  }
  {
    // Edit c: exactly the reverse-reachable summaries (a, b, c) recompute;
    // the unrelated d replays.
    ChainBundle L(true);
    VerifEnv Env = L.env();
    Verifier V(Env);
    incr::IncrRunStats St;
    std::vector<VerifyReport> Rs = V.verifyAll(Names, SC, Inc, &St);
    for (const VerifyReport &R : Rs)
      EXPECT_TRUE(R.Ok) << R.Func << (R.Errors.empty() ? "" : ": " + R.Errors.front());
    EXPECT_EQ(St.SummariesComputed, 3u);
    EXPECT_EQ(St.SummariesReused, 1u);
  }
  std::remove(Path.c_str());
}

TEST(InterprocIncrTest, TriagedVerdictsAreCountedButNeverStored) {
  std::string Path = ::testing::TempDir() + "gilr_interproc_triage.prf";
  std::remove(Path.c_str());
  sched::SchedulerConfig SC;
  incr::IncrConfig Inc;
  Inc.Enabled = true;
  Inc.StorePath = Path;

  auto build = [](rmir::Program &Prog, SpecTable &Specs) {
    TypeRef U32 = Prog.Types.intTy(IntKind::U32);
    FunctionBuilder B("konst", Prog.Types);
    B.setReturnType(U32);
    BlockId E = B.newBlock();
    B.atBlock(E);
    B.assign(Place(0), Rvalue::use(Operand::constant(mkInt(1), U32)));
    B.ret();
    Function F = B.finish();
    Prog.Funcs.emplace("konst", std::move(F));
    Spec S;
    S.Func = "konst";
    S.Pre = emp();
    S.Post = emp();
    Specs.add(std::move(S));
  };

  for (int Run = 0; Run < 2; ++Run) {
    rmir::Program Prog;
    PredTable Preds;
    SpecTable Specs;
    OwnableRegistry Ownables{Prog.Types, Preds};
    LemmaTable Lemmas;
    Solver Solv;
    Automation Auto;
    build(Prog, Specs);
    VerifEnv Env{Prog,   Preds, Specs, Ownables,
                 Lemmas, Solv,  Auto,  analysis::AnalysisConfig{}};
    Verifier V(Env);
    incr::IncrRunStats St;
    std::vector<VerifyReport> Rs = V.verifyAll({"konst"}, SC, Inc, &St);
    ASSERT_EQ(Rs.size(), 1u);
    EXPECT_TRUE(Rs[0].Ok);
    EXPECT_TRUE(Rs[0].Static);
    // Triage fires on both runs: the verdict is cheaper to recompute than
    // to validate, so it is never cached.
    EXPECT_FALSE(Rs[0].Cached) << "run " << Run;
    EXPECT_EQ(St.TriagedStatic, 1u) << "run " << Run;
    EXPECT_EQ(St.CachedUnsafe, 0u) << "run " << Run;
    EXPECT_EQ(St.VerifiedUnsafe, 0u) << "run " << Run;
  }
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Dataflow framework (analysis/Dataflow.h)
//===----------------------------------------------------------------------===//

/// Forward may-analysis: In[b] = union of block ids on some entry path.
struct MayReach {
  using Domain = uint64_t;
  static constexpr Direction Dir = Direction::Forward;
  Domain boundary() { return 0; }
  Domain top() { return 0; }
  bool meetInto(Domain &Into, const Domain &From) {
    Domain Old = Into;
    Into |= From;
    return Into != Old;
  }
  Domain transfer(unsigned Block, Domain In) {
    Order.push_back(Block);
    return In | (1ull << Block);
  }
  std::vector<unsigned> Order; ///< Transfer invocations, in solver order.
};

/// Forward must-analysis (intersection meet): In[b] = block ids on *every*
/// entry path — the shape of definite-initialization.
struct MustReach {
  using Domain = uint64_t;
  static constexpr Direction Dir = Direction::Forward;
  Domain boundary() { return 0; }
  Domain top() { return ~0ull; }
  bool meetInto(Domain &Into, const Domain &From) {
    Domain Old = Into;
    Into &= From;
    return Into != Old;
  }
  Domain transfer(unsigned Block, Domain In) { return In | (1ull << Block); }
};

/// Backward may-analysis: In[b] (the block-exit state) = union of block ids
/// on some path to an exit — the shape of liveness.
struct MayReachExit {
  using Domain = uint64_t;
  static constexpr Direction Dir = Direction::Backward;
  Domain boundary() { return 0; }
  Domain top() { return 0; }
  bool meetInto(Domain &Into, const Domain &From) {
    Domain Old = Into;
    Into |= From;
    return Into != Old;
  }
  Domain transfer(unsigned Block, Domain In) { return In | (1ull << Block); }
};

/// A body of empty blocks with the given terminators (hand-built: the
/// FunctionBuilder would reject the malformed shapes these tests need).
Function cfgFn(rmir::TyCtx &Types, std::vector<Terminator> Terms) {
  Function F;
  F.Name = "cfg";
  F.Locals.push_back({"ret", Types.unitTy()});
  for (Terminator &T : Terms) {
    BasicBlock B;
    B.Term = std::move(T);
    F.Blocks.push_back(std::move(B));
  }
  return F;
}

Terminator switchTo(BlockId Arm0, BlockId Otherwise, rmir::TyCtx &Types) {
  return Terminator::switchInt(
      Operand::constant(mkInt(0), Types.intTy(IntKind::U32)), {{0, Arm0}},
      Otherwise);
}

TEST(DataflowTest, DiamondMustMeetIntersectsBranches) {
  rmir::TyCtx Types;
  // 0 -> {1, 2} -> 3.
  Function F = cfgFn(Types, {switchTo(1, 2, Types), Terminator::gotoBlock(3),
                             Terminator::gotoBlock(3), Terminator::ret()});
  Cfg C = Cfg::build(F);
  EXPECT_FALSE(C.BadEdges);
  MustReach A;
  std::vector<uint64_t> In = solveDataflow(C, A);
  ASSERT_EQ(In.size(), 4u);
  EXPECT_EQ(In[1], 1ull << 0);
  EXPECT_EQ(In[2], 1ull << 0);
  // Only the entry is on every path to the join.
  EXPECT_EQ(In[3], 1ull << 0);
}

TEST(DataflowTest, LoopBackEdgeConvergesToFixpoint) {
  rmir::TyCtx Types;
  // 0 -> 1 (header); 1 -> {2 (body), 3 (exit)}; 2 -> 1.
  Function F = cfgFn(Types, {Terminator::gotoBlock(1), switchTo(2, 3, Types),
                             Terminator::gotoBlock(1), Terminator::ret()});
  Cfg C = Cfg::build(F);
  MustReach Must;
  std::vector<uint64_t> MIn = solveDataflow(C, Must);
  // The body's back-edge cannot make the header dominated by the body.
  EXPECT_EQ(MIn[1], 1ull << 0);
  EXPECT_EQ(MIn[3], (1ull << 0) | (1ull << 1));

  MayReach May;
  std::vector<uint64_t> YIn = solveDataflow(C, May);
  // Some path to the exit does pass through the body.
  EXPECT_EQ(YIn[3], (1ull << 0) | (1ull << 1) | (1ull << 2));
}

TEST(DataflowTest, NestedBackEdgesConverge) {
  rmir::TyCtx Types;
  // 0 -> 1 (outer header); 1 -> {2, 6}; 2 -> 3 (inner header);
  // 3 -> {4, 5}; 4 -> 3 (inner back-edge); 5 -> 1 (outer back-edge).
  Function F = cfgFn(
      Types, {Terminator::gotoBlock(1), switchTo(2, 6, Types),
              Terminator::gotoBlock(3), switchTo(4, 5, Types),
              Terminator::gotoBlock(3), Terminator::gotoBlock(1),
              Terminator::ret()});
  Cfg C = Cfg::build(F);
  MustReach Must;
  std::vector<uint64_t> MIn = solveDataflow(C, Must);
  // The exit is dominated by exactly the entry and the outer header.
  EXPECT_EQ(MIn[6], (1ull << 0) | (1ull << 1));
  // The inner header is dominated by entry, outer header, and block 2.
  EXPECT_EQ(MIn[3], (1ull << 0) | (1ull << 1) | (1ull << 2));

  MayReach May;
  std::vector<uint64_t> YIn = solveDataflow(C, May);
  // Every block except the exit itself lies on some path to the exit.
  EXPECT_EQ(YIn[6],
            (1ull << 0) | (1ull << 1) | (1ull << 2) | (1ull << 3) |
                (1ull << 4) | (1ull << 5));
}

TEST(DataflowTest, UnreachableBlockRejoiningDoesNotPoisonTheMeet) {
  rmir::TyCtx Types;
  // 0 -> 2; 1 (unreachable) -> 2.
  Function F = cfgFn(Types, {Terminator::gotoBlock(2),
                             Terminator::gotoBlock(2), Terminator::ret()});
  Cfg C = Cfg::build(F);
  EXPECT_TRUE(C.Reachable[0]);
  EXPECT_FALSE(C.Reachable[1]);
  EXPECT_TRUE(C.Reachable[2]);

  // Forward solving never visits block 1, so the join sees only the
  // reachable predecessor — in both may and must flavours.
  MayReach May;
  std::vector<uint64_t> YIn = solveDataflow(C, May);
  EXPECT_EQ(YIn[2], 1ull << 0);
  MustReach Must;
  std::vector<uint64_t> MIn = solveDataflow(C, Must);
  EXPECT_EQ(MIn[2], 1ull << 0);
}

TEST(DataflowTest, BackwardAnalysisSeedsEveryExit) {
  rmir::TyCtx Types;
  // 0 -> {1, 2}; 1 -> 3; 2 -> 3; 3 ret.
  Function F = cfgFn(Types, {switchTo(1, 2, Types), Terminator::gotoBlock(3),
                             Terminator::gotoBlock(3), Terminator::ret()});
  Cfg C = Cfg::build(F);
  MayReachExit A;
  std::vector<uint64_t> In = solveDataflow(C, A);
  // Block-exit states: the entry can reach the exit through either branch.
  EXPECT_EQ(In[0], (1ull << 1) | (1ull << 2) | (1ull << 3));
  EXPECT_EQ(In[3], 0ull); // The exit's own out-state is the boundary.
}

TEST(DataflowTest, OutOfRangeTargetDroppedAndFlagged) {
  rmir::TyCtx Types;
  Function F = cfgFn(Types, {Terminator::gotoBlock(9)});
  Cfg C = Cfg::build(F);
  EXPECT_TRUE(C.BadEdges);
  EXPECT_TRUE(C.Succs[0].empty());
  // terminatorTargets still reports the raw target for diagnostics.
  std::vector<unsigned> Targets;
  Cfg::terminatorTargets(F.Blocks[0].Term, Targets);
  EXPECT_EQ(Targets, std::vector<unsigned>{9u});
}

TEST(DataflowTest, IterationOrderIsDeterministic) {
  rmir::TyCtx Types;
  Function F = cfgFn(
      Types, {Terminator::gotoBlock(1), switchTo(2, 6, Types),
              Terminator::gotoBlock(3), switchTo(4, 5, Types),
              Terminator::gotoBlock(3), Terminator::gotoBlock(1),
              Terminator::ret()});
  Cfg C1 = Cfg::build(F);
  Cfg C2 = Cfg::build(F);
  EXPECT_EQ(C1.Succs, C2.Succs);
  EXPECT_EQ(C1.Preds, C2.Preds);
  MayReach A1, A2;
  std::vector<uint64_t> R1 = solveDataflow(C1, A1);
  std::vector<uint64_t> R2 = solveDataflow(C2, A2);
  EXPECT_EQ(R1, R2);
  // The worklist discipline itself is deterministic, not just the fixpoint.
  EXPECT_EQ(A1.Order, A2.Order);
  EXPECT_FALSE(A1.Order.empty());
}

} // namespace
