//===- tests/lifetime_test.cpp - Lifetime token rules (§4.1, Fig. 6) --------===//

#include "lifetime/LifetimeCtx.h"
#include "sym/ExprBuilder.h"

#include <gtest/gtest.h>

using namespace gilr;
using namespace gilr::lifetime;

namespace {

class LifetimeTest : public ::testing::Test {
protected:
  Solver S;
  PathCondition PC;
  LifetimeCtx Lft;
  Expr K = mkLftVar("'a");
  Expr K2 = mkLftVar("'b");
  Expr Half = mkReal(Rational(1, 2));
  Expr Quarter = mkReal(Rational(1, 4));
  Expr One = mkReal(Rational(1, 1));
};

TEST_F(LifetimeTest, ProduceThenConsume) {
  EXPECT_TRUE(Lft.produceAlive(K, Half, S, PC).ok());
  EXPECT_TRUE(Lft.consumeAlive(K, Half, S, PC).ok());
  // Fully consumed: nothing remains.
  EXPECT_TRUE(Lft.consumeAlive(K, Half, S, PC).failed());
}

TEST_F(LifetimeTest, FractionsAccumulate) {
  // Lft-Produce-Alive-Add: [κ]_q * [κ]_q' = [κ]_{q+q'}.
  ASSERT_TRUE(Lft.produceAlive(K, Quarter, S, PC).ok());
  ASSERT_TRUE(Lft.produceAlive(K, Quarter, S, PC).ok());
  EXPECT_TRUE(Lft.consumeAlive(K, Half, S, PC).ok());
}

TEST_F(LifetimeTest, PartialConsumptionLeavesRemainder) {
  ASSERT_TRUE(Lft.produceAlive(K, Half, S, PC).ok());
  EXPECT_TRUE(Lft.consumeAlive(K, Quarter, S, PC).ok());
  EXPECT_TRUE(Lft.consumeAlive(K, Quarter, S, PC).ok());
  EXPECT_TRUE(Lft.consumeAlive(K, Quarter, S, PC).failed());
}

TEST_F(LifetimeTest, NotOwnEnd) {
  // Lftl-not-own-end: producing an alive token of a dead lifetime vanishes.
  ASSERT_TRUE(Lft.produceDead(K, S, PC).ok());
  EXPECT_TRUE(Lft.produceAlive(K, Half, S, PC).vanished());
  // And producing dead over an owned alive fraction vanishes too.
  ASSERT_TRUE(Lft.produceAlive(K2, Half, S, PC).ok());
  EXPECT_TRUE(Lft.produceDead(K2, S, PC).vanished());
}

TEST_F(LifetimeTest, DeadTokenIsPersistent) {
  // Lftl-end-persist: consuming [†κ] does not remove it; producing it twice
  // is idempotent.
  ASSERT_TRUE(Lft.produceDead(K, S, PC).ok());
  EXPECT_TRUE(Lft.produceDead(K, S, PC).ok());
  EXPECT_TRUE(Lft.consumeDead(K, S, PC).ok());
  EXPECT_TRUE(Lft.consumeDead(K, S, PC).ok());
  EXPECT_TRUE(Lft.isDead(K, S, PC));
}

TEST_F(LifetimeTest, ConsumeDeadOfAliveFails) {
  ASSERT_TRUE(Lft.produceAlive(K, Half, S, PC).ok());
  EXPECT_TRUE(Lft.consumeDead(K, S, PC).failed());
}

TEST_F(LifetimeTest, EndLifetimeNeedsFullToken) {
  ASSERT_TRUE(Lft.produceAlive(K, Half, S, PC).ok());
  // Only half the token: cannot end.
  EXPECT_TRUE(Lft.endLifetime(K, S, PC).failed());
  ASSERT_TRUE(Lft.produceAlive(K, Half, S, PC).ok());
  EXPECT_TRUE(Lft.endLifetime(K, S, PC).ok());
  EXPECT_TRUE(Lft.isDead(K, S, PC));
}

TEST_F(LifetimeTest, SymbolicFractions) {
  // The show_safety tokens use a symbolic fraction 'q with 0 < 'q <= 1.
  Expr Q = mkVar("'q", Sort::Real);
  ASSERT_TRUE(Lft.produceAlive(K, Q, S, PC).ok());
  // The well-formedness facts landed in the path condition.
  EXPECT_TRUE(PC.entails(S, mkLt(mkReal(Rational(0, 1)), Q)));
  EXPECT_TRUE(Lft.consumeAlive(K, Q, S, PC).ok());
}

TEST_F(LifetimeTest, LifetimesMatchedUpToPathCondition) {
  Expr KAlias = mkLftVar("'alias");
  PC.add(mkEq(K, KAlias));
  ASSERT_TRUE(Lft.produceAlive(K, Half, S, PC).ok());
  // Consuming under the alias finds the entry.
  EXPECT_TRUE(Lft.consumeAlive(KAlias, Half, S, PC).ok());
}

TEST_F(LifetimeTest, IndependentLifetimes) {
  ASSERT_TRUE(Lft.produceAlive(K, Half, S, PC).ok());
  ASSERT_TRUE(Lft.produceAlive(K2, Quarter, S, PC).ok());
  EXPECT_TRUE(Lft.consumeAlive(K2, Quarter, S, PC).ok());
  EXPECT_TRUE(Lft.consumeAlive(K, Half, S, PC).ok());
  EXPECT_EQ(Lft.numEntries(), 0u);
}

TEST_F(LifetimeTest, OwnedFractionQuery) {
  ASSERT_TRUE(Lft.produceAlive(K, Half, S, PC).ok());
  auto F = Lft.ownedFraction(K, S, PC);
  ASSERT_TRUE(F.has_value());
  EXPECT_TRUE(exprEquals(*F, Half));
  EXPECT_FALSE(Lft.ownedFraction(K2, S, PC).has_value());
}

} // namespace
