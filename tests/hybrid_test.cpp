//===- tests/hybrid_test.cpp - The hybrid approach end-to-end (§2.1, H1) ----===//
//
// Creusot-side verification of safe clients against the axiomatised
// Pearlite contracts, combined with Gillian-Rust-side verification of the
// unsafe implementations of the *same* contracts — Fig. 1's division of
// labour.
//
//===----------------------------------------------------------------------===//

#include "rustlib/Clients.h"
#include "rustlib/LinkedList.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

using namespace gilr;
using namespace gilr::rustlib;

namespace {

class HybridTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    Lib = buildLinkedListLib(SpecMode::Functional).release();
  }
  static void TearDownTestSuite() {
    delete Lib;
    Lib = nullptr;
  }
  static LinkedListLib *Lib;
};

LinkedListLib *HybridTest::Lib = nullptr;

TEST_F(HybridTest, SafeClientsVerify) {
  creusot::SafeVerifier SV(Lib->Contracts, Lib->Solv);
  for (const creusot::SafeFn &Client : makeClients()) {
    creusot::SafeReport R = SV.verify(Client);
    EXPECT_TRUE(R.Ok) << Client.Name << ": "
                      << (R.Errors.empty() ? "" : R.Errors.front());
    EXPECT_FALSE(R.Obligations.empty());
  }
}

TEST_F(HybridTest, MissingPreconditionFailsOnSafeSide) {
  // Pushing onto a list of unknown length cannot discharge the
  // len < usize::MAX precondition: the Creusot side must reject it.
  creusot::SafeVerifier SV(Lib->Contracts, Lib->Solv);
  creusot::SafeReport R = SV.verify(makeBadClient());
  EXPECT_FALSE(R.Ok);
  ASSERT_FALSE(R.Errors.empty());
  EXPECT_NE(R.Errors.front().find("pre of"), std::string::npos);
}

TEST_F(HybridTest, FullHybridRun) {
  engine::VerifEnv Env = Lib->env();
  hybrid::HybridDriver Driver(Env, Lib->Contracts);
  hybrid::HybridReport R = Driver.run(functionalFunctions(), makeClients());
  for (const engine::VerifyReport &U : R.UnsafeSide)
    EXPECT_TRUE(U.Ok) << U.Func << ": "
                      << (U.Errors.empty() ? "" : U.Errors.front());
  for (const creusot::SafeReport &C : R.SafeSide)
    EXPECT_TRUE(C.Ok) << C.Func;
  EXPECT_TRUE(R.ok());
}

TEST_F(HybridTest, ChainClientScales) {
  creusot::SafeVerifier SV(Lib->Contracts, Lib->Solv);
  creusot::SafeReport R = SV.verify(makeChainClient(6));
  EXPECT_TRUE(R.Ok) << (R.Errors.empty() ? "" : R.Errors.front());
  // 6 pushes with preconditions + 6 asserted pops.
  EXPECT_GE(R.Obligations.size(), 12u);
}

TEST_F(HybridTest, TracedProofEmitsConsumeAndSolverSpans) {
  // A LinkedList proof under tracing must show nonzero consume and solver
  // phase aggregates (the telemetry layer's end-to-end contract), and the
  // machine-readable report must reflect the solver work.
  trace::Options O;
  O.M = trace::Mode::Text;
  O.TraceFile.clear();
  O.StatsFile.clear();
  trace::configure(O);
  trace::reset();

  engine::VerifEnv Env = Lib->env();
  engine::Verifier V(Env);
  engine::VerifyReport R = V.verifyFunction("LinkedList::push_front_node");
  EXPECT_TRUE(R.Ok);

  uint64_t ConsumeNanos = 0, SolverCount = 0;
  for (const trace::PhaseStat &P : trace::phases()) {
    if (P.Key.rfind("consume/", 0) == 0)
      ConsumeNanos += P.Nanos;
    if (P.Key.rfind("solver/", 0) == 0)
      SolverCount += P.Count;
  }
  EXPECT_GT(ConsumeNanos, 0u);
  EXPECT_GT(SolverCount, 0u);

  // The per-function delta attributes the solver work and phase breakdown.
  EXPECT_GT(R.Solver.EntailQueries, 0u);
  EXPECT_FALSE(R.Phases.empty());

  hybrid::HybridReport H;
  H.UnsafeSide.push_back(R);
  std::string Json = H.renderJson();
  EXPECT_NE(Json.find("\"entail_queries\""), std::string::npos);
  EXPECT_NE(Json.find("push_front_node"), std::string::npos);
  EXPECT_NE(H.summaryText().find("entailments"), std::string::npos);

  // Restore the default (disabled) mode for the remaining tests.
  trace::Options Off;
  trace::configure(Off);
  trace::reset();
}

TEST_F(HybridTest, SafeSideSeesOnlyModels) {
  // The Creusot side never mentions heap assertions: the contracts are
  // first-order Pearlite (Fig. 1 left).
  const creusot::PearliteSpec *S =
      Lib->Contracts.lookup("LinkedList::pop_front");
  ASSERT_NE(S, nullptr);
  ASSERT_NE(S->Post, nullptr);
  std::string Text = S->Post->str();
  EXPECT_EQ(Text.find("|->"), std::string::npos);
  EXPECT_NE(Text.find("^self"), std::string::npos); // Prophetic final value.
}

} // namespace
