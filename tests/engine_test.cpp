//===- tests/engine_test.cpp - Produce/consume/heuristics integration -------===//

#include "engine/Consume.h"
#include "engine/Heuristics.h"
#include "engine/Lemma.h"
#include "engine/Produce.h"
#include "gilsonite/ModeCheck.h"
#include "sym/ExprBuilder.h"

#include <gtest/gtest.h>

using namespace gilr;
using namespace gilr::engine;
using namespace gilr::gilsonite;

namespace {

class EngineTest : public ::testing::Test {
protected:
  EngineTest()
      : Ownables(Prog.Types, Preds),
        Env{Prog, Preds, Specs, Ownables, Lemmas, Solv, Automation{}} {
    U32 = Prog.Types.intTy(rmir::IntKind::U32);
    T = Prog.Types.param("T");
    OptU32 = Prog.Types.optionOf(U32);
  }

  rmir::Program Prog;
  PredTable Preds;
  SpecTable Specs;
  OwnableRegistry Ownables;
  LemmaTable Lemmas;
  Solver Solv;
  VerifEnv Env;
  SymState St;
  rmir::TypeRef U32, T, OptU32;
};

TEST_F(EngineTest, ProduceConsumePointsTo) {
  Expr P = mkVar("p", Sort::Tuple);
  ASSERT_TRUE(produce(pointsTo(P, U32, mkInt(3)), St, Env).ok());
  MatchCtx M;
  M.Pending.insert("v?");
  ASSERT_TRUE(
      consume(pointsTo(P, U32, mkVar("v?", Sort::Int)), St, Env, M).ok());
  EXPECT_TRUE(exprEquals(*M.Bindings.lookup("v?"), mkInt(3)));
}

TEST_F(EngineTest, ProducePureVanishesOnFalse) {
  EXPECT_TRUE(produce(pure(mkTrue()), St, Env).ok());
  EXPECT_TRUE(produce(pure(mkFalse()), St, Env).vanished());
  // The state is vacuous from here on: further production stays vanished.
  EXPECT_TRUE(produce(pure(mkTrue()), St, Env).vanished());
}

TEST_F(EngineTest, ExistsProducesFreshAndConsumesLearned) {
  Expr P = mkVar("p", Sort::Tuple);
  AssertionP A =
      exists({Binder{"v", Sort::Int}},
             star({pointsTo(P, U32, mkVar("v", Sort::Int)),
                   pure(mkLt(mkVar("v", Sort::Int), mkInt(10)))}));
  ASSERT_TRUE(produce(A, St, Env).ok());
  MatchCtx M;
  ASSERT_TRUE(consumeAll(A, St, Env, M).ok());
}

TEST_F(EngineTest, ConsumePureLearnsOrientedEquality) {
  St.PC.add(mkEq(mkVar("x", Sort::Int), mkInt(4)));
  MatchCtx M;
  M.Pending.insert("out?");
  AssertionP A = pure(mkEq(mkVar("out?", Sort::Int),
                           mkAdd(mkVar("x", Sort::Int), mkInt(1))));
  ASSERT_TRUE(consume(A, St, Env, M).ok());
  EXPECT_TRUE(St.PC.entails(Solv, mkEq(*M.Bindings.lookup("out?"),
                                       mkInt(5))));
}

TEST_F(EngineTest, UnifyDestructuresTuplesAndOptions) {
  MatchCtx M;
  M.Pending.insert("a?");
  M.Pending.insert("b?");
  Expr Pattern = mkTuple({mkVar("a?", Sort::Any),
                          mkSome(mkVar("b?", Sort::Any))});
  Expr Value = mkTuple({mkInt(1), mkSome(mkInt(2))});
  ASSERT_TRUE(unify(Pattern, Value, St, Env, M).ok());
  EXPECT_TRUE(exprEquals(*M.Bindings.lookup("a?"), mkInt(1)));
  EXPECT_TRUE(exprEquals(*M.Bindings.lookup("b?"), mkInt(2)));
}

TEST_F(EngineTest, UnifyChecksBoundResidue) {
  MatchCtx M;
  EXPECT_TRUE(unify(mkInt(3), mkInt(3), St, Env, M).ok());
  EXPECT_TRUE(unify(mkInt(3), mkInt(4), St, Env, M).failed());
}

TEST_F(EngineTest, FoldedPredicateRoundTrip) {
  PredDecl D;
  D.Name = "cell";
  D.Params = {PredParam{"p", Sort::Tuple, true},
              PredParam{"v", Sort::Int, false}};
  Expr PV = mkVar("p", Sort::Tuple);
  D.Clauses = {exists({Binder{"w?", Sort::Int}},
                      star({pointsTo(PV, U32, mkVar("w?", Sort::Int)),
                            pure(mkEq(mkVar("v", Sort::Int),
                                      mkVar("w?", Sort::Int)))}))};
  Preds.declare(D);
  EXPECT_TRUE(checkPredModes(D, Preds).empty());

  Expr P = mkVar("ptr", Sort::Tuple);
  // Produce folded.
  ASSERT_TRUE(produce(predCall("cell", {P, mkInt(9)}), St, Env).ok());
  EXPECT_EQ(St.Folded.entries().size(), 1u);

  // Unfold through the ghost machinery.
  std::vector<SymState> Succs = unfoldFolded(St, Env, "cell",
                                             {P, mkInt(9)});
  ASSERT_EQ(Succs.size(), 1u);
  St = std::move(Succs.front());
  EXPECT_TRUE(St.Folded.entries().empty());
  heap::HeapCtx Ctx = St.heapCtx(Env);
  Outcome<Expr> V = St.Heap.load(P, U32, false, Ctx);
  ASSERT_TRUE(V.ok());
  EXPECT_TRUE(St.PC.entails(Solv, mkEq(V.value(), mkInt(9))));

  // Fold back.
  ASSERT_TRUE(foldPred(St, Env, "cell", {P}).ok());
  EXPECT_EQ(St.Folded.entries().size(), 1u);
  EXPECT_TRUE(St.Heap.load(P, U32, false, Ctx).failed());
}

TEST_F(EngineTest, ConsumeFallsBackToDefinition) {
  // With no folded instance, consumption unfolds the definition.
  PredDecl D;
  D.Name = "cell2";
  D.Params = {PredParam{"p", Sort::Tuple, true},
              PredParam{"v", Sort::Int, false}};
  D.Clauses = {pointsTo(mkVar("p", Sort::Tuple), U32,
                        mkVar("v", Sort::Int))};
  Preds.declare(D);

  Expr P = mkVar("ptr", Sort::Tuple);
  ASSERT_TRUE(produce(pointsTo(P, U32, mkInt(5)), St, Env).ok());
  MatchCtx M;
  M.Pending.insert("out?");
  ASSERT_TRUE(consume(predCall("cell2", {P, mkVar("out?", Sort::Int)}), St,
                      Env, M)
                  .ok());
  EXPECT_TRUE(exprEquals(*M.Bindings.lookup("out?"), mkInt(5)));
}

TEST_F(EngineTest, AutoUnfoldOnHeapMiss) {
  PredDecl D;
  D.Name = "cell3";
  D.Params = {PredParam{"p", Sort::Tuple, true}};
  D.Clauses = {pointsTo(mkVar("p", Sort::Tuple), U32, mkInt(1))};
  Preds.declare(D);

  Expr P = mkVar("ptr", Sort::Tuple);
  ASSERT_TRUE(produce(predCall("cell3", {P}), St, Env).ok());
  // A direct load misses; the heuristic unfolds cell3.
  heap::HeapCtx Ctx = St.heapCtx(Env);
  ASSERT_TRUE(St.Heap.load(P, U32, false, Ctx).failed());
  std::vector<SymState> Succs = unfoldForPointer(St, Env, P);
  ASSERT_EQ(Succs.size(), 1u);
  heap::HeapCtx Ctx2 = Succs[0].heapCtx(Env);
  EXPECT_TRUE(Succs[0].Heap.load(P, U32, false, Ctx2).ok());
}

TEST_F(EngineTest, GunfoldConsumesTokenAndMintsClosing) {
  PredDecl D;
  D.Name = "binv";
  D.Params = {PredParam{"p", Sort::Tuple, true}};
  D.Guardable = true;
  D.Clauses = {pointsTo(mkVar("p", Sort::Tuple), U32, mkInt(2))};
  Preds.declare(D);

  Expr K = mkLftVar("'a");
  Expr Q = mkReal(Rational(1, 2));
  ASSERT_TRUE(St.Lft.produceAlive(K, Q, Solv, St.PC).ok());
  St.Guarded.produceGuarded("binv", K, {mkVar("ptr", Sort::Tuple)});

  std::vector<SymState> Succs =
      gunfoldGuarded(St, Env, St.Guarded.guarded().front());
  ASSERT_EQ(Succs.size(), 1u);
  SymState &Open = Succs.front();
  // Token is gone, closing token minted, body materialised.
  EXPECT_FALSE(Open.Lft.ownedFraction(K, Solv, Open.PC).has_value());
  ASSERT_EQ(Open.Guarded.closing().size(), 1u);
  heap::HeapCtx Ctx = Open.heapCtx(Env);
  EXPECT_TRUE(
      Open.Heap.load(mkVar("ptr", Sort::Tuple), U32, false, Ctx).ok());

  // Closing restores the guarded predicate and the token (Fig. 6 dual).
  pred::ClosingToken Tok = Open.Guarded.closing().front();
  ASSERT_TRUE(gfoldBorrow(Open, Env, Tok, Tok.Name, Tok.Args).ok());
  EXPECT_EQ(Open.Guarded.guarded().size(), 1u);
  EXPECT_TRUE(Open.Lft.ownedFraction(K, Solv, Open.PC).has_value());
  EXPECT_TRUE(
      Open.Heap.load(mkVar("ptr", Sort::Tuple), U32, false, Ctx).failed());
}

TEST_F(EngineTest, GunfoldWithoutTokenFails) {
  PredDecl D;
  D.Name = "binv2";
  D.Params = {PredParam{"p", Sort::Tuple, true}};
  D.Guardable = true;
  D.Clauses = {pointsTo(mkVar("p", Sort::Tuple), U32, mkInt(2))};
  Preds.declare(D);
  Expr K = mkLftVar("'dead");
  St.Guarded.produceGuarded("binv2", K, {mkVar("ptr", Sort::Tuple)});
  EXPECT_TRUE(gunfoldGuarded(St, Env, St.Guarded.guarded().front()).empty());
}

TEST_F(EngineTest, SaturationLearnsDeterministicClauses) {
  // A two-clause predicate whose first clause contradicts the path
  // condition: saturation unfolds it and exposes the second clause's facts.
  PredDecl D;
  D.Name = "evenodd";
  D.Params = {PredParam{"x", Sort::Int, true},
              PredParam{"y", Sort::Int, false}};
  Expr X = mkVar("x", Sort::Int);
  Expr Y = mkVar("y", Sort::Int);
  D.Clauses = {star({pure(mkEq(X, mkInt(0))), pure(mkEq(Y, mkInt(10)))}),
               star({pure(mkLt(mkInt(0), X)), pure(mkEq(Y, mkInt(20)))})};
  Preds.declare(D);

  Expr A = mkVar("a", Sort::Int);
  Expr B = mkVar("b", Sort::Int);
  St.PC.add(mkLt(mkInt(5), A));
  ASSERT_TRUE(produce(predCall("evenodd", {A, B}), St, Env).ok());
  SymState After = saturateUnfolds(St, Env);
  EXPECT_TRUE(After.PC.entails(Solv, mkEq(B, mkInt(20))));
}

TEST_F(EngineTest, ObservationProduceConsumeThroughAssertions) {
  VarGen VG;
  Expr X = VG.freshProphecy("x", Sort::Int);
  ASSERT_TRUE(produce(observation(mkEq(X, mkInt(1))), St, Env).ok());
  MatchCtx M;
  EXPECT_TRUE(consume(observation(mkLe(X, mkInt(1))), St, Env, M).ok());
  EXPECT_TRUE(consume(observation(mkEq(X, mkInt(2))), St, Env, M).failed());
}

} // namespace

namespace {

class EngineEdgeTest : public EngineTest {};

TEST_F(EngineEdgeTest, MaybeUninitRoundTrip) {
  Expr P = mkVar("p", Sort::Tuple);
  // Produce uninitialised memory, consume it as maybe-uninit (None).
  ASSERT_TRUE(produce(uninitPT(P, U32), St, Env).ok());
  MatchCtx M;
  M.Pending.insert("m?");
  ASSERT_TRUE(
      consume(maybeUninit(P, U32, mkVar("m?", Sort::Opt)), St, Env, M).ok());
  EXPECT_TRUE(exprEquals(*M.Bindings.lookup("m?"), mkNone()));
  // And the dual: initialised memory reads back Some(v).
  ASSERT_TRUE(produce(pointsTo(P, U32, mkInt(4)), St, Env).ok());
  MatchCtx M2;
  M2.Pending.insert("m2?");
  ASSERT_TRUE(
      consume(maybeUninit(P, U32, mkVar("m2?", Sort::Opt)), St, Env, M2)
          .ok());
  EXPECT_TRUE(exprEquals(*M2.Bindings.lookup("m2?"), mkSome(mkInt(4))));
}

TEST_F(EngineEdgeTest, ArrayAssertionsRoundTrip) {
  Expr P = mkVar("buf", Sort::Tuple);
  Expr N = mkVar("n", Sort::Int);
  Expr S1 = mkVar("s1", Sort::Seq);
  ASSERT_TRUE(produce(arrayPT(P, T, N, S1), St, Env).ok());
  MatchCtx M;
  M.Pending.insert("out?");
  ASSERT_TRUE(
      consume(arrayPT(P, T, N, mkVar("out?", Sort::Seq)), St, Env, M).ok());
  EXPECT_TRUE(exprEquals(*M.Bindings.lookup("out?"), S1));
}

TEST_F(EngineEdgeTest, ArrayUninitAssertions) {
  Expr P = mkVar("buf2", Sort::Tuple);
  Expr N = mkVar("n2", Sort::Int);
  ASSERT_TRUE(produce(arrayUninit(P, T, N), St, Env).ok());
  MatchCtx M;
  ASSERT_TRUE(consume(arrayUninit(P, T, N), St, Env, M).ok());
  // Consumed: a second consume fails.
  MatchCtx M2;
  EXPECT_FALSE(consume(arrayUninit(P, T, N), St, Env, M2).ok());
}

TEST_F(EngineEdgeTest, GuardedConsumeLearnsKappa) {
  PredDecl D;
  D.Name = "ginv";
  D.Params = {PredParam{"p", Sort::Tuple, true}};
  D.Guardable = true;
  D.Clauses = {pointsTo(mkVar("p", Sort::Tuple), U32, mkInt(1))};
  Preds.declare(D);
  Expr K = mkLftVar("'z");
  St.Guarded.produceGuarded("ginv", K, {mkVar("q", Sort::Tuple)});
  MatchCtx M;
  M.Pending.insert("'hole");
  AssertionP A = guardedCall(mkVar("'hole", Sort::Lft), "ginv",
                             {mkVar("q", Sort::Tuple)});
  ASSERT_TRUE(consume(A, St, Env, M).ok());
  EXPECT_TRUE(exprEquals(*M.Bindings.lookup("'hole"), K));
}

TEST_F(EngineEdgeTest, ConsumeAllRejectsUnlearnedExistentials) {
  AssertionP A = exists({Binder{"ghost?", Sort::Int}}, emp());
  MatchCtx M;
  Outcome<Unit> R = consumeAll(A, St, Env, M);
  EXPECT_TRUE(R.failed());
  EXPECT_NE(R.error().find("ghost?"), std::string::npos);
}

TEST_F(EngineEdgeTest, ProduceClausesPrunesInfeasible) {
  PredDecl D;
  D.Name = "cases";
  D.Params = {PredParam{"x", Sort::Int, true}};
  Expr X = mkVar("x", Sort::Int);
  D.Clauses = {pure(mkEq(X, mkInt(1))), pure(mkEq(X, mkInt(2)))};
  Preds.declare(D);
  Expr A = mkVar("a", Sort::Int);
  St.PC.add(mkLt(A, mkInt(2)));
  std::vector<SymState> Succs =
      produceClauses(St, Env, *Preds.lookup("cases"), {A}, nullptr);
  // Only x = 1 is consistent with a < 2.
  ASSERT_EQ(Succs.size(), 1u);
  EXPECT_TRUE(Succs[0].PC.entails(Solv, mkEq(A, mkInt(1))));
}

} // namespace
