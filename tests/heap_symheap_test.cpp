//===- tests/heap_symheap_test.cpp - Symbolic heap actions (§3.2-3.3) -------===//

#include "heap/LaidOut.h"
#include "heap/SymHeap.h"
#include "sym/ExprBuilder.h"
#include "sym/Printer.h"

#include <gtest/gtest.h>

using namespace gilr;
using namespace gilr::heap;
using namespace gilr::rmir;

namespace {

class SymHeapTest : public ::testing::Test {
protected:
  SymHeapTest() : Ctx{Solv, PC, VG, Ty} {
    U32 = Ty.intTy(IntKind::U32);
    U64 = Ty.intTy(IntKind::U64);
    S = Ty.declareStruct("S", {FieldDef{"x", U32}, FieldDef{"y", U64}});
    OptU32 = Ty.optionOf(U32);
    T = Ty.param("T");
  }

  TyCtx Ty;
  Solver Solv;
  PathCondition PC;
  VarGen VG;
  HeapCtx Ctx;
  SymHeap H;
  TypeRef U32, U64, S, OptU32, T;
};

TEST_F(SymHeapTest, AllocStoreLoadRoundTrip) {
  Expr P = H.alloc(U32, Ctx);
  EXPECT_TRUE(H.store(P, U32, mkInt(7), Ctx).ok());
  Outcome<Expr> V = H.load(P, U32, /*Move=*/false, Ctx);
  ASSERT_TRUE(V.ok());
  EXPECT_TRUE(exprEquals(V.value(), mkInt(7)));
}

TEST_F(SymHeapTest, LoadOfUninitFails) {
  Expr P = H.alloc(U32, Ctx);
  Outcome<Expr> V = H.load(P, U32, false, Ctx);
  EXPECT_TRUE(V.failed());
  EXPECT_NE(V.error().find("uninit"), std::string::npos);
}

TEST_F(SymHeapTest, MoveDeinitialises) {
  // §3.2: loading in a move context deinitialises the memory.
  Expr P = H.alloc(U32, Ctx);
  ASSERT_TRUE(H.store(P, U32, mkInt(7), Ctx).ok());
  ASSERT_TRUE(H.load(P, U32, /*Move=*/true, Ctx).ok());
  EXPECT_TRUE(H.load(P, U32, false, Ctx).failed());
}

TEST_F(SymHeapTest, StructFieldAccess) {
  Expr P = H.alloc(S, Ctx);
  Expr V = mkTuple({mkInt(1), mkInt(2)});
  ASSERT_TRUE(H.store(P, S, V, Ctx).ok());
  // Navigate to field 1 through a field projection.
  Expr FieldPtr = appendProjElem(P, ProjElem::field(S, 1));
  Outcome<Expr> Y = H.load(FieldPtr, U64, false, Ctx);
  ASSERT_TRUE(Y.ok());
  EXPECT_TRUE(exprEquals(Y.value(), mkInt(2)));
  // Store through the field and read the whole struct back.
  ASSERT_TRUE(H.store(FieldPtr, U64, mkInt(9), Ctx).ok());
  Outcome<Expr> Whole = H.load(P, S, false, Ctx);
  ASSERT_TRUE(Whole.ok());
  EXPECT_TRUE(exprEquals(Whole.value(), mkTuple({mkInt(1), mkInt(9)})));
}

TEST_F(SymHeapTest, SymbolicStructExpandsLazily) {
  Expr P = H.alloc(S, Ctx);
  Expr V = VG.fresh("v", Sort::Tuple);
  ASSERT_TRUE(H.store(P, S, V, Ctx).ok());
  Expr FieldPtr = appendProjElem(P, ProjElem::field(S, 0));
  Outcome<Expr> X = H.load(FieldPtr, U32, false, Ctx);
  ASSERT_TRUE(X.ok());
  EXPECT_TRUE(exprEquals(X.value(), mkTupleGet(V, 0)));
  // Loading also assumes the validity invariant of the loaded integer.
  EXPECT_TRUE(PC.entails(Solv, mkLe(mkTupleGet(V, 0), mkInt(4294967295))));
}

TEST_F(SymHeapTest, EnumVariantAccessNeedsDecidedDiscriminant) {
  Expr P = H.alloc(OptU32, Ctx);
  Expr V = VG.fresh("o", Sort::Opt);
  ASSERT_TRUE(H.store(P, OptU32, V, Ctx).ok());
  Expr PayloadPtr = appendProjElem(P, ProjElem::variantField(OptU32, 1, 0));
  // Undecided discriminant: failure asks for a branch first.
  EXPECT_TRUE(H.load(PayloadPtr, U32, false, Ctx).failed());
  // After the branch knows IsSome, access succeeds.
  PC.add(mkIsSome(V));
  Outcome<Expr> X = H.load(PayloadPtr, U32, false, Ctx);
  ASSERT_TRUE(X.ok());
  EXPECT_TRUE(exprEquals(X.value(), mkUnwrap(V)));
}

TEST_F(SymHeapTest, FreeRequiresFullOwnership) {
  Expr P = H.alloc(S, Ctx);
  ASSERT_TRUE(H.store(P, S, mkTuple({mkInt(1), mkInt(2)}), Ctx).ok());
  // Frame off one field: free must fail.
  Expr FieldPtr = appendProjElem(P, ProjElem::field(S, 0));
  ASSERT_TRUE(H.consumePointsTo(FieldPtr, U32, Ctx).ok());
  EXPECT_TRUE(H.freeTyped(P, S, Ctx).failed());
  // Restore and free succeeds; double free then fails.
  ASSERT_TRUE(H.producePointsTo(FieldPtr, U32, mkInt(1), Ctx).ok());
  EXPECT_TRUE(H.freeTyped(P, S, Ctx).ok());
  EXPECT_TRUE(H.freeTyped(P, S, Ctx).failed());
}

TEST_F(SymHeapTest, FreeOfUninitIsAllowed) {
  Expr P = H.alloc(U32, Ctx);
  EXPECT_TRUE(H.freeTyped(P, U32, Ctx).ok());
}

TEST_F(SymHeapTest, ConsumeProduceRoundTrip) {
  Expr P = H.alloc(U32, Ctx);
  ASSERT_TRUE(H.store(P, U32, mkInt(5), Ctx).ok());
  Outcome<Expr> V = H.consumePointsTo(P, U32, Ctx);
  ASSERT_TRUE(V.ok());
  EXPECT_TRUE(exprEquals(V.value(), mkInt(5)));
  // The memory is now framed off.
  EXPECT_TRUE(H.load(P, U32, false, Ctx).failed());
  // Produce it back and read again.
  ASSERT_TRUE(H.producePointsTo(P, U32, mkInt(5), Ctx).ok());
  EXPECT_TRUE(H.load(P, U32, false, Ctx).ok());
}

TEST_F(SymHeapTest, DuplicateProduceVanishes) {
  Expr P = H.alloc(U32, Ctx);
  ASSERT_TRUE(H.store(P, U32, mkInt(5), Ctx).ok());
  Outcome<Unit> R = H.producePointsTo(P, U32, mkInt(6), Ctx);
  EXPECT_TRUE(R.vanished());
}

TEST_F(SymHeapTest, ProduceAtFreshSymbolicPointer) {
  // Producing through an opaque pointer allocates an abstract location and
  // records the aliasing equality.
  Expr P = VG.fresh("p", Sort::Tuple);
  ASSERT_TRUE(H.producePointsTo(P, U32, mkInt(3), Ctx).ok());
  Outcome<Expr> V = H.load(P, U32, false, Ctx);
  ASSERT_TRUE(V.ok());
  EXPECT_TRUE(exprEquals(V.value(), mkInt(3)));
}

TEST_F(SymHeapTest, ProduceStructFieldSkeleton) {
  // Producing only a field's points-to creates a struct skeleton with the
  // other fields missing.
  Expr P = VG.fresh("p", Sort::Tuple);
  Expr FieldPtr = appendProjElem(P, ProjElem::field(S, 1));
  ASSERT_TRUE(H.producePointsTo(FieldPtr, U64, mkInt(4), Ctx).ok());
  EXPECT_TRUE(H.load(FieldPtr, U64, false, Ctx).ok());
  // The sibling field is missing.
  Expr Sibling = appendProjElem(P, ProjElem::field(S, 0));
  EXPECT_TRUE(H.load(Sibling, U32, false, Ctx).failed());
}

TEST_F(SymHeapTest, MaybeUninitConsumers) {
  Expr P = H.alloc(U32, Ctx);
  Outcome<Expr> M1 = H.consumeMaybeUninit(P, U32, Ctx);
  ASSERT_TRUE(M1.ok());
  EXPECT_EQ(M1.value()->Kind, ExprKind::NoneLit);
  ASSERT_TRUE(H.produceUninit(P, U32, Ctx).ok());
  ASSERT_TRUE(H.store(P, U32, mkInt(1), Ctx).ok());
  Outcome<Expr> M2 = H.consumeMaybeUninit(P, U32, Ctx);
  ASSERT_TRUE(M2.ok());
  EXPECT_TRUE(exprEquals(M2.value(), mkSome(mkInt(1))));
}

//===----------------------------------------------------------------------===//
// Laid-out nodes (Fig. 5)
//===----------------------------------------------------------------------===//

TEST_F(SymHeapTest, ArrayAllocWriteRead) {
  Expr N = VG.fresh("n", Sort::Int);
  PC.add(mkLe(mkInt(2), N));
  Expr P = H.allocArray(T, N, Ctx);
  // Write one element at symbolic index k < n.
  Expr K = VG.fresh("k", Sort::Int);
  PC.add(mkLe(mkInt(0), K));
  PC.add(mkLt(K, N));
  Expr ElemPtr = appendProjElem(P, ProjElem::offset(T, K));
  Expr V = VG.fresh("v", Sort::Any);
  ASSERT_TRUE(H.store(ElemPtr, T, V, Ctx).ok()) << H.dump();
  Outcome<Expr> Back = H.load(ElemPtr, T, false, Ctx);
  ASSERT_TRUE(Back.ok());
  EXPECT_TRUE(PC.entails(Solv, mkEq(Back.value(), V)));
}

TEST_F(SymHeapTest, Figure5VectorPush) {
  // Fig. 5: a laid-out node with values in [0, k) and uninit in [k, n);
  // writing at offset k isolates [k, k+1) and overwrites it.
  Expr N = VG.fresh("n", Sort::Int);
  Expr K = VG.fresh("k", Sort::Int);
  Expr Vs = VG.fresh("vs", Sort::Seq);
  PC.add(mkLe(mkInt(0), K));
  PC.add(mkLt(K, N));

  Expr P = VG.fresh("buf", Sort::Tuple);
  ASSERT_TRUE(H.produceArray(P, T, K, Vs, Ctx).ok());
  Expr Rest = appendProjElem(P, ProjElem::offset(T, K));
  ASSERT_TRUE(H.produceArrayUninit(Rest, T, mkSub(N, K), Ctx).ok());

  // The push: write v at offset k.
  Expr V = VG.fresh("v", Sort::Any);
  ASSERT_TRUE(H.store(Rest, T, V, Ctx).ok()) << H.dump();

  // Read back the now-initialised prefix [0, k+1).
  Outcome<Expr> All = H.consumeArray(P, T, mkAdd(K, mkInt(1)), Ctx);
  ASSERT_TRUE(All.ok()) << (All.failed() ? All.error() : "");
  std::vector<Expr> ObsFacts = PC.facts();
  EXPECT_TRUE(
      Solv.entails(ObsFacts, mkEq(All.value(), mkSeqConcat(Vs, mkSeqUnit(V)))))
      << exprToString(All.value());
}

TEST_F(SymHeapTest, ArrayConsumeProduceRoundTrip) {
  Expr N = VG.fresh("n", Sort::Int);
  Expr Vs = VG.fresh("vs", Sort::Seq);
  Expr P = VG.fresh("buf", Sort::Tuple);
  ASSERT_TRUE(H.produceArray(P, T, N, Vs, Ctx).ok());
  Outcome<Expr> Out = H.consumeArray(P, T, N, Ctx);
  ASSERT_TRUE(Out.ok());
  EXPECT_TRUE(exprEquals(Out.value(), Vs));
  // Producing again after consume is fine (no duplication).
  EXPECT_TRUE(H.produceArray(P, T, N, Vs, Ctx).ok());
  // But producing twice vanishes.
  EXPECT_TRUE(H.produceArray(P, T, N, Vs, Ctx).vanished());
}

TEST_F(SymHeapTest, ArraySplitMiddleRead) {
  // Read a middle element out of a fully symbolic array.
  Expr N = VG.fresh("n", Sort::Int);
  Expr I = VG.fresh("i", Sort::Int);
  Expr Vs = VG.fresh("vs", Sort::Seq);
  PC.add(mkLe(mkInt(0), I));
  PC.add(mkLt(I, N));
  Expr P = VG.fresh("buf", Sort::Tuple);
  ASSERT_TRUE(H.produceArray(P, T, N, Vs, Ctx).ok());
  Expr ElemPtr = appendProjElem(P, ProjElem::offset(T, I));
  Outcome<Expr> V = H.load(ElemPtr, T, false, Ctx);
  ASSERT_TRUE(V.ok());
  EXPECT_TRUE(PC.entails(Solv, mkEq(V.value(), mkSeqNth(Vs, I))));
  // The array reassembles: consuming the whole range still works.
  Outcome<Expr> All = H.consumeArray(P, T, N, Ctx);
  ASSERT_TRUE(All.ok()) << (All.failed() ? All.error() : "");
  EXPECT_TRUE(PC.entails(Solv, mkEq(All.value(), Vs)));
}

TEST_F(SymHeapTest, OutOfBoundsArrayAccessFails) {
  Expr N = VG.fresh("n", Sort::Int);
  Expr Vs = VG.fresh("vs", Sort::Seq);
  Expr P = VG.fresh("buf", Sort::Tuple);
  ASSERT_TRUE(H.produceArray(P, T, N, Vs, Ctx).ok());
  // Access at index n (no information that n < n): not covered.
  Expr ElemPtr = appendProjElem(P, ProjElem::offset(T, N));
  EXPECT_TRUE(H.load(ElemPtr, T, false, Ctx).failed());
}

} // namespace
