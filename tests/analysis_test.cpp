//===- tests/analysis_test.cpp - Pre-verification analysis tests -----------===//
//
// Positive and negative cases for every lint pass (GILR-E001..E007, E011,
// GILR-W001..W007), suppression (per-entity attribute and global config),
// parser negative inputs (malformed specs become diagnostics, not aborts),
// driver integration (blocked entities never reach the executor), scheduler
// determinism (byte-identical diagnostics at 1 vs 4 workers) and the
// incremental lint-verdict cache (warm replay; editing one function re-lints
// exactly that function).
//
//===----------------------------------------------------------------------===//

#include "analysis/Analysis.h"
#include "engine/Verifier.h"
#include "gilsonite/Parser.h"
#include "incr/Session.h"
#include "rmir/Builder.h"
#include "sched/Scheduler.h"
#include "support/Metrics.h"
#include "support/Trace.h"
#include "sym/ExprBuilder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

using namespace gilr;
using namespace gilr::analysis;
using namespace gilr::engine;
using namespace gilr::rmir;
using namespace gilr::gilsonite;

namespace {

bool hasCode(const std::vector<Diagnostic> &Diags, const char *Code) {
  return std::any_of(Diags.begin(), Diags.end(),
                     [&](const Diagnostic &D) { return D.Code == Code; });
}

unsigned countCode(const std::vector<Diagnostic> &Diags, const char *Code) {
  return static_cast<unsigned>(
      std::count_if(Diags.begin(), Diags.end(),
                    [&](const Diagnostic &D) { return D.Code == Code; }));
}

class AnalysisTest : public ::testing::Test {
protected:
  AnalysisTest() : Ownables(Prog.Types, Preds) {
    U32 = Prog.Types.intTy(IntKind::U32);
    P32 = Prog.Types.rawPtr(U32);
    BoolTy = Prog.Types.boolTy();
  }

  void addFn(Function F) {
    std::string N = F.Name;
    Prog.Funcs.emplace(std::move(N), std::move(F));
  }

  void addSpec(const std::string &Func, AssertionP Pre, AssertionP Post,
               std::vector<Binder> Vars = {}) {
    Spec S;
    S.Func = Func;
    S.SpecVars = std::move(Vars);
    S.Pre = std::move(Pre);
    S.Post = std::move(Post);
    Specs.add(std::move(S));
  }

  AnalysisInput input() {
    AnalysisInput In;
    In.Prog = &Prog;
    In.Preds = &Preds;
    In.Specs = &Specs;
    In.Solv = &Solv;
    return In;
  }

  /// A well-formed `ret = x + 1` body with no findings.
  Function cleanInc(const std::string &Name) {
    FunctionBuilder B(Name, Prog.Types);
    LocalId X = B.addParam("x", U32);
    B.setReturnType(U32);
    BlockId E = B.newBlock();
    B.atBlock(E);
    B.assign(Place(0), Rvalue::binary(BinOp::Add, Operand::copy(Place(X)),
                                      Operand::constant(mkInt(1), U32)));
    B.ret();
    return B.finish();
  }

  rmir::Program Prog;
  PredTable Preds;
  SpecTable Specs;
  OwnableRegistry Ownables;
  LemmaTable Lemmas;
  Solver Solv;
  Automation Auto;
  TypeRef U32, P32, BoolTy;
};

//===----------------------------------------------------------------------===//
// Well-formedness (GILR-E001..E005)
//===----------------------------------------------------------------------===//

TEST_F(AnalysisTest, CleanFunctionHasNoDiagnostics) {
  addFn(cleanInc("inc"));
  EntityVerdict V = lintEntity(input(), "inc");
  EXPECT_TRUE(V.Diags.empty());
  EXPECT_FALSE(V.Blocked);
}

TEST_F(AnalysisTest, BadTerminatorTargetReported) {
  // Hand-built: the FunctionBuilder validates targets eagerly, which is
  // exactly what a rustc front-end would not guarantee.
  Function F;
  F.Name = "bad_target";
  F.Locals.push_back({"ret", Prog.Types.unitTy()});
  BasicBlock BB;
  BB.Term = Terminator::gotoBlock(7);
  F.Blocks.push_back(std::move(BB));
  addFn(std::move(F));

  EntityVerdict V = lintEntity(input(), "bad_target");
  EXPECT_TRUE(hasCode(V.Diags, code::BadTarget));
  EXPECT_TRUE(V.Blocked);
}

TEST_F(AnalysisTest, EmptyBodyReported) {
  Function F;
  F.Name = "no_blocks";
  F.Locals.push_back({"ret", Prog.Types.unitTy()});
  addFn(std::move(F));
  EntityVerdict V = lintEntity(input(), "no_blocks");
  EXPECT_TRUE(hasCode(V.Diags, code::BadTarget));
}

TEST_F(AnalysisTest, UndeclaredLocalReported) {
  Function F;
  F.Name = "bad_local";
  F.Locals.push_back({"ret", U32});
  BasicBlock BB;
  BB.Stmts.push_back(
      Statement::assign(Place(0), Rvalue::use(Operand::copy(Place(9)))));
  BB.Term = Terminator::ret();
  F.Blocks.push_back(std::move(BB));
  addFn(std::move(F));

  EntityVerdict V = lintEntity(input(), "bad_local");
  EXPECT_TRUE(hasCode(V.Diags, code::BadLocal));
  EXPECT_TRUE(V.Blocked);
}

TEST_F(AnalysisTest, TypeMismatchReported) {
  Function F;
  F.Name = "bad_type";
  F.Locals.push_back({"ret", U32});
  BasicBlock BB;
  BB.Stmts.push_back(Statement::assign(
      Place(0), Rvalue::use(Operand::constant(mkBool(true), BoolTy))));
  BB.Term = Terminator::ret();
  F.Blocks.push_back(std::move(BB));
  addFn(std::move(F));

  EntityVerdict V = lintEntity(input(), "bad_type");
  EXPECT_TRUE(hasCode(V.Diags, code::TypeMismatch));
}

TEST_F(AnalysisTest, UninitUseReported) {
  FunctionBuilder B("uninit_use", Prog.Types);
  B.setReturnType(U32);
  LocalId T = B.addLocal("t", U32);
  BlockId E = B.newBlock();
  B.atBlock(E);
  B.assign(Place(0), Rvalue::use(Operand::copy(Place(T)))); // t never written.
  B.ret();
  addFn(B.finish());

  EntityVerdict V = lintEntity(input(), "uninit_use");
  EXPECT_TRUE(hasCode(V.Diags, code::UninitUse));
  EXPECT_TRUE(V.Blocked);
}

TEST_F(AnalysisTest, MovedUseReported) {
  FunctionBuilder B("moved_use", Prog.Types);
  LocalId X = B.addParam("x", U32);
  B.setReturnType(U32);
  LocalId T = B.addLocal("t", U32);
  BlockId E = B.newBlock();
  B.atBlock(E);
  B.assign(Place(T), Rvalue::use(Operand::move(Place(X))));
  B.assign(Place(0), Rvalue::binary(BinOp::Add, Operand::copy(Place(T)),
                                    Operand::copy(Place(X)))); // x was moved.
  B.ret();
  addFn(B.finish());

  EntityVerdict V = lintEntity(input(), "moved_use");
  EXPECT_TRUE(hasCode(V.Diags, code::MovedUse));
  EXPECT_FALSE(hasCode(V.Diags, code::UninitUse));
}

//===----------------------------------------------------------------------===//
// Dead code (GILR-W001/W002)
//===----------------------------------------------------------------------===//

TEST_F(AnalysisTest, UnreachableBlockWarned) {
  FunctionBuilder B("unreach", Prog.Types);
  B.setReturnType(U32);
  BlockId E = B.newBlock();
  B.atBlock(E);
  B.assign(Place(0), Rvalue::use(Operand::constant(mkInt(1), U32)));
  B.ret();
  BlockId Dead = B.newBlock();
  B.atBlock(Dead);
  B.ret();
  addFn(B.finish());

  EntityVerdict V = lintEntity(input(), "unreach");
  EXPECT_TRUE(hasCode(V.Diags, code::UnreachableBlock));
  EXPECT_FALSE(V.Blocked); // Warnings do not gate.
}

TEST_F(AnalysisTest, DeadStoreWarnedAndReadStoreNot) {
  FunctionBuilder B("dead_store", Prog.Types);
  LocalId X = B.addParam("x", U32);
  B.setReturnType(U32);
  LocalId T = B.addLocal("t", U32);
  LocalId U = B.addLocal("u", U32);
  BlockId E = B.newBlock();
  B.atBlock(E);
  B.assign(Place(T), Rvalue::use(Operand::constant(mkInt(7), U32))); // Dead.
  B.assign(Place(U), Rvalue::use(Operand::copy(Place(X))));          // Read.
  B.assign(Place(0), Rvalue::use(Operand::copy(Place(U))));
  B.ret();
  addFn(B.finish());

  EntityVerdict V = lintEntity(input(), "dead_store");
  ASSERT_EQ(countCode(V.Diags, code::DeadStore), 1u);
  const Diagnostic &D = *std::find_if(
      V.Diags.begin(), V.Diags.end(),
      [](const Diagnostic &X2) { return X2.Code == code::DeadStore; });
  EXPECT_NE(D.Message.find("'t'"), std::string::npos);
  (void)T;
}

TEST_F(AnalysisTest, ReturnSlotStoreIsNotDead) {
  addFn(cleanInc("inc"));
  EntityVerdict V = lintEntity(input(), "inc");
  EXPECT_FALSE(hasCode(V.Diags, code::DeadStore));
}

//===----------------------------------------------------------------------===//
// Unsafe surface (GILR-W003)
//===----------------------------------------------------------------------===//

TEST_F(AnalysisTest, RawPointerOpsWithoutOwnershipSpecWarned) {
  FunctionBuilder B("raw_peek", Prog.Types);
  LocalId X = B.addParam("x", U32);
  B.setReturnType(U32);
  LocalId P = B.addLocal("p", P32);
  BlockId E = B.newBlock();
  B.atBlock(E);
  B.assign(Place(P), Rvalue::addrOf(Place(X)));
  B.assign(Place(0), Rvalue::use(Operand::copy(Place(P).deref())));
  B.ret();
  addFn(B.finish());
  addSpec("raw_peek", emp(), pure(mkTrue()));

  EntityVerdict V = lintEntity(input(), "raw_peek");
  EXPECT_TRUE(hasCode(V.Diags, code::UnsafeSurface));
}

TEST_F(AnalysisTest, RawPointerOpsWithOwnershipSpecClean) {
  FunctionBuilder B("raw_read", Prog.Types);
  LocalId P = B.addParam("p", P32);
  B.setReturnType(U32);
  BlockId E = B.newBlock();
  B.atBlock(E);
  B.assign(Place(0), Rvalue::use(Operand::copy(Place(P).deref())));
  B.ret();
  addFn(B.finish());

  Expr Pv = mkVar("p", Sort::Loc);
  Expr Vv = mkVar("v", Sort::Int);
  addSpec("raw_read", pointsTo(Pv, U32, Vv), pointsTo(Pv, U32, Vv),
          {{"p", Sort::Loc}, {"v", Sort::Int}});

  EntityVerdict V = lintEntity(input(), "raw_read");
  EXPECT_FALSE(hasCode(V.Diags, code::UnsafeSurface));
}

//===----------------------------------------------------------------------===//
// Frame-rule footprint lint (GILR-W008)
//===----------------------------------------------------------------------===//

namespace {

/// `ret = *p` with a second pointer parameter `q` the body never touches.
Function derefFirstOfTwo(rmir::Program &Prog, TypeRef U32, TypeRef P32) {
  FunctionBuilder B("deref_first", Prog.Types);
  LocalId P = B.addParam("p", P32);
  B.addParam("q", P32);
  B.setReturnType(U32);
  BlockId E = B.newBlock();
  B.atBlock(E);
  B.assign(Place(0), Rvalue::use(Operand::copy(Place(P).deref())));
  B.ret();
  return B.finish();
}

} // namespace

TEST_F(AnalysisTest, UntouchedOwnedParameterWarned) {
  addFn(derefFirstOfTwo(Prog, U32, P32));
  Expr Pv = mkVar("p", Sort::Loc), Qv = mkVar("q", Sort::Loc);
  Expr Vv = mkVar("v", Sort::Int), Wv = mkVar("w", Sort::Int);
  addSpec("deref_first", star({pointsTo(Pv, U32, Vv), pointsTo(Qv, U32, Wv)}),
          pure(mkTrue()),
          {{"p", Sort::Loc}, {"q", Sort::Loc}, {"v", Sort::Int},
           {"w", Sort::Int}});

  EntityVerdict V = lintEntity(input(), "deref_first");
  ASSERT_TRUE(hasCode(V.Diags, code::FrameWiderThanFootprint));
  EXPECT_FALSE(V.Blocked); // A wide frame is a warning, never a gate.
  const Diagnostic &D = *std::find_if(
      V.Diags.begin(), V.Diags.end(), [](const Diagnostic &X2) {
        return X2.Code == code::FrameWiderThanFootprint;
      });
  // The finding names the untouched root, not the used one.
  EXPECT_NE(D.Message.find("q"), std::string::npos);
}

TEST_F(AnalysisTest, TouchedOwnedParameterClean) {
  FunctionBuilder B("deref_both", Prog.Types);
  LocalId P = B.addParam("p", P32);
  LocalId Q = B.addParam("q", P32);
  B.setReturnType(U32);
  BlockId E = B.newBlock();
  B.atBlock(E);
  B.assign(Place(0), Rvalue::binary(BinOp::Add, Operand::copy(Place(P).deref()),
                                    Operand::copy(Place(Q).deref())));
  B.ret();
  addFn(B.finish());
  Expr Pv = mkVar("p", Sort::Loc), Qv = mkVar("q", Sort::Loc);
  Expr Vv = mkVar("v", Sort::Int), Wv = mkVar("w", Sort::Int);
  addSpec("deref_both", star({pointsTo(Pv, U32, Vv), pointsTo(Qv, U32, Wv)}),
          pure(mkTrue()),
          {{"p", Sort::Loc}, {"q", Sort::Loc}, {"v", Sort::Int},
           {"w", Sort::Int}});

  EntityVerdict V = lintEntity(input(), "deref_both");
  EXPECT_FALSE(hasCode(V.Diags, code::FrameWiderThanFootprint));
}

TEST_F(AnalysisTest, AbstractPredicateMakesFootprintOpaque) {
  addFn(derefFirstOfTwo(Prog, U32, P32));
  PredDecl Abs;
  Abs.Name = "inv";
  Abs.Params = {{"x", Sort::Loc, /*In=*/true}};
  Abs.Abstract = true;
  Preds.declare(std::move(Abs));
  Expr Pv = mkVar("p", Sort::Loc), Qv = mkVar("q", Sort::Loc);
  Expr Wv = mkVar("w", Sort::Int);
  // `q` is owned and untouched, but the predicate call hides an unknown
  // footprint, so the lint must stay silent.
  addSpec("deref_first", star({predCall("inv", {Pv}), pointsTo(Qv, U32, Wv)}),
          pure(mkTrue()),
          {{"p", Sort::Loc}, {"q", Sort::Loc}, {"w", Sort::Int}});

  EntityVerdict V = lintEntity(input(), "deref_first");
  EXPECT_FALSE(hasCode(V.Diags, code::FrameWiderThanFootprint));
}

//===----------------------------------------------------------------------===//
// Spec lints (GILR-E006/W004) and parse diagnostics (GILR-E007)
//===----------------------------------------------------------------------===//

TEST_F(AnalysisTest, VacuousPreconditionReportedWithUnsatCore) {
  Expr X = mkVar("x", Sort::Int);
  addSpec("vac", star({pure(mkLt(X, mkInt(0))), pure(mkGt(X, mkInt(0)))}),
          pure(mkEq(mkVar("r", Sort::Int), mkInt(0))),
          {{"x", Sort::Int}});

  EntityVerdict V = lintEntity(input(), "vac");
  ASSERT_TRUE(hasCode(V.Diags, code::VacuousPre));
  EXPECT_TRUE(V.Blocked);
  const Diagnostic &D = *std::find_if(
      V.Diags.begin(), V.Diags.end(),
      [](const Diagnostic &X2) { return X2.Code == code::VacuousPre; });
  EXPECT_FALSE(D.Notes.empty()); // The minimized unsat core.
}

TEST_F(AnalysisTest, SatisfiablePreconditionClean) {
  Expr X = mkVar("x", Sort::Int);
  addSpec("fine", pure(mkLt(X, mkInt(100))),
          pure(mkEq(mkVar("r", Sort::Int), X)), {{"x", Sort::Int}});
  EntityVerdict V = lintEntity(input(), "fine");
  EXPECT_FALSE(hasCode(V.Diags, code::VacuousPre));
  EXPECT_FALSE(V.Blocked);
}

TEST_F(AnalysisTest, TriviallyTruePostconditionWarned) {
  Expr X = mkVar("x", Sort::Int);
  addSpec("triv", pure(mkLt(X, mkInt(10))),
          star({pure(mkEq(mkInt(1), mkInt(1))), pure(mkGt(X, mkInt(-1)))}),
          {{"x", Sort::Int}});
  EntityVerdict V = lintEntity(input(), "triv");
  EXPECT_TRUE(hasCode(V.Diags, code::TrivialPost));
  EXPECT_FALSE(V.Blocked);
}

TEST_F(AnalysisTest, PostConjunctImpliedByPreAloneWarned) {
  // `x < 20` follows from the pre `x < 10` without looking at the body: a
  // frame-style conjunct that promises nothing. `r == x` is a genuine
  // promise and must stay clean.
  Expr X = mkVar("x", Sort::Int);
  Expr R = mkVar("r", Sort::Int);
  addSpec("framed", pure(mkLt(X, mkInt(10))),
          star({pure(mkLt(X, mkInt(20))), pure(mkEq(R, X))}),
          {{"x", Sort::Int}});
  EntityVerdict V = lintEntity(input(), "framed");
  EXPECT_EQ(countCode(V.Diags, code::PostImpliedByPre), 1u);
  EXPECT_FALSE(hasCode(V.Diags, code::TrivialPost));
  EXPECT_FALSE(V.Blocked); // W-severity: advisory only.
}

TEST_F(AnalysisTest, GenuinePostconditionNotFlaggedAsImplied) {
  Expr X = mkVar("x", Sort::Int);
  addSpec("honest", pure(mkLt(X, mkInt(100))),
          pure(mkEq(mkVar("r", Sort::Int), mkAdd(X, mkInt(1)))),
          {{"x", Sort::Int}});
  EntityVerdict V = lintEntity(input(), "honest");
  EXPECT_FALSE(hasCode(V.Diags, code::PostImpliedByPre));
  EXPECT_FALSE(hasCode(V.Diags, code::PostUnsatGivenPre));
}

TEST_F(AnalysisTest, PostContradictingPreIsError) {
  // Pre admits callers (x > 0) but the post demands x < 0 of the same
  // unmodified spec variable: no implementation can meet the contract.
  Expr X = mkVar("x", Sort::Int);
  addSpec("impossible", pure(mkGt(X, mkInt(0))), pure(mkLt(X, mkInt(0))),
          {{"x", Sort::Int}});
  EntityVerdict V = lintEntity(input(), "impossible");
  ASSERT_TRUE(hasCode(V.Diags, code::PostUnsatGivenPre));
  EXPECT_FALSE(hasCode(V.Diags, code::VacuousPre)); // Pre alone is fine.
  EXPECT_TRUE(V.Blocked);
  const Diagnostic &D = *std::find_if(
      V.Diags.begin(), V.Diags.end(),
      [](const Diagnostic &X2) { return X2.Code == code::PostUnsatGivenPre; });
  EXPECT_FALSE(D.Notes.empty()); // The minimized unsat core.
}

TEST_F(AnalysisTest, VacuousPreSuppressesPostLints) {
  // Everything follows from a contradictory pre; only E006 should fire,
  // not a pile of W007/E011 noise on top.
  Expr X = mkVar("x", Sort::Int);
  addSpec("vac2", star({pure(mkLt(X, mkInt(0))), pure(mkGt(X, mkInt(0)))}),
          pure(mkEq(mkVar("r", Sort::Int), mkInt(0))), {{"x", Sort::Int}});
  EntityVerdict V = lintEntity(input(), "vac2");
  EXPECT_TRUE(hasCode(V.Diags, code::VacuousPre));
  EXPECT_FALSE(hasCode(V.Diags, code::PostImpliedByPre));
  EXPECT_FALSE(hasCode(V.Diags, code::PostUnsatGivenPre));
}

TEST_F(AnalysisTest, ParseFailureBecomesDiagnostic) {
  std::vector<Diagnostic> Diags;
  EXPECT_FALSE(
      parseSpecChecked("(spec f (vars x)", Prog.Types, "f", Diags).has_value());
  ASSERT_EQ(Diags.size(), 1u);
  EXPECT_EQ(Diags[0].Code, code::ParseError);
  EXPECT_EQ(Diags[0].Entity, "f");

  Diags.clear();
  EXPECT_TRUE(parseSpecChecked("(spec f (vars x) (pre emp) (post emp))",
                               Prog.Types, "f", Diags)
                  .has_value());
  EXPECT_TRUE(Diags.empty());
}

TEST_F(AnalysisTest, ParserErrorPathsDoNotAbort) {
  // Regression: "(get-x t)" used to reach std::stoul and terminate. Non-index
  // get- suffixes now fall through to uninterpreted applications.
  EXPECT_TRUE(parseExpr("(get-x t)").ok());
  EXPECT_TRUE(parseExpr("(get- t)").ok());
  EXPECT_TRUE(parseExpr("(get-123456789012345 t)").ok()); // > 9 digits.
  EXPECT_TRUE(parseExpr("(get-1 t)").ok());

  // Malformed inputs stay Outcome failures, never aborts.
  EXPECT_FALSE(parseExpr("(unclosed (list").ok());
  EXPECT_FALSE(parseExpr(")").ok());
  EXPECT_FALSE(parseExpr("").ok());
  EXPECT_FALSE(parseAssertion("(pt x u32)", Prog.Types).ok());
  EXPECT_FALSE(parseAssertion("(exists x)", Prog.Types).ok());
  EXPECT_FALSE(parseSpec("(spec)", Prog.Types).ok());
  EXPECT_FALSE(parseSpec("(spec f (watts) (pre emp) (post emp))",
                         Prog.Types)
                   .ok());
}

//===----------------------------------------------------------------------===//
// Program-level lints (GILR-W005/W006)
//===----------------------------------------------------------------------===//

TEST_F(AnalysisTest, UnusedPredicateAndLemmaWarned) {
  PredDecl D;
  D.Name = "lonely";
  Preds.declare(std::move(D));
  AnalysisInput In = input();
  In.LemmaNames = {"ghost_lemma"};

  std::vector<Diagnostic> Diags = lintProgramLevel(In);
  EXPECT_TRUE(hasCode(Diags, code::UnusedPred));
  EXPECT_TRUE(hasCode(Diags, code::UnusedLemma));
}

TEST_F(AnalysisTest, ExternallyUsedEntitiesNotWarned) {
  PredDecl D;
  D.Name = "lonely";
  Preds.declare(std::move(D));
  AnalysisInput In = input();
  In.LemmaNames = {"ghost_lemma"};
  In.ExtraUsedPreds = {"lonely"};
  In.ExtraUsedLemmas = {"ghost_lemma"};

  std::vector<Diagnostic> Diags = lintProgramLevel(In);
  EXPECT_FALSE(hasCode(Diags, code::UnusedPred));
  EXPECT_FALSE(hasCode(Diags, code::UnusedLemma));
}

TEST_F(AnalysisTest, SpecReferencedPredicateNotWarned) {
  PredDecl D;
  D.Name = "node";
  Preds.declare(std::move(D));
  addSpec("f", predCall("node", {mkVar("p", Sort::Loc)}), emp(),
          {{"p", Sort::Loc}});
  std::vector<Diagnostic> Diags = lintProgramLevel(input());
  EXPECT_FALSE(hasCode(Diags, code::UnusedPred));
}

//===----------------------------------------------------------------------===//
// Suppression and config
//===----------------------------------------------------------------------===//

TEST_F(AnalysisTest, PerEntitySuppressionAttributeMutesLint) {
  FunctionBuilder B("allowed", Prog.Types);
  B.setReturnType(U32);
  LocalId T = B.addLocal("t", U32);
  BlockId E = B.newBlock();
  B.atBlock(E);
  B.assign(Place(T), Rvalue::use(Operand::constant(mkInt(7), U32))); // Dead.
  B.assign(Place(0), Rvalue::use(Operand::constant(mkInt(1), U32)));
  B.ret();
  B.suppressLint(code::DeadStore);
  addFn(B.finish());

  EntityVerdict V = lintEntity(input(), "allowed");
  EXPECT_FALSE(hasCode(V.Diags, code::DeadStore));
  EXPECT_EQ(V.Suppressed, 1u);
  (void)T;
}

TEST_F(AnalysisTest, SuppressAllMutesEverything) {
  Function F;
  F.Name = "muted";
  F.Locals.push_back({"ret", Prog.Types.unitTy()});
  BasicBlock BB;
  BB.Term = Terminator::gotoBlock(7); // Would be GILR-E001.
  F.Blocks.push_back(std::move(BB));
  F.LintSuppress.push_back("all");
  addFn(std::move(F));

  EntityVerdict V = lintEntity(input(), "muted");
  EXPECT_TRUE(V.Diags.empty());
  EXPECT_FALSE(V.Blocked);
  EXPECT_GE(V.Suppressed, 1u);
}

TEST_F(AnalysisTest, GloballyDisabledCodeNotReported) {
  FunctionBuilder B("g", Prog.Types);
  B.setReturnType(U32);
  LocalId T = B.addLocal("t", U32);
  BlockId E = B.newBlock();
  B.atBlock(E);
  B.assign(Place(T), Rvalue::use(Operand::constant(mkInt(7), U32)));
  B.assign(Place(0), Rvalue::use(Operand::constant(mkInt(1), U32)));
  B.ret();
  addFn(B.finish());

  AnalysisInput In = input();
  In.Cfg.DisabledCodes.insert(code::DeadStore);
  EntityVerdict V = lintEntity(In, "g");
  EXPECT_FALSE(hasCode(V.Diags, code::DeadStore));
  EXPECT_EQ(V.Suppressed, 1u);
  (void)T;
}

TEST_F(AnalysisTest, WarningsAsErrorsGates) {
  FunctionBuilder B("w2e", Prog.Types);
  B.setReturnType(U32);
  LocalId T = B.addLocal("t", U32);
  BlockId E = B.newBlock();
  B.atBlock(E);
  B.assign(Place(T), Rvalue::use(Operand::constant(mkInt(7), U32)));
  B.assign(Place(0), Rvalue::use(Operand::constant(mkInt(1), U32)));
  B.ret();
  addFn(B.finish());

  AnalysisInput In = input();
  In.Cfg.WarningsAsErrors = true;
  EntityVerdict V = lintEntity(In, "w2e");
  ASSERT_TRUE(hasCode(V.Diags, code::DeadStore));
  EXPECT_EQ(V.Diags.front().Sev, Severity::Error);
  EXPECT_TRUE(V.Blocked);
  (void)T;
}

TEST_F(AnalysisTest, DisabledAnalysisReportsNothing) {
  Function F;
  F.Name = "bad";
  addFn(std::move(F)); // No locals, no blocks: maximally malformed.
  AnalysisInput In = input();
  In.Cfg.Enabled = false;
  EntityVerdict V = lintEntity(In, "bad");
  EXPECT_TRUE(V.Diags.empty());
  EXPECT_FALSE(V.Blocked);
}

//===----------------------------------------------------------------------===//
// Driver integration: blocked entities never reach the executor
//===----------------------------------------------------------------------===//

TEST_F(AnalysisTest, BlockedEntitySkipsSymbolicExecution) {
  addFn(cleanInc("vac"));
  Expr X = mkVar("x", Sort::Int);
  addSpec("vac", star({pure(mkLt(X, mkInt(0))), pure(mkGt(X, mkInt(0)))}),
          pure(mkEq(mkVar("r", Sort::Int), mkInt(0))), {{"x", Sort::Int}});
  addFn(cleanInc("inc"));
  addSpec("inc", pure(mkLt(X, mkInt(100))),
          pure(mkEq(mkVar(retVarName(), Sort::Int), mkAdd(X, mkInt(1)))),
          {{"x", Sort::Int}});

  // Enable tracing so the trace-gated engine.executor_runs counter is live,
  // then assert the rejected entity never started an Executor run.
  trace::Options O;
  O.M = trace::Mode::Text;
  trace::configure(O);
  metrics::Registry::get().reset();

  VerifEnv Env{Prog,   Preds, Specs, Ownables,
               Lemmas, Solv,  Auto,  analysis::AnalysisConfig{}};
  Verifier V(Env);
  std::vector<VerifyReport> Rs = V.verifyAll({"vac"});
  ASSERT_EQ(Rs.size(), 1u);
  EXPECT_FALSE(Rs[0].Ok);
  EXPECT_TRUE(Rs[0].LintBlocked);
  EXPECT_TRUE(hasCode(Rs[0].Diags, code::VacuousPre));
  ASSERT_FALSE(Rs[0].Errors.empty());
  EXPECT_NE(Rs[0].Errors.front().find("pre-verification"), std::string::npos);

  std::map<std::string, uint64_t> C = metrics::Registry::get().counters();
  EXPECT_EQ(C.count("engine.executor_runs"), 0u)
      << "executor ran for a lint-blocked entity";
  metrics::AnalysisReport AR = metrics::Registry::get().analysisReport();
  EXPECT_TRUE(AR.Valid);
  EXPECT_EQ(AR.Blocked, 1u);
  EXPECT_GE(AR.Errors, 1u);

  // The clean function still verifies — and does run the executor.
  std::vector<VerifyReport> Ok = V.verifyAll({"inc"});
  ASSERT_EQ(Ok.size(), 1u);
  EXPECT_TRUE(Ok[0].Ok) << (Ok[0].Errors.empty() ? "" : Ok[0].Errors.front());
  EXPECT_FALSE(Ok[0].LintBlocked);
  C = metrics::Registry::get().counters();
  EXPECT_GE(C["engine.executor_runs"], 1u);

  trace::Options Off;
  trace::configure(Off);
  metrics::Registry::get().reset();
}

TEST_F(AnalysisTest, LintDisabledEnvSkipsPrePass) {
  addFn(cleanInc("vac"));
  Expr X = mkVar("x", Sort::Int);
  addSpec("vac", star({pure(mkLt(X, mkInt(0))), pure(mkGt(X, mkInt(0)))}),
          pure(mkEq(mkVar(retVarName(), Sort::Int), mkAdd(X, mkInt(1)))),
          {{"x", Sort::Int}});
  VerifEnv Env{Prog,   Preds, Specs, Ownables,
               Lemmas, Solv,  Auto,  analysis::AnalysisConfig{}};
  Env.Lint.Enabled = false;
  Verifier V(Env);
  std::vector<VerifyReport> Rs = V.verifyAll({"vac"});
  ASSERT_EQ(Rs.size(), 1u);
  // Vacuous pre: symbolic execution happily "verifies" it. That is the
  // failure mode the pre-pass exists to catch.
  EXPECT_TRUE(Rs[0].Ok);
  EXPECT_FALSE(Rs[0].LintBlocked);
  EXPECT_FALSE(V.lastAnalysis().Enabled);
}

//===----------------------------------------------------------------------===//
// Scheduler determinism: byte-identical diagnostics at any worker count
//===----------------------------------------------------------------------===//

TEST_F(AnalysisTest, DiagnosticsByteIdenticalAcrossWorkerCounts) {
  Expr X = mkVar("x", Sort::Int);
  for (int I = 0; I < 4; ++I) {
    std::string Name = "f" + std::to_string(I);
    FunctionBuilder B(Name, Prog.Types);
    LocalId P = B.addParam("x", U32);
    B.setReturnType(U32);
    LocalId T = B.addLocal("t", U32);
    BlockId E = B.newBlock();
    B.atBlock(E);
    B.assign(Place(T),
             Rvalue::use(Operand::constant(mkInt(I), U32))); // Dead store.
    B.assign(Place(0), Rvalue::use(Operand::copy(Place(P))));
    B.ret();
    addFn(B.finish());
    addSpec(Name, pure(mkLt(X, mkInt(100))),
            star({pure(mkEq(mkVar(retVarName(), Sort::Int), X)),
                  pure(mkEq(mkInt(1), mkInt(1)))}), // Trivial conjunct.
            {{"x", Sort::Int}});
    (void)T;
  }
  const std::vector<std::string> Names = {"f0", "f1", "f2", "f3"};

  auto runAt = [&](unsigned Threads) {
    VerifEnv Env{Prog,   Preds, Specs, Ownables,
                 Lemmas, Solv,  Auto,  analysis::AnalysisConfig{}};
    sched::SchedulerConfig C;
    C.Threads = Threads;
    Verifier V(Env);
    std::vector<VerifyReport> Rs = V.verifyAll(Names, C);
    return std::make_pair(V.lastAnalysis().renderJson(),
                          V.lastAnalysis().renderText());
  };

  auto Serial = runAt(1);
  auto Parallel = runAt(4);
  EXPECT_EQ(Serial.first, Parallel.first);
  EXPECT_EQ(Serial.second, Parallel.second);
  EXPECT_NE(Serial.first.find("GILR-W002"), std::string::npos);
  EXPECT_NE(Serial.first.find("GILR-W004"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Incremental lint-verdict cache
//===----------------------------------------------------------------------===//

/// Self-contained env for rebuild-and-rerun incremental tests.
struct IncBundle {
  rmir::Program Prog;
  PredTable Preds;
  SpecTable Specs;
  OwnableRegistry Ownables{Prog.Types, Preds};
  LemmaTable Lemmas;
  Solver Solv;
  Automation Auto;

  /// Three inc-style functions; \p F1Add varies f1's body + spec constant
  /// (so a rebuild with a different value edits exactly one function).
  explicit IncBundle(uint64_t F1Add) {
    TypeRef U32 = Prog.Types.intTy(IntKind::U32);
    for (int I = 0; I < 3; ++I) {
      std::string Name = "f" + std::to_string(I);
      uint64_t Add = I == 1 ? F1Add : 1;
      FunctionBuilder B(Name, Prog.Types);
      LocalId X = B.addParam("x", U32);
      B.setReturnType(U32);
      BlockId E = B.newBlock();
      B.atBlock(E);
      B.assign(Place(0),
               Rvalue::binary(BinOp::Add, Operand::copy(Place(X)),
                              Operand::constant(mkIntU64(Add), U32)));
      B.ret();
      std::string N2 = Name;
      Function F = B.finish();
      Prog.Funcs.emplace(std::move(N2), std::move(F));

      Expr XV = mkVar("x", Sort::Int);
      Spec S;
      S.Func = Name;
      S.SpecVars = {{"x", Sort::Int}};
      S.Pre = pure(mkLt(XV, mkInt(100)));
      S.Post = pure(mkEq(mkVar(retVarName(), Sort::Int),
                         mkAdd(XV, mkIntU64(Add))));
      Specs.add(std::move(S));
    }
  }

  VerifEnv env() {
    return VerifEnv{Prog,   Preds, Specs, Ownables,
                    Lemmas, Solv,  Auto,  analysis::AnalysisConfig{}};
  }
};

TEST(AnalysisIncrTest, WarmRunReplaysLintVerdictsAndEditRelintsOneFunction) {
  std::string Path = ::testing::TempDir() + "gilr_analysis_lint_cache.prf";
  std::remove(Path.c_str());
  const std::vector<std::string> Names = {"f0", "f1", "f2"};
  sched::SchedulerConfig SC;
  incr::IncrConfig Inc;
  Inc.Enabled = true;
  Inc.StorePath = Path;

  std::string ColdJson;
  {
    IncBundle L(1);
    VerifEnv Env = L.env();
    Verifier V(Env);
    incr::IncrRunStats St;
    std::vector<VerifyReport> Rs = V.verifyAll(Names, SC, Inc, &St);
    for (const VerifyReport &R : Rs)
      EXPECT_TRUE(R.Ok) << R.Func;
    EXPECT_EQ(St.AnalyzedLint, 3u);
    EXPECT_EQ(St.CachedLint, 0u);
    ColdJson = V.lastAnalysis().renderJson();
  }
  {
    // Identical rebuild: every lint verdict replays from the store.
    IncBundle L(1);
    VerifEnv Env = L.env();
    Verifier V(Env);
    incr::IncrRunStats St;
    std::vector<VerifyReport> Rs = V.verifyAll(Names, SC, Inc, &St);
    for (const VerifyReport &R : Rs)
      EXPECT_TRUE(R.Ok) << R.Func;
    EXPECT_EQ(St.AnalyzedLint, 0u);
    EXPECT_EQ(St.CachedLint, 3u);
    // The analysis report (diagnostics and all) is byte-identical warm.
    EXPECT_EQ(V.lastAnalysis().renderJson(), ColdJson);
  }
  {
    // Edit f1 (body + spec constant): exactly f1 is re-linted.
    IncBundle L(2);
    VerifEnv Env = L.env();
    Verifier V(Env);
    incr::IncrRunStats St;
    std::vector<VerifyReport> Rs = V.verifyAll(Names, SC, Inc, &St);
    for (const VerifyReport &R : Rs)
      EXPECT_TRUE(R.Ok) << R.Func;
    EXPECT_EQ(St.AnalyzedLint, 1u);
    EXPECT_EQ(St.CachedLint, 2u);
  }
  std::remove(Path.c_str());
}

TEST(AnalysisIncrTest, LintConfigChangeInvalidatesOnlyLintVerdicts) {
  std::string Path = ::testing::TempDir() + "gilr_analysis_lint_cfg.prf";
  std::remove(Path.c_str());
  const std::vector<std::string> Names = {"f0", "f1", "f2"};
  sched::SchedulerConfig SC;
  incr::IncrConfig Inc;
  Inc.Enabled = true;
  Inc.StorePath = Path;

  {
    IncBundle L(1);
    VerifEnv Env = L.env();
    Verifier V(Env);
    incr::IncrRunStats St;
    (void)V.verifyAll(Names, SC, Inc, &St);
    EXPECT_EQ(St.AnalyzedLint, 3u);
  }
  {
    // Toggling a lint knob re-lints everything but leaves the proof
    // verdicts valid (separate config fingerprints).
    IncBundle L(1);
    VerifEnv Env = L.env();
    Env.Lint.WarningsAsErrors = true;
    Verifier V(Env);
    incr::IncrRunStats St;
    (void)V.verifyAll(Names, SC, Inc, &St);
    EXPECT_EQ(St.AnalyzedLint, 3u);
    EXPECT_EQ(St.CachedLint, 0u);
    EXPECT_EQ(St.CachedUnsafe, 3u); // Proofs still replay.
  }
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Verdict blob round-trip
//===----------------------------------------------------------------------===//

TEST(AnalysisIncrTest, LintVerdictBlobRoundTrips) {
  EntityVerdict V;
  V.Blocked = true;
  V.Suppressed = 2;
  Diagnostic D;
  D.Code = code::VacuousPre;
  D.Sev = Severity::Error;
  D.Entity = "push_front";
  D.Block = 3;
  D.Stmt = -1;
  D.Message = "precondition is unsatisfiable";
  D.Notes = {"core: (< x 0)", "core: (> x 0)"};
  V.Diags.push_back(D);

  std::string Blob = incr::encodeLintVerdict(V);
  EntityVerdict Out;
  ASSERT_TRUE(incr::decodeLintVerdict(Blob, Out));
  EXPECT_TRUE(Out.Blocked);
  EXPECT_EQ(Out.Suppressed, 2u);
  ASSERT_EQ(Out.Diags.size(), 1u);
  EXPECT_EQ(Out.Diags[0].Code, code::VacuousPre);
  EXPECT_EQ(Out.Diags[0].Sev, Severity::Error);
  EXPECT_EQ(Out.Diags[0].Entity, "push_front");
  EXPECT_EQ(Out.Diags[0].Block, 3);
  EXPECT_EQ(Out.Diags[0].Stmt, -1);
  EXPECT_EQ(Out.Diags[0].Notes.size(), 2u);

  // Truncated blobs are rejected, not mis-decoded.
  EntityVerdict Junk;
  EXPECT_FALSE(incr::decodeLintVerdict(Blob.substr(0, Blob.size() / 2), Junk));
  EXPECT_FALSE(incr::decodeLintVerdict("", Junk));
}

} // namespace
