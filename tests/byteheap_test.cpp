//===- tests/byteheap_test.cpp - The fixed-layout baseline (A2) -------------===//

#include "heap/ByteHeap.h"
#include "sym/ExprBuilder.h"

#include <gtest/gtest.h>

using namespace gilr;
using namespace gilr::heap;
using namespace gilr::rmir;

namespace {

class ByteHeapTest : public ::testing::Test {
protected:
  ByteHeapTest() : Layout(Ty, LayoutStrategy::LargestFirst), H(Layout) {
    U32 = Ty.intTy(IntKind::U32);
    U64 = Ty.intTy(IntKind::U64);
    S = Ty.declareStruct("S", {FieldDef{"x", U32}, FieldDef{"y", U64}});
  }
  TyCtx Ty;
  LayoutEngine Layout;
  ByteHeap H;
  TypeRef U32, U64, S;
};

TEST_F(ByteHeapTest, RoundTrip) {
  uint64_t Loc = H.alloc(S);
  ASSERT_TRUE(H.store(Loc, Layout.fieldOffset(S, 0), U32, mkInt(1)).ok());
  ASSERT_TRUE(H.store(Loc, Layout.fieldOffset(S, 1), U64, mkInt(2)).ok());
  Outcome<Expr> X = H.load(Loc, Layout.fieldOffset(S, 0), U32);
  ASSERT_TRUE(X.ok());
  EXPECT_TRUE(exprEquals(X.value(), mkInt(1)));
}

TEST_F(ByteHeapTest, UninitialisedLoadFails) {
  uint64_t Loc = H.alloc(S);
  EXPECT_TRUE(H.load(Loc, 0, U32).failed());
}

TEST_F(ByteHeapTest, OutOfBoundsStoreFails) {
  uint64_t Loc = H.alloc(U32);
  EXPECT_TRUE(H.store(Loc, 4, U32, mkInt(1)).failed());
  EXPECT_TRUE(H.store(Loc, 0, U64, mkInt(1)).failed()); // Too wide.
}

TEST_F(ByteHeapTest, OverlappingStoreRejected) {
  uint64_t Loc = H.alloc(S);
  ASSERT_TRUE(H.store(Loc, 0, U64, mkInt(1)).ok());
  // A 4-byte store into the middle of the 8-byte cell overlaps.
  EXPECT_TRUE(H.store(Loc, 4, U32, mkInt(2)).failed());
}

TEST_F(ByteHeapTest, MixedSizeLoadRejected) {
  uint64_t Loc = H.alloc(S);
  ASSERT_TRUE(H.store(Loc, 0, U64, mkInt(1)).ok());
  EXPECT_TRUE(H.load(Loc, 0, U32).failed());
}

TEST_F(ByteHeapTest, DoubleFreeAndUseAfterFree) {
  uint64_t Loc = H.alloc(U32);
  ASSERT_TRUE(H.free(Loc).ok());
  EXPECT_TRUE(H.free(Loc).failed());
  EXPECT_TRUE(H.store(Loc, 0, U32, mkInt(1)).failed());
  EXPECT_TRUE(H.load(Loc, 0, U32).failed());
}

TEST_F(ByteHeapTest, TheBaselineIsLayoutCommitted) {
  // The A2 point: offsets computed under one layout are wrong under
  // another — the ByteHeap verifies one compiler choice per run.
  LayoutEngine Other(Ty, LayoutStrategy::SmallestFirst);
  EXPECT_NE(Layout.fieldOffset(S, 0), Other.fieldOffset(S, 0));
}

} // namespace
