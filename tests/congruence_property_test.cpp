//===- tests/congruence_property_test.cpp - Closure properties --------------===//
//
// Parameterized properties of the congruence-closure core: agreement with a
// brute-force transitive/congruent closure on random equality graphs, and
// the structural invariants (equivalence laws, constructor conflicts).
//
//===----------------------------------------------------------------------===//

#include "solver/Congruence.h"
#include "sym/ExprBuilder.h"

#include <gtest/gtest.h>

#include <set>

using namespace gilr;

namespace {

struct Lcg {
  uint64_t State;
  explicit Lcg(uint64_t Seed) : State(Seed * 2654435761u + 99991) {}
  uint64_t next() {
    State = State * 6364136223846793005ull + 1442695040888963407ull;
    return State >> 33;
  }
  int range(int Lo, int Hi) {
    return Lo + static_cast<int>(next() % static_cast<uint64_t>(Hi - Lo + 1));
  }
};

class CongruenceProps : public ::testing::TestWithParam<int> {};

TEST_P(CongruenceProps, MatchesBruteForceClosureWithFunctionSymbols) {
  Lcg Rng(static_cast<uint64_t>(GetParam()));
  const int NVars = 5;
  std::vector<Expr> Base;
  for (int I = 0; I != NVars; ++I)
    Base.push_back(mkVar("v" + std::to_string(I), Sort::Int));
  // Terms: the variables plus f(v_i) for each.
  std::vector<Expr> Terms = Base;
  for (int I = 0; I != NVars; ++I)
    Terms.push_back(mkApp("f", {Base[static_cast<std::size_t>(I)]}));

  // Random equalities among the base variables.
  std::vector<std::pair<int, int>> Eqs;
  int NEqs = Rng.range(1, 4);
  for (int I = 0; I != NEqs; ++I)
    Eqs.push_back({Rng.range(0, NVars - 1), Rng.range(0, NVars - 1)});

  Congruence C;
  for (const Expr &T : Terms)
    C.registerTerm(T);
  for (auto [A, B] : Eqs)
    ASSERT_TRUE(C.addEquality(Base[static_cast<std::size_t>(A)],
                              Base[static_cast<std::size_t>(B)]));

  // Brute force: union-find on variable indices.
  std::vector<int> UF(NVars);
  for (int I = 0; I != NVars; ++I)
    UF[static_cast<std::size_t>(I)] = I;
  std::function<int(int)> Find = [&](int I) {
    while (UF[static_cast<std::size_t>(I)] != I)
      I = UF[static_cast<std::size_t>(I)] =
          UF[static_cast<std::size_t>(UF[static_cast<std::size_t>(I)])];
    return I;
  };
  for (auto [A, B] : Eqs)
    UF[static_cast<std::size_t>(Find(A))] = Find(B);

  for (int I = 0; I != NVars; ++I)
    for (int J = 0; J != NVars; ++J) {
      bool Expected = Find(I) == Find(J);
      EXPECT_EQ(C.provedEqual(Base[static_cast<std::size_t>(I)],
                              Base[static_cast<std::size_t>(J)]),
                Expected)
          << "v" << I << " ~ v" << J;
      // Congruence lifts through the function symbol.
      EXPECT_EQ(
          C.provedEqual(Terms[static_cast<std::size_t>(NVars + I)],
                        Terms[static_cast<std::size_t>(NVars + J)]),
          Expected)
          << "f(v" << I << ") ~ f(v" << J << ")";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CongruenceProps, ::testing::Range(1, 60));

TEST(CongruenceUnit, ConstructorConflicts) {
  {
    Congruence C;
    EXPECT_FALSE(C.addEquality(mkInt(1), mkInt(2)));
    EXPECT_TRUE(C.inConflict());
  }
  {
    Congruence C;
    Expr X = mkVar("x", Sort::Opt);
    ASSERT_TRUE(C.addEquality(X, mkNone()));
    EXPECT_FALSE(C.addEquality(X, mkSome(mkInt(1))));
  }
  {
    // Transitive literal clash through a variable chain.
    Congruence C;
    Expr X = mkVar("x", Sort::Int);
    Expr Y = mkVar("y", Sort::Int);
    ASSERT_TRUE(C.addEquality(X, mkInt(5)));
    ASSERT_TRUE(C.addEquality(X, Y));
    EXPECT_FALSE(C.addEquality(Y, mkInt(6)));
  }
}

TEST(CongruenceUnit, ConstructorDecomposition) {
  Congruence C;
  Expr A = mkVar("a", Sort::Int);
  Expr B = mkVar("b", Sort::Int);
  ASSERT_TRUE(C.addEquality(mkSome(A), mkSome(B)));
  EXPECT_TRUE(C.provedEqual(A, B));

  Expr T1 = mkVar("t1", Sort::Any);
  ASSERT_TRUE(C.addEquality(T1, mkTuple({A, mkInt(1)})));
  EXPECT_TRUE(C.provedEqual(mkTupleGet(T1, 0), B)); // Via a ~ b.
}

TEST(CongruenceUnit, ProjectionEvaluation) {
  Congruence C;
  Expr O = mkVar("o", Sort::Opt);
  ASSERT_TRUE(C.addEquality(O, mkSome(mkInt(7))));
  EXPECT_TRUE(C.provedEqual(mkUnwrap(O), mkInt(7)));

  Expr S = mkVar("s", Sort::Seq);
  ASSERT_TRUE(C.addEquality(S, mkSeqLit({mkInt(1), mkInt(2)})));
  EXPECT_TRUE(C.provedEqual(mkSeqLen(S), mkInt(2)));
  EXPECT_TRUE(C.provedEqual(mkSeqNth(S, mkInt(1)), mkInt(2)));
}

TEST(CongruenceUnit, SeqLengthConflictDetection) {
  Congruence C;
  Expr S = mkVar("s", Sort::Seq);
  Expr T = mkVar("t", Sort::Seq);
  ASSERT_TRUE(C.addEquality(S, mkSeqNil()));
  ASSERT_TRUE(C.addEquality(S, mkSeqCons(mkVar("x", Sort::Int), T)));
  EXPECT_TRUE(C.hasSeqLengthConflict());
}

TEST(CongruenceUnit, DisequalityConflictsOnlyWhenMerged) {
  Congruence C;
  Expr X = mkVar("x", Sort::Int);
  Expr Y = mkVar("y", Sort::Int);
  C.addDisequality(X, Y);
  ASSERT_TRUE(C.saturate());
  EXPECT_FALSE(C.hasDisequalityConflict());
  ASSERT_TRUE(C.addEquality(X, Y));
  EXPECT_TRUE(C.hasDisequalityConflict());
}

} // namespace
