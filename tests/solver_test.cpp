//===- tests/solver_test.cpp - SMT-lite solver tests ------------------------===//

#include "solver/PathCondition.h"
#include "solver/Simplify.h"
#include "solver/Solver.h"
#include "sym/ExprBuilder.h"

#include <gtest/gtest.h>

using namespace gilr;

namespace {

class SolverTest : public ::testing::Test {
protected:
  Solver S;
  Expr X = mkVar("x", Sort::Int);
  Expr Y = mkVar("y", Sort::Int);
  Expr Z = mkVar("z", Sort::Int);
  Expr O = mkVar("o", Sort::Opt);
  Expr Sq = mkVar("s", Sort::Seq);
};

TEST_F(SolverTest, TrivialSat) {
  EXPECT_EQ(S.checkSat({mkTrue()}), SatResult::Sat);
  EXPECT_EQ(S.checkSat({mkFalse()}), SatResult::Unsat);
  EXPECT_EQ(S.checkSat({}), SatResult::Sat);
}

TEST_F(SolverTest, EqualityChainsAndConflicts) {
  EXPECT_EQ(S.checkSat({mkEq(X, Y), mkEq(Y, Z), mkNe(X, Z)}),
            SatResult::Unsat);
  EXPECT_EQ(S.checkSat({mkEq(X, Y), mkNe(Y, Z)}), SatResult::Sat);
  EXPECT_EQ(S.checkSat({mkEq(X, mkInt(1)), mkEq(X, mkInt(2))}),
            SatResult::Unsat);
}

TEST_F(SolverTest, CongruenceOverFunctions) {
  Expr FX = mkApp("f", {X});
  Expr FY = mkApp("f", {Y});
  EXPECT_EQ(S.checkSat({mkEq(X, Y), mkNe(FX, FY)}), SatResult::Unsat);
  EXPECT_EQ(S.checkSat({mkNe(X, Y), mkEq(FX, FY)}), SatResult::Sat);
}

TEST_F(SolverTest, LinearArithmetic) {
  EXPECT_EQ(S.checkSat({mkLt(X, Y), mkLt(Y, X)}), SatResult::Unsat);
  EXPECT_EQ(S.checkSat({mkLe(X, Y), mkLe(Y, X), mkNe(X, Y)}),
            SatResult::Unsat);
  EXPECT_EQ(S.checkSat({mkLt(X, Y), mkLt(Y, Z), mkLt(Z, X)}),
            SatResult::Unsat);
  EXPECT_EQ(S.checkSat({mkLe(mkInt(0), X), mkLe(X, mkInt(10))}),
            SatResult::Sat);
}

TEST_F(SolverTest, IntegerTightening) {
  // x < y < x + 2 forces y = x + 1 over the integers.
  std::vector<Expr> Ctx = {mkLt(X, Y), mkLt(Y, mkAdd(X, mkInt(2)))};
  EXPECT_TRUE(S.entails(Ctx, mkEq(Y, mkAdd(X, mkInt(1)))));
  // 0 < x and x < 1 is integer-infeasible.
  EXPECT_EQ(S.checkSat({mkLt(mkInt(0), X), mkLt(X, mkInt(1))}),
            SatResult::Unsat);
}

TEST_F(SolverTest, EntailmentBasics) {
  EXPECT_TRUE(S.entails({mkEq(X, mkInt(3))}, mkLt(X, mkInt(4))));
  EXPECT_FALSE(S.entails({mkLe(X, mkInt(4))}, mkLt(X, mkInt(4))));
  EXPECT_TRUE(S.entails({mkEq(X, Y)}, mkEq(mkAdd(X, mkInt(1)),
                                           mkAdd(Y, mkInt(1)))));
}

TEST_F(SolverTest, OptionReasoning) {
  // IsSome(o) and o = None conflict.
  EXPECT_EQ(S.checkSat({mkIsSome(O), mkEq(O, mkNone())}), SatResult::Unsat);
  // IsSome(o) and o = Some(x) gives Unwrap(o) = x.
  EXPECT_TRUE(S.entails({mkEq(O, mkSome(X))}, mkEq(mkUnwrap(O), X)));
  EXPECT_TRUE(S.entails({mkEq(O, mkSome(X))}, mkIsSome(O)));
  // Not IsSome forces None.
  EXPECT_TRUE(S.entails({mkNot(mkIsSome(O))}, mkEq(O, mkNone())));
}

TEST_F(SolverTest, DisjunctionSplitting) {
  Expr C = mkOr(mkEq(X, mkInt(1)), mkEq(X, mkInt(2)));
  EXPECT_EQ(S.checkSat({C, mkEq(X, mkInt(3))}), SatResult::Unsat);
  EXPECT_EQ(S.checkSat({C, mkEq(X, mkInt(2))}), SatResult::Sat);
  EXPECT_TRUE(S.entails({C}, mkLe(X, mkInt(2))));
}

TEST_F(SolverTest, IteInTermPosition) {
  Expr B = mkVar("b", Sort::Bool);
  Expr E = mkIte(B, mkInt(1), mkInt(2));
  EXPECT_TRUE(S.entails({}, mkLe(E, mkInt(2))));
  EXPECT_TRUE(S.entails({B}, mkEq(E, mkInt(1))));
  EXPECT_TRUE(S.entails({mkNot(B)}, mkEq(E, mkInt(2))));
}

TEST_F(SolverTest, SequenceLengths) {
  // Lengths are non-negative.
  EXPECT_TRUE(S.entails({}, mkLe(mkInt(0), mkSeqLen(Sq))));
  // cons increases the length by one.
  Expr Cons = mkSeqCons(X, Sq);
  EXPECT_TRUE(
      S.entails({}, mkEq(mkSeqLen(Cons), mkAdd(mkSeqLen(Sq), mkInt(1)))));
  // A cons is never the empty sequence.
  EXPECT_EQ(S.checkSat({mkEq(Cons, mkSeqNil())}), SatResult::Unsat);
}

TEST_F(SolverTest, SequenceInjectivity) {
  Expr S2 = mkVar("s2", Sort::Seq);
  // cons(x, s) = cons(y, s2) implies x = y and s = s2.
  std::vector<Expr> Ctx = {mkEq(mkSeqCons(X, Sq), mkSeqCons(Y, S2))};
  EXPECT_TRUE(S.entails(Ctx, mkEq(X, Y)));
  EXPECT_TRUE(S.entails(Ctx, mkEq(Sq, S2)));
}

TEST_F(SolverTest, SequenceSubReassembly) {
  // sub(s,0,i) ++ sub(s,i,len-i) = s, given 0 <= i <= len(s).
  Expr I = mkVar("i", Sort::Int);
  Expr Left = mkSeqSub(Sq, mkInt(0), I);
  Expr Right = mkSeqSub(Sq, I, mkSub(mkSeqLen(Sq), I));
  std::vector<Expr> Ctx = {mkLe(mkInt(0), I), mkLe(I, mkSeqLen(Sq))};
  EXPECT_TRUE(S.entails(Ctx, mkEq(mkSeqConcat(Left, Right), Sq)));
}

TEST_F(SolverTest, LifetimeInclusion) {
  Expr K1 = mkLftVar("'a");
  Expr K2 = mkLftVar("'b");
  Expr K3 = mkLftVar("'c");
  EXPECT_TRUE(S.entails({}, mkLftIncl(K1, K1))); // Reflexive.
  EXPECT_TRUE(S.entails({mkLftIncl(K1, K2), mkLftIncl(K2, K3)},
                        mkLftIncl(K1, K3))); // Transitive.
  EXPECT_FALSE(S.entails({mkLftIncl(K1, K2)}, mkLftIncl(K2, K1)));
}

TEST_F(SolverTest, RealFractions) {
  Expr Q = mkVar("q", Sort::Real);
  Expr Half = mkReal(Rational(1, 2));
  std::vector<Expr> Ctx = {mkLt(mkReal(Rational(0, 1)), Q),
                           mkLe(Q, Half)};
  EXPECT_TRUE(S.entails(Ctx, mkLe(mkAdd(Q, Q), mkReal(Rational(1, 1)))));
  EXPECT_EQ(S.checkSat({mkLt(Q, mkReal(Rational(0, 1))),
                        mkLt(mkReal(Rational(0, 1)), Q)}),
            SatResult::Unsat);
}

TEST_F(SolverTest, TupleProjection) {
  Expr T = mkVar("t", Sort::Tuple);
  std::vector<Expr> Ctx = {mkEq(T, mkTuple({X, Y}))};
  EXPECT_TRUE(S.entails(Ctx, mkEq(mkTupleGet(T, 0), X)));
  EXPECT_TRUE(S.entails(Ctx, mkEq(mkTupleGet(T, 1), Y)));
}

TEST_F(SolverTest, BoolAtomPolarity) {
  Expr B = mkVar("b", Sort::Bool);
  EXPECT_EQ(S.checkSat({B, mkNot(B)}), SatResult::Unsat);
  EXPECT_TRUE(S.entails({B}, B));
  EXPECT_TRUE(S.entails({mkEq(B, mkTrue())}, B));
  EXPECT_TRUE(S.entails({mkEq(B, mkFalse())}, mkNot(B)));
}

TEST_F(SolverTest, MixedTheoryPropagation) {
  // o = Some(x), x = len(s), s = [] entails Unwrap(o) = 0.
  std::vector<Expr> Ctx = {mkEq(O, mkSome(X)), mkEq(X, mkSeqLen(Sq)),
                           mkEq(Sq, mkSeqNil())};
  EXPECT_TRUE(S.entails(Ctx, mkEq(mkUnwrap(O), mkInt(0))));
}

TEST(PathConditionTest, AddAndEntail) {
  Solver S;
  PathCondition PC;
  Expr X = mkVar("x", Sort::Int);
  EXPECT_TRUE(PC.add(mkLt(X, mkInt(5))));
  EXPECT_TRUE(PC.add(mkLe(mkInt(3), X)));
  EXPECT_TRUE(PC.entails(S, mkOr(mkEq(X, mkInt(3)), mkEq(X, mkInt(4)))));
  EXPECT_FALSE(PC.isUnsat(S));
  EXPECT_FALSE(PC.add(mkFalse()));
  EXPECT_TRUE(PC.isTriviallyFalse());
}

TEST(PathConditionTest, FlattensConjunctionsAndDedupes) {
  PathCondition PC;
  Expr X = mkVar("x", Sort::Int);
  PC.add(mkAnd(mkLt(X, mkInt(5)), mkLe(mkInt(0), X)));
  EXPECT_EQ(PC.size(), 2u);
  PC.add(mkLt(X, mkInt(5)));
  EXPECT_EQ(PC.size(), 2u);
}

TEST(SimplifyTest, NegatePushesIntoComparisons) {
  Expr X = mkVar("x", Sort::Int);
  Expr Y = mkVar("y", Sort::Int);
  EXPECT_TRUE(exprEquals(negate(mkLt(X, Y)), mkLe(Y, X)));
  EXPECT_TRUE(exprEquals(negate(mkLe(X, Y)), mkLt(Y, X)));
  Expr A = mkVar("a", Sort::Bool);
  Expr B = mkVar("b", Sort::Bool);
  EXPECT_TRUE(exprEquals(negate(mkAnd(A, B)), mkOr(mkNot(A), mkNot(B))));
}

TEST(SimplifyTest, ReduceWithFactsResolvesChains) {
  Expr V = mkVar("v", Sort::Tuple);
  Expr H = mkVar("h", Sort::Opt);
  Expr L = mkLoc(7);
  // Facts: v = (Some(p), 1); p = loc-encoded pointer.
  Expr P = mkVar("p", Sort::Tuple);
  std::vector<Expr> Facts = {mkEq(V, mkTuple({mkSome(P), mkInt(1)})),
                             mkEq(P, mkTuple({L, mkSeqNil()})), mkEq(H, V)};
  Expr Chain = mkUnwrap(mkTupleGet(V, 0));
  Expr Reduced = reduceWithFacts(Chain, Facts);
  EXPECT_TRUE(exprEquals(Reduced, mkTuple({L, mkSeqNil()})));
}

TEST(SolverStatsTest, CountersAdvance) {
  Solver S;
  Expr X = mkVar("x", Sort::Int);
  S.entails({mkEq(X, mkInt(1))}, mkLt(X, mkInt(2)));
  EXPECT_GE(S.stats().EntailQueries, 1u);
  EXPECT_GE(S.stats().SatQueries, 1u);
  EXPECT_GE(S.stats().TheoryChecks, 1u);
}

} // namespace

namespace {

TEST(SolverBudgetTest, ExhaustionIsSoundlyUnknown) {
  // With a tiny branch budget the solver gives up — which must surface as
  // "cannot prove" (entails false), never as a spurious proof.
  Solver S;
  S.MaxBranches = 1;
  std::vector<Expr> Ctx;
  Expr X = mkVar("x", Sort::Int);
  std::vector<Expr> Arms;
  for (int I = 0; I != 8; ++I)
    Arms.push_back(mkEq(X, mkInt(I)));
  Ctx.push_back(mkOr(Arms));
  EXPECT_FALSE(S.entails(Ctx, mkLe(X, mkInt(7))));
  // And checkSat reports Unknown rather than Unsat.
  Ctx.push_back(mkEq(X, mkInt(99)));
  EXPECT_NE(S.checkSat(Ctx), SatResult::Unsat);
}

TEST(SolverRegressionTest, DiscriminantIteFacts) {
  // Regression for the executor's discriminant encoding: facts of the form
  // 0 = ite(is-some(o), 1, 0) must decide the option.
  Solver S;
  Expr O = mkTupleGet(mkVar("v", Sort::Tuple), 0);
  Expr D = mkIte(mkIsSome(O), mkInt(1), mkInt(0));
  EXPECT_TRUE(S.entails({mkEq(mkInt(0), D)}, mkEq(O, mkNone())));
  EXPECT_TRUE(S.entails({mkNot(mkEq(mkInt(0), D))}, mkIsSome(O)));
}

TEST(SolverRegressionTest, NegatedBooleanEqualitySplits) {
  // Regression for the is_empty contract: not (p <-> q) must split into
  // (p && !q) || (!p && q) so each side reaches the theories.
  Solver S;
  Expr X = mkVar("x", Sort::Int);
  Expr P = mkVar("p", Sort::Bool);
  Expr Iff = mkEq(P, mkEq(X, mkInt(0)));
  // not(p <-> x=0), p  |-  x != 0.
  EXPECT_TRUE(S.entails({mkNot(Iff), P}, mkNot(mkEq(X, mkInt(0)))));
  // not(p <-> x=0), x=0  |-  !p.
  EXPECT_TRUE(S.entails({mkNot(Iff), mkEq(X, mkInt(0))}, mkNot(P)));
  // And the unnegated iff transports truth both ways.
  EXPECT_TRUE(S.entails({Iff, mkEq(X, mkInt(0))}, P));
  EXPECT_FALSE(S.entails({mkNot(Iff)}, P)); // Not decided by itself.
}

TEST(SolverRegressionTest, ConcatAssociativityThroughClasses) {
  // Regression for the E2 postconditions: concat(a, b) must meet
  // concat(a, c, d) when b ~ concat(c, d) holds only via the equalities.
  Solver S;
  Expr A = mkVar("a", Sort::Any);
  Expr B = mkVar("b", Sort::Seq);
  Expr C = mkVar("c", Sort::Any);
  Expr D = mkVar("d", Sort::Seq);
  std::vector<Expr> Ctx = {mkEq(B, mkSeqCons(C, D))};
  EXPECT_TRUE(
      S.entails(Ctx, mkEq(mkSeqCons(A, B),
                          mkSeqConcat({mkSeqUnit(A), mkSeqUnit(C), D}))));
}

} // namespace
