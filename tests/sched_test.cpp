//===- tests/sched_test.cpp - Scheduler subsystem unit tests ----------------===//
//
// Units of the parallel proof scheduler: the sharded LRU entailment cache
// (hit/miss, eviction, cross-shard isolation, soundness of cached verdicts),
// the work-stealing pool, per-job budgets, and the job graph.
//
//===----------------------------------------------------------------------===//

#include "sched/ProofJob.h"
#include "sched/QueryCache.h"
#include "sched/WorkerPool.h"
#include "support/Budget.h"
#include "sym/ExprBuilder.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

using namespace gilr;
using namespace gilr::sched;

namespace {

QueryVerdict satVerdict(uint64_t Branches = 3, uint64_t Checks = 2) {
  return QueryVerdict{SatResult::Sat, Branches, Checks};
}

//===----------------------------------------------------------------------===//
// QueryCache
//===----------------------------------------------------------------------===//

TEST(QueryCacheTest, HitAndMiss) {
  QueryCache C(1024);
  QueryVerdict Out;

  EXPECT_FALSE(C.lookup(42, 7, Out));
  C.insert(42, 7, QueryVerdict{SatResult::Unsat, 11, 5});
  ASSERT_TRUE(C.lookup(42, 7, Out));
  EXPECT_EQ(Out.R, SatResult::Unsat);
  EXPECT_EQ(Out.Branches, 11u);
  EXPECT_EQ(Out.TheoryChecks, 5u);

  CacheStatsSnapshot S = C.stats();
  EXPECT_EQ(S.Hits, 1u);
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.Insertions, 1u);
  EXPECT_DOUBLE_EQ(S.hitRate(), 0.5);
}

TEST(QueryCacheTest, CheckHashMismatchIsAMiss) {
  // A primary-fingerprint collision with a different check hash must not
  // serve the colliding entry's verdict.
  QueryCache C(1024);
  C.insert(42, 7, satVerdict());
  QueryVerdict Out;
  EXPECT_FALSE(C.lookup(42, 8, Out));
  // A later insert under the same primary fingerprint takes the slot over
  // (otherwise the collision would starve the new query forever).
  C.insert(42, 8, QueryVerdict{SatResult::Unsat, 1, 1});
  ASSERT_TRUE(C.lookup(42, 8, Out));
  EXPECT_EQ(Out.R, SatResult::Unsat);
  EXPECT_FALSE(C.lookup(42, 7, Out));
}

TEST(QueryCacheTest, UnknownIsNeverStored) {
  QueryCache C(1024);
  C.insert(1, 1, QueryVerdict{SatResult::Unknown, 0, 0});
  QueryVerdict Out;
  EXPECT_FALSE(C.lookup(1, 1, Out));
  EXPECT_EQ(C.size(), 0u);
}

TEST(QueryCacheTest, LRUEvictionPrefersOldest) {
  // Capacity 2 * NumShards = two entries per shard. Fingerprints 0..2
  // differ only in low bits, so shardOf (high bits) puts them all in one
  // shard.
  QueryCache C(2 * QueryCache::NumShards);
  ASSERT_EQ(QueryCache::shardOf(0), QueryCache::shardOf(1));
  ASSERT_EQ(QueryCache::shardOf(0), QueryCache::shardOf(2));

  C.insert(0, 100, satVerdict());
  C.insert(1, 101, satVerdict());
  QueryVerdict Out;
  ASSERT_TRUE(C.lookup(0, 100, Out)); // 0 becomes most-recently-used.
  C.insert(2, 102, satVerdict());     // Shard full: evicts 1, the LRU.

  EXPECT_TRUE(C.lookup(0, 100, Out));
  EXPECT_FALSE(C.lookup(1, 101, Out));
  EXPECT_TRUE(C.lookup(2, 102, Out));
  EXPECT_EQ(C.stats().Evictions, 1u);
}

TEST(QueryCacheTest, CrossShardIsolation) {
  // One entry per shard. Entries landing in different shards never evict
  // each other, even when every shard is at capacity.
  QueryCache C(QueryCache::NumShards);
  for (uint64_t I = 0; I != QueryCache::NumShards; ++I) {
    uint64_t Fp = I << 59; // shardOf keys on the high bits.
    EXPECT_EQ(QueryCache::shardOf(Fp), I);
    C.insert(Fp, I, satVerdict());
  }
  EXPECT_EQ(C.size(), QueryCache::NumShards);
  EXPECT_EQ(C.stats().Evictions, 0u);
  QueryVerdict Out;
  for (uint64_t I = 0; I != QueryCache::NumShards; ++I)
    EXPECT_TRUE(C.lookup(I << 59, I, Out)) << "shard " << I;

  // A second entry in shard 0 evicts only shard 0's resident.
  C.insert(1, 999, satVerdict());
  EXPECT_FALSE(C.lookup(0, 0, Out));
  for (uint64_t I = 1; I != QueryCache::NumShards; ++I)
    EXPECT_TRUE(C.lookup(I << 59, I, Out)) << "shard " << I;
}

TEST(QueryCacheTest, ClearDropsEntriesKeepsStats) {
  QueryCache C(1024);
  C.insert(1, 1, satVerdict());
  C.clear();
  EXPECT_EQ(C.size(), 0u);
  EXPECT_EQ(C.stats().Insertions, 1u);
  QueryVerdict Out;
  EXPECT_FALSE(C.lookup(1, 1, Out));
}

TEST(QueryCacheTest, CachedVerdictNeverFlipsSolverAnswer) {
  // The end-to-end soundness property: with the cache installed, repeated
  // queries are served from the memo (hits observed) and the verdicts are
  // identical to the uncached solver's.
  Expr X = mkVar("x", Sort::Int);
  Expr Y = mkVar("y", Sort::Int);
  Expr Z = mkVar("z", Sort::Int);
  std::vector<Expr> UnsatCtx = {mkEq(X, Y), mkEq(Y, Z), mkNe(X, Z)};
  std::vector<Expr> SatCtx = {mkEq(X, Y), mkNe(Y, Z)};
  std::vector<Expr> EntailCtx = {mkEq(X, Y), mkEq(Y, Z)};

  Solver Bare; // No cache: the ground truth.
  ASSERT_EQ(Bare.checkSat(UnsatCtx), SatResult::Unsat);
  ASSERT_EQ(Bare.checkSat(SatCtx), SatResult::Sat);
  ASSERT_TRUE(Bare.entails(EntailCtx, mkEq(X, Z)));
  ASSERT_FALSE(Bare.entails(SatCtx, mkEq(X, Z)));

  QueryCache C(1024);
  ScopedQueryCache Install(&C);
  Solver S;
  for (int Round = 0; Round != 3; ++Round) {
    EXPECT_EQ(S.checkSat(UnsatCtx), SatResult::Unsat) << "round " << Round;
    EXPECT_EQ(S.checkSat(SatCtx), SatResult::Sat) << "round " << Round;
    EXPECT_TRUE(S.entails(EntailCtx, mkEq(X, Z))) << "round " << Round;
    EXPECT_FALSE(S.entails(SatCtx, mkEq(X, Z))) << "round " << Round;
  }
  // Rounds 2 and 3 repeat round 1's queries verbatim: all hits.
  EXPECT_GE(C.stats().Hits, 8u);
  EXPECT_GT(C.stats().Insertions, 0u);
}

TEST(QueryCacheTest, BranchBudgetIsPartOfTheKey) {
  // The same query under a different MaxBranches must not share an entry:
  // a budget-limited verdict is only valid under its own budget.
  Expr X = mkVar("x", Sort::Int);
  std::vector<Expr> Ctx = {mkEq(X, mkInt(1))};

  QueryCache C(1024);
  ScopedQueryCache Install(&C);
  Solver S;
  ASSERT_EQ(S.checkSat(Ctx), SatResult::Sat);
  uint64_t InsertionsAfterFirst = C.stats().Insertions;
  S.MaxBranches = 7; // Different budget: a fresh fingerprint.
  ASSERT_EQ(S.checkSat(Ctx), SatResult::Sat);
  EXPECT_GT(C.stats().Insertions, InsertionsAfterFirst);
}

TEST(QueryCacheTest, ConcurrentMixedUse) {
  // Hammer one cache from several threads; the test is that nothing tears
  // and every served verdict is the one inserted for that key.
  QueryCache C(256);
  std::atomic<uint64_t> BadVerdicts{0};
  std::vector<std::thread> Ts;
  for (unsigned T = 0; T != 4; ++T)
    Ts.emplace_back([&C, &BadVerdicts, T] {
      for (uint64_t I = 0; I != 2000; ++I) {
        uint64_t Fp = (T * 131 + I * 7919) % 512;
        SatResult Want = Fp % 2 ? SatResult::Sat : SatResult::Unsat;
        C.insert(Fp, Fp + 1, QueryVerdict{Want, Fp, Fp});
        QueryVerdict Out;
        if (C.lookup(Fp, Fp + 1, Out) && Out.R != Want)
          ++BadVerdicts;
      }
    });
  for (std::thread &T : Ts)
    T.join();
  EXPECT_EQ(BadVerdicts.load(), 0u);
  EXPECT_LE(C.size(), C.capacity());
}

//===----------------------------------------------------------------------===//
// WorkerPool
//===----------------------------------------------------------------------===//

TEST(WorkerPoolTest, RunsEveryTask) {
  WorkerPool Pool(4);
  EXPECT_EQ(Pool.threads(), 4u);
  std::atomic<int> Count{0};
  for (int I = 0; I != 500; ++I)
    Pool.submit([&Count] { ++Count; });
  Pool.wait();
  EXPECT_EQ(Count.load(), 500);
}

TEST(WorkerPoolTest, WaitIsABarrier) {
  WorkerPool Pool(3);
  std::atomic<int> Count{0};
  for (int Round = 0; Round != 5; ++Round) {
    for (int I = 0; I != 40; ++I)
      Pool.submit([&Count] { ++Count; });
    Pool.wait();
    EXPECT_EQ(Count.load(), (Round + 1) * 40);
  }
}

TEST(WorkerPoolTest, WorkersMaySubmit) {
  // A task that fans out subtasks from a worker thread; wait() covers the
  // transitively submitted work too (Pending counts submissions, not
  // batches).
  WorkerPool Pool(4);
  std::atomic<int> Count{0};
  for (int I = 0; I != 8; ++I)
    Pool.submit([&Pool, &Count] {
      ++Count;
      for (int J = 0; J != 8; ++J)
        Pool.submit([&Count] { ++Count; });
    });
  Pool.wait();
  EXPECT_EQ(Count.load(), 8 + 8 * 8);
}

TEST(WorkerPoolTest, DestructorDrains) {
  std::atomic<int> Count{0};
  {
    WorkerPool Pool(2);
    for (int I = 0; I != 100; ++I)
      Pool.submit([&Count] { ++Count; });
  } // ~WorkerPool waits, then joins.
  EXPECT_EQ(Count.load(), 100);
}

TEST(WorkerPoolTest, SingleThreadPoolStillWorks) {
  WorkerPool Pool(1);
  std::atomic<int> Count{0};
  for (int I = 0; I != 50; ++I)
    Pool.submit([&Count] { ++Count; });
  Pool.wait();
  EXPECT_EQ(Count.load(), 50);
  EXPECT_EQ(Pool.steals(), 0u); // Nobody to steal from.
}

//===----------------------------------------------------------------------===//
// Budgets
//===----------------------------------------------------------------------===//

TEST(BudgetTest, DisarmedByDefault) {
  EXPECT_FALSE(budget::active());
  EXPECT_FALSE(budget::exceeded());
}

TEST(BudgetTest, BranchCapDegradesSolverToUnknown) {
  // An Unsat query that needs many case splits under a 1-branch cap: the
  // solver must answer Unknown (the sound direction), not hang or lie.
  Expr X = mkVar("x", Sort::Int);
  std::vector<Expr> Branchy = {mkEq(X, mkInt(0))};
  std::vector<Expr> Cases;
  for (int I = 1; I <= 10; ++I)
    Cases.push_back(mkEq(X, mkInt(I)));
  Branchy.push_back(mkOr(Cases));

  Solver S;
  ASSERT_EQ(S.checkSat(Branchy), SatResult::Unsat); // Unlimited: provable.

  budget::begin(0, 1);
  EXPECT_TRUE(budget::active());
  EXPECT_EQ(S.checkSat(Branchy), SatResult::Unknown);
  EXPECT_TRUE(budget::exceeded()); // Sticky once fired.
  budget::clear();
  EXPECT_FALSE(budget::active());
  EXPECT_TRUE(budget::wasExceeded()); // Survives clear for classification.
  EXPECT_EQ(budget::describe(), "branch budget");
}

TEST(BudgetTest, BudgetTrippedUnknownIsNotCached) {
  // Soundness: a verdict degraded by the budget must never be memoised —
  // the same query under no budget must still get its real answer.
  Expr X = mkVar("x", Sort::Int);
  std::vector<Expr> Branchy = {mkEq(X, mkInt(0))};
  std::vector<Expr> Cases;
  for (int I = 1; I <= 10; ++I)
    Cases.push_back(mkEq(X, mkInt(I)));
  Branchy.push_back(mkOr(Cases));

  QueryCache C(1024);
  ScopedQueryCache Install(&C);
  Solver S;
  budget::begin(0, 1);
  ASSERT_EQ(S.checkSat(Branchy), SatResult::Unknown);
  budget::clear();
  EXPECT_EQ(S.checkSat(Branchy), SatResult::Unsat);
}

TEST(BudgetTest, JobScopeIsRAII) {
  {
    budget::JobScope Scope(1000000000ull, 0);
    EXPECT_TRUE(budget::active());
    EXPECT_FALSE(budget::exceeded());
  }
  EXPECT_FALSE(budget::active());
}

TEST(BudgetTest, FreshBeginResetsWasExceeded) {
  budget::begin(0, 0); // No limits: also clears the sticky flag.
  EXPECT_FALSE(budget::wasExceeded());
  budget::clear();
}

//===----------------------------------------------------------------------===//
// JobGraph
//===----------------------------------------------------------------------===//

TEST(JobGraphTest, InputOrderAndSlots) {
  std::vector<creusot::SafeFn> Clients(2);
  Clients[0].Name = "client_a";
  Clients[1].Name = "client_b";
  JobGraph G = JobGraph::build({"push", "pop"}, Clients);

  ASSERT_EQ(G.Jobs.size(), 4u);
  EXPECT_EQ(G.UnsafeCount, 2u);
  EXPECT_EQ(G.SafeCount, 2u);

  EXPECT_EQ(G.Jobs[0].K, ProofJob::UnsafeFn);
  EXPECT_EQ(G.Jobs[0].Name, "push");
  EXPECT_EQ(G.Jobs[0].Slot, 0u);
  EXPECT_EQ(G.Jobs[1].Name, "pop");
  EXPECT_EQ(G.Jobs[1].Slot, 1u);

  EXPECT_EQ(G.Jobs[2].K, ProofJob::SafeClient);
  EXPECT_EQ(G.Jobs[2].Name, "client_a");
  EXPECT_EQ(G.Jobs[2].Slot, 0u); // Slot indexes the job's own side.
  EXPECT_EQ(G.Jobs[2].Client, &Clients[0]);
  EXPECT_EQ(G.Jobs[3].Client, &Clients[1]);
}

} // namespace
