//===- tests/pred_test.cpp - Folded and guarded predicate stores (§4.2) ----===//

#include "pred/GuardedCtx.h"
#include "sym/ExprBuilder.h"

#include <gtest/gtest.h>

using namespace gilr;
using namespace gilr::pred;

namespace {

class PredTest : public ::testing::Test {
protected:
  Solver S;
  PathCondition PC;
  PredCtx Preds;
  GuardedCtx Guarded;
  Expr X = mkVar("x", Sort::Int);
  Expr Y = mkVar("y", Sort::Int);
  Expr K = mkLftVar("'a");
};

TEST_F(PredTest, ProduceConsumeExact) {
  Preds.produce("p", {X, Y});
  Outcome<std::vector<Expr>> R = Preds.consume("p", {X, Y}, {}, S, PC);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.value().size(), 2u);
  EXPECT_TRUE(Preds.consume("p", {X, Y}, {}, S, PC).failed());
}

TEST_F(PredTest, InParameterMatchingReturnsOuts) {
  Preds.produce("own", {X, mkInt(42)});
  // Only the first position is an in-parameter; the second is learned.
  Outcome<std::vector<Expr>> R =
      Preds.consume("own", {X, Y}, {true, false}, S, PC);
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(exprEquals(R.value()[1], mkInt(42)));
}

TEST_F(PredTest, MatchesUpToPathCondition) {
  Preds.produce("p", {X});
  PC.add(mkEq(X, Y));
  EXPECT_TRUE(Preds.consume("p", {Y}, {}, S, PC).ok());
}

TEST_F(PredTest, MismatchFails) {
  Preds.produce("p", {mkInt(1)});
  EXPECT_TRUE(Preds.consume("p", {mkInt(2)}, {}, S, PC).failed());
  EXPECT_TRUE(Preds.consume("q", {mkInt(1)}, {}, S, PC).failed());
}

TEST_F(PredTest, GuardedProduceConsume) {
  Guarded.produceGuarded("borrow", K, {X});
  Outcome<GuardedPred> G = Guarded.consumeGuarded("borrow", K, {X}, {}, S, PC);
  ASSERT_TRUE(G.ok());
  EXPECT_TRUE(exprEquals(G.value().Kappa, K));
  EXPECT_TRUE(Guarded.consumeGuarded("borrow", K, {X}, {}, S, PC).failed());
}

TEST_F(PredTest, GuardedMatchesWithoutKappa) {
  Guarded.produceGuarded("borrow", K, {X});
  // A null kappa matches any guard (learned by the caller).
  Outcome<GuardedPred> G =
      Guarded.consumeGuarded("borrow", nullptr, {X}, {}, S, PC);
  ASSERT_TRUE(G.ok());
  EXPECT_TRUE(exprEquals(G.value().Kappa, K));
}

TEST_F(PredTest, ClosingTokens) {
  ClosingToken Tok{"borrow", K, mkReal(Rational(1, 2)), {X}};
  Guarded.produceClosing(Tok);
  Outcome<ClosingToken> R = Guarded.consumeClosing("borrow", {X}, S, PC);
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(exprEquals(R.value().Fraction, mkReal(Rational(1, 2))));
  EXPECT_TRUE(Guarded.consumeClosing("borrow", {X}, S, PC).failed());
}

TEST_F(PredTest, ArgsMatchHelper) {
  EXPECT_TRUE(argsMatch({X, Y}, {X, Y}, {}, S, PC));
  EXPECT_FALSE(argsMatch({X}, {X, Y}, {}, S, PC));
  // Positions not flagged In are ignored.
  EXPECT_TRUE(argsMatch({X, mkInt(1)}, {X, mkInt(2)}, {true, false}, S, PC));
  EXPECT_FALSE(argsMatch({X, mkInt(1)}, {X, mkInt(2)}, {true, true}, S, PC));
}

TEST_F(PredTest, DumpIsReadable) {
  Preds.produce("p", {mkInt(1)});
  Guarded.produceGuarded("b", K, {X});
  EXPECT_NE(Preds.dump().find("p(1)"), std::string::npos);
  EXPECT_NE(Guarded.dump().find("b(x)"), std::string::npos);
}

} // namespace
