//===- tests/linkedlist_functional_test.cpp - E2: functional correctness ----===//
//
// The second experiment of §6: functional correctness of new,
// push_front_node and pop_front_node against the Pearlite contracts encoded
// into Gilsonite (§5.4), "the strongest possible specifications one can
// give in our framework".
//
//===----------------------------------------------------------------------===//

#include "rustlib/LinkedList.h"

#include <gtest/gtest.h>

using namespace gilr;
using namespace gilr::rustlib;

namespace {

class FunctionalTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    Lib = buildLinkedListLib(SpecMode::Functional).release();
  }
  static void TearDownTestSuite() {
    delete Lib;
    Lib = nullptr;
  }
  static LinkedListLib *Lib;

  engine::VerifyReport verify(const std::string &Name) {
    engine::VerifEnv Env = Lib->env();
    engine::Verifier V(Env);
    return V.verifyFunction(Name);
  }
};

LinkedListLib *FunctionalTest::Lib = nullptr;

TEST_F(FunctionalTest, EncodedSpecsRegistered) {
  ASSERT_NE(Lib, nullptr);
  const gilsonite::Spec *S = Lib->Specs.lookup("LinkedList::pop_front_node");
  ASSERT_NE(S, nullptr);
  EXPECT_NE(S->Doc.find("Pearlite"), std::string::npos);
  // The encoding placed the contract into an observation (§5.4 schema).
  EXPECT_NE(S->Post->str().find("<"), std::string::npos);
}

TEST_F(FunctionalTest, New) {
  engine::VerifyReport R = verify("LinkedList::new");
  EXPECT_TRUE(R.Ok) << (R.Errors.empty() ? "" : R.Errors.front());
}

TEST_F(FunctionalTest, PushFrontNode) {
  engine::VerifyReport R = verify("LinkedList::push_front_node");
  EXPECT_TRUE(R.Ok) << (R.Errors.empty() ? "" : R.Errors.front());
  EXPECT_GE(R.PathsCompleted, 2u);
}

TEST_F(FunctionalTest, PopFrontNode) {
  engine::VerifyReport R = verify("LinkedList::pop_front_node");
  EXPECT_TRUE(R.Ok) << (R.Errors.empty() ? "" : R.Errors.front());
  EXPECT_GE(R.PathsCompleted, 3u);
}

TEST_F(FunctionalTest, PushFrontViaCalleeSpec) {
  // Compositional verification: push_front is verified against
  // push_front_node's *spec*, not its body.
  engine::VerifyReport R = verify("LinkedList::push_front");
  EXPECT_TRUE(R.Ok) << (R.Errors.empty() ? "" : R.Errors.front());
}

TEST_F(FunctionalTest, PopFrontViaCalleeSpec) {
  engine::VerifyReport R = verify("LinkedList::pop_front");
  EXPECT_TRUE(R.Ok) << (R.Errors.empty() ? "" : R.Errors.front());
}

TEST_F(FunctionalTest, WholeE2SuiteVerifies) {
  engine::VerifEnv Env = Lib->env();
  engine::Verifier V(Env);
  double Total = 0.0;
  for (const std::string &Name : functionalFunctions()) {
    engine::VerifyReport R = V.verifyFunction(Name);
    EXPECT_TRUE(R.Ok) << Name << ": "
                      << (R.Errors.empty() ? "" : R.Errors.front());
    Total += R.Seconds;
  }
  EXPECT_LT(Total, 30.0); // Paper: 0.18 s; same order of magnitude.
}

TEST_F(FunctionalTest, ObsExtractionLimitationReproduced) {
  // §7.3: without extracting prophecy-free observations into the path
  // condition, the encoded push_front_node precondition (len < usize::MAX)
  // is invisible and the overflow obligation fails — the paper's reported
  // limitation. Our extension (ObsExtraction) is what makes E2 pass above.
  auto Lib2 = buildLinkedListLib(SpecMode::Functional);
  Lib2->Auto.ObsExtraction = false;
  engine::VerifEnv Env = Lib2->env();
  engine::Verifier V(Env);
  engine::VerifyReport R = V.verifyFunction("LinkedList::push_front_node");
  EXPECT_FALSE(R.Ok);
  ASSERT_FALSE(R.Errors.empty());
  EXPECT_NE(R.Errors.front().find("overflow"), std::string::npos);
}

} // namespace

namespace {

TEST(FunctionalExtensionTest, FrontMutPartialFunctionalSpec) {
  // §6: "We are not yet able to verify the functional correctness
  // specification for front_mut" — the enhanced (prophecy-aware)
  // extraction of §7.1 was designed but unimplemented. Ours is
  // implemented, and verifies the partial contract of StdSpecs.cpp:
  // None iff the list is empty (with both current and final models empty),
  // Some implies non-empty.
  auto Lib = buildLinkedListLib(SpecMode::Functional);
  engine::VerifEnv Env = Lib->env();
  engine::Verifier V(Env);
  engine::VerifyReport R = V.verifyFunction("LinkedList::front_mut");
  EXPECT_TRUE(R.Ok) << (R.Errors.empty() ? "" : R.Errors.front());
  EXPECT_GE(R.PathsCompleted, 2u);
  const gilsonite::Spec *S = Lib->Specs.lookup("LinkedList::front_mut");
  ASSERT_NE(S, nullptr);
  EXPECT_NE(S->Doc.find("Pearlite"), std::string::npos);
}

} // namespace
