//===- tests/stack_test.cpp - The second case study end-to-end --------------===//
//
// Type safety and functional correctness of the singly-linked Stack,
// showing the pipeline generalises beyond the paper's LinkedList: the same
// ownership-predicate discipline, borrow automation and §5.4 contract
// encoding apply unchanged.
//
//===----------------------------------------------------------------------===//

#include "rustlib/Stack.h"

#include <gtest/gtest.h>

using namespace gilr;
using namespace gilr::rustlib;

namespace {

class StackSafetyTest : public ::testing::TestWithParam<std::string> {
protected:
  static void SetUpTestSuite() {
    Lib = buildStackLib(StackSpecMode::TypeSafety).release();
  }
  static void TearDownTestSuite() {
    delete Lib;
    Lib = nullptr;
  }
  static StackLib *Lib;
};

StackLib *StackSafetyTest::Lib = nullptr;

TEST_P(StackSafetyTest, VerifiesTypeSafety) {
  engine::VerifEnv Env = Lib->env();
  engine::Verifier V(Env);
  engine::VerifyReport R = V.verifyFunction(GetParam());
  EXPECT_TRUE(R.Ok) << GetParam() << ": "
                    << (R.Errors.empty() ? "" : R.Errors.front());
  EXPECT_GE(R.PathsCompleted, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Functions, StackSafetyTest,
    ::testing::Values("Stack::new", "Stack::push", "Stack::pop",
                      "Stack::peek_mut", "Stack::is_empty"),
    [](const ::testing::TestParamInfo<std::string> &Info) {
      return Info.param.substr(Info.param.find("::") + 2);
    });

class StackFunctionalTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    Lib = buildStackLib(StackSpecMode::Functional).release();
  }
  static void TearDownTestSuite() {
    delete Lib;
    Lib = nullptr;
  }
  static StackLib *Lib;

  engine::VerifyReport verify(const std::string &Name) {
    engine::VerifEnv Env = Lib->env();
    engine::Verifier V(Env);
    return V.verifyFunction(Name);
  }
};

StackLib *StackFunctionalTest::Lib = nullptr;

TEST_F(StackFunctionalTest, New) {
  engine::VerifyReport R = verify("Stack::new");
  EXPECT_TRUE(R.Ok) << (R.Errors.empty() ? "" : R.Errors.front());
}

TEST_F(StackFunctionalTest, Push) {
  engine::VerifyReport R = verify("Stack::push");
  EXPECT_TRUE(R.Ok) << (R.Errors.empty() ? "" : R.Errors.front());
}

TEST_F(StackFunctionalTest, Pop) {
  engine::VerifyReport R = verify("Stack::pop");
  EXPECT_TRUE(R.Ok) << (R.Errors.empty() ? "" : R.Errors.front());
  EXPECT_GE(R.PathsCompleted, 2u);
}

TEST_F(StackFunctionalTest, SafeClientAgainstStackContracts) {
  // The hybrid split works for the new library too: a Creusot-side client
  // of the Stack contracts.
  creusot::SafeFn F;
  F.Name = "stack_client";
  auto call = [](std::string Callee, std::vector<std::string> Args,
                 std::vector<bool> Refs, std::string Dest = "") {
    creusot::SafeStmt S;
    S.Kind = creusot::SafeStmt::Call;
    S.Callee = std::move(Callee);
    S.Args = std::move(Args);
    S.ByMutRef = std::move(Refs);
    S.Dest = std::move(Dest);
    return S;
  };
  auto let = [](std::string Dest, creusot::PTermP T) {
    creusot::SafeStmt S;
    S.Kind = creusot::SafeStmt::Let;
    S.Dest = std::move(Dest);
    S.Term = std::move(T);
    return S;
  };
  auto check = [](creusot::PTermP T) {
    creusot::SafeStmt S;
    S.Kind = creusot::SafeStmt::Assert;
    S.Term = std::move(T);
    return S;
  };
  using namespace creusot;
  F.Body = {call("Stack::new", {}, {}, "s"),
            let("a", pInt(5)),
            call("Stack::push", {"s", "a"}, {true, false}),
            call("Stack::pop", {"s"}, {true}, "r"),
            check(pEq(pVar("r"), pSome(pInt(5)))),
            check(pEq(pVar("s"), pSeqEmpty()))};
  creusot::SafeVerifier SV(Lib->Contracts, Lib->Solv);
  creusot::SafeReport R = SV.verify(F);
  EXPECT_TRUE(R.Ok) << (R.Errors.empty() ? "" : R.Errors.front());
}

} // namespace
