//===- tests/sched_determinism_test.cpp - Parallel == serial ----------------===//
//
// The scheduler's determinism contract: the LinkedList hybrid proof run
// through 4 workers produces a machine-readable report byte-identical
// (timing aside) to the serial run, the shared entailment cache observes
// real hits, and per-job budgets degrade stuck obligations to a reported
// Unknown instead of a spurious failure.
//
//===----------------------------------------------------------------------===//

#include "rustlib/Clients.h"
#include "rustlib/LinkedList.h"
#include "sched/Scheduler.h"

#include <gtest/gtest.h>

using namespace gilr;
using namespace gilr::rustlib;

namespace {

/// Blanks every "seconds": <number> value (wall-clock is the one
/// legitimately nondeterministic field of the report).
std::string stripTimings(std::string S) {
  const std::string Key = "\"seconds\": ";
  std::size_t Pos = 0;
  while ((Pos = S.find(Key, Pos)) != std::string::npos) {
    std::size_t ValBegin = Pos + Key.size();
    std::size_t ValEnd = ValBegin;
    while (ValEnd < S.size() && S[ValEnd] != ',' && S[ValEnd] != '}' &&
           S[ValEnd] != '\n')
      ++ValEnd;
    S.erase(ValBegin, ValEnd - ValBegin);
    Pos = ValBegin;
  }
  return S;
}

class SchedDeterminismTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    Lib = buildLinkedListLib(SpecMode::Functional).release();
  }
  static void TearDownTestSuite() {
    delete Lib;
    Lib = nullptr;
  }
  static LinkedListLib *Lib;
};

LinkedListLib *SchedDeterminismTest::Lib = nullptr;

TEST_F(SchedDeterminismTest, FourWorkersMatchSerialByteForByte) {
  std::vector<std::string> Funcs = functionalFunctions();
  std::vector<creusot::SafeFn> Clients = makeClients();

  // The pre-scheduler serial path: no cache, no pool.
  engine::VerifEnv LegacyEnv = Lib->env();
  hybrid::HybridDriver LegacyDriver(LegacyEnv, Lib->Contracts);
  hybrid::HybridReport Legacy = LegacyDriver.run(Funcs, Clients);
  ASSERT_TRUE(Legacy.ok());

  sched::SchedulerConfig Serial;
  Serial.Threads = 1;
  engine::VerifEnv SerialEnv = Lib->env();
  hybrid::HybridDriver SerialDriver(SerialEnv, Lib->Contracts);
  hybrid::HybridReport SerialR = SerialDriver.run(Funcs, Clients, Serial);
  ASSERT_TRUE(SerialR.ok());

  sched::SchedulerConfig Par;
  Par.Threads = 4;
  engine::VerifEnv ParEnv = Lib->env();
  hybrid::HybridDriver ParDriver(ParEnv, Lib->Contracts);
  hybrid::HybridReport ParR = ParDriver.run(Funcs, Clients, Par);
  ASSERT_TRUE(ParR.ok());

  std::string LegacyJson = stripTimings(Legacy.renderJson());
  std::string SerialJson = stripTimings(SerialR.renderJson());
  std::string ParJson = stripTimings(ParR.renderJson());

  // Cache hits replay the original computation's work counts into the
  // job's stats, so even the solver-work numbers agree everywhere.
  EXPECT_EQ(SerialJson, ParJson);
  EXPECT_EQ(LegacyJson, SerialJson);
}

TEST_F(SchedDeterminismTest, ParallelRunIsRepeatable) {
  std::vector<std::string> Funcs = functionalFunctions();
  std::vector<creusot::SafeFn> Clients = makeClients();
  sched::SchedulerConfig Par;
  Par.Threads = 4;

  std::string First;
  for (int Round = 0; Round != 2; ++Round) {
    engine::VerifEnv Env = Lib->env();
    hybrid::HybridDriver Driver(Env, Lib->Contracts);
    std::string Json =
        stripTimings(Driver.run(Funcs, Clients, Par).renderJson());
    if (Round == 0)
      First = Json;
    else
      EXPECT_EQ(First, Json);
  }
}

TEST_F(SchedDeterminismTest, SharedCacheObservesHits) {
  // The LinkedList proofs repeat entailment queries heavily (PR 1 measured
  // the repeat rate); the sharded cache must turn them into hits.
  sched::SchedulerConfig C;
  C.Threads = 4;
  sched::Scheduler S(C);
  engine::VerifEnv Env = Lib->env();
  hybrid::HybridReport R =
      S.runHybrid(Env, Lib->Contracts, functionalFunctions(), makeClients());
  EXPECT_TRUE(R.ok());
  sched::CacheStatsSnapshot Stats = S.cacheStats();
  EXPECT_GT(Stats.Hits, 0u);
  EXPECT_GT(Stats.Insertions, 0u);
  EXPECT_GT(Stats.hitRate(), 0.0);
}

TEST_F(SchedDeterminismTest, CacheDisabledStillProves) {
  sched::SchedulerConfig C;
  C.Threads = 4;
  C.CacheCapacity = 0;
  engine::VerifEnv Env = Lib->env();
  hybrid::HybridDriver Driver(Env, Lib->Contracts);
  hybrid::HybridReport R =
      Driver.run(functionalFunctions(), makeClients(), C);
  EXPECT_TRUE(R.ok());
}

TEST_F(SchedDeterminismTest, VerifyAllSchedulerPathMatchesSerial) {
  std::vector<std::string> Funcs = functionalFunctions();

  engine::VerifEnv Env1 = Lib->env();
  engine::Verifier V1(Env1);
  std::vector<engine::VerifyReport> Serial = V1.verifyAll(Funcs);

  sched::SchedulerConfig C;
  C.Threads = 4;
  engine::VerifEnv Env2 = Lib->env();
  engine::Verifier V2(Env2);
  std::vector<engine::VerifyReport> Par = V2.verifyAll(Funcs, C);

  ASSERT_EQ(Serial.size(), Par.size());
  for (std::size_t I = 0; I != Serial.size(); ++I) {
    EXPECT_EQ(Serial[I].Func, Par[I].Func) << "input order preserved";
    EXPECT_EQ(Serial[I].Ok, Par[I].Ok) << Serial[I].Func;
    EXPECT_EQ(Serial[I].PathsCompleted, Par[I].PathsCompleted)
        << Serial[I].Func;
    EXPECT_EQ(static_cast<uint64_t>(Serial[I].Solver.EntailQueries),
              static_cast<uint64_t>(Par[I].Solver.EntailQueries))
        << Serial[I].Func;
    EXPECT_EQ(static_cast<uint64_t>(Serial[I].Solver.Branches),
              static_cast<uint64_t>(Par[I].Solver.Branches))
        << Serial[I].Func;
  }
}

TEST_F(SchedDeterminismTest, BudgetExhaustionDegradesToUnknown) {
  // A 1-branch cap is far below what any LinkedList functional proof
  // needs: every job must come back TimedOut (reported Unknown), never a
  // spurious definite failure, and the report must say so.
  sched::SchedulerConfig C;
  C.Threads = 2;
  C.JobBranchCap = 1;
  engine::VerifEnv Env = Lib->env();
  hybrid::HybridDriver Driver(Env, Lib->Contracts);
  hybrid::HybridReport R =
      Driver.run({"LinkedList::push_front_node"}, {}, C);

  ASSERT_EQ(R.UnsafeSide.size(), 1u);
  const engine::VerifyReport &Job = R.UnsafeSide[0];
  EXPECT_FALSE(Job.Ok);
  EXPECT_TRUE(Job.TimedOut);
  ASSERT_FALSE(Job.Errors.empty());
  EXPECT_NE(Job.Errors.back().find("budget"), std::string::npos);

  EXPECT_NE(R.renderJson().find("\"timed_out\": true"), std::string::npos);
  EXPECT_NE(R.summaryText().find("UNKNOWN (budget)"), std::string::npos);
}

} // namespace
