//===- tests/pearlite_parser_test.cpp - Textual Pearlite front-end ----------===//
//
// The parser turns the paper's concrete contract syntax (Fig. 3) into the
// same PTerm trees the builder API produces. Tests: precedence and
// postfix/prefix interaction, the match form, attribute blocks, error
// positions, a parse(str(t)) round-trip sweep, and equivalence (after
// lowering) with the programmatically-built LinkedList std contracts.
//
//===----------------------------------------------------------------------===//

#include "creusot/PearliteParser.h"
#include "creusot/SafeVerifier.h"
#include "creusot/StdSpecs.h"
#include "rmir/Type.h"
#include "rustlib/Clients.h"
#include "rustlib/LinkedList.h"
#include "sym/ExprBuilder.h"
#include "sym/Printer.h"

#include <gtest/gtest.h>

using namespace gilr;
using namespace gilr::creusot;

namespace {

PTermP parseOk(const std::string &Src) {
  Outcome<PTermP> R = parsePearliteTerm(Src);
  EXPECT_TRUE(R.ok()) << Src << ": " << (R.ok() ? "" : R.error());
  return R.ok() ? R.value() : nullptr;
}

std::string parseErr(const std::string &Src) {
  Outcome<PTermP> R = parsePearliteTerm(Src);
  EXPECT_TRUE(R.failed()) << Src << " parsed unexpectedly";
  return R.failed() ? R.error() : "";
}

TEST(PearliteParserTest, Literals) {
  EXPECT_EQ(parseOk("42")->str(), "42");
  EXPECT_EQ(parseOk("1_000")->str(), "1000");
  EXPECT_EQ(parseOk("true")->str(), "true");
  EXPECT_EQ(parseOk("false")->str(), "false");
  EXPECT_EQ(parseOk("None")->str(), "None");
  EXPECT_EQ(parseOk("Seq::EMPTY")->str(), "Seq::EMPTY");
  EXPECT_EQ(parseOk("result")->str(), "result");
  EXPECT_EQ(parseOk("self")->str(), "self");
}

TEST(PearliteParserTest, UsizeMaxIsALiteral) {
  PTermP T = parseOk("usize::MAX");
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(T->Kind, PKind::IntLit);
  EXPECT_EQ(T->str(), pInt(rmir::intMaxValue(rmir::IntKind::USize))->str());
}

TEST(PearliteParserTest, PostfixChains) {
  EXPECT_EQ(parseOk("self@")->str(), "self@");
  EXPECT_EQ(parseOk("self@.len()")->str(), "self@.len()");
  EXPECT_EQ(parseOk("s@[i]")->str(), "s@[i]");
  EXPECT_EQ(parseOk("s@[i + 1]")->str(), "s@[(i + 1)]");
  // The paper's spelling of "final value's model".
  PTermP T = parseOk("(^self)@");
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(T->Kind, PKind::Model);
  EXPECT_EQ(T->Kids[0]->Kind, PKind::Final);
}

TEST(PearliteParserTest, CaretBindsLooserThanPostfix) {
  // ^self@ is Final(Model(self)) — the paper parenthesises (^self)@ for the
  // other association; document the precedence here.
  PTermP T = parseOk("^self@");
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(T->Kind, PKind::Final);
  EXPECT_EQ(T->Kids[0]->Kind, PKind::Model);
}

TEST(PearliteParserTest, Precedence) {
  // + binds tighter than ==, which binds tighter than &&, than ||, than ==>.
  EXPECT_EQ(parseOk("a + b == c && d ==> e || f")->str(),
            "((((a + b) == c) && d) ==> (e || f))");
  // Implication is right-associative.
  EXPECT_EQ(parseOk("a ==> b ==> c")->str(), "(a ==> (b ==> c))");
  // Unary ! stacks and binds tighter than &&.
  EXPECT_EQ(parseOk("!a && !!b")->str(), "(!a && !!b)");
  EXPECT_EQ(parseOk("a - b - c")->str(), "((a - b) - c)");
}

TEST(PearliteParserTest, GtGeDesugarToSwappedLtLe) {
  EXPECT_EQ(parseOk("a > b")->str(), "(b < a)");
  EXPECT_EQ(parseOk("a >= b")->str(), "(b <= a)");
}

TEST(PearliteParserTest, Constructors) {
  EXPECT_EQ(parseOk("Some(x)")->str(), "Some(x)");
  EXPECT_EQ(parseOk("Seq::cons(x, self@)")->str(), "Seq::cons(x, self@)");
  EXPECT_EQ(parseOk("Some(Seq::cons(1, Seq::EMPTY))")->str(),
            "Some(Seq::cons(1, Seq::EMPTY))");
}

TEST(PearliteParserTest, MatchBothArmOrders) {
  const char *Canonical = "match result { None => a, Some(x) => b }";
  PTermP T1 = parseOk(Canonical);
  ASSERT_NE(T1, nullptr);
  EXPECT_EQ(T1->str(), Canonical);
  // Arms may come in either order; a trailing comma is allowed.
  PTermP T2 = parseOk("match result { Some(x) => b, None => a, }");
  ASSERT_NE(T2, nullptr);
  EXPECT_EQ(T2->str(), Canonical);
}

TEST(PearliteParserTest, Fig3PopFrontContractText) {
  // The exact shape of Fig. 3's pop_front postcondition.
  PTermP T = parseOk("match result { None => self@ == Seq::EMPTY && "
                     "(^self)@ == Seq::EMPTY, Some(x) => self@ == "
                     "Seq::cons(x, (^self)@) }");
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(T->Kind, PKind::MatchOpt);
  EXPECT_EQ(T->Name, "x");
}

TEST(PearliteParserTest, Errors) {
  EXPECT_NE(parseErr("(a").find("expected ')'"), std::string::npos);
  EXPECT_NE(parseErr("a b").find("trailing input"), std::string::npos);
  EXPECT_NE(parseErr("a $ b").find("unexpected character"),
            std::string::npos);
  EXPECT_NE(parseErr("a ==").find("expected a term"), std::string::npos);
  EXPECT_NE(parseErr("s.first()").find("only '.len()'"), std::string::npos);
  EXPECT_NE(parseErr("match r { None => a, None => b }")
                .find("duplicate None arm"),
            std::string::npos);
  EXPECT_NE(parseErr("match r { None => a Some(x) => b }")
                .find("expected ','"),
            std::string::npos);
  EXPECT_NE(parseErr("Some(x").find("expected ')'"), std::string::npos);
}

TEST(PearliteParserTest, ErrorsCarryOffsets) {
  EXPECT_NE(parseErr("a && $").find("offset 5"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Round-trip property: parse(str(t)) == t (by printed form) over a pool of
// generated terms. Model-of-Final is excluded: it prints as `^x@`, which
// reparses under the documented precedence as Final-of-Model (the paper
// always writes the parenthesised form).
//===----------------------------------------------------------------------===//

class RoundTripTest : public ::testing::TestWithParam<int> {};

PTermP poolTerm(int Seed) {
  PTermP A = pVar("a"), B = pVar("b"), S = pVar("s");
  switch (Seed % 16) {
  case 0:
    return pEq(pAdd(A, pInt(1)), B);
  case 1:
    return pImplies(pLt(A, B), pLe(B, A));
  case 2:
    return pAnd(pNot(pEq(A, B)), pOr(pBool(true), pBool(false)));
  case 3:
    return pEq(pModel(S), pSeqCons(A, pSeqEmpty()));
  case 4:
    return pLt(pSeqLen(pModel(S)), pInt(rmir::intMaxValue(rmir::IntKind::USize)));
  case 5:
    return pMatchOpt(pResult(), pEq(A, B), "x", pNe(pVar("x"), A));
  case 6:
    return pEq(pSeqNth(pModel(S), pInt(0)), A);
  case 7:
    return pEq(pResult(), pSome(A));
  case 8:
    return pSub(pSub(A, B), pInt(2));
  case 9:
    return pEq(pFinal(S), pModel(S)); // ^s == s@ (Final of plain var).
  case 10:
    return pImplies(pImplies(A, B), A);
  case 11:
    return pNe(pSome(pSeqCons(A, pModel(S))), pNone());
  case 12:
    return pAnd(pAnd(A, B), pNot(B));
  case 13:
    return pEq(pSeqLen(pSeqCons(A, pSeqEmpty())), pInt(1));
  case 14:
    return pMatchOpt(pVar("o"), pBool(true), "y",
                     pLt(pInt(0), pSeqLen(pModel(pVar("y")))));
  default:
    return pOr(pEq(A, pInt(3)), pEq(B, pInt(-0 + 4)));
  }
}

TEST_P(RoundTripTest, ParseOfStrIsIdentity) {
  PTermP T = poolTerm(GetParam());
  Outcome<PTermP> R = parsePearliteTerm(T->str());
  ASSERT_TRUE(R.ok()) << T->str() << ": " << R.error();
  EXPECT_EQ(R.value()->str(), T->str());
}

INSTANTIATE_TEST_SUITE_P(Pool, RoundTripTest, ::testing::Range(0, 16));

//===----------------------------------------------------------------------===//
// Attribute blocks
//===----------------------------------------------------------------------===//

TEST(PearliteContractTest, RequiresAndEnsures) {
  Outcome<ParsedContract> R = parsePearliteContract(
      "#[requires(self@.len() < usize::MAX)] "
      "#[ensures((^self)@ == Seq::cons(x@, self@))]");
  ASSERT_TRUE(R.ok()) << R.error();
  ASSERT_NE(R.value().Pre, nullptr);
  ASSERT_NE(R.value().Post, nullptr);
  EXPECT_EQ(R.value().Pre->Kind, PKind::Lt);
  EXPECT_EQ(R.value().Post->Kind, PKind::Eq);
}

TEST(PearliteContractTest, MultipleClausesConjoin) {
  Outcome<ParsedContract> R = parsePearliteContract(
      "#[ensures(a == b)] #[ensures(c == d)]");
  ASSERT_TRUE(R.ok()) << R.error();
  EXPECT_EQ(R.value().Pre, nullptr);
  ASSERT_NE(R.value().Post, nullptr);
  EXPECT_EQ(R.value().Post->str(), "((a == b) && (c == d))");
}

TEST(PearliteContractTest, EmptyBlockIsTrivialContract) {
  Outcome<ParsedContract> R = parsePearliteContract("");
  ASSERT_TRUE(R.ok()) << R.error();
  EXPECT_EQ(R.value().Pre, nullptr);
  EXPECT_EQ(R.value().Post, nullptr);
}

TEST(PearliteContractTest, RejectsUnknownAttribute) {
  Outcome<ParsedContract> R = parsePearliteContract("#[invariant(a)]");
  EXPECT_TRUE(R.failed());
}

TEST(PearliteContractTest, RejectsStrayText) {
  Outcome<ParsedContract> R = parsePearliteContract("fn foo() {}");
  EXPECT_TRUE(R.failed());
}

//===----------------------------------------------------------------------===//
// The parsed Doc texts of the std contracts lower to the same expressions
// as the programmatically-built PTerms — text is a faithful alternative
// front-end for the whole hybrid pipeline.
//===----------------------------------------------------------------------===//

class DocEquivalenceTest : public ::testing::Test {
protected:
  DocEquivalenceTest() {
    Env.Values["self"] =
        mkTuple({mkVar("cur", Sort::Seq), mkVar("fut", Sort::Seq)});
    Env.IsMutRef["self"] = true;
    Env.Values["x"] = mkVar("xv", Sort::Int);
    Env.ResultVal = mkVar("ret", Sort::Any);
  }

  /// Lowers both terms and asserts expression equality.
  void expectEquivalent(const PTermP &Parsed, const PTermP &Built) {
    ASSERT_NE(Parsed, nullptr);
    ASSERT_NE(Built, nullptr);
    Outcome<Expr> LP = lowerPearlite(Parsed, Env);
    Outcome<Expr> LB = lowerPearlite(Built, Env);
    ASSERT_TRUE(LP.ok()) << Parsed->str() << ": " << LP.error();
    ASSERT_TRUE(LB.ok()) << Built->str() << ": " << LB.error();
    EXPECT_TRUE(exprEquals(LP.value(), LB.value()))
        << "parsed:  " << exprToString(LP.value())
        << "\nbuilt:   " << exprToString(LB.value());
  }

  LowerEnv Env;
};

TEST_F(DocEquivalenceTest, NewContract) {
  PearliteSpecTable T = makeLinkedListSpecs();
  const PearliteSpec *S = T.lookup("LinkedList::new");
  ASSERT_NE(S, nullptr);
  Outcome<ParsedContract> R = parsePearliteContract(S->Doc);
  ASSERT_TRUE(R.ok()) << R.error();
  expectEquivalent(R.value().Post, S->Post);
  EXPECT_EQ(R.value().Pre, nullptr);
}

TEST_F(DocEquivalenceTest, PushFrontContract) {
  PearliteSpecTable T = makeLinkedListSpecs();
  const PearliteSpec *S = T.lookup("LinkedList::push_front");
  ASSERT_NE(S, nullptr);
  Outcome<ParsedContract> R = parsePearliteContract(S->Doc);
  ASSERT_TRUE(R.ok()) << R.error();
  // The text writes x@ where the builder wrote x; models of non-reference
  // values coincide with the values, so the lowerings agree.
  expectEquivalent(R.value().Pre, S->Pre);
  expectEquivalent(R.value().Post, S->Post);
}

TEST_F(DocEquivalenceTest, PopFrontContract) {
  PearliteSpecTable T = makeLinkedListSpecs();
  const PearliteSpec *S = T.lookup("LinkedList::pop_front");
  ASSERT_NE(S, nullptr);
  Outcome<ParsedContract> R = parsePearliteContract(S->Doc);
  ASSERT_TRUE(R.ok()) << R.error();
  expectEquivalent(R.value().Post, S->Post);
}

TEST_F(DocEquivalenceTest, IsEmptyContract) {
  PearliteSpecTable T = makeLinkedListSpecs();
  const PearliteSpec *S = T.lookup("LinkedList::is_empty");
  ASSERT_NE(S, nullptr);
  Outcome<ParsedContract> R = parsePearliteContract(S->Doc);
  ASSERT_TRUE(R.ok()) << R.error();
  expectEquivalent(R.value().Post, S->Post);
}

} // namespace

//===----------------------------------------------------------------------===//
// The text-built table (makeLinkedListSpecsFromText) is interchangeable
// with the programmatic one: every contract lowers identically, and it can
// drive both sides of the hybrid pipeline.
//===----------------------------------------------------------------------===//

namespace textpipe {

using namespace gilr::rustlib;

class TextTableTest : public ::testing::TestWithParam<std::string> {};

TEST_P(TextTableTest, LowersSameAsProgrammaticTable) {
  PearliteSpecTable Built = makeLinkedListSpecs();
  PearliteSpecTable Text = makeLinkedListSpecsFromText();
  const PearliteSpec *B = Built.lookup(GetParam());
  const PearliteSpec *T = Text.lookup(GetParam());
  ASSERT_NE(B, nullptr);
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(B->Params.size(), T->Params.size());
  EXPECT_EQ(B->HasResult, T->HasResult);

  LowerEnv Env;
  Env.Values["self"] =
      mkTuple({mkVar("cur", Sort::Seq), mkVar("fut", Sort::Seq)});
  Env.IsMutRef["self"] = true;
  Env.Values["x"] = mkVar("xv", Sort::Int);
  Env.ResultVal = mkVar("ret", Sort::Any);

  auto check = [&](const PTermP &A, const PTermP &C) {
    ASSERT_EQ(A == nullptr, C == nullptr);
    if (!A)
      return;
    Outcome<Expr> LA = lowerPearlite(A, Env);
    Outcome<Expr> LC = lowerPearlite(C, Env);
    ASSERT_TRUE(LA.ok()) << LA.error();
    ASSERT_TRUE(LC.ok()) << LC.error();
    EXPECT_TRUE(exprEquals(LA.value(), LC.value()))
        << "built: " << exprToString(LA.value())
        << "\ntext:  " << exprToString(LC.value());
  };
  check(B->Pre, T->Pre);
  // front_mut's programmatic spec and the text spec state the Some-arm
  // length bound with the operands in the same orientation (0 < len).
  check(B->Post, T->Post);
}

INSTANTIATE_TEST_SUITE_P(
    LinkedListContracts, TextTableTest,
    ::testing::Values("LinkedList::new", "LinkedList::push_front",
                      "LinkedList::pop_front", "LinkedList::front_mut",
                      "LinkedList::is_empty", "LinkedList::push_front_node",
                      "LinkedList::pop_front_node"));

TEST(TextPipelineTest, TextContractDrivesGillianSide) {
  // Swap the text-built table in and re-encode push_front_node's spec from
  // it: the unsafe side must still verify the implementation against it.
  auto Lib = buildLinkedListLib(SpecMode::Functional);
  Lib->Contracts = makeLinkedListSpecsFromText();
  engine::VerifEnv Env = Lib->env();
  gilr::hybrid::HybridDriver Driver(Env, Lib->Contracts);
  Outcome<Unit> E = Driver.encodeAndRegister("LinkedList::push_front_node");
  ASSERT_TRUE(E.ok()) << E.error();
  engine::Verifier V(Env);
  engine::VerifyReport R = V.verifyFunction("LinkedList::push_front_node");
  EXPECT_TRUE(R.Ok) << (R.Errors.empty() ? "" : R.Errors.front());
}

TEST(TextPipelineTest, TextContractDrivesCreusotSide) {
  // The safe clients verify against the text-parsed contracts alone.
  auto Lib = buildLinkedListLib(SpecMode::Functional);
  PearliteSpecTable Text = makeLinkedListSpecsFromText();
  creusot::SafeVerifier SV(Text, Lib->Solv);
  for (const creusot::SafeFn &F : makeClients()) {
    creusot::SafeReport R = SV.verify(F);
    EXPECT_TRUE(R.Ok) << F.Name << ": "
                      << (R.Errors.empty() ? "" : R.Errors.front());
  }
}

} // namespace textpipe
