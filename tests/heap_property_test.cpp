//===- tests/heap_property_test.cpp - Layout / heap property sweeps ---------===//
//
// Parameterized sweeps over the layout strategies a conforming compiler may
// pick (Fig. 4): well-formedness of every computed layout, commutation of
// field projections, and heap round-trips that must hold under *any*
// layout because the heap never looks at one.
//
//===----------------------------------------------------------------------===//

#include "heap/ByteHeap.h"
#include "heap/LaidOut.h"
#include "heap/SymHeap.h"
#include "sym/ExprBuilder.h"

#include <gtest/gtest.h>

using namespace gilr;
using namespace gilr::heap;
using namespace gilr::rmir;

namespace {

struct LayoutCase {
  LayoutStrategy Strategy;
  bool Niche;
};

std::string caseName(const ::testing::TestParamInfo<LayoutCase> &Info) {
  std::string S = layoutStrategyName(Info.param.Strategy);
  for (char &C : S)
    if (C == '-')
      C = '_';
  return S + (Info.param.Niche ? "_niche" : "_tagged");
}

class LayoutSweep : public ::testing::TestWithParam<LayoutCase> {
protected:
  LayoutSweep() {
    U8 = Ty.intTy(IntKind::U8);
    U16 = Ty.intTy(IntKind::U16);
    U32 = Ty.intTy(IntKind::U32);
    U64 = Ty.intTy(IntKind::U64);
    Mixed = Ty.declareStruct(
        "Mixed", {FieldDef{"a", U8}, FieldDef{"b", U64}, FieldDef{"c", U16},
                  FieldDef{"d", U32}, FieldDef{"e", Ty.boolTy()}});
    Nested = Ty.declareStruct("Nested",
                              {FieldDef{"m", Mixed}, FieldDef{"n", U8}});
    OptPtr = Ty.optionOf(Ty.rawPtr(Mixed));
    E3 = Ty.declareEnum(
        "E3", {VariantDef{"A", {}},
               VariantDef{"B", {FieldDef{"0", U32}}},
               VariantDef{"C", {FieldDef{"0", U64}, FieldDef{"1", U8}}}});
  }

  TyCtx Ty;
  TypeRef U8, U16, U32, U64, Mixed, Nested, OptPtr, E3;
};

TEST_P(LayoutSweep, FieldsDoNotOverlapAndFitInSize) {
  LayoutEngine L(Ty, GetParam().Strategy, GetParam().Niche);
  for (TypeRef T : {Mixed, Nested}) {
    const ConcreteLayout &CL = L.of(T);
    // Every field is aligned, inside the struct, and disjoint from others.
    for (std::size_t I = 0; I != T->Fields.size(); ++I) {
      uint64_t OffI = CL.FieldOffsets[I];
      uint64_t SizeI = L.sizeOf(T->Fields[I].Ty);
      uint64_t AlignI = L.alignOf(T->Fields[I].Ty);
      EXPECT_EQ(OffI % AlignI, 0u) << T->str() << " field " << I;
      EXPECT_LE(OffI + SizeI, CL.Size);
      for (std::size_t J = I + 1; J != T->Fields.size(); ++J) {
        uint64_t OffJ = CL.FieldOffsets[J];
        uint64_t SizeJ = L.sizeOf(T->Fields[J].Ty);
        EXPECT_TRUE(OffI + SizeI <= OffJ || OffJ + SizeJ <= OffI)
            << T->str() << " fields " << I << "," << J << " overlap";
      }
    }
    EXPECT_EQ(CL.Size % CL.Align, 0u);
  }
}

TEST_P(LayoutSweep, EnumVariantsFitAndTagIsDisjoint) {
  LayoutEngine L(Ty, GetParam().Strategy, GetParam().Niche);
  const ConcreteLayout &CL = L.of(E3);
  ASSERT_FALSE(CL.IsNiche); // E3 is not option-like.
  for (std::size_t V = 0; V != E3->Variants.size(); ++V)
    for (std::size_t F = 0; F != E3->Variants[V].Fields.size(); ++F) {
      uint64_t Off = CL.VariantFieldOffsets[V][F];
      uint64_t Size = L.sizeOf(E3->Variants[V].Fields[F].Ty);
      EXPECT_GE(Off, CL.DiscrOffset + CL.DiscrSize);
      EXPECT_LE(Off + Size, CL.Size);
    }
}

TEST_P(LayoutSweep, ProjectionsCommuteUnderEveryLayout) {
  // §3.1: the interpretation of a projection is the sum of its elements'
  // interpretations, so element order never matters.
  LayoutEngine L(Ty, GetParam().Strategy, GetParam().Niche);
  for (unsigned I = 0; I != 5; ++I)
    for (unsigned J = 0; J != 2; ++J) {
      Projection AB = {ProjElem::field(Mixed, I), ProjElem::field(Nested, J)};
      Projection BA = {ProjElem::field(Nested, J), ProjElem::field(Mixed, I)};
      EXPECT_EQ(interpretProjection(L, AB), interpretProjection(L, BA));
    }
}

TEST_P(LayoutSweep, NicheOnlyForOptionOverPointer) {
  LayoutEngine L(Ty, GetParam().Strategy, GetParam().Niche);
  EXPECT_EQ(L.of(OptPtr).IsNiche, GetParam().Niche);
  EXPECT_EQ(L.sizeOf(OptPtr), GetParam().Niche ? 8u : 16u);
  // Option over a non-pointer never uses the niche.
  TypeRef OptInt = Ty.optionOf(U32);
  EXPECT_FALSE(L.of(OptInt).IsNiche);
}

TEST_P(LayoutSweep, ByteHeapRoundTripsUnderThisLayout) {
  // The fixed-layout baseline works under each layout individually...
  LayoutEngine L(Ty, GetParam().Strategy, GetParam().Niche);
  ByteHeap H(L);
  uint64_t Loc = H.alloc(Mixed);
  for (unsigned I = 0; I != 5; ++I) {
    TypeRef FT = Mixed->Fields[I].Ty;
    ASSERT_TRUE(H.store(Loc, L.fieldOffset(Mixed, I), FT, mkInt(I)).ok());
  }
  for (unsigned I = 0; I != 5; ++I) {
    TypeRef FT = Mixed->Fields[I].Ty;
    Outcome<Expr> V = H.load(Loc, L.fieldOffset(Mixed, I), FT);
    ASSERT_TRUE(V.ok());
    EXPECT_TRUE(exprEquals(V.value(), mkInt(I)));
  }
}

TEST_P(LayoutSweep, SymHeapIsLayoutOblivious) {
  // ...whereas the symbolic heap round-trips identically no matter which
  // layout the parameter of this sweep denotes: it never consults one.
  Solver Solv;
  PathCondition PC;
  VarGen VG;
  HeapCtx Ctx{Solv, PC, VG, Ty};
  SymHeap H;
  Expr P = H.alloc(Mixed, Ctx);
  for (unsigned I = 0; I != 5; ++I) {
    Expr FieldPtr = appendProjElem(P, ProjElem::field(Mixed, I));
    ASSERT_TRUE(
        H.store(FieldPtr, Mixed->Fields[I].Ty, mkInt(I), Ctx).ok());
  }
  for (unsigned I = 0; I != 5; ++I) {
    Expr FieldPtr = appendProjElem(P, ProjElem::field(Mixed, I));
    Outcome<Expr> V = H.load(FieldPtr, Mixed->Fields[I].Ty, false, Ctx);
    ASSERT_TRUE(V.ok());
    EXPECT_TRUE(exprEquals(V.value(), mkInt(I)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, LayoutSweep,
    ::testing::Values(LayoutCase{LayoutStrategy::DeclOrder, true},
                      LayoutCase{LayoutStrategy::DeclOrder, false},
                      LayoutCase{LayoutStrategy::LargestFirst, true},
                      LayoutCase{LayoutStrategy::LargestFirst, false},
                      LayoutCase{LayoutStrategy::SmallestFirst, true},
                      LayoutCase{LayoutStrategy::SmallestFirst, false}),
    caseName);

//===----------------------------------------------------------------------===//
// Laid-out node sweeps
//===----------------------------------------------------------------------===//

class LaidOutSweep : public ::testing::TestWithParam<int> {};

TEST_P(LaidOutSweep, SplitAtEveryConcreteIndexAndReassemble) {
  const int N = 6;
  const int K = GetParam();
  TyCtx Ty;
  TypeRef T = Ty.param("T");
  Solver Solv;
  PathCondition PC;
  VarGen VG;
  HeapCtx Ctx{Solv, PC, VG, Ty};
  SymHeap H;

  std::vector<Expr> Elems;
  for (int I = 0; I != N; ++I)
    Elems.push_back(mkVar("e" + std::to_string(I), Sort::Any));
  Expr S = mkSeqLit(Elems);
  Expr P = VG.fresh("buf", Sort::Tuple);
  ASSERT_TRUE(H.produceArray(P, T, mkInt(N), S, Ctx).ok());

  // Read element K (splits), overwrite it, read the whole array back.
  Expr ElemPtr = appendProjElem(P, heap::ProjElem::offset(T, mkInt(K)));
  Outcome<Expr> V = H.load(ElemPtr, T, false, Ctx);
  ASSERT_TRUE(V.ok());
  EXPECT_TRUE(exprEquals(V.value(), Elems[static_cast<std::size_t>(K)]));

  Expr NewV = mkVar("fresh", Sort::Any);
  ASSERT_TRUE(H.store(ElemPtr, T, NewV, Ctx).ok());
  Outcome<Expr> All = H.consumeArray(P, T, mkInt(N), Ctx);
  ASSERT_TRUE(All.ok());
  std::vector<Expr> Expected = Elems;
  Expected[static_cast<std::size_t>(K)] = NewV;
  EXPECT_TRUE(PC.entails(Solv, mkEq(All.value(), mkSeqLit(Expected))))
      << "K=" << K;
}

INSTANTIATE_TEST_SUITE_P(Indices, LaidOutSweep, ::testing::Range(0, 6));

} // namespace
