//===- tests/flight_test.cpp - Proof flight recorder ------------------------===//
//
// The flight recorder end to end: the journal expression grammar
// round-trips, the timing decorator attributes queries to their obligation,
// the journal captures cache-served and searched queries alike, a 4-worker
// hybrid run's journal replays serially with byte-identical verdicts, warm
// incremental runs journal `cached` markers, env-derived output paths
// create parent directories (with diagnostics on failure), and everything
// is off — zero records, zero report — by default.
//
//===----------------------------------------------------------------------===//

#include "incr/Session.h"
#include "rustlib/Clients.h"
#include "rustlib/LinkedList.h"
#include "sched/Scheduler.h"
#include "solver/Flight.h"
#include "solver/Journal.h"
#include "solver/Replay.h"
#include "solver/Solver.h"
#include "support/Files.h"
#include "support/Metrics.h"
#include "sym/ExprBuilder.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <map>
#include <unistd.h>

using namespace gilr;
using namespace gilr::rustlib;

namespace {

/// Restores a recorder-off state however a test exits.
struct FlightOff {
  ~FlightOff() { flight::reset(); }
};

std::string tempPath(const std::string &Name) {
  return (std::filesystem::temp_directory_path() /
          ("gilr_flight_" + Name + "_" + std::to_string(::getpid())))
      .string();
}

/// Minimal in-test QueryMemo so cache-hit journaling can be exercised
/// without spinning up the scheduler.
class MapMemo : public QueryMemo {
public:
  bool lookup(uint64_t Fp, uint64_t Fp2, QueryVerdict &Out) override {
    auto It = M.find({Fp, Fp2});
    if (It == M.end())
      return false;
    Out = It->second;
    return true;
  }
  void insert(uint64_t Fp, uint64_t Fp2, const QueryVerdict &V) override {
    M[{Fp, Fp2}] = V;
  }

private:
  std::map<std::pair<uint64_t, uint64_t>, QueryVerdict> M;
};

Expr roundTrip(const Expr &E) {
  std::string Err;
  Expr Back = journal::exprFromJournal(journal::exprToJournal(E), &Err);
  EXPECT_TRUE(Back) << "parse failed: " << Err << " for "
                    << journal::exprToJournal(E);
  return Back;
}

void expectRoundTrips(const Expr &E) {
  Expr Back = roundTrip(E);
  ASSERT_TRUE(Back);
  EXPECT_TRUE(exprEquals(E, Back))
      << "round-trip changed " << journal::exprToJournal(E) << " into "
      << journal::exprToJournal(Back);
}

//===----------------------------------------------------------------------===//
// Journal expression grammar
//===----------------------------------------------------------------------===//

TEST(JournalGrammar, LeavesRoundTrip) {
  expectRoundTrips(mkVar("x", Sort::Int));
  expectRoundTrips(mkVar("vals", Sort::Seq));
  expectRoundTrips(mkLftVar("'a"));
  expectRoundTrips(mkInt(0));
  expectRoundTrips(mkInt(-7));
  expectRoundTrips(mkInt((__int128)1 << 100));
  expectRoundTrips(mkReal(Rational(1, 2)));
  expectRoundTrips(mkReal(Rational(-3, 7)));
  expectRoundTrips(mkTrue());
  expectRoundTrips(mkFalse());
  expectRoundTrips(mkUnit());
  expectRoundTrips(mkLoc(42));
  expectRoundTrips(mkNone());
  expectRoundTrips(mkSeqNil());
}

TEST(JournalGrammar, CompoundTermsRoundTrip) {
  Expr X = mkVar("x", Sort::Int), Y = mkVar("y", Sort::Int);
  Expr O = mkVar("o", Sort::Opt);
  Expr S = mkVar("s", Sort::Seq), T = mkVar("t", Sort::Seq);
  Expr B = mkVar("b", Sort::Bool), C = mkVar("c", Sort::Bool);

  expectRoundTrips(mkAnd(mkLt(X, Y), mkIsSome(O)));
  expectRoundTrips(mkOr(mkNot(B), mkImplies(B, C)));
  expectRoundTrips(mkIte(B, mkAdd(X, Y), mkSub(X, Y)));
  expectRoundTrips(mkEq(mkMul(X, Y), mkNeg(X)));
  expectRoundTrips(mkLe(mkSeqLen(S), mkInt(10)));
  expectRoundTrips(mkEq(mkSome(X), O));
  expectRoundTrips(mkEq(mkUnwrap(O), X));
  expectRoundTrips(mkEq(mkSeqConcat(S, mkSeqUnit(X)), T));
  expectRoundTrips(mkEq(mkSeqNth(S, X), mkSeqNth(T, Y)));
  expectRoundTrips(mkEq(mkSeqSub(S, X, Y), T));
  expectRoundTrips(mkEq(mkTuple({X, Y, mkUnit()}), mkVar("p", Sort::Tuple)));
  expectRoundTrips(mkEq(mkTupleGet(mkVar("p", Sort::Tuple), 1), X));
  expectRoundTrips(mkLftIncl(mkLftVar("'a"), mkLftVar("'b")));
  expectRoundTrips(mkEq(mkApp("model", {X, S}, Sort::Seq), T));
}

TEST(JournalGrammar, NamesWithDelimitersRoundTrip) {
  // '|' and '\' in symbol names must survive the |...| quoting.
  expectRoundTrips(mkVar("a|b\\c d(e)", Sort::Int));
  expectRoundTrips(mkApp("odd|name\\", {mkVar("x", Sort::Int)}, Sort::Bool));
}

TEST(JournalGrammar, MalformedInputIsRejectedWithDiagnostics) {
  std::string Err;
  EXPECT_FALSE(journal::exprFromJournal("(and true", &Err));
  EXPECT_FALSE(Err.empty());
  EXPECT_FALSE(journal::exprFromJournal("(bogus-op 1 2)", &Err));
  EXPECT_FALSE(journal::exprFromJournal("(v |x| NoSuchSort)", &Err));
  EXPECT_FALSE(journal::exprFromJournal("(= 1 2) trailing", &Err));
}

TEST(JournalGrammar, RecordsRoundTrip) {
  journal::Record R;
  R.RecKind = journal::Record::Kind::Query;
  R.Obligation = "list::push_front";
  R.Side = 'U';
  R.QueryIdx = 3;
  R.PcSize = 2;
  R.CacheHit = true;
  R.Verdict = 1;
  R.DurationNs = 12345;
  R.Branches = 7;
  R.TheoryChecks = 4;
  R.MaxBranches = 50000;
  R.Fp = 0xdeadbeefcafe1234ull;
  R.Fp2 = 0x0123456789abcdefull;
  R.Assertions = {mkLt(mkVar("x", Sort::Int), mkInt(3)),
                  mkIsSome(mkVar("o", Sort::Opt))};

  journal::Record C;
  C.RecKind = journal::Record::Kind::Cached;
  C.Obligation = "list::pop_front";
  C.Side = 'S';
  C.CachedOk = true;

  std::string Text = std::string(journal::journalMagic()) + "\n" +
                     journal::renderRecord(R) + "\n" +
                     journal::renderRecord(C) + "\n";
  journal::ParsedJournal P = journal::parseJournal(Text);
  EXPECT_TRUE(P.HeaderOk);
  EXPECT_TRUE(P.Errors.empty()) << P.Errors.front();
  ASSERT_EQ(P.Records.size(), 2u);

  const journal::Record &Q = P.Records[0];
  EXPECT_EQ(Q.RecKind, journal::Record::Kind::Query);
  EXPECT_EQ(Q.Obligation, "list::push_front");
  EXPECT_EQ(Q.Side, 'U');
  EXPECT_EQ(Q.QueryIdx, 3u);
  EXPECT_EQ(Q.PcSize, 2u);
  EXPECT_TRUE(Q.CacheHit);
  EXPECT_EQ(Q.Verdict, 1);
  EXPECT_EQ(Q.DurationNs, 12345u);
  EXPECT_EQ(Q.Branches, 7u);
  EXPECT_EQ(Q.TheoryChecks, 4u);
  EXPECT_EQ(Q.MaxBranches, 50000u);
  EXPECT_EQ(Q.Fp, R.Fp);
  EXPECT_EQ(Q.Fp2, R.Fp2);
  ASSERT_EQ(Q.Assertions.size(), 2u);
  EXPECT_TRUE(exprEquals(Q.Assertions[0], R.Assertions[0]));
  EXPECT_TRUE(exprEquals(Q.Assertions[1], R.Assertions[1]));

  EXPECT_EQ(P.Records[1].RecKind, journal::Record::Kind::Cached);
  EXPECT_EQ(P.Records[1].Obligation, "list::pop_front");
  EXPECT_EQ(P.Records[1].Side, 'S');
  EXPECT_TRUE(P.Records[1].CachedOk);
}

TEST(JournalGrammar, BadHeaderIsReported) {
  journal::ParsedJournal P = journal::parseJournal("NOT_A_JOURNAL\n");
  EXPECT_FALSE(P.HeaderOk);
  EXPECT_FALSE(P.Errors.empty());
}

//===----------------------------------------------------------------------===//
// Recorder layers
//===----------------------------------------------------------------------===//

TEST(FlightRecorder, DisabledByDefaultRecordsNothing) {
  FlightOff Off;
  flight::reset();
  metrics::SolverQueriesReport Before =
      metrics::Registry::get().solverQueriesReport();

  Solver S;
  flight::ObligationScope Scope("ignored", 'U');
  EXPECT_EQ(S.checkSat({mkLt(mkVar("x", Sort::Int), mkInt(1))}),
            SatResult::Sat);

  metrics::SolverQueriesReport After =
      metrics::Registry::get().solverQueriesReport();
  EXPECT_EQ(After.Queries, Before.Queries);
  EXPECT_EQ(flight::journalRecordCount(), 0u);
}

TEST(FlightRecorder, TimingAttributesQueriesToObligations) {
  FlightOff Off;
  // Full registry reset so the slowest-query list is empty — this test's
  // micro-queries must be guaranteed slots in it.
  metrics::Registry::get().reset();
  flight::Options O;
  O.Timing = true;
  flight::configure(O);
  metrics::SolverQueriesReport Before =
      metrics::Registry::get().solverQueriesReport();

  Expr X = mkVar("x", Sort::Int);
  Solver S;
  {
    flight::ObligationScope Scope("test::alpha", 'U');
    EXPECT_EQ(S.checkSat({mkLt(X, mkInt(5))}), SatResult::Sat);
    EXPECT_EQ(S.checkSat({mkLt(X, mkInt(2)), mkLt(mkInt(3), X)}),
              SatResult::Unsat);
  }

  metrics::SolverQueriesReport After =
      metrics::Registry::get().solverQueriesReport();
  EXPECT_TRUE(After.Valid);
  EXPECT_EQ(After.Queries, Before.Queries + 2);
  // Both queries were full searches under a named scope; the slowest list
  // must know their provenance and per-scope indices.
  bool SawAlpha0 = false, SawAlpha1 = false;
  for (const metrics::SolverQuerySample &Q : After.Slowest) {
    if (Q.Obligation != "test::alpha")
      continue;
    EXPECT_EQ(Q.Side, 'U');
    SawAlpha0 = SawAlpha0 || Q.QueryIdx == 0;
    SawAlpha1 = SawAlpha1 || Q.QueryIdx == 1;
  }
  EXPECT_TRUE(SawAlpha0);
  EXPECT_TRUE(SawAlpha1);
}

TEST(FlightRecorder, JournalMarksCacheHitsAndReplays) {
  FlightOff Off;
  flight::Options O;
  O.Journal = true;
  flight::configure(O);

  MapMemo Memo;
  QueryMemo *Prev = setQueryMemo(&Memo);
  Expr X = mkVar("x", Sort::Int);
  std::vector<Expr> Q = {mkLt(X, mkInt(2)), mkLt(mkInt(3), X)};
  Solver S;
  {
    flight::ObligationScope Scope("test::memo", 'S');
    EXPECT_EQ(S.checkSat(Q), SatResult::Unsat); // miss: full search
    EXPECT_EQ(S.checkSat(Q), SatResult::Unsat); // hit: memo-served
  }
  setQueryMemo(Prev);

  journal::ParsedJournal P = journal::parseJournal(flight::journalText());
  EXPECT_TRUE(P.HeaderOk);
  ASSERT_EQ(P.Records.size(), 2u);
  EXPECT_FALSE(P.Records[0].CacheHit);
  EXPECT_TRUE(P.Records[1].CacheHit);
  EXPECT_EQ(P.Records[0].Verdict, 1);
  EXPECT_EQ(P.Records[1].Verdict, 1);
  EXPECT_EQ(P.Records[0].QueryIdx, 0u);
  EXPECT_EQ(P.Records[1].QueryIdx, 1u);
  // Work attribution survives the cache: the hit record replays the
  // original search's counters.
  EXPECT_EQ(P.Records[1].Branches, P.Records[0].Branches);
  EXPECT_EQ(P.Records[1].TheoryChecks, P.Records[0].TheoryChecks);

  // The journal replays: both records re-solve to unsat.
  replay::ReplayResult R = replay::replayJournalText(flight::journalText());
  EXPECT_TRUE(R.ok()) << replay::summaryText(R);
  EXPECT_EQ(R.Replayed, 2u);
  EXPECT_EQ(R.Matches, 2u);
  EXPECT_EQ(R.FpMismatches, 0u);
}

TEST(FlightRecorder, ReplayFlagsTamperedVerdicts) {
  FlightOff Off;
  flight::Options O;
  O.Journal = true;
  flight::configure(O);
  Solver S;
  {
    flight::ObligationScope Scope("test::tamper", 'U');
    EXPECT_EQ(S.checkSat({mkLt(mkVar("x", Sort::Int), mkInt(1))}),
              SatResult::Sat);
  }
  std::string Text = flight::journalText();
  std::size_t Pos = Text.find(":verdict sat");
  ASSERT_NE(Pos, std::string::npos);
  Text.replace(Pos, 12, ":verdict unsat");

  replay::ReplayResult R = replay::replayJournalText(Text);
  EXPECT_FALSE(R.ok());
  ASSERT_EQ(R.Divergences.size(), 1u);
  EXPECT_EQ(R.Divergences[0].Obligation, "test::tamper");
  EXPECT_EQ(R.Divergences[0].Recorded, 1);
  EXPECT_EQ(R.Divergences[0].Replayed, 0);
}

//===----------------------------------------------------------------------===//
// Output-file plumbing (env-derived paths)
//===----------------------------------------------------------------------===//

TEST(OutputFiles, ParentDirectoriesAreCreated) {
  std::string Root = tempPath("dirs");
  std::string Nested = Root + "/deep/ly/nested/journal.jrn";
  EXPECT_TRUE(files::writeFile(Nested, "hello\n", "test artifact"));
  std::string Back;
  EXPECT_TRUE(files::readFile(Nested, Back, "test artifact"));
  EXPECT_EQ(Back, "hello\n");
  std::filesystem::remove_all(Root);
}

TEST(OutputFiles, UnwritablePathFailsWithDiagnosticNotSilently) {
  // A path whose "parent directory" is a regular file can never be created;
  // writeFile must return false (and print a diagnostic) instead of
  // dropping the data silently.
  std::string File = tempPath("blocker");
  ASSERT_TRUE(files::writeFile(File, "x", "test artifact"));
  EXPECT_FALSE(
      files::writeFile(File + "/child.jrn", "y", "test artifact"));
  std::filesystem::remove(File);
}

TEST(OutputFiles, JournalFlushHonoursPidPlaceholderAndCreatesDirs) {
  FlightOff Off;
  std::string Root = tempPath("flush");
  flight::Options O;
  O.Journal = true;
  O.JournalFile = Root + "/journals/run_%p.jrn";
  flight::configure(O);
  Solver S;
  {
    flight::ObligationScope Scope("test::flush", 'U');
    EXPECT_EQ(S.checkSat({mkLt(mkVar("x", Sort::Int), mkInt(1))}),
              SatResult::Sat);
  }
  EXPECT_TRUE(flight::flushJournal());
  std::string Expected =
      Root + "/journals/run_" + std::to_string(::getpid()) + ".jrn";
  std::string Text;
  ASSERT_TRUE(files::readFile(Expected, Text, "flushed journal"));
  journal::ParsedJournal P = journal::parseJournal(Text);
  EXPECT_TRUE(P.HeaderOk);
  EXPECT_EQ(P.Records.size(), 1u);
  std::filesystem::remove_all(Root);
}

//===----------------------------------------------------------------------===//
// End-to-end: scheduled runs
//===----------------------------------------------------------------------===//

class FlightE2ETest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    Lib = buildLinkedListLib(SpecMode::Functional).release();
  }
  static void TearDownTestSuite() {
    delete Lib;
    Lib = nullptr;
  }
  static LinkedListLib *Lib;
};

LinkedListLib *FlightE2ETest::Lib = nullptr;

/// Blanks the fields that legitimately differ between runs of the same
/// input: wall-clock durations and cache-hit markers (which query hits the
/// shared cache depends on scheduling).
std::string stripNondeterministicFields(const std::string &Journal) {
  std::string Out;
  std::size_t Pos = 0;
  while (Pos < Journal.size()) {
    std::size_t Nl = Journal.find('\n', Pos);
    if (Nl == std::string::npos)
      Nl = Journal.size();
    std::string Line = Journal.substr(Pos, Nl - Pos);
    for (const char *Key : {" :cached ", " :ns "}) {
      std::size_t K = Line.find(Key);
      if (K == std::string::npos)
        continue;
      std::size_t ValBegin = K + std::string(Key).size();
      std::size_t ValEnd = Line.find(' ', ValBegin);
      if (ValEnd == std::string::npos)
        ValEnd = Line.size();
      Line.erase(K, ValEnd - K);
    }
    Out += Line;
    Out += '\n';
    Pos = Nl + 1;
  }
  return Out;
}

TEST_F(FlightE2ETest, FourWorkerJournalIsDeterministicAndReplaysSerially) {
  FlightOff Off;
  std::vector<std::string> Funcs = functionalFunctions();
  std::vector<creusot::SafeFn> Clients = makeClients();

  flight::Options O;
  O.Journal = true;

  // 4-worker scheduled run.
  flight::configure(O);
  sched::SchedulerConfig Par;
  Par.Threads = 4;
  engine::VerifEnv ParEnv = Lib->env();
  hybrid::HybridDriver ParDriver(ParEnv, Lib->Contracts);
  ASSERT_TRUE(ParDriver.run(Funcs, Clients, Par).ok());
  std::string ParJournal = flight::journalText();

  // Serial scheduled run of the same input.
  flight::configure(O); // clears the buffer
  sched::SchedulerConfig Serial;
  Serial.Threads = 1;
  engine::VerifEnv SerialEnv = Lib->env();
  hybrid::HybridDriver SerialDriver(SerialEnv, Lib->Contracts);
  ASSERT_TRUE(SerialDriver.run(Funcs, Clients, Serial).ok());
  std::string SerialJournal = flight::journalText();
  flight::reset();

  // Deterministic ordering: modulo durations and cache-hit markers, the
  // 4-worker journal is byte-identical to the serial one.
  EXPECT_EQ(stripNondeterministicFields(ParJournal),
            stripNondeterministicFields(SerialJournal));

  // The 4-worker journal replays serially with byte-identical verdicts:
  // every definite verdict matches, nothing diverges.
  replay::ReplayResult R = replay::replayJournalText(ParJournal);
  EXPECT_TRUE(R.ok()) << replay::summaryText(R);
  EXPECT_GT(R.TotalQueries, 0u);
  EXPECT_EQ(R.Replayed, R.TotalQueries);
  EXPECT_EQ(R.Matches + R.Improved, R.Replayed);
  EXPECT_TRUE(R.Divergences.empty());

  // Filters restrict the replayed set.
  replay::ReplayOptions Slow;
  Slow.SlowestN = 3;
  replay::ReplayResult RS = replay::replayJournalText(ParJournal, Slow);
  EXPECT_TRUE(RS.ok()) << replay::summaryText(RS);
  EXPECT_EQ(RS.Replayed, 3u);
}

TEST_F(FlightE2ETest, WarmIncrementalRunJournalsCachedMarkers) {
  FlightOff Off;
  std::string Path = tempPath("incr_store");
  incr::IncrConfig Inc;
  Inc.Enabled = true;
  Inc.StorePath = Path;
  sched::SchedulerConfig C;
  std::vector<std::string> Funcs = functionalFunctions();
  std::vector<creusot::SafeFn> Clients = makeClients();

  flight::Options O;
  O.Journal = true;

  // Cold run populates the store; its journal holds real query records and
  // no cached markers.
  flight::configure(O);
  engine::VerifEnv E1 = Lib->env();
  hybrid::HybridDriver D1(E1, Lib->Contracts);
  ASSERT_TRUE(D1.run(Funcs, Clients, C, Inc).ok());
  journal::ParsedJournal Cold = journal::parseJournal(flight::journalText());
  std::size_t ColdCached = 0;
  for (const journal::Record &R : Cold.Records)
    ColdCached += R.RecKind == journal::Record::Kind::Cached;
  EXPECT_EQ(ColdCached, 0u);
  EXPECT_GT(Cold.Records.size(), 0u);

  // Warm run: every obligation replays from the store — the journal must
  // say so with cached markers instead of re-solved queries.
  flight::configure(O);
  engine::VerifEnv E2 = Lib->env();
  hybrid::HybridDriver D2(E2, Lib->Contracts);
  ASSERT_TRUE(D2.run(Funcs, Clients, C, Inc).ok());
  journal::ParsedJournal Warm = journal::parseJournal(flight::journalText());
  flight::reset();

  std::size_t WarmLint = 0, WarmUnsafe = 0, WarmSafe = 0, WarmQueries = 0;
  for (const journal::Record &R : Warm.Records) {
    if (R.RecKind == journal::Record::Kind::Cached) {
      EXPECT_TRUE(R.CachedOk);
      switch (R.Side) {
      case 'L': ++WarmLint; break;
      case 'U': ++WarmUnsafe; break;
      case 'S': ++WarmSafe; break;
      default: ADD_FAILURE() << "unexpected side " << R.Side;
      }
    } else {
      ++WarmQueries;
    }
  }
  // Every obligation of the run replays from the store: one lint and one
  // proof marker per unsafe function, one proof marker per safe client —
  // and not a single query is re-solved.
  EXPECT_EQ(WarmLint, Funcs.size());
  EXPECT_EQ(WarmUnsafe, Funcs.size());
  EXPECT_EQ(WarmSafe, Clients.size());
  EXPECT_EQ(WarmQueries, 0u);

  std::remove(Path.c_str());
}

} // namespace
