//===- tests/heap_projection_test.cpp - Layout-independent addresses (§3.1) -===//

#include "heap/Projection.h"
#include "rmir/Layout.h"
#include "sym/ExprBuilder.h"
#include "sym/Printer.h"
#include "sym/Subst.h"

#include <gtest/gtest.h>

using namespace gilr;
using namespace gilr::heap;
using namespace gilr::rmir;

namespace {

class ProjectionTest : public ::testing::Test {
protected:
  ProjectionTest() {
    S = Ty.declareStruct("S", {FieldDef{"x", Ty.intTy(IntKind::U32)},
                               FieldDef{"y", Ty.intTy(IntKind::U64)}});
    Inner = Ty.declareStruct("In", {FieldDef{"a", Ty.intTy(IntKind::U8)},
                                    FieldDef{"b", Ty.intTy(IntKind::U16)}});
    Outer = Ty.declareStruct("Out", {FieldDef{"i", Inner},
                                     FieldDef{"j", Ty.intTy(IntKind::U64)}});
    E = Ty.declareEnum("E",
                       {VariantDef{"A", {}},
                        VariantDef{"B", {FieldDef{"0", Ty.usize()}}}});
  }

  TyCtx Ty;
  TypeRef S, Inner, Outer, E;
};

TEST_F(ProjectionTest, EncodeDecodeRoundTrip) {
  Projection P = {ProjElem::field(S, 1),
                  ProjElem::offset(Ty.intTy(IntKind::U64), mkInt(3)),
                  ProjElem::variantField(E, 1, 0)};
  Expr Ptr = encodePtr(mkLoc(42), P);
  auto DP = decodePtr(Ptr, Ty);
  ASSERT_TRUE(DP.has_value());
  EXPECT_EQ(DP->Loc->LocId, 42u);
  ASSERT_EQ(DP->Proj.size(), 3u);
  EXPECT_EQ(DP->Proj[0].Kind, ProjElem::Field);
  EXPECT_EQ(DP->Proj[0].Ty, S);
  EXPECT_EQ(DP->Proj[0].Index, 1u);
  EXPECT_EQ(DP->Proj[1].Kind, ProjElem::Offset);
  EXPECT_EQ(DP->Proj[1].Count->IntVal, 3);
  EXPECT_EQ(DP->Proj[2].Variant, 1u);
}

TEST_F(ProjectionTest, OpaquePointersDoNotDecode) {
  EXPECT_FALSE(decodePtr(mkVar("p", Sort::Tuple), Ty).has_value());
  // A pointer with a symbolic projection tail does not decode either.
  Expr Weird = mkTuple({mkLoc(1), mkVar("proj", Sort::Seq)});
  EXPECT_FALSE(decodePtr(Weird, Ty).has_value());
}

TEST_F(ProjectionTest, AppendProjElemComposes) {
  Expr Base = encodePtr(mkLoc(7), {ProjElem::field(Outer, 0)});
  Expr Extended = appendProjElem(Base, ProjElem::field(Inner, 1));
  auto DP = decodePtr(Extended, Ty);
  ASSERT_TRUE(DP.has_value());
  ASSERT_EQ(DP->Proj.size(), 2u);
  EXPECT_EQ(DP->Proj[1].Ty, Inner);
  EXPECT_EQ(DP->Proj[1].Index, 1u);
}

TEST_F(ProjectionTest, AppendToOpaquePointerStaysSymbolic) {
  Expr Base = mkVar("p", Sort::Tuple);
  Expr Extended = appendProjElem(Base, ProjElem::field(S, 0));
  // No decode, but the shape is (loc-component, proj-concat).
  EXPECT_FALSE(decodePtr(Extended, Ty).has_value());
  EXPECT_EQ(Extended->Kind, ExprKind::TupleLit);
}

TEST_F(ProjectionTest, InterpretationDependsOnLayout) {
  // The same projection .S 1 lands at different byte offsets under the two
  // orderings — the heart of Fig. 4.
  LayoutEngine Large(Ty, LayoutStrategy::LargestFirst);
  LayoutEngine Small(Ty, LayoutStrategy::SmallestFirst);
  Projection P = {ProjElem::field(S, 1)};
  EXPECT_EQ(interpretProjection(Large, P), 0u);
  EXPECT_EQ(interpretProjection(Small, P), 8u);
}

TEST_F(ProjectionTest, FieldProjectionsCommute) {
  // §3.1: [.T i, .U j] and [.U j, .T i] have equal interpretations under
  // every layout, because interpretation is a sum.
  for (LayoutStrategy Strat :
       {LayoutStrategy::DeclOrder, LayoutStrategy::LargestFirst,
        LayoutStrategy::SmallestFirst}) {
    LayoutEngine L(Ty, Strat);
    Projection AB = {ProjElem::field(Outer, 0), ProjElem::field(Inner, 1)};
    Projection BA = {ProjElem::field(Inner, 1), ProjElem::field(Outer, 0)};
    EXPECT_EQ(interpretProjection(L, AB), interpretProjection(L, BA))
        << "strategy " << layoutStrategyName(Strat);
  }
}

TEST_F(ProjectionTest, OffsetScalesBySize) {
  LayoutEngine L(Ty, LayoutStrategy::DeclOrder);
  Projection P = {ProjElem::offset(Ty.intTy(IntKind::U64), mkInt(3))};
  EXPECT_EQ(interpretProjection(L, P), 24u);
  Projection PS = {ProjElem::offset(S, mkInt(2))};
  EXPECT_EQ(interpretProjection(L, PS), 2 * L.sizeOf(S));
}

TEST_F(ProjectionTest, SymbolicInterpretation) {
  LayoutEngine L(Ty, LayoutStrategy::DeclOrder);
  Expr N = mkVar("n", Sort::Int);
  Projection P = {ProjElem::offset(Ty.intTy(IntKind::U32), N),
                  ProjElem::field(S, 0)};
  Expr Off = interpretProjectionExpr(L, P);
  // 4*n + fieldOffset(S, 0).
  Subst Sub;
  Sub.bind("n", mkInt(5));
  Expr Concrete = Sub.apply(Off);
  ASSERT_EQ(Concrete->Kind, ExprKind::IntLit);
  EXPECT_EQ(static_cast<uint64_t>(Concrete->IntVal),
            20 + L.fieldOffset(S, 0));
}

TEST_F(ProjectionTest, PointerEqualityIsStructural) {
  Projection P = {ProjElem::field(S, 0)};
  Expr A = encodePtr(mkLoc(1), P);
  Expr B = encodePtr(mkLoc(1), P);
  EXPECT_TRUE(isTrueLit(mkEq(A, B)));
  Expr C = encodePtr(mkLoc(2), P);
  EXPECT_TRUE(isFalseLit(mkEq(A, C)));
}

TEST_F(ProjectionTest, ElemStringsAreReadable) {
  ProjElem F = ProjElem::field(S, 1);
  EXPECT_EQ(F.str(), ".<S> 1");
  ProjElem O = ProjElem::offset(Ty.intTy(IntKind::U32), mkInt(2));
  EXPECT_EQ(O.str(), "+<u32> 2");
  ProjElem V = ProjElem::variantField(E, 1, 0);
  EXPECT_EQ(V.str(), ".<E> 1.0");
}

} // namespace
