//===- tests/telemetry_schema_test.cpp - Stats JSON schema golden ----------===//
//
// Locks the top-level shape of the telemetry stats JSON
// (trace::renderStatsJson). Downstream consumers — the bench trend
// aggregator (bench/bench_all.cpp), CI dashboards — key into this document
// by name; a renamed or dropped section must fail a test, not silently
// produce empty trend data.
//
// The golden key set is exact: adding a section is also a (deliberate,
// test-updating) schema change, because the aggregator's merge functions
// need to learn about it.
//
//===----------------------------------------------------------------------===//

#include "hybrid/Driver.h"
#include "incr/Session.h"
#include "rustlib/Clients.h"
#include "rustlib/LinkedList.h"
#include "sched/Scheduler.h"
#include "solver/Flight.h"
#include "support/Json.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace gilr;
using namespace gilr::rustlib;

namespace {

TEST(TelemetrySchema, TopLevelKeysAreExactlyTheDocumentedSet) {
  // A full run with every telemetry source active: a scheduled hybrid run
  // (validates the query-cache snapshot and, via the default-enabled lint
  // pre-pass, the analysis summary) with an incremental store (validates
  // the incremental summary) under the flight recorder's timing decorator
  // (validates solver_queries).
  metrics::Registry::get().reset();
  flight::Options FO;
  FO.Timing = true;
  flight::configure(FO);

  std::unique_ptr<LinkedListLib> Lib =
      buildLinkedListLib(SpecMode::Functional);
  engine::VerifEnv Env = Lib->env();
  hybrid::HybridDriver Driver(Env, Lib->Contracts);
  sched::SchedulerConfig C;
  incr::IncrConfig IC;
  IC.Enabled = true;
  IC.StorePath = ::testing::TempDir() + "gilr_telemetry_schema.prf";
  std::remove(IC.StorePath.c_str());
  ASSERT_TRUE(Driver.run(functionalFunctions(), makeClients(), C, IC).ok());
  flight::reset();
  std::remove(IC.StorePath.c_str());

  std::string Text =
      trace::renderStatsJson({"{\"name\": \"golden-case\", \"ok\": true}"});
  std::string Err;
  json::ValuePtr Doc = json::parse(Text, &Err);
  ASSERT_TRUE(Doc) << Err << "\n" << Text;
  ASSERT_TRUE(Doc->isObject()) << Text;

  const std::vector<std::string> Golden = {
      "analysis",      "cases",
      "counters",      "incremental",
      "interproc",     "phases",
      "query_cache",   "schema",
      "solver",        "solver_latency_log2_ns",
      "solver_queries",
  };
  EXPECT_EQ(Doc->keys(), Golden)
      << "top-level stats-JSON schema changed; update this golden set AND "
         "teach bench/bench_all.cpp about the change\n"
      << Text;

  ASSERT_TRUE(Doc->at("schema"));
  EXPECT_EQ(Doc->at("schema")->Str, "gilr-telemetry-v1");

  // Section members the aggregator keys into.
  for (const char *Path :
       {"solver.sat_queries", "solver.entail_queries", "solver.branches",
        "solver.theory_checks", "query_cache.hits", "query_cache.hit_rate",
        "analysis.entities", "analysis.errors", "analysis.seconds",
        "solver_queries.queries", "solver_queries.cache_hits",
        "solver_queries.total_ns", "solver_queries.max_ns",
        "solver_queries.journal_records", "incremental.cached",
        "incremental.verified", "incremental.salvaged",
        "incremental.implied", "incremental.salvage_queries",
        "incremental.compactions", "interproc.fn_summaries",
        "interproc.pred_summaries", "interproc.summaries_computed",
        "interproc.summaries_reused", "interproc.triaged_static",
        "interproc.seconds"}) {
    json::ValuePtr V = Doc->at(Path);
    ASSERT_TRUE(V) << Path;
    EXPECT_TRUE(V->isNumber()) << Path;
  }
  for (const char *Path :
       {"query_cache.shards", "solver_queries.latency_log2_ns",
        "solver_queries.slowest", "solver_latency_log2_ns", "phases",
        "cases"}) {
    json::ValuePtr V = Doc->at(Path);
    ASSERT_TRUE(V) << Path;
    EXPECT_TRUE(V->isArray()) << Path;
  }
  ASSERT_EQ(Doc->at("cases")->Arr.size(), 1u);

  // Slowest entries carry full provenance.
  json::ValuePtr Slowest = Doc->at("solver_queries.slowest");
  ASSERT_FALSE(Slowest->Arr.empty());
  const std::vector<std::string> SampleKeys = {
      "cache_hit", "duration_ns", "fp",   "obligation",
      "pc_size",   "query_idx",   "side", "verdict",
  };
  EXPECT_EQ(Slowest->Arr.front()->keys(), SampleKeys);
}

TEST(TelemetrySchema, FlightSectionIsOmittedWhenRecorderNeverRan) {
  metrics::Registry::get().reset();
  flight::reset();
  std::string Text = trace::renderStatsJson();
  std::string Err;
  json::ValuePtr Doc = json::parse(Text, &Err);
  ASSERT_TRUE(Doc) << Err;
  ASSERT_TRUE(Doc->isObject());
  for (const std::string &K : Doc->keys())
    EXPECT_NE(K, "solver_queries");
}

} // namespace
