//===- tools/gilr_export.cpp - Regenerating the .gilr corpus ----------------===//
///
/// \file
/// Builds the case-study libraries (LinkedList, Stack, Vec and the safe
/// clients) through the builder APIs and prints each as a .gilr module via
/// the frontend printer — the source of truth for examples/corpus/.
/// frontend_test checks that parsing these files reproduces the builder
/// state (identical verdicts, fingerprint-stable round trip).
///
/// Usage: gilr-export OUTDIR
///
//===----------------------------------------------------------------------===//

#include "frontend/Printer.h"
#include "rustlib/Clients.h"
#include "rustlib/LinkedList.h"
#include "rustlib/Stack.h"
#include "rustlib/Vec.h"
#include "support/Files.h"

#include <iostream>
#include <variant>

using namespace gilr;

namespace {

/// Splits a registered lemma table back into the declaration lists the
/// printer (and the .gilr grammar) works with.
void collectLemmas(const engine::LemmaTable &T,
                   std::vector<engine::FreezeLemma> &Freezes,
                   std::vector<engine::ExtractLemma> &Extracts) {
  for (const std::string &N : T.names()) {
    const std::variant<engine::FreezeLemma, engine::ExtractLemma> *V =
        T.lookup(N);
    if (!V)
      continue;
    if (const auto *F = std::get_if<engine::FreezeLemma>(V))
      Freezes.push_back(*F);
    else
      Extracts.push_back(std::get<engine::ExtractLemma>(*V));
  }
}

bool emit(const std::string &Dir, const std::string &Name,
          const frontend::PrintInput &In) {
  std::string Path = Dir + "/" + Name + ".gilr";
  if (!files::writeFile(Path, frontend::printGilr(In), "corpus module"))
    return false;
  std::cout << "wrote " << Path << "\n";
  return true;
}

const creusot::PearliteSpecTable &emptyContracts() {
  static const creusot::PearliteSpecTable T;
  return T;
}

const std::vector<creusot::SafeFn> &noClients() {
  static const std::vector<creusot::SafeFn> V;
  return V;
}

bool exportLinkedList(const std::string &Dir) {
  bool Ok = true;

  // E1: type safety, unsafe side only.
  {
    auto L = rustlib::buildLinkedListLib(rustlib::SpecMode::TypeSafety);
    std::vector<engine::FreezeLemma> Fr;
    std::vector<engine::ExtractLemma> Ex;
    collectLemmas(L->Lemmas, Fr, Ex);
    std::vector<std::string> Verify = rustlib::typeSafetyFunctions();
    Ok &= emit(Dir, "linkedlist_safety",
               {L->Prog, L->Preds, L->Specs, L->Contracts, noClients(), Fr,
                Ex, L->Auto, Verify});

    // The negative corpus: buggy push_front_node variants that must fail.
    std::vector<std::string> Buggy = rustlib::registerBuggyVariants(*L);
    Ok &= emit(Dir, "linkedlist_buggy",
               {L->Prog, L->Preds, L->Specs, L->Contracts, noClients(), Fr,
                Ex, L->Auto, Buggy});
  }

  // E2: functional correctness plus the passing hybrid clients.
  {
    auto L = rustlib::buildLinkedListLib(rustlib::SpecMode::Functional);
    std::vector<engine::FreezeLemma> Fr;
    std::vector<engine::ExtractLemma> Ex;
    collectLemmas(L->Lemmas, Fr, Ex);

    std::vector<creusot::SafeFn> Passing = rustlib::makeClients();
    std::vector<std::string> Verify = rustlib::functionalFunctions();
    for (const creusot::SafeFn &C : Passing)
      Verify.push_back(C.Name);
    Ok &= emit(Dir, "linkedlist_functional",
               {L->Prog, L->Preds, L->Specs, L->Contracts, Passing, Fr, Ex,
                L->Auto, Verify});

    // Clients whose verification must fail (exit code 1).
    std::vector<creusot::SafeFn> Failing = {rustlib::makeBadClient()};
    std::vector<std::string> VerifyBad;
    for (const creusot::SafeFn &C : Failing)
      VerifyBad.push_back(C.Name);
    Ok &= emit(Dir, "clients_bad",
               {L->Prog, L->Preds, L->Specs, L->Contracts, Failing, Fr, Ex,
                L->Auto, VerifyBad});
  }
  return Ok;
}

bool exportStack(const std::string &Dir) {
  bool Ok = true;
  const std::pair<rustlib::StackSpecMode, const char *> Modes[] = {
      {rustlib::StackSpecMode::TypeSafety, "stack_safety"},
      {rustlib::StackSpecMode::Functional, "stack_functional"},
  };
  for (const auto &[Mode, Name] : Modes) {
    auto L = rustlib::buildStackLib(Mode);
    std::vector<engine::FreezeLemma> Fr;
    std::vector<engine::ExtractLemma> Ex;
    collectLemmas(L->Lemmas, Fr, Ex);
    std::vector<std::string> Verify = rustlib::stackFunctions();
    Ok &= emit(Dir, Name,
               {L->Prog, L->Preds, L->Specs, L->Contracts, noClients(), Fr,
                Ex, L->Auto, Verify});
  }
  return Ok;
}

bool exportVec(const std::string &Dir) {
  auto L = rustlib::buildVecLib();
  std::vector<engine::FreezeLemma> Fr;
  std::vector<engine::ExtractLemma> Ex;
  collectLemmas(L->Lemmas, Fr, Ex);
  std::vector<std::string> Verify = rustlib::vecFunctions();
  return emit(Dir, "vec",
              {L->Prog, L->Preds, L->Specs, emptyContracts(), noClients(),
               Fr, Ex, L->Auto, Verify});
}

} // namespace

int main(int argc, char **argv) {
  if (argc != 2) {
    std::cerr << "usage: gilr-export OUTDIR\n";
    return 2;
  }
  std::string Dir = argv[1];
  bool Ok = exportLinkedList(Dir) && exportStack(Dir) && exportVec(Dir);
  return Ok ? 0 : 1;
}
