//===- tools/gilr.cpp - The gilr command-line tool --------------------------===//
///
/// \file
/// Thin main over frontend::runCli. See src/frontend/Cli.h for the
/// subcommands, flags and exit-code contract, docs/FRONTEND.md for the
/// .gilr grammar.
///
//===----------------------------------------------------------------------===//

#include "frontend/Cli.h"

#include <iostream>

int main(int argc, char **argv) {
  std::vector<std::string> Args(argv + 1, argv + argc);
  return gilr::frontend::runCli(Args, std::cout, std::cerr);
}
