//===- tools/gilrd.cpp - The gilr verification daemon -----------------------===//
///
/// \file
/// Long-lived verification-as-a-service daemon: listens on a Unix-domain
/// socket for gilr-server-v1 requests (`gilr client ...`), keeping the
/// interned expression tables, solver query cache and shared
/// content-addressed proof cache warm across submissions. See
/// docs/SERVER.md for the protocol and cache layout.
///
//===----------------------------------------------------------------------===//

#include "server/Client.h"
#include "server/Server.h"

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

using namespace gilr;

namespace {

const char *Usage =
    "usage: gilrd [options]\n"
    "\n"
    "options:\n"
    "  --socket PATH        listen socket (default $GILRD_SOCKET or\n"
    "                       /tmp/gilrd.sock)\n"
    "  --cache-dir DIR      shared content-addressed proof cache directory\n"
    "                       (empty = per-process memory only)\n"
    "  --cache-budget N     cache size budget in bytes (0 = unbounded)\n"
    "  --jobs N             default scheduler threads per request\n"
    "  --timeout-ms N       default per-job budget for requests\n"
    "  --max-queued N       global admission queue depth (default 64)\n"
    "  --client-queued N    per-client admission budget (default 8)\n"
    "\n"
    "The daemon serves one verify run at a time (parallelism lives inside\n"
    "a run via --jobs); shut it down with `gilr client --shutdown` or\n"
    "SIGINT/SIGTERM.\n";

server::Server *ActiveServer = nullptr;

void onSignal(int) {
  if (ActiveServer)
    ActiveServer->requestStopAsync();
}

bool parseU64(const std::string &S, uint64_t &Out) {
  try {
    Out = std::stoull(S);
    return true;
  } catch (...) {
    return false;
  }
}

} // namespace

int main(int argc, char **argv) {
  std::vector<std::string> Args(argv + 1, argv + argc);
  server::ServerConfig Cfg;
  Cfg.SocketPath = server::defaultSocketPath();
  for (std::size_t I = 0; I < Args.size(); ++I) {
    const std::string &A = Args[I];
    auto Value = [&](const char *Flag) -> const std::string * {
      if (I + 1 >= Args.size()) {
        std::cerr << "gilrd: " << Flag << " needs a value\n" << Usage;
        return nullptr;
      }
      return &Args[++I];
    };
    uint64_t N = 0;
    if (A == "--help" || A == "-h") {
      std::cout << Usage;
      return 0;
    } else if (A == "--socket") {
      const std::string *V = Value("--socket");
      if (!V)
        return 2;
      Cfg.SocketPath = *V;
    } else if (A == "--cache-dir") {
      const std::string *V = Value("--cache-dir");
      if (!V)
        return 2;
      Cfg.CacheDir = *V;
    } else if (A == "--cache-budget") {
      const std::string *V = Value("--cache-budget");
      if (!V || !parseU64(*V, Cfg.CacheBudgetBytes))
        return 2;
    } else if (A == "--jobs") {
      const std::string *V = Value("--jobs");
      if (!V || !parseU64(*V, N))
        return 2;
      Cfg.Jobs = N ? static_cast<unsigned>(N) : 1;
    } else if (A == "--timeout-ms") {
      const std::string *V = Value("--timeout-ms");
      if (!V || !parseU64(*V, Cfg.RequestTimeoutMs))
        return 2;
    } else if (A == "--max-queued") {
      const std::string *V = Value("--max-queued");
      if (!V || !parseU64(*V, N))
        return 2;
      Cfg.Admission.MaxQueued = static_cast<unsigned>(N);
    } else if (A == "--client-queued") {
      const std::string *V = Value("--client-queued");
      if (!V || !parseU64(*V, N))
        return 2;
      Cfg.Admission.PerClientMaxQueued = static_cast<unsigned>(N);
    } else {
      std::cerr << "gilrd: unknown option '" << A << "'\n" << Usage;
      return 2;
    }
  }

  server::Server Daemon(Cfg);
  std::string Err;
  if (!Daemon.start(Err)) {
    std::cerr << "gilrd: " << Err << "\n";
    return 1;
  }
  ActiveServer = &Daemon;
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  std::cerr << "gilrd: listening on " << Cfg.SocketPath
            << (Cfg.CacheDir.empty() ? ""
                                     : " (cache " + Cfg.CacheDir + ")")
            << "\n";
  Daemon.serve();
  std::cerr << "gilrd: served " << Daemon.requestsServed()
            << " requests, shutting down\n";
  ActiveServer = nullptr;
  return 0;
}
