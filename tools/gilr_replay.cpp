//===- tools/gilr_replay.cpp - Offline query journal replay ----------------===//
//
// gilr-replay: re-runs a proof flight recorder journal (GILR_JOURNAL=...)
// against the in-tree solver and diffs the verdicts. See docs/TELEMETRY.md
// ("Debugging a slow proof") for the workflow.
//
//   gilr-replay [--diff] [--obligation NAME] [--slowest N] [--limit N]
//               <journal-file>
//
//   --diff            exit non-zero if any definite verdict diverges (also
//                     the default; the flag exists for self-documenting CI
//                     invocations).
//   --obligation NAME replay only queries of the named obligation.
//   --slowest N       replay only the N slowest recorded queries.
//   --limit N         hard cap on replayed queries after filtering.
//
// Exit status: 0 on clean replay, 1 on verdict divergence or journal parse
// error, 2 on usage / I/O error.
//
//===----------------------------------------------------------------------===//

#include "solver/Replay.h"
#include "support/Files.h"

#include <cstdio>
#include <cstdlib>
#include <string>

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--diff] [--obligation NAME] [--slowest N] "
               "[--limit N] <journal-file>\n",
               Argv0);
  return 2;
}

bool parseCount(const char *S, std::size_t &Out) {
  char *End = nullptr;
  unsigned long long V = std::strtoull(S, &End, 10);
  if (!End || *End != '\0')
    return false;
  Out = (std::size_t)V;
  return true;
}

} // namespace

int main(int argc, char **argv) {
  gilr::replay::ReplayOptions Opts;
  std::string JournalPath;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--diff") {
      // Divergences always gate the exit status; accepted for explicitness.
    } else if (Arg == "--obligation" && I + 1 < argc) {
      Opts.ObligationFilter = argv[++I];
    } else if (Arg == "--slowest" && I + 1 < argc) {
      if (!parseCount(argv[++I], Opts.SlowestN))
        return usage(argv[0]);
    } else if (Arg == "--limit" && I + 1 < argc) {
      if (!parseCount(argv[++I], Opts.Limit))
        return usage(argv[0]);
    } else if (!Arg.empty() && Arg[0] == '-') {
      return usage(argv[0]);
    } else if (JournalPath.empty()) {
      JournalPath = Arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (JournalPath.empty())
    return usage(argv[0]);

  std::string Text;
  if (!gilr::files::readFile(JournalPath, Text, "query journal"))
    return 2;

  gilr::replay::ReplayResult R =
      gilr::replay::replayJournalText(Text, Opts);
  std::fputs(gilr::replay::summaryText(R).c_str(), stdout);
  return R.ok() ? 0 : 1;
}
