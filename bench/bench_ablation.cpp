//===- bench/bench_ablation.cpp - A1: what the automation buys (§4.2) -------===//
//
// The paper's central automation claim: once the safety invariant is
// specified, borrow opening/closing and predicate folding are automatic.
// This harness turns each automation layer off and reports which proofs
// survive — the ablation DESIGN.md calls A1. With AutoBorrow off, the
// pop_front proof fails exactly where VeriFast-style manual borrow
// management would demand an annotation (§8 comparison).
//
//===----------------------------------------------------------------------===//

#include "rustlib/LinkedList.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include "support/Trace.h"

using namespace gilr;
using namespace gilr::rustlib;

namespace {

struct Config {
  const char *Name;
  bool AutoUnfold;
  bool AutoBorrow;
  bool AutoClose;
};

const Config Configs[] = {
    {"full automation", true, true, true},
    {"no auto-unfold", false, true, true},
    {"no auto-borrow", true, false, true},
    {"no auto-close", true, true, false},
};

} // namespace

static void printTable() {
  // The node-level functions manipulate the heap directly, so they expose
  // each automation layer; the wrappers go through callee specs.
  // replace_front carries no mutref_auto_resolve! ghost, so it is the
  // function that genuinely depends on automatic borrow closing; the node
  // functions and front_mut close their borrows explicitly via the tactic.
  std::vector<std::string> Funcs = {
      "LinkedList::new", "LinkedList::push_front_node",
      "LinkedList::pop_front_node", "LinkedList::front_mut",
      "LinkedList::replace_front"};
  std::printf("\n=== A1: automation ablation on LinkedList type safety "
              "===\n");
  std::printf("%-18s", "configuration");
  for (const std::string &Name : Funcs)
    std::printf(" %-16s", Name.substr(Name.find("::") + 2).c_str());
  std::printf("\n");

  for (const Config &C : Configs) {
    auto Lib = buildLinkedListLib(SpecMode::TypeSafety);
    Lib->Auto.AutoUnfold = C.AutoUnfold;
    Lib->Auto.AutoBorrow = C.AutoBorrow;
    Lib->Auto.AutoCloseAtReturn = C.AutoClose;
    engine::VerifEnv Env = Lib->env();
    engine::Verifier V(Env);
    std::printf("%-18s", C.Name);
    for (const std::string &Name : Funcs) {
      engine::VerifyReport R = V.verifyFunction(Name);
      std::printf(" %-16s", R.Ok ? "ok" : "FAILS");
    }
    std::printf("\n");
  }
  std::printf("=> the guarded-predicate encoding (§4.2) is what lets the "
              "existing fold/unfold heuristics open borrows: without it "
              "(no auto-borrow) the pointer-manipulating functions need "
              "manual gunfold/gfold annotations, as in VeriFast (§8).\n\n");
}

static void BM_FullAutomation(benchmark::State &State) {
  auto Lib = buildLinkedListLib(SpecMode::TypeSafety);
  for (auto _ : State) {
    engine::VerifEnv Env = Lib->env();
    engine::Verifier V(Env);
    auto R = V.verifyFunction("LinkedList::pop_front_node");
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_FullAutomation)->Unit(benchmark::kMillisecond);

static void BM_ObsExtractionOnOff(benchmark::State &State) {
  // A3: §7.3 observation extraction (our extension) on/off.
  bool On = State.range(0) != 0;
  auto Lib = buildLinkedListLib(SpecMode::Functional);
  Lib->Auto.ObsExtraction = On;
  for (auto _ : State) {
    engine::VerifEnv Env = Lib->env();
    engine::Verifier V(Env);
    auto R = V.verifyFunction("LinkedList::push_front_node");
    if (R.Ok != On)
      State.SkipWithError("unexpected outcome");
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_ObsExtractionOnOff)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  gilr::trace::configureFromEnv();
  printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
