//===- bench/bench_server.cpp - Verification-as-a-service -------------------===//
//
// Measures the gilrd session layer (src/server/) on the committed .gilr
// corpus:
//
//   * cold submission latency: a fresh daemon with an empty shared cache
//     verifies the corpus over the socket;
//   * resident-warm latency: the same daemon replays the unchanged corpus
//     from its resident state (solver cache + shared backend);
//   * shared-cache-warm latency: a *fresh* daemon pointed at the populated
//     cache directory — the cross-process warmth the shared backend buys;
//   * N-client throughput: N concurrent connections submitting the warm
//     corpus, measuring end-to-end requests/second through admission.
//
// Warm runs must re-verify zero obligations and render byte-identical
// `verdicts` arrays; the benchmark fails (exit 1) otherwise, so CI can
// gate on it.
//
// Usage: bench_server [out-file]
//   default: BENCH_server.json
//
//===----------------------------------------------------------------------===//

#include "server/Client.h"
#include "server/Server.h"
#include "support/Files.h"
#include "support/Json.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace gilr;

namespace {

/// Corpus modules that verify clean (the buggy variants exercise error
/// paths and are benchmarked nowhere).
const char *Modules[] = {
    "vec.gilr",
    "stack_safety.gilr",
    "stack_functional.gilr",
    "linkedlist_safety.gilr",
    "linkedlist_functional.gilr",
};

constexpr unsigned ThroughputClients = 4;

double now() {
  using namespace std::chrono;
  return duration<double>(steady_clock::now().time_since_epoch()).count();
}

std::string corpusPath(const char *Name) {
  return std::string(GILR_CORPUS_DIR) + "/" + Name;
}

struct Submission {
  int Exit = -1;
  uint64_t Verified = 0;
  uint64_t Cached = 0;
  uint64_t SharedHits = 0;
  std::string Verdicts; ///< The raw `verdicts` slice, byte-compared.
};

/// Submits one module over the socket and pulls the gating fields out of
/// the result line.
Submission submit(const std::string &Socket, const char *Module) {
  server::ClientOptions Opt;
  Opt.SocketPath = Socket;
  Opt.Files = {corpusPath(Module)};
  Opt.Json = true;
  std::ostringstream Out, Err;
  Submission S;
  S.Exit = server::runClient(Opt, Out, Err);
  std::string Line = Out.str();
  if (json::ValuePtr V = json::parse(Line)) {
    auto Field = [&](const char *Path) -> uint64_t {
      json::ValuePtr F = V->at(Path);
      return F ? static_cast<uint64_t>(F->numberOr(0)) : 0;
    };
    S.Verified = Field("incremental.verified");
    S.Cached = Field("incremental.cached");
    S.SharedHits = Field("incremental.shared_hits");
  }
  std::size_t Start = Line.find("\"verdicts\": [");
  std::size_t End = Start == std::string::npos ? Start : Line.find(']', Start);
  if (End != std::string::npos)
    S.Verdicts = Line.substr(Start, End - Start + 1);
  return S;
}

struct Pass {
  double Seconds = 0.0;
  uint64_t Verified = 0;
  uint64_t Cached = 0;
  uint64_t SharedHits = 0;
  int WorstExit = 0;
  std::vector<std::string> Verdicts;
};

/// One sequential pass over the corpus.
Pass runPass(const std::string &Socket) {
  Pass P;
  double T0 = now();
  for (const char *M : Modules) {
    Submission S = submit(Socket, M);
    P.Verified += S.Verified;
    P.Cached += S.Cached;
    P.SharedHits += S.SharedHits;
    P.WorstExit = std::max(P.WorstExit, S.Exit);
    P.Verdicts.push_back(S.Verdicts);
  }
  P.Seconds = now() - T0;
  return P;
}

std::string fmtNum(double V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.6g", V);
  return Buf;
}

} // namespace

int main(int argc, char **argv) {
  const std::string OutPath = argc > 1 ? argv[1] : "BENCH_server.json";
  std::string Dir = std::filesystem::temp_directory_path().string() +
                    "/gilr_bench_server";
  std::filesystem::remove_all(Dir);

  server::ServerConfig Cfg;
  Cfg.SocketPath = Dir + ".sock";
  Cfg.CacheDir = Dir;
  Cfg.Jobs = 2;

  Pass Cold, ResidentWarm, SharedWarm;
  double ThroughputSeconds = 0.0;
  uint64_t ThroughputRequests = 0;

  {
    server::Server S(Cfg);
    std::string Err;
    if (!S.start(Err)) {
      std::fprintf(stderr, "bench-server: start: %s\n", Err.c_str());
      return 2;
    }
    std::thread Serving([&S] { S.serve(); });

    std::printf("bench-server: cold pass...\n");
    Cold = runPass(Cfg.SocketPath);
    std::printf("bench-server: resident-warm pass...\n");
    ResidentWarm = runPass(Cfg.SocketPath);

    // Throughput: N clients, each a full warm pass on its own connection.
    std::printf("bench-server: %u-client throughput...\n", ThroughputClients);
    double T0 = now();
    std::vector<std::thread> Clients;
    for (unsigned I = 0; I < ThroughputClients; ++I)
      Clients.emplace_back([&] { runPass(Cfg.SocketPath); });
    for (std::thread &T : Clients)
      T.join();
    ThroughputSeconds = now() - T0;
    ThroughputRequests =
        ThroughputClients * (sizeof(Modules) / sizeof(Modules[0]));

    S.stop();
    Serving.join();
  }

  // A fresh daemon over the populated cache directory: warm from disk.
  {
    server::Server S(Cfg);
    std::string Err;
    if (!S.start(Err)) {
      std::fprintf(stderr, "bench-server: restart: %s\n", Err.c_str());
      return 2;
    }
    std::thread Serving([&S] { S.serve(); });
    std::printf("bench-server: shared-cache-warm pass (fresh daemon)...\n");
    SharedWarm = runPass(Cfg.SocketPath);
    S.stop();
    Serving.join();
  }

  bool VerdictsIdentical = Cold.Verdicts == ResidentWarm.Verdicts &&
                           Cold.Verdicts == SharedWarm.Verdicts;
  bool Ok = Cold.WorstExit == 0 && ResidentWarm.WorstExit == 0 &&
            SharedWarm.WorstExit == 0 && ResidentWarm.Verified == 0 &&
            SharedWarm.Verified == 0 && VerdictsIdentical;

  std::string Out = "{\n  \"schema\": \"gilr-bench-server-v1\",\n";
  Out += "  \"modules\": " +
         std::to_string(sizeof(Modules) / sizeof(Modules[0])) + ",\n";
  Out += "  \"cold_seconds\": " + fmtNum(Cold.Seconds) + ",\n";
  Out += "  \"cold_verified\": " + std::to_string(Cold.Verified) + ",\n";
  Out += "  \"resident_warm_seconds\": " + fmtNum(ResidentWarm.Seconds) +
         ",\n";
  Out += "  \"resident_warm_verified\": " +
         std::to_string(ResidentWarm.Verified) + ",\n";
  Out += "  \"resident_warm_speedup\": " +
         fmtNum(ResidentWarm.Seconds > 0
                    ? Cold.Seconds / ResidentWarm.Seconds
                    : 0) +
         ",\n";
  Out += "  \"shared_warm_seconds\": " + fmtNum(SharedWarm.Seconds) + ",\n";
  Out += "  \"shared_warm_verified\": " +
         std::to_string(SharedWarm.Verified) + ",\n";
  Out += "  \"shared_warm_speedup\": " +
         fmtNum(SharedWarm.Seconds > 0 ? Cold.Seconds / SharedWarm.Seconds
                                       : 0) +
         ",\n";
  Out += "  \"shared_warm_hits\": " + std::to_string(SharedWarm.SharedHits) +
         ",\n";
  Out += "  \"verdicts_identical\": " +
         std::string(VerdictsIdentical ? "true" : "false") + ",\n";
  Out += "  \"throughput\": {\"clients\": " +
         std::to_string(ThroughputClients) +
         ", \"requests\": " + std::to_string(ThroughputRequests) +
         ", \"seconds\": " + fmtNum(ThroughputSeconds) +
         ", \"requests_per_second\": " +
         fmtNum(ThroughputSeconds > 0 ? ThroughputRequests / ThroughputSeconds
                                      : 0) +
         "},\n";
  Out += "  \"ok\": " + std::string(Ok ? "true" : "false") + "\n}\n";

  if (!files::writeFile(OutPath, Out, "server bench report"))
    return 2;
  std::printf(
      "bench-server: cold %.2fs, resident-warm %.2fs (%.1fx), shared-warm "
      "%.2fs (%.1fx), %s\n",
      Cold.Seconds, ResidentWarm.Seconds,
      ResidentWarm.Seconds > 0 ? Cold.Seconds / ResidentWarm.Seconds : 0.0,
      SharedWarm.Seconds,
      SharedWarm.Seconds > 0 ? Cold.Seconds / SharedWarm.Seconds : 0.0,
      Ok ? "ok" : "GATE FAILED");
  if (!Ok) {
    std::fprintf(stderr,
                 "bench-server: gate failed: exits %d/%d/%d, warm verified "
                 "%llu/%llu, verdicts %s\n",
                 Cold.WorstExit, ResidentWarm.WorstExit, SharedWarm.WorstExit,
                 (unsigned long long)ResidentWarm.Verified,
                 (unsigned long long)SharedWarm.Verified,
                 VerdictsIdentical ? "identical" : "DIVERGED");
    return 1;
  }
  return 0;
}
