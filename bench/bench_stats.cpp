//===- bench/bench_stats.cpp - Telemetry stats for the case studies ---------===//
//
// Runs the paper's case studies (LinkedList type safety, LinkedList
// functional, Vec raw-buffer ops) with tracing enabled and writes a
// machine-readable telemetry report: per-case wall time, solver-query
// counts and path counts, plus the process-wide phase breakdown, counters
// and solver latency histogram (see docs/TELEMETRY.md for the schema).
//
// Usage: bench_stats [stats-file [trace-file]]
//   defaults: BENCH_telemetry.json, BENCH_trace.json
//
//===----------------------------------------------------------------------===//

#include "rustlib/LinkedList.h"
#include "rustlib/Vec.h"
#include "support/Metrics.h"
#include "support/StringUtils.h"
#include "support/Trace.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

using namespace gilr;
using namespace gilr::rustlib;

namespace {

struct CaseResult {
  std::string Name;
  bool Ok = true;
  double Seconds = 0.0;
  unsigned Functions = 0;
  unsigned Paths = 0;
  SolverStats Solver;
};

CaseResult runCase(const std::string &Name, engine::VerifEnv Env,
                   const std::vector<std::string> &Funcs) {
  CaseResult C;
  C.Name = Name;
  SolverStats Before = metrics::solverStats();
  auto Start = std::chrono::steady_clock::now();
  {
    GILR_TRACE_SCOPE_D("bench", "case", Name);
    engine::Verifier V(Env);
    for (const engine::VerifyReport &R : V.verifyAll(Funcs)) {
      ++C.Functions;
      C.Paths += R.PathsCompleted;
      C.Ok = C.Ok && R.Ok;
    }
  }
  auto End = std::chrono::steady_clock::now();
  C.Seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(End - Start)
          .count();
  C.Solver = metrics::solverStats() - Before;
  return C;
}

std::string renderCase(const CaseResult &C) {
  std::string Out = "{\"name\": \"" + jsonEscape(C.Name) + "\"";
  Out += ", \"ok\": " + std::string(C.Ok ? "true" : "false");
  Out += ", \"seconds\": " + std::to_string(C.Seconds);
  Out += ", \"functions\": " + std::to_string(C.Functions);
  Out += ", \"paths\": " + std::to_string(C.Paths);
  Out += ", \"solver\": {\"sat_queries\": " +
         std::to_string(C.Solver.SatQueries) +
         ", \"entail_queries\": " + std::to_string(C.Solver.EntailQueries) +
         ", \"branches\": " + std::to_string(C.Solver.Branches) +
         ", \"theory_checks\": " + std::to_string(C.Solver.TheoryChecks) +
         ", \"unknown_results\": " + std::to_string(C.Solver.UnknownResults) +
         ", \"entail_repeats\": " + std::to_string(C.Solver.EntailRepeats) +
         "}}";
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  trace::Options O;
  O.M = trace::Mode::Json;
  O.StatsFile = argc > 1 ? argv[1] : "BENCH_telemetry.json";
  O.TraceFile = argc > 2 ? argv[2] : "BENCH_trace.json";
  trace::configure(O);

  std::vector<CaseResult> Cases;
  {
    auto Lib = buildLinkedListLib(SpecMode::TypeSafety);
    Cases.push_back(runCase("linkedlist-type-safety", Lib->env(),
                            typeSafetyFunctions()));
  }
  {
    auto Lib = buildLinkedListLib(SpecMode::Functional);
    Cases.push_back(runCase("linkedlist-functional", Lib->env(),
                            functionalFunctions()));
  }
  {
    auto Lib = buildVecLib();
    Cases.push_back(runCase("vec-raw-buffer", Lib->env(), vecFunctions()));
  }

  bool AllOk = true;
  std::vector<std::string> Rendered;
  for (const CaseResult &C : Cases) {
    AllOk = AllOk && C.Ok;
    Rendered.push_back(renderCase(C));
    std::printf("%-28s %-5s %8.3fs  %3u fn  %4u paths  %6llu entailments\n",
                C.Name.c_str(), C.Ok ? "ok" : "FAIL", C.Seconds, C.Functions,
                C.Paths,
                static_cast<unsigned long long>(C.Solver.EntailQueries));
  }

  std::FILE *F = std::fopen(O.StatsFile.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "cannot write %s\n", O.StatsFile.c_str());
    return 1;
  }
  std::string Json = trace::renderStatsJson(Rendered);
  std::fwrite(Json.data(), 1, Json.size(), F);
  std::fclose(F);

  std::FILE *T = std::fopen(O.TraceFile.c_str(), "w");
  if (T) {
    std::string Trace = trace::renderTraceJson();
    std::fwrite(Trace.data(), 1, Trace.size(), T);
    std::fclose(T);
  }
  std::printf("wrote %s and %s\n", O.StatsFile.c_str(), O.TraceFile.c_str());
  return AllOk ? 0 : 1;
}
