//===- bench/bench_type_safety.cpp - E1: §6 "Verifying type safety" ---------===//
//
// Regenerates the paper's first evaluation table: per-function and total
// verification time for type safety of LinkedList::{new, push_front,
// pop_front, front_mut}, plus the annotation counts (§6: only front_mut
// needs 2 manually-declared lemmas). Paper total: 0.16 s on a 2019 MacBook
// Pro; the *shape* (sub-second, front_mut the only annotated function) is
// what must reproduce.
//
//===----------------------------------------------------------------------===//

#include "rustlib/LinkedList.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include "support/Trace.h"

using namespace gilr;
using namespace gilr::rustlib;

static void printTable() {
  auto Lib = buildLinkedListLib(SpecMode::TypeSafety);
  engine::VerifEnv Env = Lib->env();
  engine::Verifier V(Env);

  std::printf("\n=== E1: Type safety of LinkedList (§6) ===\n");
  std::printf("%-28s %-10s %-10s %-12s %s\n", "function", "verified",
              "time (s)", "annotations", "paper note");
  double Total = 0.0;
  for (const std::string &Name : typeSafetyFunctions()) {
    engine::VerifyReport R = V.verifyFunction(Name);
    Total += R.Seconds;
    const char *Note =
        Name == "LinkedList::front_mut"
            ? "2 lemmas (extraction + freezing), proofs automatic"
            : "no annotations beyond the safety invariant";
    std::printf("%-28s %-10s %-10.4f %-12u %s\n", Name.c_str(),
                R.Ok ? "yes" : "NO", R.Seconds, R.GhostAnnotations, Note);
  }
  std::printf("%-28s %-10s %-10.4f\n", "total", "", Total);
  std::printf("paper reports: total 0.16 s (MacBook Pro 2019, sequential)\n\n");
}

static void BM_TypeSafety_Function(benchmark::State &State,
                                   const std::string &Name) {
  auto Lib = buildLinkedListLib(SpecMode::TypeSafety);
  for (auto _ : State) {
    engine::VerifEnv Env = Lib->env();
    engine::Verifier V(Env);
    engine::VerifyReport R = V.verifyFunction(Name);
    if (!R.Ok)
      State.SkipWithError("verification failed");
    benchmark::DoNotOptimize(R);
  }
}

static void BM_TypeSafety_Suite(benchmark::State &State) {
  auto Lib = buildLinkedListLib(SpecMode::TypeSafety);
  for (auto _ : State) {
    engine::VerifEnv Env = Lib->env();
    engine::Verifier V(Env);
    for (const std::string &Name : typeSafetyFunctions()) {
      engine::VerifyReport R = V.verifyFunction(Name);
      if (!R.Ok)
        State.SkipWithError("verification failed");
    }
  }
}
BENCHMARK(BM_TypeSafety_Suite)->Unit(benchmark::kMillisecond);

static void BM_BuildLibrary(benchmark::State &State) {
  // Library construction includes the automatic lemma proofs.
  for (auto _ : State) {
    auto Lib = buildLinkedListLib(SpecMode::TypeSafety);
    benchmark::DoNotOptimize(Lib);
  }
}
BENCHMARK(BM_BuildLibrary)->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  gilr::trace::configureFromEnv();
  printTable();
  for (const std::string &Name : typeSafetyFunctions())
    benchmark::RegisterBenchmark(("BM_TypeSafety/" + Name).c_str(),
                                 BM_TypeSafety_Function, Name)
        ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
