//===- bench/bench_interproc.cpp - Interprocedural summary phase overhead ---===//
//
// Measures the interprocedural summary phase (src/analysis/Interproc.h,
// docs/ANALYSIS.md) on two workloads:
//
//   * a generated multi-module program (call chains, triage-eligible
//     constants, executor-proved arithmetic) where the static triage tier
//     must discharge obligations without the executor — the run fails if
//     `triaged_static` stays zero;
//   * the LinkedList functional case study, where summaries buy nothing and
//     the phase must stay cheap.
//
// The headline gate is the aggregate wall-time ratio: the summary phase
// (call graph + bottom-up fixpoint + triage walk) must stay under 5% of the
// cold scheduled verification it runs inside. Exits non-zero if the ratio
// is blown, any entity fails to verify, or the generated workload triages
// nothing, so CI can gate on it.
//
// Usage: bench_interproc [out-file]
//   default: BENCH_interproc.json
//
//===----------------------------------------------------------------------===//

#include "engine/Verifier.h"
#include "rmir/Builder.h"
#include "rustlib/LinkedList.h"
#include "sched/Scheduler.h"
#include "support/Metrics.h"
#include "support/StringUtils.h"
#include "support/Trace.h"
#include "sym/ExprBuilder.h"

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

using namespace gilr;
using namespace gilr::engine;
using namespace gilr::gilsonite;
using namespace gilr::rmir;

namespace {

constexpr int Repetitions = 3;
constexpr double RatioBudget = 0.05; // Summary phase <= 5% of cold verify.
constexpr unsigned Modules = 6;

/// A generated "module": three triage-eligible constants, an identity call
/// chain a -> b -> c (summaries with real depth, verified through call-site
/// spec application), and one arithmetic function the executor must prove.
/// Everything lives in one Program, name-spaced `m<K>::`.
struct GeneratedWorkload {
  rmir::Program Prog;
  PredTable Preds;
  SpecTable Specs;
  OwnableRegistry Ownables{Prog.Types, Preds};
  LemmaTable Lemmas;
  Solver Solv;
  Automation Auto;
  std::vector<std::string> Names;

  GeneratedWorkload() {
    TypeRef U32 = Prog.Types.intTy(IntKind::U32);

    auto addFn = [&](Function F) {
      std::string N = F.Name;
      Prog.Funcs.emplace(std::move(N), std::move(F));
    };
    auto identitySpec = [&](const std::string &Name) {
      Spec S;
      S.Func = Name;
      S.Pre = emp();
      S.Post =
          pure(mkEq(mkVar(retVarName(), Sort::Int), mkVar("x", Sort::Int)));
      Specs.add(std::move(S));
    };
    auto addIdentity = [&](const std::string &Name) {
      FunctionBuilder B(Name, Prog.Types);
      LocalId X = B.addParam("x", U32);
      B.setReturnType(U32);
      BlockId E = B.newBlock();
      B.atBlock(E);
      B.assign(Place(0), Rvalue::use(Operand::copy(Place(X))));
      B.ret();
      addFn(B.finish());
      identitySpec(Name);
    };
    auto addCaller = [&](const std::string &Name, const std::string &Callee) {
      FunctionBuilder B(Name, Prog.Types);
      LocalId X = B.addParam("x", U32);
      B.setReturnType(U32);
      LocalId T = B.addLocal("t", U32);
      BlockId E = B.newBlock();
      BlockId C = B.newBlock();
      B.atBlock(E);
      B.call(Callee, {Operand::copy(Place(X))}, Place(T), C);
      B.atBlock(C);
      B.assign(Place(0), Rvalue::use(Operand::copy(Place(T))));
      B.ret();
      addFn(B.finish());
      identitySpec(Name);
    };
    auto addTriageEligible = [&](const std::string &Name) {
      FunctionBuilder B(Name, Prog.Types);
      B.setReturnType(U32);
      BlockId E = B.newBlock();
      B.atBlock(E);
      B.assign(Place(0), Rvalue::use(Operand::constant(mkInt(1), U32)));
      B.ret();
      addFn(B.finish());
      Spec S;
      S.Func = Name;
      S.Pre = emp();
      S.Post = emp();
      Specs.add(std::move(S));
    };
    auto addInc = [&](const std::string &Name) {
      FunctionBuilder B(Name, Prog.Types);
      LocalId X = B.addParam("x", U32);
      B.setReturnType(U32);
      BlockId E = B.newBlock();
      B.atBlock(E);
      B.assign(Place(0), Rvalue::binary(BinOp::Add, Operand::copy(Place(X)),
                                        Operand::constant(mkInt(1), U32)));
      B.ret();
      addFn(B.finish());
      Spec S;
      S.Func = Name;
      S.SpecVars = {{"x", Sort::Int}};
      Expr Xv = mkVar("x", Sort::Int);
      S.Pre = pure(mkLt(Xv, mkInt(100)));
      S.Post = pure(mkEq(mkVar(retVarName(), Sort::Int), mkAdd(Xv, mkInt(1))));
      Specs.add(std::move(S));
    };

    for (unsigned K = 0; K != Modules; ++K) {
      const std::string M = "m" + std::to_string(K) + "::";
      for (int I = 0; I != 3; ++I)
        addTriageEligible(M + "konst" + std::to_string(I));
      addIdentity(M + "c");
      addCaller(M + "b", M + "c");
      addCaller(M + "a", M + "b");
      addInc(M + "f");
      for (const char *N : {"konst0", "konst1", "konst2", "c", "b", "a", "f"})
        Names.push_back(M + N);
    }
  }

  VerifEnv env() {
    return VerifEnv{Prog,   Preds, Specs, Ownables,
                    Lemmas, Solv,  Auto,  analysis::AnalysisConfig{}};
  }
};

struct SuiteResult {
  std::string Name;
  std::size_t Entities = 0;
  bool VerifyOk = true;
  double TotalSeconds = 0.0;   ///< Whole cold verifyAll wall (best of N).
  double SummarySeconds = 0.0; ///< Summary phase share of that run.
  uint64_t FnSummaries = 0;
  uint64_t PredSummaries = 0;
  uint64_t TriagedStatic = 0;
  uint64_t RequiredTriaged = 0; ///< Minimum triaged_static this suite owes.

  double ratio() const {
    return TotalSeconds > 0.0 ? SummarySeconds / TotalSeconds : 0.0;
  }
  /// The per-suite gate: everything verified and the triage floor met. The
  /// wall-time budget is checked on the aggregate across suites.
  bool ok() const { return VerifyOk && TriagedStatic >= RequiredTriaged; }
};

double now() {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Runs \p RunOnce (a full cold scheduled verifyAll) \c Repetitions times;
/// keeps the fastest total. The interproc counters are deterministic (the
/// determinism contract), so they come from the last repetition.
SuiteResult measure(const std::string &Name, std::size_t Entities,
                    uint64_t RequiredTriaged,
                    const std::function<bool()> &RunOnce) {
  SuiteResult S;
  S.Name = Name;
  S.Entities = Entities;
  S.RequiredTriaged = RequiredTriaged;
  for (int Rep = 0; Rep != Repetitions; ++Rep) {
    metrics::Registry::get().reset();
    double Start = now();
    bool Ok = RunOnce();
    double Total = now() - Start;
    metrics::InterprocReport IP = metrics::Registry::get().interprocReport();
    S.VerifyOk = S.VerifyOk && Ok && IP.Valid;
    if (Rep == 0 || Total < S.TotalSeconds) {
      S.TotalSeconds = Total;
      S.SummarySeconds = IP.Seconds;
    }
    S.FnSummaries = IP.FnSummaries;
    S.PredSummaries = IP.PredSummaries;
    S.TriagedStatic = IP.TriagedStatic;
  }
  return S;
}

std::string fmt(double V, const char *Spec = "%.6f") {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), Spec, V);
  return Buf;
}

std::string renderSuite(const SuiteResult &S) {
  std::string Out = "    {\"name\": \"" + jsonEscape(S.Name) + "\"";
  Out += ", \"entities\": " + std::to_string(S.Entities);
  Out += ", \"ok\": " + std::string(S.ok() ? "true" : "false");
  Out += ",\n     \"total_seconds\": " + fmt(S.TotalSeconds);
  Out += ", \"summary_seconds\": " + fmt(S.SummarySeconds);
  Out += ", \"summary_ratio\": " + fmt(S.ratio(), "%.4f");
  Out += ",\n     \"fn_summaries\": " + std::to_string(S.FnSummaries);
  Out += ", \"pred_summaries\": " + std::to_string(S.PredSummaries);
  Out += ", \"triaged_static\": " + std::to_string(S.TriagedStatic);
  return Out + "}";
}

void printSuite(const SuiteResult &S) {
  std::printf("%-28s %zu entities  %s\n", S.Name.c_str(), S.Entities,
              S.ok() ? "ok" : "FAIL");
  std::printf(
      "  cold verify %8.3fs, summary phase %6.4fs (%.2f%%, budget %.0f%%)\n",
      S.TotalSeconds, S.SummarySeconds, 1e2 * S.ratio(), 1e2 * RatioBudget);
  std::printf("  summaries: %llu fn, %llu pred; %llu obligation(s) triaged "
              "static\n",
              static_cast<unsigned long long>(S.FnSummaries),
              static_cast<unsigned long long>(S.PredSummaries),
              static_cast<unsigned long long>(S.TriagedStatic));
}

} // namespace

int main(int argc, char **argv) {
  trace::configureFromEnv();
  std::string OutFile = argc > 1 ? argv[1] : "BENCH_interproc.json";
  std::vector<SuiteResult> Suites;

  {
    // The generated multi-module workload owes 3 triaged obligations per
    // module — one per emp/emp constant.
    GeneratedWorkload W;
    Suites.push_back(
        measure("generated-multimodule", W.Names.size(), 3 * Modules, [&]() {
          VerifEnv Env = W.env();
          Verifier V(Env);
          sched::SchedulerConfig C;
          bool Ok = true;
          for (const VerifyReport &R : V.verifyAll(W.Names, C))
            Ok = Ok && R.Ok;
          return Ok;
        }));
    printSuite(Suites.back());
  }

  {
    auto Lib = rustlib::buildLinkedListLib(rustlib::SpecMode::Functional);
    std::vector<std::string> Funcs = rustlib::functionalFunctions();
    Suites.push_back(
        measure("linkedlist-functional", Funcs.size(), /*RequiredTriaged=*/0,
                [&]() {
                  VerifEnv Env = Lib->env();
                  Verifier V(Env);
                  sched::SchedulerConfig C;
                  bool Ok = true;
                  for (const VerifyReport &R : V.verifyAll(Funcs, C))
                    Ok = Ok && R.Ok;
                  return Ok;
                }));
    printSuite(Suites.back());
  }

  bool AllOk = true;
  double SumTotal = 0.0, SumSummary = 0.0;
  uint64_t TotalTriaged = 0;
  std::string Json = "{\n  \"bench\": \"interprocedural-summaries\"";
  Json += ",\n  \"ratio_budget\": " + fmt(RatioBudget, "%.2f");
  Json += ",\n  \"suites\": [\n";
  for (std::size_t I = 0; I != Suites.size(); ++I) {
    AllOk = AllOk && Suites[I].ok();
    SumTotal += Suites[I].TotalSeconds;
    SumSummary += Suites[I].SummarySeconds;
    TotalTriaged += Suites[I].TriagedStatic;
    Json += renderSuite(Suites[I]);
    Json += I + 1 != Suites.size() ? ",\n" : "\n";
  }
  const double AggRatio = SumTotal > 0.0 ? SumSummary / SumTotal : 0.0;
  const bool WithinBudget = AggRatio <= RatioBudget;
  AllOk = AllOk && WithinBudget && TotalTriaged > 0;
  Json += "  ],\n  \"summary_ratio\": " + fmt(AggRatio, "%.4f") +
          ",\n  \"triaged_static\": " + std::to_string(TotalTriaged) +
          ",\n  \"within_budget\": " + (WithinBudget ? "true" : "false") +
          ",\n  \"ok\": " + (AllOk ? "true" : "false") + "\n}\n";

  std::FILE *F = std::fopen(OutFile.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "cannot write %s\n", OutFile.c_str());
    return 1;
  }
  std::fwrite(Json.data(), 1, Json.size(), F);
  std::fclose(F);
  std::printf("wrote %s (aggregate summary ratio %.2f%%, budget %.0f%%, "
              "%llu triaged)\n",
              OutFile.c_str(), 1e2 * AggRatio, 1e2 * RatioBudget,
              static_cast<unsigned long long>(TotalTriaged));
  return AllOk ? 0 : 1;
}
