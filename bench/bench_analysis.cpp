//===- bench/bench_analysis.cpp - Pre-verification analysis overhead --------===//
//
// Measures the static pre-pass (src/analysis/, docs/ANALYSIS.md) on the
// case-study suites:
//
//   * pre-pass wall time vs. total cold verification wall time — the
//     headline number is the ratio, budgeted at <= 5%;
//   * the diagnostic counts over the case studies. The suites are expected
//     to be clean: any error-severity diagnostic fails the run (exit 1), so
//     CI can gate on it (the lint analogue of bench_incr's warm-replay gate).
//
// Usage: bench_analysis [out-file]
//   default: BENCH_analysis.json
//
//===----------------------------------------------------------------------===//

#include "rustlib/LinkedList.h"
#include "rustlib/Vec.h"
#include "sched/Scheduler.h"
#include "support/StringUtils.h"
#include "support/Trace.h"

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

using namespace gilr;
using namespace gilr::rustlib;

namespace {

constexpr int Repetitions = 3;
constexpr double RatioBudget = 0.05; // Pre-pass <= 5% of cold verification.

struct SuiteResult {
  std::string Name;
  std::size_t Entities = 0;
  bool VerifyOk = true;
  double TotalSeconds = 0.0;    ///< Whole cold verifyAll wall (best of N).
  double AnalysisSeconds = 0.0; ///< Pre-pass share of that run.
  uint64_t Errors = 0;
  uint64_t Warnings = 0;
  uint64_t Suppressed = 0;
  uint64_t Blocked = 0;

  double ratio() const {
    return TotalSeconds > 0.0 ? AnalysisSeconds / TotalSeconds : 0.0;
  }
  /// The per-suite gate: everything verified, zero error diagnostics, zero
  /// rejected entities. The wall-time budget is checked on the aggregate
  /// across suites (a per-suite ratio is noise on millisecond suites).
  bool ok() const { return VerifyOk && Errors == 0 && Blocked == 0; }
};

double now() {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Runs \p RunOnce (a full cold scheduled verifyAll returning the analysis
/// result) \c Repetitions times; keeps the fastest total.
SuiteResult
measure(const std::string &Name, std::size_t Entities,
        const std::function<bool(analysis::AnalysisResult &)> &RunOnce) {
  SuiteResult S;
  S.Name = Name;
  S.Entities = Entities;
  for (int Rep = 0; Rep != Repetitions; ++Rep) {
    analysis::AnalysisResult AR;
    double Start = now();
    bool Ok = RunOnce(AR);
    double Total = now() - Start;
    S.VerifyOk = S.VerifyOk && Ok;
    if (Rep == 0 || Total < S.TotalSeconds) {
      S.TotalSeconds = Total;
      S.AnalysisSeconds = AR.Seconds;
    }
    // Diagnostics are run-independent (the determinism contract); counts
    // come from the last repetition unconditionally.
    S.Errors = AR.Errors;
    S.Warnings = AR.Warnings;
    S.Suppressed = AR.Suppressed;
    S.Blocked = AR.EntitiesBlocked;
  }
  return S;
}

std::string fmt(double V, const char *Spec = "%.6f") {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), Spec, V);
  return Buf;
}

std::string renderSuite(const SuiteResult &S) {
  std::string Out = "    {\"name\": \"" + jsonEscape(S.Name) + "\"";
  Out += ", \"entities\": " + std::to_string(S.Entities);
  Out += ", \"ok\": " + std::string(S.ok() ? "true" : "false");
  Out += ",\n     \"total_seconds\": " + fmt(S.TotalSeconds);
  Out += ", \"analysis_seconds\": " + fmt(S.AnalysisSeconds);
  Out += ", \"analysis_ratio\": " + fmt(S.ratio(), "%.4f");
  Out += ",\n     \"errors\": " + std::to_string(S.Errors);
  Out += ", \"warnings\": " + std::to_string(S.Warnings);
  Out += ", \"suppressed\": " + std::to_string(S.Suppressed);
  Out += ", \"blocked\": " + std::to_string(S.Blocked);
  return Out + "}";
}

void printSuite(const SuiteResult &S) {
  std::printf("%-28s %zu entities  %s\n", S.Name.c_str(), S.Entities,
              S.ok() ? "ok" : "FAIL");
  std::printf("  cold verify %8.3fs, pre-pass %6.4fs (%.2f%%, budget %.0f%%)\n",
              S.TotalSeconds, S.AnalysisSeconds, 1e2 * S.ratio(),
              1e2 * RatioBudget);
  std::printf("  diagnostics: %llu error(s), %llu warning(s), %llu "
              "suppressed, %llu blocked\n",
              static_cast<unsigned long long>(S.Errors),
              static_cast<unsigned long long>(S.Warnings),
              static_cast<unsigned long long>(S.Suppressed),
              static_cast<unsigned long long>(S.Blocked));
}

} // namespace

int main(int argc, char **argv) {
  trace::configureFromEnv();
  std::string OutFile = argc > 1 ? argv[1] : "BENCH_analysis.json";
  std::vector<SuiteResult> Suites;

  {
    auto Lib = buildLinkedListLib(SpecMode::Functional);
    std::vector<std::string> Funcs = functionalFunctions();
    Funcs.push_back("LinkedList::front_mut");
    Suites.push_back(measure(
        "linkedlist-functional", Funcs.size(),
        [&](analysis::AnalysisResult &AR) {
          engine::VerifEnv Env = Lib->env();
          engine::Verifier V(Env);
          sched::SchedulerConfig C;
          bool Ok = true;
          for (const engine::VerifyReport &R : V.verifyAll(Funcs, C))
            Ok = Ok && R.Ok;
          AR = V.lastAnalysis();
          return Ok;
        }));
    printSuite(Suites.back());
  }

  {
    auto Lib = buildVecLib();
    std::vector<std::string> Funcs = vecFunctions();
    Suites.push_back(measure(
        "vec-raw-buffer", Funcs.size(), [&](analysis::AnalysisResult &AR) {
          engine::VerifEnv Env = Lib->env();
          engine::Verifier V(Env);
          sched::SchedulerConfig C;
          bool Ok = true;
          for (const engine::VerifyReport &R : V.verifyAll(Funcs, C))
            Ok = Ok && R.Ok;
          AR = V.lastAnalysis();
          return Ok;
        }));
    printSuite(Suites.back());
  }

  bool AllOk = true;
  double SumTotal = 0.0, SumAnalysis = 0.0;
  std::string Json = "{\n  \"bench\": \"pre-verification-analysis\"";
  Json += ",\n  \"ratio_budget\": " + fmt(RatioBudget, "%.2f");
  Json += ",\n  \"suites\": [\n";
  for (std::size_t I = 0; I != Suites.size(); ++I) {
    AllOk = AllOk && Suites[I].ok();
    SumTotal += Suites[I].TotalSeconds;
    SumAnalysis += Suites[I].AnalysisSeconds;
    Json += renderSuite(Suites[I]);
    Json += I + 1 != Suites.size() ? ",\n" : "\n";
  }
  const double AggRatio = SumTotal > 0.0 ? SumAnalysis / SumTotal : 0.0;
  const bool WithinBudget = AggRatio <= RatioBudget;
  AllOk = AllOk && WithinBudget;
  Json += "  ],\n  \"analysis_ratio\": " + fmt(AggRatio, "%.4f") +
          ",\n  \"within_budget\": " +
          (WithinBudget ? "true" : "false") +
          ",\n  \"ok\": " + (AllOk ? "true" : "false") + "\n}\n";

  std::FILE *F = std::fopen(OutFile.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "cannot write %s\n", OutFile.c_str());
    return 1;
  }
  std::fwrite(Json.data(), 1, Json.size(), F);
  std::fclose(F);
  std::printf("wrote %s (aggregate pre-pass ratio %.2f%%, budget %.0f%%)\n",
              OutFile.c_str(), 1e2 * AggRatio, 1e2 * RatioBudget);
  return AllOk ? 0 : 1;
}
