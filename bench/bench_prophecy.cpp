//===- bench/bench_prophecy.cpp - F10/F11: observations and prophecies ------===//

#include "proph/ObsCtx.h"
#include "proph/ProphecyCtx.h"
#include "sym/ExprBuilder.h"
#include "sym/VarGen.h"

#include <benchmark/benchmark.h>

using namespace gilr;
using namespace gilr::proph;

static void BM_ObservationProduce(benchmark::State &State) {
  Solver S;
  VarGen VG;
  Expr X = VG.freshProphecy("x", Sort::Int);
  for (auto _ : State) {
    PathCondition PC;
    ObsCtx Obs;
    Obs.produce(mkLt(mkInt(0), X), S, PC);
    benchmark::DoNotOptimize(Obs);
  }
}
BENCHMARK(BM_ObservationProduce);

static void BM_ObservationConsume(benchmark::State &State) {
  Solver S;
  VarGen VG;
  PathCondition PC;
  ObsCtx Obs;
  Expr X = VG.freshProphecy("x", Sort::Int);
  Obs.produce(mkEq(X, mkInt(5)), S, PC);
  for (auto _ : State) {
    auto R = Obs.consume(mkLt(X, mkInt(6)), S, PC);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_ObservationConsume);

static void BM_MutAgree(benchmark::State &State) {
  // Fig. 11: producing the missing half equates values automatically.
  Solver S;
  for (auto _ : State) {
    PathCondition PC;
    ProphecyCtx Pcy;
    Pcy.produceVO("x", mkVar("a", Sort::Int), S, PC);
    Pcy.producePC("x", mkVar("b", Sort::Int), S, PC);
    benchmark::DoNotOptimize(PC);
  }
}
BENCHMARK(BM_MutAgree);

static void BM_FullResolutionCycle(benchmark::State &State) {
  // Open, update (Mut-Update), close, resolve (MutRef-Resolve).
  Solver S;
  VarGen VG;
  for (auto _ : State) {
    PathCondition PC;
    ObsCtx Obs;
    ProphecyCtx Pcy;
    Expr X = VG.freshProphecy("x", Sort::Seq);
    Pcy.produceVO(X->Name, mkVar("cur", Sort::Seq), S, PC);
    Pcy.producePC(X->Name, mkVar("a", Sort::Seq), S, PC);
    Pcy.update(X->Name, mkVar("a2", Sort::Seq));
    Pcy.consumePC(X->Name);
    auto Final = Pcy.consumeVO(X->Name);
    Obs.produce(mkEq(Final.value(), X), S, PC);
    benchmark::DoNotOptimize(Obs);
  }
}
BENCHMARK(BM_FullResolutionCycle);

static void BM_ObservationAccumulation(benchmark::State &State) {
  // Cost of consuming against a growing observation context.
  const int N = static_cast<int>(State.range(0));
  Solver S;
  VarGen VG;
  PathCondition PC;
  ObsCtx Obs;
  std::vector<Expr> Xs;
  for (int I = 0; I != N; ++I) {
    Xs.push_back(VG.freshProphecy("x", Sort::Int));
    Obs.produce(mkEq(Xs.back(), mkInt(I)), S, PC);
  }
  for (auto _ : State) {
    auto R = Obs.consume(mkEq(Xs.front(), mkInt(0)), S, PC);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_ObservationAccumulation)->Arg(4)->Arg(16)->Arg(64);

BENCHMARK_MAIN();
