//===- bench/bench_heap.cpp - F5: laid-out node operations (Fig. 5) ---------===//
//
// Micro-benchmarks of the symbolic heap: structural field access, the
// Fig. 5 laid-out split/overwrite, and a scaling sweep over segment count.
//
//===----------------------------------------------------------------------===//

#include "heap/LaidOut.h"
#include "heap/SymHeap.h"
#include "sym/ExprBuilder.h"

#include <benchmark/benchmark.h>

using namespace gilr;
using namespace gilr::heap;
using namespace gilr::rmir;

namespace {

struct HeapFixture {
  HeapFixture() : Ctx{Solv, PC, VG, Ty} {
    U64 = Ty.intTy(IntKind::U64);
    S = Ty.declareStruct("S", {FieldDef{"a", U64}, FieldDef{"b", U64},
                               FieldDef{"c", U64}, FieldDef{"d", U64}});
    T = Ty.param("T");
  }
  TyCtx Ty;
  Solver Solv;
  PathCondition PC;
  VarGen VG;
  HeapCtx Ctx;
  TypeRef U64, S, T;
};

} // namespace

static void BM_StructFieldStoreLoad(benchmark::State &State) {
  HeapFixture F;
  SymHeap H;
  Expr P = H.alloc(F.S, F.Ctx);
  H.store(P, F.S, mkTuple({mkInt(1), mkInt(2), mkInt(3), mkInt(4)}), F.Ctx);
  Expr FieldPtr = appendProjElem(P, ProjElem::field(F.S, 2));
  for (auto _ : State) {
    H.store(FieldPtr, F.U64, mkInt(9), F.Ctx);
    auto V = H.load(FieldPtr, F.U64, false, F.Ctx);
    benchmark::DoNotOptimize(V);
  }
}
BENCHMARK(BM_StructFieldStoreLoad);

static void BM_Fig5_SplitWrite(benchmark::State &State) {
  // The push-with-spare-capacity write of Fig. 5, on fresh state each time.
  for (auto _ : State) {
    HeapFixture F;
    SymHeap H;
    Expr N = F.VG.fresh("n", Sort::Int);
    Expr K = F.VG.fresh("k", Sort::Int);
    F.PC.add(mkLe(mkInt(0), K));
    F.PC.add(mkLt(K, N));
    Expr Vs = F.VG.fresh("vs", Sort::Seq);
    Expr P = F.VG.fresh("buf", Sort::Tuple);
    H.produceArray(P, F.T, K, Vs, F.Ctx);
    Expr Rest = appendProjElem(P, ProjElem::offset(F.T, K));
    H.produceArrayUninit(Rest, F.T, mkSub(N, K), F.Ctx);
    auto R = H.store(Rest, F.T, F.VG.fresh("v", Sort::Any), F.Ctx);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_Fig5_SplitWrite)->Unit(benchmark::kMicrosecond);

static void BM_LaidOutSegmentsScaling(benchmark::State &State) {
  // Cost of element access as the number of segments grows.
  const int Segments = static_cast<int>(State.range(0));
  for (auto _ : State) {
    State.PauseTiming();
    HeapFixture F;
    SymHeap H;
    Expr P = F.VG.fresh("buf", Sort::Tuple);
    for (int I = 0; I != Segments; ++I) {
      Expr Ptr = appendProjElem(P, ProjElem::offset(F.T, mkInt(I)));
      H.producePointsTo(Ptr, F.T, F.VG.fresh("v", Sort::Any), F.Ctx);
    }
    Expr Target =
        appendProjElem(P, ProjElem::offset(F.T, mkInt(Segments / 2)));
    State.ResumeTiming();
    auto V = H.load(Target, F.T, false, F.Ctx);
    benchmark::DoNotOptimize(V);
  }
}
BENCHMARK(BM_LaidOutSegmentsScaling)->Arg(4)->Arg(16)->Arg(64);

static void BM_ConsumeProduceRoundTrip(benchmark::State &State) {
  HeapFixture F;
  SymHeap H;
  Expr P = H.alloc(F.U64, F.Ctx);
  H.store(P, F.U64, mkInt(1), F.Ctx);
  for (auto _ : State) {
    auto V = H.consumePointsTo(P, F.U64, F.Ctx);
    H.producePointsTo(P, F.U64, V.value(), F.Ctx);
  }
}
BENCHMARK(BM_ConsumeProduceRoundTrip);

BENCHMARK_MAIN();
