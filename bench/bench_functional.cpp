//===- bench/bench_functional.cpp - E2: §6 "Functional correctness" ---------===//
//
// Regenerates the paper's second evaluation table: functional correctness
// of new, push_front_node and pop_front_node against the Pearlite
// contracts encoded via §5.4. Paper total: 0.18 s.
//
//===----------------------------------------------------------------------===//

#include "rustlib/LinkedList.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include "support/Trace.h"

using namespace gilr;
using namespace gilr::rustlib;

static void printTable() {
  auto Lib = buildLinkedListLib(SpecMode::Functional);
  engine::VerifEnv Env = Lib->env();
  engine::Verifier V(Env);

  std::printf("\n=== E2: Functional correctness of LinkedList (§6) ===\n");
  std::printf("%-32s %-10s %-10s %s\n", "function", "verified", "time (s)",
              "contract");
  double Total = 0.0;
  for (const std::string &Name : functionalFunctions()) {
    engine::VerifyReport R = V.verifyFunction(Name);
    Total += R.Seconds;
    const creusot::PearliteSpec *PS = Lib->Contracts.lookup(Name);
    std::printf("%-32s %-10s %-10.4f %s\n", Name.c_str(),
                R.Ok ? "yes" : "NO", R.Seconds,
                PS ? PS->Doc.c_str() : "");
  }
  std::printf("%-32s %-10s %-10.4f\n", "total", "", Total);
  std::printf("paper reports: total 0.18 s; \"the strongest possible "
              "specifications one can give in our framework\"\n");
  // Extension row: the paper cannot verify a functional front_mut (§6);
  // the prophecy-aware extraction here verifies a partial contract.
  {
    engine::VerifyReport R = V.verifyFunction("LinkedList::front_mut");
    std::printf("%-32s %-10s %-10.4f %s\n", "front_mut (extension)",
                R.Ok ? "yes" : "NO", R.Seconds,
                "partial functional contract; paper: \"not yet able\"");
  }
  std::printf("\n");
}

static void BM_Functional_Function(benchmark::State &State,
                                   const std::string &Name) {
  auto Lib = buildLinkedListLib(SpecMode::Functional);
  for (auto _ : State) {
    engine::VerifEnv Env = Lib->env();
    engine::Verifier V(Env);
    engine::VerifyReport R = V.verifyFunction(Name);
    if (!R.Ok)
      State.SkipWithError("verification failed");
    benchmark::DoNotOptimize(R);
  }
}

static void BM_Functional_Suite(benchmark::State &State) {
  auto Lib = buildLinkedListLib(SpecMode::Functional);
  for (auto _ : State) {
    engine::VerifEnv Env = Lib->env();
    engine::Verifier V(Env);
    for (const std::string &Name : functionalFunctions()) {
      engine::VerifyReport R = V.verifyFunction(Name);
      if (!R.Ok)
        State.SkipWithError("verification failed");
    }
  }
}
BENCHMARK(BM_Functional_Suite)->Unit(benchmark::kMillisecond);

static void BM_PearliteEncoding(benchmark::State &State) {
  // Cost of the §5.4 systematic encoding alone.
  auto Lib = buildLinkedListLib(SpecMode::TypeSafety);
  const creusot::PearliteSpec *PS =
      Lib->Contracts.lookup("LinkedList::pop_front_node");
  const rmir::Function *F = Lib->Prog.lookup("LinkedList::pop_front_node");
  for (auto _ : State) {
    auto S = hybrid::encodePearliteSpec(*PS, *F, *Lib->Ownables);
    benchmark::DoNotOptimize(S);
  }
}
BENCHMARK(BM_PearliteEncoding);

int main(int argc, char **argv) {
  gilr::trace::configureFromEnv();
  printTable();
  for (const std::string &Name : functionalFunctions())
    benchmark::RegisterBenchmark(("BM_Functional/" + Name).c_str(),
                                 BM_Functional_Function, Name)
        ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
