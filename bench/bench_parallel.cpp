//===- bench/bench_parallel.cpp - Proof scheduler scaling -------------------===//
//
// Measures the parallel proof scheduler (src/sched/) on the case studies:
// wall time of each suite at 1/2/4/8 worker threads, the speedup over the
// serial run, and the entailment-cache hit rate. Every configuration runs
// with a cold cache and the reported time is the best of a few repetitions
// (the usual wall-clock benchmark hygiene).
//
// Usage: bench_parallel [out-file]
//   default: BENCH_parallel.json
//
//===----------------------------------------------------------------------===//

#include "rustlib/Clients.h"
#include "rustlib/LinkedList.h"
#include "rustlib/Vec.h"
#include "sched/Scheduler.h"
#include "support/StringUtils.h"
#include "support/Trace.h"

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

using namespace gilr;
using namespace gilr::rustlib;

namespace {

constexpr unsigned ThreadCounts[] = {1, 2, 4, 8};
constexpr int Repetitions = 3;

struct RunResult {
  unsigned Threads = 1;
  double Seconds = 0.0;
  bool Ok = true;
  sched::CacheStatsSnapshot Cache;
};

struct SuiteResult {
  std::string Name;
  std::size_t Jobs = 0;
  std::vector<RunResult> Runs;
  /// Serial run with the cache disabled: the pre-scheduler baseline.
  double UncachedSeconds = 0.0;
  /// Second run on the same scheduler (4 threads): the cache is warm, so
  /// repeated obligations are answered without re-running the DPLL search.
  RunResult Warm;

  double secondsAt(unsigned Threads) const {
    for (const RunResult &R : Runs)
      if (R.Threads == Threads)
        return R.Seconds;
    return 0.0;
  }
  double speedupAt(unsigned Threads) const {
    double S1 = secondsAt(1), SN = secondsAt(Threads);
    return SN > 0.0 ? S1 / SN : 0.0;
  }
  /// Warm-cache wall-clock win over the cold serial run.
  double warmSpeedup() const {
    return Warm.Seconds > 0.0 ? secondsAt(1) / Warm.Seconds : 0.0;
  }
  /// Cold cached serial vs. the uncached baseline (the cache's own win).
  double cacheSpeedup() const {
    double S1 = secondsAt(1);
    return S1 > 0.0 ? UncachedSeconds / S1 : 0.0;
  }
  bool ok() const {
    for (const RunResult &R : Runs)
      if (!R.Ok)
        return false;
    return Warm.Ok;
  }
};

/// One timed scheduler run; \p Run executes the suite through \p S and
/// reports whether every proof succeeded. \p WarmRuns > 0 primes the cache
/// with that many untimed runs on the same scheduler first.
RunResult measure(unsigned Threads, std::size_t CacheCapacity, int WarmRuns,
                  const std::function<bool(sched::Scheduler &)> &Run) {
  RunResult Best;
  Best.Threads = Threads;
  for (int Rep = 0; Rep != Repetitions; ++Rep) {
    sched::SchedulerConfig C;
    C.Threads = Threads;
    C.CacheCapacity = CacheCapacity;
    sched::Scheduler S(C); // Fresh scheduler per repetition.
    for (int W = 0; W != WarmRuns; ++W)
      Run(S);
    sched::CacheStatsSnapshot Primed = S.cacheStats();
    auto Start = std::chrono::steady_clock::now();
    bool Ok = Run(S);
    auto End = std::chrono::steady_clock::now();
    double Seconds =
        std::chrono::duration_cast<std::chrono::duration<double>>(End - Start)
            .count();
    if (Rep == 0 || Seconds < Best.Seconds) {
      Best.Seconds = Seconds;
      // Report only the timed run's cache activity.
      Best.Cache.Hits = S.cacheStats().Hits - Primed.Hits;
      Best.Cache.Misses = S.cacheStats().Misses - Primed.Misses;
      Best.Cache.Insertions = S.cacheStats().Insertions - Primed.Insertions;
      Best.Cache.Evictions = S.cacheStats().Evictions - Primed.Evictions;
    }
    Best.Ok = Best.Ok && Ok;
  }
  return Best;
}

SuiteResult runSuite(const std::string &Name, std::size_t Jobs,
                     const std::function<bool(sched::Scheduler &)> &Run) {
  SuiteResult Suite;
  Suite.Name = Name;
  Suite.Jobs = Jobs;
  for (unsigned Threads : ThreadCounts)
    Suite.Runs.push_back(
        measure(Threads, sched::SchedulerConfig().CacheCapacity, 0, Run));
  Suite.UncachedSeconds =
      measure(1, 0, 0, Run).Seconds; // Cache off: the baseline.
  Suite.Warm = measure(4, sched::SchedulerConfig().CacheCapacity, 1, Run);
  return Suite;
}

std::string renderRun(const RunResult &R) {
  char HitRate[32];
  std::snprintf(HitRate, sizeof(HitRate), "%.4f", R.Cache.hitRate());
  return "{\"threads\": " + std::to_string(R.Threads) +
         ", \"seconds\": " + std::to_string(R.Seconds) +
         ", \"ok\": " + (R.Ok ? "true" : "false") +
         ", \"cache_hits\": " + std::to_string(R.Cache.Hits) +
         ", \"cache_misses\": " + std::to_string(R.Cache.Misses) +
         ", \"cache_hit_rate\": " + HitRate + "}";
}

std::string fmt3(double V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.3f", V);
  return Buf;
}

std::string renderSuite(const SuiteResult &S) {
  std::string Out = "    {\"name\": \"" + jsonEscape(S.Name) + "\"";
  Out += ", \"jobs\": " + std::to_string(S.Jobs);
  Out += ", \"ok\": " + std::string(S.ok() ? "true" : "false");
  Out += ", \"speedup_4_threads\": " + fmt3(S.speedupAt(4));
  Out += ", \"uncached_seconds\": " + std::to_string(S.UncachedSeconds);
  Out += ", \"speedup_cached_vs_uncached\": " + fmt3(S.cacheSpeedup());
  Out += ", \"speedup_warm_cache\": " + fmt3(S.warmSpeedup());
  Out += ",\n     \"warm_run\": " + renderRun(S.Warm);
  Out += ",\n     \"runs\": [";
  for (std::size_t I = 0; I != S.Runs.size(); ++I) {
    Out += I ? ",\n              " : "";
    Out += renderRun(S.Runs[I]);
  }
  return Out + "]}";
}

void printSuite(const SuiteResult &S) {
  std::printf("%-28s %zu jobs  %s  (uncached serial %.3fs)\n", S.Name.c_str(),
              S.Jobs, S.ok() ? "ok" : "FAIL", S.UncachedSeconds);
  for (const RunResult &R : S.Runs)
    std::printf("  %u thread%s  %8.3fs  speedup %5.2fx  cache %5.1f%% hit\n",
                R.Threads, R.Threads == 1 ? " " : "s", R.Seconds,
                S.speedupAt(R.Threads), 100.0 * R.Cache.hitRate());
  std::printf("  warm cache %8.3fs  speedup %5.2fx  cache %5.1f%% hit\n",
              S.Warm.Seconds, S.warmSpeedup(), 100.0 * S.Warm.Cache.hitRate());
}

} // namespace

int main(int argc, char **argv) {
  trace::configureFromEnv();
  std::string OutFile = argc > 1 ? argv[1] : "BENCH_parallel.json";
  std::vector<SuiteResult> Suites;

  {
    // The full hybrid workload: both sides of the LinkedList functional
    // experiment, plus the chain clients for heavier safe-side jobs.
    auto Lib = buildLinkedListLib(SpecMode::Functional);
    std::vector<std::string> Funcs = functionalFunctions();
    std::vector<creusot::SafeFn> Clients = makeClients();
    Clients.push_back(makeChainClient(6));
    Clients.push_back(makeChainClient(8));

    SuiteResult Suite = runSuite(
        "linkedlist-functional-hybrid", Funcs.size() + Clients.size(),
        [&](sched::Scheduler &S) {
          engine::VerifEnv Env = Lib->env();
          return S.runHybrid(Env, Lib->Contracts, Funcs, Clients).ok();
        });
    printSuite(Suite);
    Suites.push_back(std::move(Suite));
  }

  {
    auto Lib = buildLinkedListLib(SpecMode::TypeSafety);
    std::vector<std::string> Funcs = typeSafetyFunctions();

    SuiteResult Suite = runSuite(
        "linkedlist-type-safety", Funcs.size(), [&](sched::Scheduler &S) {
          engine::VerifEnv Env = Lib->env();
          for (const engine::VerifyReport &R : S.verifyAll(Env, Funcs))
            if (!R.Ok)
              return false;
          return true;
        });
    printSuite(Suite);
    Suites.push_back(std::move(Suite));
  }

  {
    auto Lib = buildVecLib();
    std::vector<std::string> Funcs = vecFunctions();

    SuiteResult Suite = runSuite(
        "vec-raw-buffer", Funcs.size(), [&](sched::Scheduler &S) {
          engine::VerifEnv Env = Lib->env();
          for (const engine::VerifyReport &R : S.verifyAll(Env, Funcs))
            if (!R.Ok)
              return false;
          return true;
        });
    printSuite(Suite);
    Suites.push_back(std::move(Suite));
  }

  // The headline speedup of the subsystem on this machine: the best
  // wall-clock win any scheduler configuration (4 workers, entailment
  // cache cold or warm) achieves over the serial baseline. On single-core
  // runners the pool cannot help, but the cache still can.
  bool AllOk = true;
  double MaxSpeedup = 0.0;
  std::string Json = "{\n  \"bench\": \"parallel-scheduler\"";
  Json += ",\n  \"hardware_threads\": " +
          std::to_string(std::thread::hardware_concurrency());
  Json += ",\n  \"suites\": [\n";
  for (std::size_t I = 0; I != Suites.size(); ++I) {
    AllOk = AllOk && Suites[I].ok();
    for (double S : {Suites[I].speedupAt(4), Suites[I].warmSpeedup(),
                     Suites[I].cacheSpeedup()})
      if (S > MaxSpeedup)
        MaxSpeedup = S;
    Json += renderSuite(Suites[I]);
    Json += I + 1 != Suites.size() ? ",\n" : "\n";
  }
  Json += "  ],\n  \"max_speedup\": " + fmt3(MaxSpeedup) + "\n}\n";

  std::FILE *F = std::fopen(OutFile.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "cannot write %s\n", OutFile.c_str());
    return 1;
  }
  std::fwrite(Json.data(), 1, Json.size(), F);
  std::fclose(F);
  std::printf("wrote %s (max speedup %.2fx)\n", OutFile.c_str(), MaxSpeedup);
  return AllOk ? 0 : 1;
}
