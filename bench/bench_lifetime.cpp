//===- bench/bench_lifetime.cpp - F6: lifetime token rules (Fig. 6) ---------===//

#include "lifetime/LifetimeCtx.h"
#include "sym/ExprBuilder.h"

#include <benchmark/benchmark.h>

using namespace gilr;
using namespace gilr::lifetime;

static void BM_ProduceConsumeAlive(benchmark::State &State) {
  Solver S;
  Expr K = mkLftVar("'a");
  Expr Half = mkReal(Rational(1, 2));
  for (auto _ : State) {
    PathCondition PC;
    LifetimeCtx Lft;
    Lft.produceAlive(K, Half, S, PC);
    Lft.consumeAlive(K, Half, S, PC);
  }
}
BENCHMARK(BM_ProduceConsumeAlive);

static void BM_FractionSplitMerge(benchmark::State &State) {
  // Lftl-tok-fract both directions.
  Solver S;
  Expr K = mkLftVar("'a");
  Expr Quarter = mkReal(Rational(1, 4));
  Expr Half = mkReal(Rational(1, 2));
  for (auto _ : State) {
    PathCondition PC;
    LifetimeCtx Lft;
    Lft.produceAlive(K, Quarter, S, PC);
    Lft.produceAlive(K, Quarter, S, PC);
    Lft.consumeAlive(K, Half, S, PC);
  }
}
BENCHMARK(BM_FractionSplitMerge);

static void BM_NotOwnEndVanish(benchmark::State &State) {
  // Lftl-not-own-end: the producer vanishes on dead lifetimes.
  Solver S;
  Expr K = mkLftVar("'a");
  for (auto _ : State) {
    PathCondition PC;
    LifetimeCtx Lft;
    Lft.produceDead(K, S, PC);
    auto R = Lft.produceAlive(K, mkReal(Rational(1, 2)), S, PC);
    benchmark::DoNotOptimize(R.vanished());
  }
}
BENCHMARK(BM_NotOwnEndVanish);

static void BM_ManyLifetimes(benchmark::State &State) {
  // Context lookup scaling (the backend supports multiple lifetimes §7.1).
  const int N = static_cast<int>(State.range(0));
  Solver S;
  for (auto _ : State) {
    PathCondition PC;
    LifetimeCtx Lft;
    for (int I = 0; I != N; ++I)
      Lft.produceAlive(mkLftVar("'k" + std::to_string(I)),
                       mkReal(Rational(1, 2)), S, PC);
    for (int I = N - 1; I >= 0; --I)
      Lft.consumeAlive(mkLftVar("'k" + std::to_string(I)),
                       mkReal(Rational(1, 2)), S, PC);
  }
}
BENCHMARK(BM_ManyLifetimes)->Arg(2)->Arg(8)->Arg(32);

BENCHMARK_MAIN();
