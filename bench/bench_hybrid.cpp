//===- bench/bench_hybrid.cpp - H1: the hybrid split at work (§2.1) ---------===//
//
// Scaling of the Creusot-side client verification (pure, SMT-only) next to
// the Gillian-Rust-side implementation verification (separation logic):
// the division of labour that motivates the hybrid approach.
//
//===----------------------------------------------------------------------===//

#include "rustlib/Clients.h"
#include "rustlib/LinkedList.h"
#include "support/Trace.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace gilr;
using namespace gilr::rustlib;

static void printTable() {
  auto Lib = buildLinkedListLib(SpecMode::Functional);
  engine::VerifEnv Env = Lib->env();
  hybrid::HybridDriver Driver(Env, Lib->Contracts);
  hybrid::HybridReport R = Driver.run(functionalFunctions(), makeClients());

  std::printf("\n=== H1: hybrid verification (Fig. 1's division of labour) "
              "===\n");
  std::printf("-- Gillian-Rust side (unsafe implementations) --\n");
  for (const engine::VerifyReport &U : R.UnsafeSide)
    std::printf("  %-32s %-6s %8.4fs\n", U.Func.c_str(),
                U.Ok ? "ok" : "FAIL", U.Seconds);
  std::printf("-- Creusot side (safe clients, no separation logic) --\n");
  for (const creusot::SafeReport &C : R.SafeSide)
    std::printf("  %-32s %-6s %8.4fs  (%zu obligations)\n", C.Func.c_str(),
                C.Ok ? "ok" : "FAIL", C.Seconds, C.Obligations.size());
  std::printf("\n");
}

static void BM_SafeClient_Chain(benchmark::State &State) {
  auto Lib = buildLinkedListLib(SpecMode::Functional);
  unsigned N = static_cast<unsigned>(State.range(0));
  creusot::SafeFn Client = makeChainClient(N);
  for (auto _ : State) {
    creusot::SafeVerifier SV(Lib->Contracts, Lib->Solv);
    creusot::SafeReport R = SV.verify(Client);
    if (!R.Ok)
      State.SkipWithError("client verification failed");
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_SafeClient_Chain)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

static void BM_UnsafeSide_PopFrontNode(benchmark::State &State) {
  auto Lib = buildLinkedListLib(SpecMode::Functional);
  for (auto _ : State) {
    engine::VerifEnv Env = Lib->env();
    engine::Verifier V(Env);
    auto R = V.verifyFunction("LinkedList::pop_front_node");
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_UnsafeSide_PopFrontNode)->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  trace::configureFromEnv();
  printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
