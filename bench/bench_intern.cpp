//===- bench/bench_intern.cpp - Hash-consing before/after -------------------===//
//
// Before/after harness for the interning layer (sym/Intern.h): runs a
// shared-subterm-heavy workload — deep SeqConcat/Ite chains rebuilt from
// scratch every repetition, duplicate-laden path conditions, repeated
// entailments — once with hash-consing and the simplify memo disabled and
// once enabled, and writes BENCH_intern.json (wall times, speedup, interned
// node count, hit rates). No google-benchmark dependency; the two phases
// must run in a fixed order inside one process, which gbench fixtures do
// not guarantee.
//
//===----------------------------------------------------------------------===//

#include "solver/PathCondition.h"
#include "solver/Simplify.h"
#include "solver/Solver.h"
#include "sym/ExprBuilder.h"
#include "sym/Intern.h"

#include <chrono>
#include <cstdio>
#include <string>

using namespace gilr;

namespace {

using Clock = std::chrono::steady_clock;

/// A deep Ite/SeqConcat chain in which the same subterms recur at every
/// layer — the shape produce/consume loops generate when re-materialising
/// list assertions. Each layer references the previous one *twice* (in both
/// Ite arms), so the chain is a linear-size DAG whose tree unfolding is
/// exponential: identity-blind traversals (un-memoized simplify) pay
/// O(2^depth) while the interned path stays O(depth). Depths here must stay
/// modest or the baseline phase never finishes. \p Salt varies the leaves
/// so the workload is not one single term.
Expr buildChain(int Depth, int Salt) {
  Expr X = mkVar("ix" + std::to_string(Salt), Sort::Int);
  Expr Acc = mkSeqUnit(X);
  for (int I = 0; I != Depth; ++I) {
    Expr Grown = mkSeqConcat(Acc, mkSeqUnit(mkAdd(X, mkInt(I % 5))));
    Acc = mkIte(mkLe(X, mkInt(I)), Grown, mkSeqConcat(mkSeqUnit(X), Acc));
  }
  return Acc;
}

/// One workload unit: rebuild the chain, simplify a length obligation over
/// it, grow a path condition with a duplicate-heavy fact stream, and answer
/// an entailment. Returns a sink value so nothing is optimised away.
uint64_t runWorkload(int Reps, int Depth) {
  uint64_t Sink = 0;
  Solver S;
  S.MaxBranches = 500;
  for (int R = 0; R != Reps; ++R) {
    Expr Chain = buildChain(Depth, R % 4);
    Expr Obligation =
        mkAnd(mkLe(mkInt(0), mkSeqLen(Chain)),
              mkLe(mkSeqLen(mkSeqSub(Chain, mkInt(0), mkInt(1))),
                   mkSeqLen(Chain)));
    Sink += simplify(Obligation)->Kids.size();

    PathCondition PC;
    for (int I = 0; I != 64; ++I) {
      Expr Small = buildChain(Depth / 3, R % 4);
      // Half the stream repeats the same fact (dedup path), half is fresh.
      Expr Bound = mkInt(I % 2 == 0 ? 0 : -(I / 2));
      PC.add(mkLe(Bound, mkSeqLen(Small)));
    }
    Sink += PC.size();
    if (PC.entails(S, mkLe(mkInt(0),
                           mkSeqLen(buildChain(Depth / 3, R % 4)))))
      ++Sink;
  }
  return Sink;
}

struct Phase {
  double Ms = 0;
  uint64_t Sink = 0;
};

Phase runPhase(bool Enabled, int Reps, int Depth) {
  bool PrevIntern = setInterningEnabled(Enabled);
  bool PrevMemo = setSimplifyMemoEnabled(Enabled);
  auto T0 = Clock::now();
  Phase P;
  P.Sink = runWorkload(Reps, Depth);
  P.Ms = std::chrono::duration<double, std::milli>(Clock::now() - T0).count();
  setInterningEnabled(PrevIntern);
  setSimplifyMemoEnabled(PrevMemo);
  return P;
}

} // namespace

int main(int Argc, char **Argv) {
  const std::string OutPath = Argc > 1 ? Argv[1] : "BENCH_intern.json";
  const int Reps = 24;
  const int Depth = 16;

  // Warm both configurations once so neither phase pays first-touch costs.
  runPhase(false, 2, Depth);
  runPhase(true, 2, Depth);

  Phase Baseline = runPhase(false, Reps, Depth);

  InternStats I0 = internStats();
  SimplifyStats M0 = simplifyMemoStats();
  Phase Interned = runPhase(true, Reps, Depth);
  InternStats I1 = internStats();
  SimplifyStats M1 = simplifyMemoStats();

  if (Baseline.Sink != Interned.Sink)
    std::fprintf(stderr,
                 "warning: phases disagree on the workload sink "
                 "(%llu vs %llu)\n",
                 static_cast<unsigned long long>(Baseline.Sink),
                 static_cast<unsigned long long>(Interned.Sink));

  double Speedup = Interned.Ms > 0 ? Baseline.Ms / Interned.Ms : 0;
  uint64_t Lookups = (I1.Hits - I0.Hits) + (I1.Misses - I0.Misses);
  double InternHitRate =
      Lookups ? static_cast<double>(I1.Hits - I0.Hits) / Lookups : 0;
  uint64_t MemoLookups = (M1.Hits - M0.Hits) + (M1.Misses - M0.Misses);
  double MemoHitRate =
      MemoLookups ? static_cast<double>(M1.Hits - M0.Hits) / MemoLookups : 0;

  FILE *Out = std::fopen(OutPath.c_str(), "w");
  if (!Out) {
    std::perror("bench_intern: fopen");
    return 1;
  }
  std::fprintf(Out, "{\n");
  std::fprintf(Out,
               "  \"workload\": \"shared-subterm SeqConcat/Ite chains "
               "(depth %d, %d reps)\",\n",
               Depth, Reps);
  std::fprintf(Out, "  \"baseline_ms\": %.3f,\n", Baseline.Ms);
  std::fprintf(Out, "  \"interned_ms\": %.3f,\n", Interned.Ms);
  std::fprintf(Out, "  \"speedup\": %.3f,\n", Speedup);
  std::fprintf(Out, "  \"interned_nodes\": %llu,\n",
               static_cast<unsigned long long>(I1.Nodes));
  std::fprintf(Out, "  \"intern_hit_rate\": %.4f,\n", InternHitRate);
  std::fprintf(Out, "  \"simplify_memo_hit_rate\": %.4f\n", MemoHitRate);
  std::fprintf(Out, "}\n");
  std::fclose(Out);

  std::printf("bench_intern: baseline %.1f ms, interned %.1f ms "
              "(%.2fx), %llu nodes, simplify memo hit rate %.1f%%\n",
              Baseline.Ms, Interned.Ms, Speedup,
              static_cast<unsigned long long>(I1.Nodes), MemoHitRate * 100);
  return 0;
}
