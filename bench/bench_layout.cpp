//===- bench/bench_layout.cpp - F4 + A2: layouts and the byte-model baseline -===//
//
// Regenerates Fig. 4's point: one structural node, several compiler layout
// choices — our layout-independent heap verifies all of them at once,
// whereas the Kani-style fixed-layout ByteHeap baseline covers exactly one
// layout per run (§8). Also reports the raw per-operation cost of both
// memory models.
//
//===----------------------------------------------------------------------===//

#include "heap/ByteHeap.h"
#include "heap/SymHeap.h"
#include "sym/ExprBuilder.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include "support/Trace.h"

using namespace gilr;
using namespace gilr::heap;
using namespace gilr::rmir;

namespace {

TyCtx &sharedTypes() {
  static TyCtx Ty;
  static bool Init = false;
  if (!Init) {
    Ty.declareStruct("S", {FieldDef{"x", Ty.intTy(IntKind::U32)},
                           FieldDef{"y", Ty.intTy(IntKind::U64)}});
    Init = true;
  }
  return Ty;
}

} // namespace

static void printFig4Table() {
  TyCtx &Ty = sharedTypes();
  TypeRef S = Ty.lookup("S");
  std::printf("\n=== F4: struct S { x: u32, y: u64 } under the layouts a "
              "conforming compiler may pick (Fig. 4) ===\n");
  std::printf("%-16s %-6s %-8s %-8s %s\n", "strategy", "size", "&S.x",
              "&S.y", "covered by");
  for (LayoutStrategy Strat :
       {LayoutStrategy::DeclOrder, LayoutStrategy::LargestFirst,
        LayoutStrategy::SmallestFirst}) {
    LayoutEngine L(Ty, Strat);
    std::printf("%-16s %-6llu %-8llu %-8llu %s\n", layoutStrategyName(Strat),
                static_cast<unsigned long long>(L.sizeOf(S)),
                static_cast<unsigned long long>(L.fieldOffset(S, 0)),
                static_cast<unsigned long long>(L.fieldOffset(S, 1)),
                "SymHeap: all at once; ByteHeap baseline: this one only");
  }
  std::printf("=> layout choices covered per verification run: SymHeap 3+, "
              "ByteHeap 1 (the Kani comparison of §8)\n\n");
}

static void BM_SymHeap_FieldOps(benchmark::State &State) {
  TyCtx &Ty = sharedTypes();
  TypeRef S = Ty.lookup("S");
  TypeRef U64 = Ty.intTy(IntKind::U64);
  Solver Solv;
  PathCondition PC;
  VarGen VG;
  HeapCtx Ctx{Solv, PC, VG, Ty};
  SymHeap H;
  Expr P = H.alloc(S, Ctx);
  H.store(P, S, mkTuple({mkInt(1), mkInt(2)}), Ctx);
  Expr FieldPtr = appendProjElem(P, ProjElem::field(S, 1));
  for (auto _ : State) {
    H.store(FieldPtr, U64, mkInt(3), Ctx);
    auto V = H.load(FieldPtr, U64, false, Ctx);
    benchmark::DoNotOptimize(V);
  }
}
BENCHMARK(BM_SymHeap_FieldOps);

static void BM_ByteHeap_FieldOps(benchmark::State &State) {
  TyCtx &Ty = sharedTypes();
  TypeRef S = Ty.lookup("S");
  TypeRef U64 = Ty.intTy(IntKind::U64);
  LayoutEngine L(Ty, LayoutStrategy::LargestFirst);
  ByteHeap H(L);
  uint64_t Loc = H.alloc(S);
  uint64_t Off = L.fieldOffset(S, 1);
  for (auto _ : State) {
    H.store(Loc, Off, U64, mkInt(3));
    auto V = H.load(Loc, Off, U64);
    benchmark::DoNotOptimize(V);
  }
}
BENCHMARK(BM_ByteHeap_FieldOps);

static void BM_LayoutComputation(benchmark::State &State) {
  for (auto _ : State) {
    TyCtx Ty;
    TypeRef S =
        Ty.declareStruct("S", {FieldDef{"x", Ty.intTy(IntKind::U32)},
                               FieldDef{"y", Ty.intTy(IntKind::U64)}});
    LayoutEngine L(Ty, LayoutStrategy::LargestFirst);
    benchmark::DoNotOptimize(L.sizeOf(S));
  }
}
BENCHMARK(BM_LayoutComputation);

int main(int argc, char **argv) {
  gilr::trace::configureFromEnv();
  printFig4Table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
