//===- bench/bench_stack.cpp - The second case study (extension) ------------===//
//
// Not a paper table: the singly-linked Stack shows the pipeline
// generalises. Reported in the same format as E1/E2 for comparison.
//
//===----------------------------------------------------------------------===//

#include "rustlib/Stack.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include "support/Trace.h"

using namespace gilr;
using namespace gilr::rustlib;

static void printTable() {
  std::printf("\n=== Extension: Stack<T> (singly-linked, raw pointers) "
              "===\n");
  for (StackSpecMode Mode :
       {StackSpecMode::TypeSafety, StackSpecMode::Functional}) {
    auto Lib = buildStackLib(Mode);
    engine::VerifEnv Env = Lib->env();
    engine::Verifier V(Env);
    const char *Title = Mode == StackSpecMode::TypeSafety
                            ? "type safety (#[show_safety])"
                            : "functional (Pearlite encoded)";
    std::printf("-- %s --\n", Title);
    double Total = 0.0;
    std::vector<std::string> Funcs =
        Mode == StackSpecMode::TypeSafety
            ? stackFunctions()
            : std::vector<std::string>{"Stack::new", "Stack::push",
                                       "Stack::pop"};
    for (const std::string &Name : Funcs) {
      engine::VerifyReport R = V.verifyFunction(Name);
      Total += R.Seconds;
      std::printf("  %-24s %-6s %8.4fs  annotations=%u\n", Name.c_str(),
                  R.Ok ? "ok" : "FAIL", R.Seconds, R.GhostAnnotations);
    }
    std::printf("  total: %.4fs\n", Total);
  }
  std::printf("\n");
}

static void BM_Stack_TypeSafetySuite(benchmark::State &State) {
  auto Lib = buildStackLib(StackSpecMode::TypeSafety);
  for (auto _ : State) {
    engine::VerifEnv Env = Lib->env();
    engine::Verifier V(Env);
    for (const std::string &Name : stackFunctions()) {
      engine::VerifyReport R = V.verifyFunction(Name);
      if (!R.Ok)
        State.SkipWithError("verification failed");
    }
  }
}
BENCHMARK(BM_Stack_TypeSafetySuite)->Unit(benchmark::kMillisecond);

static void BM_Stack_FunctionalPop(benchmark::State &State) {
  auto Lib = buildStackLib(StackSpecMode::Functional);
  for (auto _ : State) {
    engine::VerifEnv Env = Lib->env();
    engine::Verifier V(Env);
    auto R = V.verifyFunction("Stack::pop");
    if (!R.Ok)
      State.SkipWithError("verification failed");
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_Stack_FunctionalPop)->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  gilr::trace::configureFromEnv();
  printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
