//===- bench/bench_solver.cpp - The SMT-lite substrate ----------------------===//
//
// Micro-benchmarks of the solver standing in for Z3 (DESIGN.md
// Substitutions): the query mix the verifier actually issues.
//
//===----------------------------------------------------------------------===//

#include "rmir/Type.h"
#include "solver/Simplify.h"
#include "solver/Solver.h"
#include "sym/ExprBuilder.h"

#include <benchmark/benchmark.h>

using namespace gilr;

static void BM_EqualityChain(benchmark::State &State) {
  const int N = static_cast<int>(State.range(0));
  Solver S;
  std::vector<Expr> Ctx;
  for (int I = 0; I + 1 < N; ++I)
    Ctx.push_back(mkEq(mkVar("x" + std::to_string(I), Sort::Int),
                       mkVar("x" + std::to_string(I + 1), Sort::Int)));
  Expr Goal = mkEq(mkVar("x0", Sort::Int),
                   mkVar("x" + std::to_string(N - 1), Sort::Int));
  for (auto _ : State) {
    bool R = S.entails(Ctx, Goal);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_EqualityChain)->Arg(4)->Arg(16)->Arg(64);

static void BM_LinearChain(benchmark::State &State) {
  const int N = static_cast<int>(State.range(0));
  Solver S;
  std::vector<Expr> Ctx;
  for (int I = 0; I + 1 < N; ++I)
    Ctx.push_back(mkLt(mkVar("x" + std::to_string(I), Sort::Int),
                       mkVar("x" + std::to_string(I + 1), Sort::Int)));
  Expr Goal = mkLt(mkVar("x0", Sort::Int),
                   mkVar("x" + std::to_string(N - 1), Sort::Int));
  for (auto _ : State) {
    bool R = S.entails(Ctx, Goal);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_LinearChain)->Arg(4)->Arg(8)->Arg(16);

static void BM_SequenceConsInjectivity(benchmark::State &State) {
  Solver S;
  Expr X = mkVar("x", Sort::Any);
  Expr Y = mkVar("y", Sort::Any);
  Expr S1 = mkVar("s1", Sort::Seq);
  Expr S2 = mkVar("s2", Sort::Seq);
  std::vector<Expr> Ctx = {mkEq(mkSeqCons(X, S1), mkSeqCons(Y, S2))};
  for (auto _ : State) {
    bool R = S.entails(Ctx, mkEq(X, Y));
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_SequenceConsInjectivity);

static void BM_OptionCaseSplit(benchmark::State &State) {
  Solver S;
  Expr O = mkVar("o", Sort::Opt);
  Expr X = mkVar("x", Sort::Int);
  std::vector<Expr> Ctx = {
      mkOr(mkEq(O, mkNone()), mkEq(O, mkSome(X))),
      mkIsSome(O)};
  for (auto _ : State) {
    bool R = S.entails(Ctx, mkEq(mkUnwrap(O), X));
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_OptionCaseSplit);

static void BM_VerifierQueryMix(benchmark::State &State) {
  // A representative pop_front-flavoured query: list structure facts plus a
  // length obligation.
  Solver S;
  Expr A = mkVar("a", Sort::Seq);
  Expr RV = mkVar("rv", Sort::Any);
  Expr RT = mkVar("rt", Sort::Seq);
  Expr Len = mkVar("len", Sort::Int);
  std::vector<Expr> Ctx = {
      mkEq(A, mkSeqCons(RV, RT)), mkEq(Len, mkSeqLen(A)),
      mkLe(Len, mkInt(rmir::intMaxValue(rmir::IntKind::USize)))};
  Expr Goal = mkAnd(mkLe(mkInt(0), mkSub(Len, mkInt(1))),
                    mkEq(mkSub(Len, mkInt(1)), mkSeqLen(RT)));
  for (auto _ : State) {
    bool R = S.entails(Ctx, Goal);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_VerifierQueryMix);

/// A deep Ite/SeqConcat chain whose layers all share the same subterms —
/// the shape the hash-consing layer (sym/Intern.h) and the identity-keyed
/// simplify memo are built for. The chain is reconstructed inside the timed
/// loop: with interning, reconstruction is table hits and the re-simplify
/// is a memo hit.
static Expr buildSharedChain(int Depth) {
  Expr X = mkVar("shx", Sort::Int);
  Expr Acc = mkSeqUnit(X);
  for (int I = 0; I != Depth; ++I) {
    Expr Grown = mkSeqConcat(Acc, mkSeqUnit(mkAdd(X, mkInt(I % 5))));
    Acc = mkIte(mkLe(X, mkInt(I)), Grown, mkSeqConcat(mkSeqUnit(X), Acc));
  }
  return Acc;
}

static void BM_SharedSubtermSimplify(benchmark::State &State) {
  const int Depth = static_cast<int>(State.range(0));
  for (auto _ : State) {
    Expr Chain = buildSharedChain(Depth);
    Expr Obligation =
        mkAnd(mkLe(mkInt(0), mkSeqLen(Chain)),
              mkLe(mkSeqLen(mkSeqSub(Chain, mkInt(0), mkInt(1))),
                   mkSeqLen(Chain)));
    benchmark::DoNotOptimize(simplify(Obligation).get());
  }
}
BENCHMARK(BM_SharedSubtermSimplify)->Arg(16)->Arg(64)->Arg(256);

static void BM_SharedSubtermEntail(benchmark::State &State) {
  const int Depth = static_cast<int>(State.range(0));
  Solver S;
  S.MaxBranches = 500;
  for (auto _ : State) {
    Expr Chain = buildSharedChain(Depth);
    std::vector<Expr> Ctx = {mkLe(mkInt(1), mkSeqLen(Chain))};
    bool R = S.entails(Ctx, mkLe(mkInt(0), mkSeqLen(Chain)));
    benchmark::DoNotOptimize(R);
  }
}
// Depth is capped at 20: the entailment cost is dominated by the DPLL
// case-split over the Ite chain (one split per layer up to MaxBranches),
// which grows much faster than the simplify cost interning removes.
BENCHMARK(BM_SharedSubtermEntail)->Arg(16)->Arg(20);

BENCHMARK_MAIN();
