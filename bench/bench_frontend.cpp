//===- bench/bench_frontend.cpp - Textual frontend throughput ---------------===//
//
// Measures the .gilr frontend (src/frontend/) on the committed corpus:
//
//   * parse wall time per module (best of N) and aggregate throughput;
//   * print wall time (the round-trip printer);
//   * the round-trip property itself: print -> parse -> print must be a
//     fixpoint for every module — the benchmark fails (exit 1) otherwise,
//     so CI can gate on it;
//   * deterministic per-module counters (functions, predicates, clients)
//     for the trend wall.
//
// Usage: bench_frontend [out-file]
//   default: BENCH_frontend.json
//
//===----------------------------------------------------------------------===//

#include "frontend/Frontend.h"
#include "frontend/Printer.h"
#include "support/Files.h"
#include "support/StringUtils.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

using namespace gilr;

namespace {

constexpr int Repetitions = 5;

const char *CorpusFiles[] = {
    "linkedlist_safety", "linkedlist_functional", "linkedlist_buggy",
    "clients_bad",       "stack_safety",          "stack_functional",
    "vec",
};

double now() {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct FileResult {
  std::string Name;
  std::size_t Bytes = 0;
  std::size_t Functions = 0;
  std::size_t Predicates = 0;
  std::size_t Clients = 0;
  double ParseSeconds = 0.0;
  double PrintSeconds = 0.0;
  bool RoundTripOk = false;

  double mbPerSecond() const {
    return ParseSeconds > 0.0 ? Bytes / (1e6 * ParseSeconds) : 0.0;
  }
};

std::string fmt(double V, const char *Spec = "%.6f") {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), Spec, V);
  return Buf;
}

std::string renderFile(const FileResult &R) {
  std::string Out = "    {\"name\": \"" + jsonEscape(R.Name) + "\"";
  Out += ", \"bytes\": " + std::to_string(R.Bytes);
  Out += ", \"functions\": " + std::to_string(R.Functions);
  Out += ", \"predicates\": " + std::to_string(R.Predicates);
  Out += ", \"clients\": " + std::to_string(R.Clients);
  Out += ", \"roundtrip_ok\": " + std::string(R.RoundTripOk ? "true" : "false");
  Out += ",\n     \"parse_seconds\": " + fmt(R.ParseSeconds);
  Out += ", \"print_seconds\": " + fmt(R.PrintSeconds);
  Out += ", \"parse_mb_per_s\": " + fmt(R.mbPerSecond(), "%.2f");
  return Out + "}";
}

} // namespace

int main(int argc, char **argv) {
  std::string OutFile = argc > 1 ? argv[1] : "BENCH_frontend.json";
  std::vector<FileResult> Results;
  bool AllOk = true;
  std::size_t TotalBytes = 0;
  double TotalParse = 0.0;

  for (const char *Name : CorpusFiles) {
    std::string Path = std::string(GILR_CORPUS_DIR) + "/" + Name + ".gilr";
    std::string Text;
    if (!files::readFile(Path, Text, "corpus module")) {
      AllOk = false;
      continue;
    }

    FileResult R;
    R.Name = Name;
    R.Bytes = Text.size();

    // Parse: best of N from the in-memory text (no I/O in the timing).
    for (int Rep = 0; Rep != Repetitions; ++Rep) {
      double Start = now();
      frontend::ParseResult P = frontend::parseString(Path, Text);
      double S = now() - Start;
      if (!P.ok()) {
        for (const analysis::Diagnostic &D : P.Diags)
          std::fprintf(stderr, "%s\n", D.str().c_str());
        AllOk = false;
        break;
      }
      if (Rep == 0 || S < R.ParseSeconds)
        R.ParseSeconds = S;
      R.Functions = P.Mod->Prog.Funcs.size();
      R.Predicates = P.Mod->Preds.all().size();
      R.Clients = P.Mod->Clients.size();
    }

    // Print + the round-trip fixpoint check.
    frontend::ParseResult P1 = frontend::parseString(Path, Text);
    if (P1.ok()) {
      std::string Printed;
      for (int Rep = 0; Rep != Repetitions; ++Rep) {
        double Start = now();
        Printed = frontend::printModule(*P1.Mod);
        double S = now() - Start;
        if (Rep == 0 || S < R.PrintSeconds)
          R.PrintSeconds = S;
      }
      frontend::ParseResult P2 = frontend::parseString(Path, Printed);
      R.RoundTripOk = P2.ok() && frontend::printModule(*P2.Mod) == Printed;
    }
    AllOk = AllOk && R.RoundTripOk;

    TotalBytes += R.Bytes;
    TotalParse += R.ParseSeconds;
    std::printf("%-24s %6zu bytes  parse %7.3fms  print %7.3fms  %s\n",
                R.Name.c_str(), R.Bytes, 1e3 * R.ParseSeconds,
                1e3 * R.PrintSeconds,
                R.RoundTripOk ? "roundtrip ok" : "ROUNDTRIP FAIL");
    Results.push_back(std::move(R));
  }

  double Throughput = TotalParse > 0.0 ? TotalBytes / (1e6 * TotalParse) : 0.0;
  std::string Json = "{\n  \"bench\": \"frontend\"";
  Json += ",\n  \"files\": [\n";
  for (std::size_t I = 0; I != Results.size(); ++I) {
    Json += renderFile(Results[I]);
    Json += I + 1 != Results.size() ? ",\n" : "\n";
  }
  Json += "  ],\n  \"total_bytes\": " + std::to_string(TotalBytes);
  Json += ",\n  \"total_parse_seconds\": " + fmt(TotalParse);
  Json += ",\n  \"parse_mb_per_s\": " + fmt(Throughput, "%.2f");
  Json += ",\n  \"ok\": " + std::string(AllOk ? "true" : "false") + "\n}\n";

  std::FILE *F = std::fopen(OutFile.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "cannot write %s\n", OutFile.c_str());
    return 1;
  }
  std::fwrite(Json.data(), 1, Json.size(), F);
  std::fclose(F);
  std::printf("wrote %s (%.2f MB/s aggregate parse)\n", OutFile.c_str(),
              Throughput);
  return AllOk ? 0 : 1;
}
