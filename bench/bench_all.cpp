//===- bench/bench_all.cpp - Bench trend wall aggregator --------------------===//
//
// Merges the per-experiment bench reports (BENCH_telemetry.json,
// BENCH_parallel.json, BENCH_incr.json, BENCH_analysis.json,
// BENCH_interproc.json, BENCH_intern.json, BENCH_frontend.json) into one
// BENCH_all.json trend record, measures the
// proof flight recorder's overhead on a cold verify (writing the journal it
// records to BENCH_journal.jrn for gilr-replay), and compares the result
// against the committed trend record bench/BENCH_all.json.
//
// Usage: bench_all [--update] [--tolerance F] [--committed PATH]
//                  [--out PATH] [--journal PATH] [--bench-dir DIR]
//
// Gating:
//  - deterministic counters and scale-free ratios in the "metrics" section
//    are compared at the tolerance (default 20%); regressions in the bad
//    direction fail the run. Raw wall-clock seconds are recorded in the
//    "timings" section but never gated — they are machine-dependent.
//  - the flight recorder's overhead ratio must stay under 3%.
//  - a missing committed record warns and exits 0 (first run); --update
//    (re)writes the committed record.
//
// Exit status: 0 ok, 1 regression/overhead failure, 2 I/O or input error.
//
//===----------------------------------------------------------------------===//

#include "rustlib/LinkedList.h"
#include "solver/Flight.h"
#include "support/Files.h"
#include "support/Json.h"
#include "support/Metrics.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

using namespace gilr;

namespace {

double nowSeconds() {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  return Out;
}

std::string fmtNum(double V) {
  // Integers render without a fraction so counter metrics diff cleanly.
  if (V == (double)(long long)V && std::fabs(V) < 1e15) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%lld", (long long)V);
    return Buf;
  }
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.6f", V);
  return Buf;
}

/// FNV-1a over the build-configuration string; recorded so a trend diff
/// across different toolchains is flagged as such.
uint64_t fnv1a(const std::string &S) {
  uint64_t H = 1469598103934665603ull;
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

std::string configString() {
  std::string C = "std=";
  C += std::to_string(__cplusplus);
#if defined(__VERSION__)
  C += ";compiler=";
  C += __VERSION__;
#endif
#if defined(NDEBUG)
  C += ";ndebug=1";
#else
  C += ";ndebug=0";
#endif
  return C;
}

struct TrendInput {
  /// Gated: deterministic counters and scale-free ratios.
  std::map<std::string, double> Metrics;
  /// Recorded only: machine-dependent wall-clock numbers.
  std::map<std::string, double> Timings;
};

/// Pulls the trend metrics out of one parsed BENCH_*.json. Missing files or
/// members are skipped (the aggregate covers whatever was produced), but
/// the count of merged sources is reported so CI logs show gaps.
void mergeTelemetry(const json::Value &V, TrendInput &T) {
  json::ValuePtr Cases = V.get("cases");
  if (!Cases || !Cases->isArray())
    return;
  for (const json::ValuePtr &C : Cases->Arr) {
    json::ValuePtr NameV = C->get("name");
    if (!NameV || !NameV->isString())
      continue;
    const std::string Base = "stats." + NameV->Str;
    if (json::ValuePtr N = C->at("solver.sat_queries"))
      T.Metrics[Base + ".sat_queries"] = N->numberOr(0);
    if (json::ValuePtr N = C->at("solver.branches"))
      T.Metrics[Base + ".branches"] = N->numberOr(0);
    if (json::ValuePtr N = C->at("solver.theory_checks"))
      T.Metrics[Base + ".theory_checks"] = N->numberOr(0);
    if (json::ValuePtr N = C->get("paths"))
      T.Metrics[Base + ".paths"] = N->numberOr(0);
    if (json::ValuePtr N = C->get("functions"))
      T.Metrics[Base + ".functions"] = N->numberOr(0);
    if (json::ValuePtr N = C->get("seconds"))
      T.Timings[Base + ".seconds"] = N->numberOr(0);
  }
}

void mergeParallel(const json::Value &V, TrendInput &T) {
  json::ValuePtr Suites = V.get("suites");
  if (!Suites || !Suites->isArray())
    return;
  for (const json::ValuePtr &S : Suites->Arr) {
    json::ValuePtr NameV = S->get("name");
    if (!NameV || !NameV->isString())
      continue;
    const std::string Base = "parallel." + NameV->Str;
    if (json::ValuePtr N = S->get("jobs"))
      T.Metrics[Base + ".jobs"] = N->numberOr(0);
    if (json::ValuePtr N = S->at("warm_run.cache_hit_rate"))
      T.Metrics[Base + ".warm_cache_hit_rate"] = N->numberOr(0);
    if (json::ValuePtr N = S->get("speedup_4_threads"))
      T.Timings[Base + ".speedup_4_threads"] = N->numberOr(0);
    if (json::ValuePtr N = S->get("uncached_seconds"))
      T.Timings[Base + ".uncached_seconds"] = N->numberOr(0);
  }
}

void mergeIncr(const json::Value &V, TrendInput &T) {
  json::ValuePtr Suites = V.get("suites");
  if (!Suites || !Suites->isArray())
    return;
  for (const json::ValuePtr &S : Suites->Arr) {
    json::ValuePtr NameV = S->get("name");
    if (!NameV || !NameV->isString())
      continue;
    const std::string Base = "incr." + NameV->Str;
    if (json::ValuePtr N = S->get("obligations"))
      T.Metrics[Base + ".obligations"] = N->numberOr(0);
    if (json::ValuePtr N = S->get("store_bytes"))
      T.Metrics[Base + ".store_bytes"] = N->numberOr(0);
    if (json::ValuePtr N = S->get("warm_speedup"))
      T.Timings[Base + ".warm_speedup"] = N->numberOr(0);
    // Semantic spec-diff salvage: the edit run's salvage counters are
    // deterministic (how many warm verdicts survived the edit and how many
    // implication queries that cost), so they gate; the wall-clock ratio is
    // machine-dependent and only recorded.
    json::ValuePtr Salv = S->at("edit.salvaged");
    json::ValuePtr Impl = S->at("edit.implied");
    if (Salv || Impl)
      T.Metrics[Base + ".edit_salvaged"] =
          (Salv ? Salv->numberOr(0) : 0) + (Impl ? Impl->numberOr(0) : 0);
    if (json::ValuePtr N = S->at("edit.salvage_queries"))
      T.Metrics[Base + ".edit_salvage_queries"] = N->numberOr(0);
    if (json::ValuePtr N = S->get("edit_vs_blanket_speedup"))
      T.Timings[Base + ".edit_vs_blanket_speedup"] = N->numberOr(0);
  }
  if (json::ValuePtr N = V.get("edit_vs_blanket_speedup")) {
    double Speedup = N->numberOr(0);
    T.Timings["incr.edit_vs_blanket_speedup"] = Speedup;
    // Boolean gate for the >=5x edit-to-verdict acceptance bar (mirrors
    // bench_incr's own MinEditSpeedup exit gate): committed as 1, any run
    // below the bar drops it to 0 and trips the trend wall regardless of
    // how fast this machine happens to be.
    T.Metrics["incr.edit_speedup_ok"] = Speedup >= 5.0 ? 1.0 : 0.0;
  }
}

void mergeAnalysis(const json::Value &V, TrendInput &T) {
  json::ValuePtr Suites = V.get("suites");
  if (!Suites || !Suites->isArray())
    return;
  for (const json::ValuePtr &S : Suites->Arr) {
    json::ValuePtr NameV = S->get("name");
    if (!NameV || !NameV->isString())
      continue;
    const std::string Base = "analysis." + NameV->Str;
    if (json::ValuePtr N = S->get("entities"))
      T.Metrics[Base + ".entities"] = N->numberOr(0);
    if (json::ValuePtr N = S->get("errors"))
      T.Metrics[Base + ".errors"] = N->numberOr(0);
    if (json::ValuePtr N = S->get("warnings"))
      T.Metrics[Base + ".warnings"] = N->numberOr(0);
    if (json::ValuePtr N = S->get("blocked"))
      T.Metrics[Base + ".blocked"] = N->numberOr(0);
  }
  if (json::ValuePtr N = V.get("analysis_ratio"))
    T.Timings["analysis.ratio"] = N->numberOr(0);
}

void mergeInterproc(const json::Value &V, TrendInput &T) {
  json::ValuePtr Suites = V.get("suites");
  if (!Suites || !Suites->isArray())
    return;
  for (const json::ValuePtr &S : Suites->Arr) {
    json::ValuePtr NameV = S->get("name");
    if (!NameV || !NameV->isString())
      continue;
    const std::string Base = "interproc." + NameV->Str;
    // Summary counts and triage decisions are deterministic, so they gate;
    // the phase's wall-time share is machine noise and only recorded.
    if (json::ValuePtr N = S->get("fn_summaries"))
      T.Metrics[Base + ".fn_summaries"] = N->numberOr(0);
    if (json::ValuePtr N = S->get("pred_summaries"))
      T.Metrics[Base + ".pred_summaries"] = N->numberOr(0);
    if (json::ValuePtr N = S->get("triaged_static"))
      T.Metrics[Base + ".triaged_static"] = N->numberOr(0);
  }
  if (json::ValuePtr N = V.get("summary_ratio"))
    T.Timings["interproc.summary_ratio"] = N->numberOr(0);
}

void mergeFrontend(const json::Value &V, TrendInput &T) {
  json::ValuePtr Files = V.get("files");
  if (Files && Files->isArray()) {
    for (const json::ValuePtr &F : Files->Arr) {
      json::ValuePtr NameV = F->get("name");
      if (!NameV || !NameV->isString())
        continue;
      const std::string Base = "frontend." + NameV->Str;
      if (json::ValuePtr N = F->get("functions"))
        T.Metrics[Base + ".functions"] = N->numberOr(0);
      if (json::ValuePtr N = F->get("predicates"))
        T.Metrics[Base + ".predicates"] = N->numberOr(0);
      if (json::ValuePtr N = F->get("parse_seconds"))
        T.Timings[Base + ".parse_seconds"] = N->numberOr(0);
    }
  }
  if (json::ValuePtr N = V.get("total_bytes"))
    T.Metrics["frontend.total_bytes"] = N->numberOr(0);
  if (json::ValuePtr N = V.get("parse_mb_per_s"))
    T.Timings["frontend.parse_mb_per_s"] = N->numberOr(0);
}

void mergeServer(const json::Value &V, TrendInput &T) {
  // Deterministic counters gate; latencies and speedups are recorded as
  // machine-dependent timings.
  if (json::ValuePtr N = V.get("modules"))
    T.Metrics["server.modules"] = N->numberOr(0);
  if (json::ValuePtr N = V.get("resident_warm_verified"))
    T.Metrics["server.resident_warm_verified"] = N->numberOr(0);
  if (json::ValuePtr N = V.get("shared_warm_verified"))
    T.Metrics["server.shared_warm_verified"] = N->numberOr(0);
  if (json::ValuePtr N = V.get("verdicts_identical"))
    T.Metrics["server.verdicts_identical"] =
        N->K == json::Value::Kind::Bool ? (N->B ? 1.0 : 0.0)
                                        : N->numberOr(0);
  if (json::ValuePtr N = V.get("cold_seconds"))
    T.Timings["server.cold_seconds"] = N->numberOr(0);
  if (json::ValuePtr N = V.get("resident_warm_speedup"))
    T.Timings["server.resident_warm_speedup"] = N->numberOr(0);
  if (json::ValuePtr N = V.get("shared_warm_speedup"))
    T.Timings["server.shared_warm_speedup"] = N->numberOr(0);
  if (json::ValuePtr N = V.at("throughput.requests_per_second"))
    T.Timings["server.requests_per_second"] = N->numberOr(0);
}

void mergeIntern(const json::Value &V, TrendInput &T) {
  if (json::ValuePtr N = V.get("intern_hit_rate"))
    T.Metrics["intern.hit_rate"] = N->numberOr(0);
  if (json::ValuePtr N = V.get("simplify_memo_hit_rate"))
    T.Metrics["intern.simplify_memo_hit_rate"] = N->numberOr(0);
  if (json::ValuePtr N = V.get("speedup"))
    T.Timings["intern.speedup"] = N->numberOr(0);
}

/// Flight recorder overhead: best-of-N cold verify of the LinkedList
/// functional suite with the recorder off vs journaling to \p JournalPath.
/// The "on" journal of the last iteration is flushed so CI can replay it.
struct OverheadResult {
  double OffSeconds = 0.0;
  double OnSeconds = 0.0;
  double Ratio = 0.0;
  uint64_t JournalRecords = 0;
  bool Ok = false;
};

double runFunctionalSuite() {
  auto Lib = rustlib::buildLinkedListLib(rustlib::SpecMode::Functional);
  engine::VerifEnv Env = Lib->env();
  engine::Verifier V(Env);
  double T0 = nowSeconds();
  bool Ok = true;
  for (const engine::VerifyReport &R : V.verifyAll(rustlib::functionalFunctions()))
    Ok = Ok && R.Ok;
  double Secs = nowSeconds() - T0;
  return Ok ? Secs : -1.0;
}

OverheadResult measureFlightOverhead(const std::string &JournalPath,
                                     int Iters) {
  OverheadResult R;
  flight::reset();
  if (runFunctionalSuite() < 0) // warm-up (intern table, simplify memo)
    return R;

  double BestOff = 0.0, BestOn = 0.0;
  for (int I = 0; I < Iters; ++I) {
    flight::reset();
    double Off = runFunctionalSuite();
    flight::Options O;
    O.Journal = O.Timing = true;
    O.JournalFile = JournalPath;
    flight::configure(O); // clears the journal buffer per iteration
    double On = runFunctionalSuite();
    if (Off < 0 || On < 0)
      return R;
    if (I == 0 || Off < BestOff)
      BestOff = Off;
    if (I == 0 || On < BestOn)
      BestOn = On;
  }
  R.JournalRecords = flight::journalRecordCount();
  if (!flight::flushJournal())
    return R;
  flight::reset();
  R.OffSeconds = BestOff;
  R.OnSeconds = BestOn;
  R.Ratio = BestOff > 0 ? (BestOn - BestOff) / BestOff : 0.0;
  R.Ok = R.JournalRecords > 0;
  return R;
}

enum class Direction { HigherBetter, LowerBetter, Exact };

Direction metricDirection(const std::string &Name) {
  auto EndsWith = [&](const char *Suffix) {
    std::size_t N = std::strlen(Suffix);
    return Name.size() >= N && Name.compare(Name.size() - N, N, Suffix) == 0;
  };
  if (EndsWith("hit_rate") || EndsWith("speedup"))
    return Direction::HigherBetter;
  if (EndsWith("sat_queries") || EndsWith("branches") ||
      EndsWith("theory_checks") || EndsWith("store_bytes") ||
      EndsWith("errors") || EndsWith("overhead_ratio"))
    return Direction::LowerBetter;
  // Structural counts (jobs, obligations, paths, ...): any large drift is
  // suspicious in either direction.
  return Direction::Exact;
}

std::string renderTrendJson(const TrendInput &T, const OverheadResult &Ov,
                            int MergedSources) {
  std::string Out = "{\n  \"schema\": \"gilr-bench-all-v1\",\n";
  Out += "  \"config\": \"" + jsonEscape(configString()) + "\",\n";
  char Fp[32];
  std::snprintf(Fp, sizeof(Fp), "%016llx",
                (unsigned long long)fnv1a(configString()));
  Out += "  \"config_fingerprint\": \"" + std::string(Fp) + "\",\n";
  Out += "  \"merged_sources\": " + std::to_string(MergedSources) + ",\n";
  Out += "  \"flight\": {\"off_seconds\": " + fmtNum(Ov.OffSeconds) +
         ", \"on_seconds\": " + fmtNum(Ov.OnSeconds) +
         ", \"overhead_ratio\": " + fmtNum(Ov.Ratio) +
         ", \"journal_records\": " + fmtNum((double)Ov.JournalRecords) +
         "},\n";
  Out += "  \"metrics\": {\n";
  std::size_t I = 0;
  for (const auto &[Name, V] : T.Metrics) {
    Out += "    \"" + jsonEscape(Name) + "\": " + fmtNum(V);
    Out += ++I != T.Metrics.size() ? ",\n" : "\n";
  }
  Out += "  },\n  \"timings\": {\n";
  I = 0;
  for (const auto &[Name, V] : T.Timings) {
    Out += "    \"" + jsonEscape(Name) + "\": " + fmtNum(V);
    Out += ++I != T.Timings.size() ? ",\n" : "\n";
  }
  Out += "  }\n}\n";
  return Out;
}

/// Compares current metrics against the committed record. Returns the
/// number of gating regressions (prints each).
int compareAgainstCommitted(const json::Value &Committed,
                            const TrendInput &Cur, double Tolerance) {
  int Regressions = 0;
  json::ValuePtr Metrics = Committed.get("metrics");
  if (!Metrics || !Metrics->isObject()) {
    std::fprintf(stderr,
                 "bench-all: committed record has no metrics section\n");
    return 1;
  }
  json::ValuePtr CommittedFp = Committed.get("config_fingerprint");
  char Fp[32];
  std::snprintf(Fp, sizeof(Fp), "%016llx",
                (unsigned long long)fnv1a(configString()));
  if (CommittedFp && CommittedFp->isString() && CommittedFp->Str != Fp)
    std::printf("bench-all: note: config fingerprint differs from the "
                "committed record (%s vs %s); counters are still compared\n",
                Fp, CommittedFp->Str.c_str());

  for (const std::string &Name : Metrics->keys()) {
    double Old = Metrics->get(Name)->numberOr(0);
    auto It = Cur.Metrics.find(Name);
    if (It == Cur.Metrics.end()) {
      std::printf("bench-all: note: committed metric '%s' not produced by "
                  "this run\n",
                  Name.c_str());
      continue;
    }
    double New = It->second;
    double Base = std::fabs(Old) > 1e-9 ? std::fabs(Old) : 1e-9;
    double Rel = (New - Old) / Base;
    bool Bad = false;
    switch (metricDirection(Name)) {
    case Direction::HigherBetter:
      Bad = Rel < -Tolerance;
      break;
    case Direction::LowerBetter:
      Bad = Rel > Tolerance;
      break;
    case Direction::Exact:
      Bad = std::fabs(Rel) > Tolerance;
      break;
    }
    if (Bad) {
      ++Regressions;
      std::printf("bench-all: REGRESSION %s: %s -> %s (%+.1f%%)\n",
                  Name.c_str(), fmtNum(Old).c_str(), fmtNum(New).c_str(),
                  Rel * 100.0);
    }
  }
  for (const auto &[Name, V] : Cur.Metrics) {
    (void)V;
    if (!Metrics->get(Name))
      std::printf("bench-all: note: new metric '%s' (not in the committed "
                  "record yet; run with --update)\n",
                  Name.c_str());
  }
  return Regressions;
}

} // namespace

int main(int argc, char **argv) {
  bool Update = false;
  double Tolerance = 0.20;
  std::string BenchDir = ".";
  std::string Committed;
  std::string OutFile = "BENCH_all.json";
  std::string JournalFile = "BENCH_journal.jrn";

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    if (Arg == "--update") {
      Update = true;
    } else if (Arg == "--tolerance") {
      const char *V = Next();
      if (!V)
        return 2;
      Tolerance = std::atof(V);
    } else if (Arg == "--committed") {
      const char *V = Next();
      if (!V)
        return 2;
      Committed = V;
    } else if (Arg == "--out") {
      const char *V = Next();
      if (!V)
        return 2;
      OutFile = V;
    } else if (Arg == "--journal") {
      const char *V = Next();
      if (!V)
        return 2;
      JournalFile = V;
    } else if (Arg == "--bench-dir") {
      const char *V = Next();
      if (!V)
        return 2;
      BenchDir = V;
    } else {
      std::fprintf(stderr,
                   "usage: bench_all [--update] [--tolerance F] "
                   "[--committed PATH] [--out PATH] [--journal PATH] "
                   "[--bench-dir DIR]\n");
      return 2;
    }
  }

  TrendInput T;
  int Merged = 0;
  struct Source {
    const char *File;
    void (*Merge)(const json::Value &, TrendInput &);
  };
  const Source Sources[] = {
      {"BENCH_telemetry.json", mergeTelemetry},
      {"BENCH_parallel.json", mergeParallel},
      {"BENCH_incr.json", mergeIncr},
      {"BENCH_analysis.json", mergeAnalysis},
      {"BENCH_interproc.json", mergeInterproc},
      {"BENCH_intern.json", mergeIntern},
      {"BENCH_frontend.json", mergeFrontend},
      {"BENCH_server.json", mergeServer},
  };
  for (const Source &S : Sources) {
    std::string Text;
    std::string Path = BenchDir + "/" + S.File;
    if (!files::readFile(Path, Text, "bench report")) {
      std::printf("bench-all: skipping missing %s\n", Path.c_str());
      continue;
    }
    std::string Err;
    json::ValuePtr V = json::parse(Text, &Err);
    if (!V) {
      std::fprintf(stderr, "bench-all: %s: %s\n", Path.c_str(), Err.c_str());
      return 2;
    }
    S.Merge(*V, T);
    ++Merged;
  }
  if (Merged == 0) {
    std::fprintf(stderr,
                 "bench-all: no BENCH_*.json inputs found in %s — run the "
                 "bench-* targets first\n",
                 BenchDir.c_str());
    return 2;
  }

  std::printf("bench-all: measuring flight recorder overhead...\n");
  OverheadResult Ov = measureFlightOverhead(JournalFile, 5);
  if (!Ov.Ok) {
    std::fprintf(stderr, "bench-all: overhead measurement failed\n");
    return 2;
  }
  // The overhead ratio is wall-clock noise (run-to-run it swings around
  // zero), so it is NOT a trend-gated metric: it lives in the `flight`
  // section and is gated absolutely (< MaxOverhead) below, and recorded
  // as an ungated timing for trend visibility.
  T.Timings["flight.overhead_ratio"] = Ov.Ratio;
  std::printf("bench-all: flight off %.3fs, on %.3fs (overhead %.2f%%), "
              "%llu journal records -> %s\n",
              Ov.OffSeconds, Ov.OnSeconds, Ov.Ratio * 100.0,
              (unsigned long long)Ov.JournalRecords, JournalFile.c_str());

  std::string Json = renderTrendJson(T, Ov, Merged);
  if (!files::writeFile(OutFile, Json, "bench trend record"))
    return 2;
  std::printf("bench-all: wrote %s (%d sources, %zu metrics)\n",
              OutFile.c_str(), Merged, T.Metrics.size());

  int Failures = 0;
  if (Ov.Ratio >= 0.03) {
    std::printf("bench-all: FAIL flight recorder overhead %.2f%% exceeds "
                "the 3%% budget\n",
                Ov.Ratio * 100.0);
    ++Failures;
  }

  if (Update) {
    std::string Dest = Committed.empty() ? OutFile : Committed;
    if (!Committed.empty() &&
        !files::writeFile(Committed, Json, "committed bench trend record"))
      return 2;
    std::printf("bench-all: updated committed trend record %s\n",
                Dest.c_str());
  } else if (!Committed.empty()) {
    std::string Text;
    if (!files::readFile(Committed, Text, "committed bench trend record")) {
      std::printf("bench-all: no committed trend record at %s yet; run "
                  "with --update to create it\n",
                  Committed.c_str());
    } else {
      std::string Err;
      json::ValuePtr V = json::parse(Text, &Err);
      if (!V) {
        std::fprintf(stderr, "bench-all: %s: %s\n", Committed.c_str(),
                     Err.c_str());
        return 2;
      }
      Failures += compareAgainstCommitted(*V, T, Tolerance);
    }
  }

  if (Failures) {
    std::printf("bench-all: %d failure(s) at tolerance %.0f%%\n", Failures,
                Tolerance * 100.0);
    return 1;
  }
  std::printf("bench-all: trend ok\n");
  return 0;
}
