//===- bench/bench_incr.cpp - Incremental verification ----------------------===//
//
// Measures the incremental proof cache (src/incr/) on the case studies:
//
//   * cold run (empty store) vs. warm run (every verdict replayed) wall
//     time, and the warm-run speedup — the headline number;
//   * single-lemma-edit re-verification time: only the edited lemma's
//     dependents are re-proved, everything else is replayed;
//   * proof-store overhead: load and flush wall time, and the file size.
//
// A warm run must re-prove zero obligations; the benchmark fails (exit 1)
// if it does not, so CI can gate on it.
//
// Usage: bench_incr [out-file]
//   default: BENCH_incr.json
//
//===----------------------------------------------------------------------===//

#include "incr/ProofStore.h"
#include "incr/Session.h"
#include "rustlib/Clients.h"
#include "rustlib/LinkedList.h"
#include "rustlib/Vec.h"
#include "sched/Scheduler.h"
#include "support/StringUtils.h"
#include "support/Trace.h"
#include "sym/ExprBuilder.h"

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

using namespace gilr;
using namespace gilr::rustlib;

namespace {

constexpr int Repetitions = 3;

/// One run of a suite through the incremental entry point: wall time plus
/// the session counters.
struct TimedRun {
  double Seconds = 0.0;
  bool Ok = true;
  incr::IncrRunStats Stats;
};

struct SuiteResult {
  std::string Name;
  std::size_t Obligations = 0;
  TimedRun Cold;
  TimedRun Warm;
  /// Warm run after a one-lemma edit (only on suites with a lemma lever).
  bool HasEdit = false;
  TimedRun Edit;
  double StoreLoadSeconds = 0.0;
  double StoreFlushSeconds = 0.0;
  std::size_t StoreBytes = 0;

  double warmSpeedup() const {
    return Warm.Seconds > 0.0 ? Cold.Seconds / Warm.Seconds : 0.0;
  }
  bool ok() const {
    return Cold.Ok && Warm.Ok && (!HasEdit || Edit.Ok) &&
           Warm.Stats.verified() == 0 && Warm.Stats.cached() == Obligations;
  }
};

double now() {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Times one call of \p Run, which executes the suite through the
/// incremental entry point against \p Inc's store and fills the stats.
TimedRun timeRun(const std::function<bool(incr::IncrRunStats &)> &Run) {
  TimedRun R;
  double Start = now();
  R.Ok = Run(R.Stats);
  R.Seconds = now() - Start;
  return R;
}

/// Best-of-N repetition wrapper. \p Reset re-establishes the precondition
/// (e.g. deletes the store for a cold run) before every repetition.
TimedRun best(const std::function<void()> &Reset,
              const std::function<bool(incr::IncrRunStats &)> &Run) {
  TimedRun Best;
  for (int Rep = 0; Rep != Repetitions; ++Rep) {
    Reset();
    TimedRun R = timeRun(Run);
    if (Rep == 0 || R.Seconds < Best.Seconds) {
      Best.Seconds = R.Seconds;
      Best.Stats = R.Stats;
    }
    Best.Ok = Best.Ok && R.Ok;
  }
  return Best;
}

/// Store load / flush overhead, measured on the store the suite produced.
void measureStoreOverhead(SuiteResult &Suite, const std::string &Path) {
  for (int Rep = 0; Rep != Repetitions; ++Rep) {
    incr::ProofStore P(Path);
    double Start = now();
    bool Loaded = P.load();
    double Load = now() - Start;
    Start = now();
    bool Flushed = Loaded && P.flush();
    double Flush = now() - Start;
    if (!Loaded || !Flushed)
      continue;
    if (Rep == 0 || Load < Suite.StoreLoadSeconds)
      Suite.StoreLoadSeconds = Load;
    if (Rep == 0 || Flush < Suite.StoreFlushSeconds)
      Suite.StoreFlushSeconds = Flush;
  }
  if (std::FILE *F = std::fopen(Path.c_str(), "rb")) {
    std::fseek(F, 0, SEEK_END);
    long Size = std::ftell(F);
    Suite.StoreBytes = Size > 0 ? static_cast<std::size_t>(Size) : 0;
    std::fclose(F);
  }
}

std::string fmt(double V, const char *Spec = "%.6f") {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), Spec, V);
  return Buf;
}

std::string renderRun(const TimedRun &R) {
  return "{\"seconds\": " + fmt(R.Seconds) +
         ", \"ok\": " + (R.Ok ? "true" : "false") +
         ", \"cached\": " + std::to_string(R.Stats.cached()) +
         ", \"reproved\": " + std::to_string(R.Stats.verified()) +
         ", \"invalidated\": " + std::to_string(R.Stats.Invalidated) + "}";
}

std::string renderSuite(const SuiteResult &S) {
  std::string Out = "    {\"name\": \"" + jsonEscape(S.Name) + "\"";
  Out += ", \"obligations\": " + std::to_string(S.Obligations);
  Out += ", \"ok\": " + std::string(S.ok() ? "true" : "false");
  Out += ", \"warm_speedup\": " + fmt(S.warmSpeedup(), "%.3f");
  Out += ",\n     \"cold\": " + renderRun(S.Cold);
  Out += ",\n     \"warm\": " + renderRun(S.Warm);
  if (S.HasEdit)
    Out += ",\n     \"lemma_edit\": " + renderRun(S.Edit);
  Out += ",\n     \"store_bytes\": " + std::to_string(S.StoreBytes);
  Out += ", \"store_load_seconds\": " + fmt(S.StoreLoadSeconds);
  Out += ", \"store_flush_seconds\": " + fmt(S.StoreFlushSeconds);
  return Out + "}";
}

void printSuite(const SuiteResult &S) {
  std::printf("%-28s %zu obligations  %s\n", S.Name.c_str(), S.Obligations,
              S.ok() ? "ok" : "FAIL");
  std::printf("  cold  %8.3fs  (%llu proved)\n", S.Cold.Seconds,
              static_cast<unsigned long long>(S.Cold.Stats.verified()));
  std::printf("  warm  %8.3fs  speedup %6.2fx  (%llu cached, %llu re-proved)\n",
              S.Warm.Seconds, S.warmSpeedup(),
              static_cast<unsigned long long>(S.Warm.Stats.cached()),
              static_cast<unsigned long long>(S.Warm.Stats.verified()));
  if (S.HasEdit)
    std::printf("  edit  %8.3fs  (%llu re-proved, %llu cached)\n",
                S.Edit.Seconds,
                static_cast<unsigned long long>(S.Edit.Stats.verified()),
                static_cast<unsigned long long>(S.Edit.Stats.cached()));
  std::printf("  store %zu bytes, load %.1fms, flush %.1fms\n", S.StoreBytes,
              1e3 * S.StoreLoadSeconds, 1e3 * S.StoreFlushSeconds);
}

std::string storePath(const std::string &Suite) {
  return "bench_incr_" + Suite + ".prf";
}

} // namespace

int main(int argc, char **argv) {
  trace::configureFromEnv();
  std::string OutFile = argc > 1 ? argv[1] : "BENCH_incr.json";
  std::vector<SuiteResult> Suites;

  {
    // LinkedList functional hybrid: the full two-sided workload, including
    // front_mut (the lemma-applying proof) so the edit lever has a
    // dependent.
    auto Lib = buildLinkedListLib(SpecMode::Functional);
    std::vector<std::string> Funcs = functionalFunctions();
    Funcs.push_back("LinkedList::front_mut");
    std::vector<creusot::SafeFn> Clients = makeClients();

    SuiteResult Suite;
    Suite.Name = "linkedlist-functional-hybrid";
    Suite.Obligations = Funcs.size() + Clients.size();
    std::string Path = storePath("linkedlist");
    incr::IncrConfig Inc;
    Inc.Enabled = true;
    Inc.StorePath = Path;

    auto RunOnce = [&](incr::IncrRunStats &Stats) {
      engine::VerifEnv Env = Lib->env();
      hybrid::HybridDriver D(Env, Lib->Contracts);
      sched::SchedulerConfig C;
      return D.run(Funcs, Clients, C, Inc, &Stats).ok();
    };

    Suite.Cold = best([&] { std::remove(Path.c_str()); }, RunOnce);
    // The cold best-of loop leaves a fully populated store behind.
    Suite.Warm = best([] {}, RunOnce);
    measureStoreOverhead(Suite, Path);

    // Single-lemma edit: conjoin a LinArith-true but syntactically
    // irreducible fact onto the extraction lemma's requirement. Meaning is
    // unchanged; the fingerprint is not, so exactly the lemma's dependents
    // (front_mut) re-verify.
    auto *LV = Lib->Lemmas.lookupMutable("ll_extract_head");
    if (LV) {
      auto &Ex = std::get<engine::ExtractLemma>(*LV);
      Expr Old = Ex.Requires;
      Expr Z = mkVar("incr$edit", Sort::Int);
      Ex.Requires = mkAnd(Old, mkLe(Z, mkAdd(Z, mkInt(1))));
      Suite.HasEdit = true;
      Suite.Edit = timeRun(RunOnce);
      // An edit run re-proves exactly the dependents, not everything.
      Suite.Edit.Ok = Suite.Edit.Ok && Suite.Edit.Stats.verified() > 0 &&
                      Suite.Edit.Stats.verified() < Suite.Obligations;
      Ex.Requires = Old;
    }

    printSuite(Suite);
    Suites.push_back(std::move(Suite));
    std::remove(Path.c_str());
  }

  {
    // Vec raw-buffer: the unsafe-only suite through the Verifier's
    // incremental entry point.
    auto Lib = buildVecLib();
    std::vector<std::string> Funcs = vecFunctions();

    SuiteResult Suite;
    Suite.Name = "vec-raw-buffer";
    Suite.Obligations = Funcs.size();
    std::string Path = storePath("vec");
    incr::IncrConfig Inc;
    Inc.Enabled = true;
    Inc.StorePath = Path;

    auto RunOnce = [&](incr::IncrRunStats &Stats) {
      engine::VerifEnv Env = Lib->env();
      engine::Verifier V(Env);
      sched::SchedulerConfig C;
      for (const engine::VerifyReport &R :
           V.verifyAll(Funcs, C, Inc, &Stats))
        if (!R.Ok)
          return false;
      return true;
    };

    Suite.Cold = best([&] { std::remove(Path.c_str()); }, RunOnce);
    Suite.Warm = best([] {}, RunOnce);
    measureStoreOverhead(Suite, Path);

    printSuite(Suite);
    Suites.push_back(std::move(Suite));
    std::remove(Path.c_str());
  }

  bool AllOk = true;
  double MinSpeedup = 0.0;
  std::string Json = "{\n  \"bench\": \"incremental-verification\"";
  Json += ",\n  \"suites\": [\n";
  for (std::size_t I = 0; I != Suites.size(); ++I) {
    AllOk = AllOk && Suites[I].ok();
    double S = Suites[I].warmSpeedup();
    if (I == 0 || S < MinSpeedup)
      MinSpeedup = S;
    Json += renderSuite(Suites[I]);
    Json += I + 1 != Suites.size() ? ",\n" : "\n";
  }
  Json += "  ],\n  \"min_warm_speedup\": " + fmt(MinSpeedup, "%.3f") + "\n}\n";

  std::FILE *F = std::fopen(OutFile.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "cannot write %s\n", OutFile.c_str());
    return 1;
  }
  std::fwrite(Json.data(), 1, Json.size(), F);
  std::fclose(F);
  std::printf("wrote %s (min warm speedup %.2fx)\n", OutFile.c_str(),
              MinSpeedup);
  return AllOk ? 0 : 1;
}
