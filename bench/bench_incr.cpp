//===- bench/bench_incr.cpp - Incremental verification ----------------------===//
//
// Measures the incremental proof cache (src/incr/) on the case studies:
//
//   * cold run (empty store) vs. warm run (every verdict replayed) wall
//     time, and the warm-run speedup — the headline number;
//   * edit-to-verdict latency: a warm run after a semantics-preserving spec
//     or lemma edit, measured twice — with semantic salvage (implication
//     queries keep the cached verdicts) and with blanket invalidation
//     (every dependent re-proves) — and their ratio, the salvage payoff;
//   * proof-store overhead: load and flush wall time, and the file size.
//
// A warm run must re-prove zero obligations, a salvage run must re-prove
// zero and salvage all dependents, and the generated multi-module suite
// must show an edit-vs-blanket speedup of at least MinEditSpeedup; the
// benchmark fails (exit 1) otherwise, so CI can gate on it.
//
// Usage: bench_incr [out-file]
//   default: BENCH_incr.json
//
//===----------------------------------------------------------------------===//

#include "incr/ProofStore.h"
#include "incr/Session.h"
#include "rmir/Builder.h"
#include "rustlib/Clients.h"
#include "rustlib/LinkedList.h"
#include "rustlib/Vec.h"
#include "sched/Scheduler.h"
#include "support/StringUtils.h"
#include "support/Trace.h"
#include "sym/ExprBuilder.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

using namespace gilr;
using namespace gilr::rustlib;

namespace {

constexpr int Repetitions = 3;
/// The edit-vs-blanket ratio the generated multi-module suite must reach.
constexpr double MinEditSpeedup = 5.0;

/// One run of a suite through the incremental entry point: wall time plus
/// the session counters.
struct TimedRun {
  double Seconds = 0.0;
  bool Ok = true;
  incr::IncrRunStats Stats;
};

struct SuiteResult {
  std::string Name;
  std::size_t Obligations = 0;
  TimedRun Cold;
  TimedRun Warm;
  /// Warm runs after a semantics-preserving edit (only on suites with an
  /// edit lever): with semantic salvage, and with blanket invalidation.
  bool HasEdit = false;
  TimedRun Edit;
  TimedRun BlanketEdit;
  /// The suite's edit-vs-blanket ratio must reach this for ok() (0 = no
  /// gate).
  double EditSpeedupFloor = 0.0;
  double StoreLoadSeconds = 0.0;
  double StoreFlushSeconds = 0.0;
  std::size_t StoreBytes = 0;

  double warmSpeedup() const {
    return Warm.Seconds > 0.0 ? Cold.Seconds / Warm.Seconds : 0.0;
  }
  double editVsBlanketSpeedup() const {
    return HasEdit && Edit.Seconds > 0.0 ? BlanketEdit.Seconds / Edit.Seconds
                                         : 0.0;
  }
  bool ok() const {
    return Cold.Ok && Warm.Ok && (!HasEdit || (Edit.Ok && BlanketEdit.Ok)) &&
           Warm.Stats.verified() == 0 && Warm.Stats.cached() == Obligations &&
           editVsBlanketSpeedup() >= EditSpeedupFloor;
  }
};

double now() {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Times one call of \p Run, which executes the suite through the
/// incremental entry point against \p Inc's store and fills the stats.
TimedRun timeRun(const std::function<bool(incr::IncrRunStats &)> &Run) {
  TimedRun R;
  double Start = now();
  R.Ok = Run(R.Stats);
  R.Seconds = now() - Start;
  return R;
}

/// Best-of-N repetition wrapper. \p Reset re-establishes the precondition
/// (e.g. deletes the store for a cold run) before every repetition.
TimedRun best(const std::function<void()> &Reset,
              const std::function<bool(incr::IncrRunStats &)> &Run) {
  TimedRun Best;
  for (int Rep = 0; Rep != Repetitions; ++Rep) {
    Reset();
    TimedRun R = timeRun(Run);
    if (Rep == 0 || R.Seconds < Best.Seconds) {
      Best.Seconds = R.Seconds;
      Best.Stats = R.Stats;
    }
    Best.Ok = Best.Ok && R.Ok;
  }
  return Best;
}

/// Store load / flush overhead, measured on the store the suite produced.
void measureStoreOverhead(SuiteResult &Suite, const std::string &Path) {
  for (int Rep = 0; Rep != Repetitions; ++Rep) {
    incr::ProofStore P(Path);
    double Start = now();
    bool Loaded = P.load();
    double Load = now() - Start;
    Start = now();
    bool Flushed = Loaded && P.flush();
    double Flush = now() - Start;
    if (!Loaded || !Flushed)
      continue;
    if (Rep == 0 || Load < Suite.StoreLoadSeconds)
      Suite.StoreLoadSeconds = Load;
    if (Rep == 0 || Flush < Suite.StoreFlushSeconds)
      Suite.StoreFlushSeconds = Flush;
  }
  if (std::FILE *F = std::fopen(Path.c_str(), "rb")) {
    std::fseek(F, 0, SEEK_END);
    long Size = std::ftell(F);
    Suite.StoreBytes = Size > 0 ? static_cast<std::size_t>(Size) : 0;
    std::fclose(F);
  }
}

std::string fmt(double V, const char *Spec = "%.6f") {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), Spec, V);
  return Buf;
}

std::string renderRun(const TimedRun &R) {
  return "{\"seconds\": " + fmt(R.Seconds) +
         ", \"ok\": " + (R.Ok ? "true" : "false") +
         ", \"cached\": " + std::to_string(R.Stats.cached()) +
         ", \"reproved\": " + std::to_string(R.Stats.verified()) +
         ", \"invalidated\": " + std::to_string(R.Stats.Invalidated) +
         ", \"salvaged\": " + std::to_string(R.Stats.Salvaged) +
         ", \"implied\": " + std::to_string(R.Stats.Implied) +
         ", \"salvage_queries\": " + std::to_string(R.Stats.SalvageQueries) +
         "}";
}

std::string renderSuite(const SuiteResult &S) {
  std::string Out = "    {\"name\": \"" + jsonEscape(S.Name) + "\"";
  Out += ", \"obligations\": " + std::to_string(S.Obligations);
  Out += ", \"ok\": " + std::string(S.ok() ? "true" : "false");
  Out += ", \"warm_speedup\": " + fmt(S.warmSpeedup(), "%.3f");
  if (S.HasEdit)
    Out += ", \"edit_vs_blanket_speedup\": " +
           fmt(S.editVsBlanketSpeedup(), "%.3f");
  Out += ",\n     \"cold\": " + renderRun(S.Cold);
  Out += ",\n     \"warm\": " + renderRun(S.Warm);
  if (S.HasEdit) {
    Out += ",\n     \"edit\": " + renderRun(S.Edit);
    Out += ",\n     \"edit_blanket\": " + renderRun(S.BlanketEdit);
  }
  Out += ",\n     \"store_bytes\": " + std::to_string(S.StoreBytes);
  Out += ", \"store_load_seconds\": " + fmt(S.StoreLoadSeconds);
  Out += ", \"store_flush_seconds\": " + fmt(S.StoreFlushSeconds);
  return Out + "}";
}

void printSuite(const SuiteResult &S) {
  std::printf("%-28s %zu obligations  %s\n", S.Name.c_str(), S.Obligations,
              S.ok() ? "ok" : "FAIL");
  std::printf("  cold  %8.3fs  (%llu proved)\n", S.Cold.Seconds,
              static_cast<unsigned long long>(S.Cold.Stats.verified()));
  std::printf("  warm  %8.3fs  speedup %6.2fx  (%llu cached, %llu re-proved)\n",
              S.Warm.Seconds, S.warmSpeedup(),
              static_cast<unsigned long long>(S.Warm.Stats.cached()),
              static_cast<unsigned long long>(S.Warm.Stats.verified()));
  if (S.HasEdit) {
    std::printf("  edit  %8.3fs  (%llu salvaged via %llu queries, "
                "%llu re-proved)\n",
                S.Edit.Seconds,
                static_cast<unsigned long long>(S.Edit.Stats.salvaged()),
                static_cast<unsigned long long>(S.Edit.Stats.SalvageQueries),
                static_cast<unsigned long long>(S.Edit.Stats.verified()));
    std::printf("  blnkt %8.3fs  (%llu re-proved)  edit speedup %6.2fx\n",
                S.BlanketEdit.Seconds,
                static_cast<unsigned long long>(
                    S.BlanketEdit.Stats.verified()),
                S.editVsBlanketSpeedup());
  }
  std::printf("  store %zu bytes, load %.1fms, flush %.1fms\n", S.StoreBytes,
              1e3 * S.StoreLoadSeconds, 1e3 * S.StoreFlushSeconds);
}

std::string storePath(const std::string &Suite) {
  return "bench_incr_" + Suite + ".prf";
}

std::string readFileBytes(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

void writeFileBytes(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
}

/// The generated multi-module program of the edit-to-verdict benchmark: one
/// shared `core::step` with a multi-conjunct pure spec, plus N caller
/// modules each proved against that spec. Editing one conjunct of the
/// shared spec touches every module's recorded deps; semantic salvage keeps
/// all N+1 verdicts through a handful of implication queries, while blanket
/// invalidation re-proves the whole program.
struct GenModules {
  rmir::Program Prog;
  gilsonite::PredTable Preds;
  gilsonite::SpecTable Specs;
  std::unique_ptr<gilsonite::OwnableRegistry> Ownables;
  engine::LemmaTable Lemmas;
  Solver Solv;
  engine::Automation Auto;
  std::vector<std::string> Funcs;

  explicit GenModules(int Modules) {
    using namespace gilr::rmir;
    using namespace gilr::gilsonite;
    Ownables = std::make_unique<OwnableRegistry>(Prog.Types, Preds);
    TypeRef U32 = Prog.Types.intTy(IntKind::U32);
    Expr XV = mkVar("x", Sort::Int);
    Expr Ret = mkVar(retVarName(), Sort::Int);

    {
      FunctionBuilder B("core::step", Prog.Types);
      LocalId X = B.addParam("x", U32);
      B.setReturnType(U32);
      BlockId E = B.newBlock();
      B.atBlock(E);
      B.assign(Place(0),
               Rvalue::binary(BinOp::Add, Operand::copy(Place(X)),
                              Operand::constant(mkInt(1), U32)));
      B.ret();
      addFn(B.finish());
      Spec S;
      S.Func = "core::step";
      S.Pre = star({pure(mkLe(mkInt(0), XV)), pure(mkLt(XV, mkInt(1000))),
                    pure(mkLe(XV, mkInt(100000)))});
      S.Post = star({pure(mkEq(Ret, mkAdd(XV, mkInt(1)))),
                     pure(mkLe(Ret, mkInt(1000)))});
      Specs.add(std::move(S));
      Funcs.push_back("core::step");
    }

    // Each module chains Steps calls through core::step's spec, so its
    // re-proof is an order of magnitude more work than the one implication
    // query that salvages it.
    constexpr int Steps = 10;
    for (int I = 0; I != Modules; ++I) {
      std::string Name = "mod" + std::to_string(I) + "::call_step";
      FunctionBuilder B(Name, Prog.Types);
      LocalId X = B.addParam("x", U32);
      B.setReturnType(U32);
      std::vector<LocalId> T;
      for (int K = 0; K != Steps; ++K)
        T.push_back(B.addLocal("t" + std::to_string(K), U32));
      BlockId E = B.newBlock();
      B.atBlock(E);
      LocalId Prev = X;
      for (int K = 0; K != Steps; ++K) {
        BlockId Cont = B.newBlock();
        B.call("core::step", {Operand::copy(Place(Prev))}, Place(T[K]),
               Cont);
        B.atBlock(Cont);
        Prev = T[K];
      }
      B.assign(Place(0), Rvalue::use(Operand::copy(Place(Prev))));
      B.ret();
      addFn(B.finish());
      Spec S;
      S.Func = Name;
      // Per-module bound so the specs are not all identical.
      S.Pre = star({pure(mkLe(mkInt(0), XV)),
                    pure(mkLt(XV, mkInt(10 + I % 7)))});
      S.Post = star({pure(mkEq(Ret, mkAdd(XV, mkInt(Steps))))});
      Specs.add(std::move(S));
      Funcs.push_back(std::move(Name));
    }
  }

  void addFn(rmir::Function F) {
    std::string N = F.Name;
    Prog.Funcs.emplace(std::move(N), std::move(F));
  }

  engine::VerifEnv env() {
    engine::VerifEnv E{Prog,   Preds, Specs, *Ownables,
                       Lemmas, Solv,  Auto,  analysis::AnalysisConfig{}};
    // Lints never salvage (they quote spec text); keep the edit-to-verdict
    // measurement a pure proof-obligation workload.
    E.Lint.Enabled = false;
    return E;
  }
};

} // namespace

int main(int argc, char **argv) {
  trace::configureFromEnv();
  std::string OutFile = argc > 1 ? argv[1] : "BENCH_incr.json";
  std::vector<SuiteResult> Suites;

  {
    // LinkedList functional hybrid: the full two-sided workload, including
    // front_mut (the lemma-applying proof) so the edit lever has a
    // dependent.
    auto Lib = buildLinkedListLib(SpecMode::Functional);
    std::vector<std::string> Funcs = functionalFunctions();
    Funcs.push_back("LinkedList::front_mut");
    std::vector<creusot::SafeFn> Clients = makeClients();

    SuiteResult Suite;
    Suite.Name = "linkedlist-functional-hybrid";
    Suite.Obligations = Funcs.size() + Clients.size();
    std::string Path = storePath("linkedlist");
    incr::IncrConfig Inc;
    Inc.Enabled = true;
    Inc.StorePath = Path;

    auto RunOnce = [&](incr::IncrRunStats &Stats) {
      engine::VerifEnv Env = Lib->env();
      hybrid::HybridDriver D(Env, Lib->Contracts);
      sched::SchedulerConfig C;
      return D.run(Funcs, Clients, C, Inc, &Stats).ok();
    };

    Suite.Cold = best([&] { std::remove(Path.c_str()); }, RunOnce);
    // The cold best-of loop leaves a fully populated store behind.
    Suite.Warm = best([] {}, RunOnce);
    measureStoreOverhead(Suite, Path);

    // Single-lemma edit: conjoin a LinArith-true but syntactically
    // irreducible fact onto the extraction lemma's requirement. Meaning is
    // unchanged; the fingerprint is not. With semantic salvage the lemma's
    // dependent (front_mut) is rescued by one implication query; under
    // blanket invalidation it re-proves — and only it.
    auto *LV = Lib->Lemmas.lookupMutable("ll_extract_head");
    if (LV) {
      auto &Ex = std::get<engine::ExtractLemma>(*LV);
      Expr Old = Ex.Requires;
      Expr Z = mkVar("incr$edit", Sort::Int);
      Ex.Requires = mkAnd(Old, mkLe(Z, mkAdd(Z, mkInt(1))));
      Suite.HasEdit = true;
      std::string WarmStore = readFileBytes(Path);
      auto ResetStore = [&] { writeFileBytes(Path, WarmStore); };
      Suite.Edit = best(ResetStore, RunOnce);
      Suite.Edit.Ok = Suite.Edit.Ok && Suite.Edit.Stats.verified() == 0 &&
                      Suite.Edit.Stats.salvaged() >= 1;
      incr::IncrConfig Blanket = Inc;
      Blanket.SemanticSalvage = false;
      auto RunBlanket = [&](incr::IncrRunStats &Stats) {
        engine::VerifEnv Env = Lib->env();
        hybrid::HybridDriver D(Env, Lib->Contracts);
        sched::SchedulerConfig C;
        return D.run(Funcs, Clients, C, Blanket, &Stats).ok();
      };
      Suite.BlanketEdit = best(ResetStore, RunBlanket);
      // A blanket edit run re-proves exactly the dependents, not everything.
      Suite.BlanketEdit.Ok = Suite.BlanketEdit.Ok &&
                             Suite.BlanketEdit.Stats.verified() > 0 &&
                             Suite.BlanketEdit.Stats.verified() <
                                 Suite.Obligations;
      Ex.Requires = Old;
    }

    printSuite(Suite);
    Suites.push_back(std::move(Suite));
    std::remove(Path.c_str());
  }

  {
    // Vec raw-buffer: the unsafe-only suite through the Verifier's
    // incremental entry point.
    auto Lib = buildVecLib();
    std::vector<std::string> Funcs = vecFunctions();

    SuiteResult Suite;
    Suite.Name = "vec-raw-buffer";
    Suite.Obligations = Funcs.size();
    std::string Path = storePath("vec");
    incr::IncrConfig Inc;
    Inc.Enabled = true;
    Inc.StorePath = Path;

    auto RunOnce = [&](incr::IncrRunStats &Stats) {
      engine::VerifEnv Env = Lib->env();
      engine::Verifier V(Env);
      sched::SchedulerConfig C;
      for (const engine::VerifyReport &R :
           V.verifyAll(Funcs, C, Inc, &Stats))
        if (!R.Ok)
          return false;
      return true;
    };

    Suite.Cold = best([&] { std::remove(Path.c_str()); }, RunOnce);
    Suite.Warm = best([] {}, RunOnce);
    measureStoreOverhead(Suite, Path);

    printSuite(Suite);
    Suites.push_back(std::move(Suite));
    std::remove(Path.c_str());
  }

  {
    // Generated multi-module program: the ISSUE's edit-to-verdict headline.
    // Editing one conjunct of the shared core::step spec — `x < 1000`
    // becomes the equivalent `x <= 999` — touches every module's recorded
    // deps. Semantic salvage keeps all verdicts through implication
    // queries; blanket invalidation re-proves the whole program.
    GenModules Gen(32);

    SuiteResult Suite;
    Suite.Name = "gen-modules-shared-spec";
    Suite.Obligations = Gen.Funcs.size();
    Suite.EditSpeedupFloor = MinEditSpeedup;
    std::string Path = storePath("gen_modules");
    incr::IncrConfig Inc;
    Inc.Enabled = true;
    Inc.StorePath = Path;

    auto RunWith = [&](const incr::IncrConfig &Cfg,
                       incr::IncrRunStats &Stats) {
      engine::VerifEnv Env = Gen.env();
      engine::Verifier V(Env);
      sched::SchedulerConfig C;
      for (const engine::VerifyReport &R :
           V.verifyAll(Gen.Funcs, C, Cfg, &Stats))
        if (!R.Ok)
          return false;
      return true;
    };
    auto RunOnce = [&](incr::IncrRunStats &Stats) {
      return RunWith(Inc, Stats);
    };

    Suite.Cold = best([&] { std::remove(Path.c_str()); }, RunOnce);
    Suite.Warm = best([] {}, RunOnce);
    measureStoreOverhead(Suite, Path);

    // The conjunct edit, applied once; both edit runs restart from the
    // pristine warm store (a salvage run refreshes the records on disk).
    gilsonite::Spec *Sp = Gen.Specs.lookupMutable("core::step");
    if (Sp) {
      Expr XV = mkVar("x", Sort::Int);
      std::vector<gilsonite::AssertionP> Parts = Sp->Pre->Parts;
      Parts[1] = gilsonite::pure(mkLe(XV, mkInt(999)));
      Sp->Pre = gilsonite::star(std::move(Parts));
      Suite.HasEdit = true;
      std::string WarmStore = readFileBytes(Path);
      auto ResetStore = [&] { writeFileBytes(Path, WarmStore); };
      Suite.Edit = best(ResetStore, RunOnce);
      // Every obligation must be salvaged, none re-proved.
      Suite.Edit.Ok = Suite.Edit.Ok && Suite.Edit.Stats.verified() == 0 &&
                      Suite.Edit.Stats.salvaged() == Suite.Obligations;
      incr::IncrConfig Blanket = Inc;
      Blanket.SemanticSalvage = false;
      auto RunBlanket = [&](incr::IncrRunStats &Stats) {
        return RunWith(Blanket, Stats);
      };
      Suite.BlanketEdit = best(ResetStore, RunBlanket);
      // Blanket invalidation re-proves the whole program.
      Suite.BlanketEdit.Ok = Suite.BlanketEdit.Ok &&
                             Suite.BlanketEdit.Stats.verified() ==
                                 Suite.Obligations;
    }

    printSuite(Suite);
    Suites.push_back(std::move(Suite));
    std::remove(Path.c_str());
  }

  bool AllOk = true;
  double MinSpeedup = 0.0;
  double EditSpeedup = 0.0;
  std::string Json = "{\n  \"bench\": \"incremental-verification\"";
  Json += ",\n  \"suites\": [\n";
  for (std::size_t I = 0; I != Suites.size(); ++I) {
    AllOk = AllOk && Suites[I].ok();
    double S = Suites[I].warmSpeedup();
    if (I == 0 || S < MinSpeedup)
      MinSpeedup = S;
    if (Suites[I].EditSpeedupFloor > 0.0)
      EditSpeedup = Suites[I].editVsBlanketSpeedup();
    Json += renderSuite(Suites[I]);
    Json += I + 1 != Suites.size() ? ",\n" : "\n";
  }
  Json += "  ],\n  \"min_warm_speedup\": " + fmt(MinSpeedup, "%.3f");
  Json +=
      ",\n  \"edit_vs_blanket_speedup\": " + fmt(EditSpeedup, "%.3f") + "\n}\n";

  std::FILE *F = std::fopen(OutFile.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "cannot write %s\n", OutFile.c_str());
    return 1;
  }
  std::fwrite(Json.data(), 1, Json.size(), F);
  std::fclose(F);
  std::printf("wrote %s (min warm speedup %.2fx, edit vs blanket %.2fx)\n",
              OutFile.c_str(), MinSpeedup, EditSpeedup);
  return AllOk ? 0 : 1;
}
