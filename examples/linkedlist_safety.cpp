//===- examples/linkedlist_safety.cpp - The paper's E1 experiment -----------===//
//
// Verifies type safety of the LinkedList module (§6): new, push_front,
// pop_front and front_mut under #[show_safety] specs, printing the per-
// function results the way the paper reports them.
//
//===----------------------------------------------------------------------===//

#include "rmir/Printer.h"
#include "rustlib/LinkedList.h"

#include <cstdio>
#include "support/Trace.h"

using namespace gilr;
using namespace gilr::rustlib;

int main() {
  gilr::trace::configureFromEnv();
  std::printf("Building the LinkedList module (types, dllSeg, Ownable "
              "impls, lemmas)...\n");
  auto Lib = buildLinkedListLib(SpecMode::TypeSafety);

  std::printf("\n== The code under verification (RMIR) ==\n%s\n",
              rmir::functionToString(
                  *Lib->Prog.lookup("LinkedList::pop_front_node"))
                  .c_str());

  engine::VerifEnv Env = Lib->env();
  engine::Verifier V(Env);

  std::printf("== Type safety (#[show_safety], RustBelt-style) ==\n");
  double Total = 0.0;
  bool AllOk = true;
  for (const std::string &Name : allFunctions()) {
    engine::VerifyReport R = V.verifyFunction(Name);
    Total += R.Seconds;
    AllOk &= R.Ok;
    std::printf("  %-32s %-8s %7.4fs  paths=%u  annotations=%u\n",
                Name.c_str(), R.Ok ? "OK" : "FAIL", R.Seconds,
                R.PathsCompleted, R.GhostAnnotations);
    for (const std::string &E : R.Errors)
      std::printf("    error: %s\n", E.c_str());
  }
  std::printf("  total: %.4fs (paper reports 0.16s for the 4-function "
              "subset on a 2019 laptop)\n",
              Total);
  return AllOk ? 0 : 1;
}
