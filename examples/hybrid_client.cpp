//===- examples/hybrid_client.cpp - The hybrid approach end-to-end ----------===//
//
// §2.1 in action: safe client code is verified by the Creusot-side
// verifier against Pearlite contracts; the unsafe LinkedList implementation
// is verified against the *same* contracts by the Gillian-Rust side after
// the systematic §5.4 encoding.
//
//===----------------------------------------------------------------------===//

#include "rustlib/Clients.h"
#include "rustlib/LinkedList.h"

#include <cstdio>
#include "support/Trace.h"

using namespace gilr;
using namespace gilr::rustlib;

int main() {
  gilr::trace::configureFromEnv();
  auto Lib = buildLinkedListLib(SpecMode::Functional);
  engine::VerifEnv Env = Lib->env();
  hybrid::HybridDriver Driver(Env, Lib->Contracts);

  std::printf("== Shared contracts (Pearlite) ==\n");
  for (const auto &[Name, S] : Lib->Contracts.all())
    std::printf("  %-32s %s\n", Name.c_str(), S.Doc.c_str());

  std::printf("\n== Gillian-Rust side: verifying the unsafe "
              "implementations ==\n");
  hybrid::HybridReport R = Driver.run(functionalFunctions(), makeClients());
  for (const engine::VerifyReport &U : R.UnsafeSide) {
    std::printf("  %-32s %-8s %7.4fs\n", U.Func.c_str(),
                U.Ok ? "OK" : "FAIL", U.Seconds);
    for (const std::string &E : U.Errors)
      std::printf("    error: %s\n", E.c_str());
  }

  std::printf("\n== Creusot side: verifying the safe clients ==\n");
  for (const creusot::SafeReport &C : R.SafeSide) {
    std::printf("  %-32s %-8s %7.4fs  obligations=%zu\n", C.Func.c_str(),
                C.Ok ? "OK" : "FAIL", C.Seconds, C.Obligations.size());
    for (const std::string &E : C.Errors)
      std::printf("    error: %s\n", E.c_str());
  }

  std::printf("\n== Negative check: a client missing a precondition ==\n");
  creusot::SafeVerifier SV(Lib->Contracts, Lib->Solv);
  creusot::SafeReport Bad = SV.verify(makeBadClient());
  std::printf("  %-32s %s (expected FAIL)\n", Bad.Func.c_str(),
              Bad.Ok ? "OK?!" : "FAIL");

  bool Success = R.ok() && !Bad.Ok;
  std::printf("\nhybrid pipeline: %s\n", Success ? "VERIFIED" : "BROKEN");
  return Success ? 0 : 1;
}
