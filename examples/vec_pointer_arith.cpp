//===- examples/vec_pointer_arith.cpp - Laid-out nodes (Fig. 5) -------------===//
//
// Verifies the raw-buffer Vec operations whose proofs exercise laid-out
// node splitting, overwriting and reassembly — the pointer-arithmetic side
// of the hybrid heap (§3.2).
//
//===----------------------------------------------------------------------===//

#include "rmir/Printer.h"
#include "rustlib/Vec.h"

#include <cstdio>
#include "support/Trace.h"

using namespace gilr;
using namespace gilr::rustlib;

int main() {
  gilr::trace::configureFromEnv();
  auto Lib = buildVecLib();

  std::printf("== The Fig. 5 write, as RMIR ==\n%s\n",
              rmir::functionToString(*Lib->Prog.lookup("Vec::push_raw"))
                  .c_str());

  engine::VerifEnv Env = Lib->env();
  engine::Verifier V(Env);
  bool AllOk = true;
  for (const std::string &Name : vecFunctions()) {
    const gilsonite::Spec *S = Lib->Specs.lookup(Name);
    std::printf("== %s ==\npre:  %s\npost: %s\n", Name.c_str(),
                S->Pre->str().c_str(), S->Post->str().c_str());
    engine::VerifyReport R = V.verifyFunction(Name);
    AllOk &= R.Ok;
    std::printf("--> %s in %.4fs\n\n", R.Ok ? "VERIFIED" : "FAILED",
                R.Seconds);
    for (const std::string &E : R.Errors)
      std::printf("    error: %s\n", E.c_str());
  }
  return AllOk ? 0 : 1;
}
