//===- examples/layout_explorer.cpp - Fig. 4: one node, many layouts --------===//
//
// Shows the layout-independence story of §3: one structural node, its
// projections, and the different concrete interpretations each compiler
// layout choice induces — including the niche optimisation of
// Option<*mut T>.
//
//===----------------------------------------------------------------------===//

#include "heap/Projection.h"
#include "rmir/Layout.h"
#include "sym/ExprBuilder.h"

#include <cstdio>
#include "support/Trace.h"

using namespace gilr;
using namespace gilr::rmir;
using namespace gilr::heap;

int main() {
  gilr::trace::configureFromEnv();
  TyCtx Ty;
  // Fig. 4's struct S { x: u32, y: u64 }.
  TypeRef S = Ty.declareStruct("S", {FieldDef{"x", Ty.intTy(IntKind::U32)},
                                     FieldDef{"y", Ty.intTy(IntKind::U64)}});
  TypeRef OptPtr = Ty.optionOf(Ty.rawPtr(S));

  std::printf("struct S { x: u32, y: u64 }\n\n");
  std::printf("%-16s %-6s %-6s %-8s %-8s %-14s\n", "strategy", "size",
              "align", "&S.x", "&S.y", "Option<*mut S>");
  for (LayoutStrategy Strat :
       {LayoutStrategy::DeclOrder, LayoutStrategy::LargestFirst,
        LayoutStrategy::SmallestFirst}) {
    for (bool Niche : {true, false}) {
      LayoutEngine L(Ty, Strat, Niche);
      Projection PX = {ProjElem::field(S, 0)};
      Projection PY = {ProjElem::field(S, 1)};
      std::printf("%-16s %-6llu %-6llu %-8llu %-8llu %llu bytes%s\n",
                  (std::string(layoutStrategyName(Strat)) +
                   (Niche ? "+niche" : ""))
                      .c_str(),
                  static_cast<unsigned long long>(L.sizeOf(S)),
                  static_cast<unsigned long long>(L.alignOf(S)),
                  static_cast<unsigned long long>(interpretProjection(L, PX)),
                  static_cast<unsigned long long>(interpretProjection(L, PY)),
                  static_cast<unsigned long long>(L.sizeOf(OptPtr)),
                  L.of(OptPtr).IsNiche ? " (null niche)" : " (tagged)");
    }
  }

  std::printf("\nThe projection [.S 0, +u32 1] is interpreted per layout, "
              "but field projections always commute:\n");
  for (LayoutStrategy Strat :
       {LayoutStrategy::DeclOrder, LayoutStrategy::LargestFirst,
        LayoutStrategy::SmallestFirst}) {
    LayoutEngine L(Ty, Strat);
    Projection P = {ProjElem::field(S, 0),
                    ProjElem::offset(Ty.intTy(IntKind::U32), mkInt(1))};
    std::printf("  %-16s -> byte offset %llu\n", layoutStrategyName(Strat),
                static_cast<unsigned long long>(interpretProjection(L, P)));
  }
  return 0;
}
