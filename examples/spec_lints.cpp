//===- examples/spec_lints.cpp - The pre-verification analysis in action ----===//
//
// Demonstrates the static pre-pass (docs/ANALYSIS.md): a function whose
// precondition is self-contradictory (GILR-E006, rejected before any
// symbolic execution) and one with a dead store (GILR-W002, reported but
// verified). Prints the diagnostics as text and as the JSON the telemetry
// layer embeds in reports. Run: ./example_spec_lints
//
//===----------------------------------------------------------------------===//

#include "engine/Verifier.h"
#include "rmir/Builder.h"
#include "sym/ExprBuilder.h"

#include <cstdio>

using namespace gilr;
using namespace gilr::rmir;
using namespace gilr::gilsonite;

int main() {
  trace::configureFromEnv();

  rmir::Program Prog;
  TypeRef U32 = Prog.Types.intTy(IntKind::U32);

  // 1. fn clamped_inc(x: u32) -> u32 { x + 1 } — with a precondition that
  //    demands x < 0 AND x > 10 at once. Every proof obligation would hold
  //    vacuously; the pre-pass rejects it with the unsat core instead.
  {
    FunctionBuilder B("clamped_inc", Prog.Types);
    LocalId X = B.addParam("x", U32);
    B.setReturnType(U32);
    BlockId E = B.newBlock();
    B.atBlock(E);
    B.assign(Place(0), Rvalue::binary(BinOp::Add, Operand::copy(Place(X)),
                                      Operand::constant(mkInt(1), U32)));
    B.ret();
    Prog.Funcs.emplace("clamped_inc", B.finish());
  }

  // 2. fn shadowed(x: u32) -> u32 — stores a scratch value it never reads
  //    (GILR-W002), then returns x. Verifies fine; the warning rides along.
  {
    FunctionBuilder B("shadowed", Prog.Types);
    LocalId X = B.addParam("x", U32);
    B.setReturnType(U32);
    LocalId T = B.addLocal("scratch", U32);
    BlockId E = B.newBlock();
    B.atBlock(E);
    B.assign(Place(T), Rvalue::use(Operand::constant(mkInt(42), U32)));
    B.assign(Place(0), Rvalue::use(Operand::copy(Place(X))));
    B.ret();
    Prog.Funcs.emplace("shadowed", B.finish());
  }

  PredTable Preds;
  SpecTable Specs;
  OwnableRegistry Ownables(Prog.Types, Preds);
  engine::LemmaTable Lemmas;
  Solver Solv;

  Expr X = mkVar("x", Sort::Int);
  Expr Ret = mkVar(retVarName(), Sort::Int);
  {
    Spec S;
    S.Func = "clamped_inc";
    S.SpecVars = {Binder{"x", Sort::Int}};
    S.Pre = star({pure(mkLt(X, mkInt(0))), pure(mkGt(X, mkInt(10)))});
    S.Post = pure(mkEq(Ret, mkAdd(X, mkInt(1))));
    Specs.add(std::move(S));
  }
  {
    Spec S;
    S.Func = "shadowed";
    S.SpecVars = {Binder{"x", Sort::Int}};
    S.Pre = pure(mkLt(X, mkInt(1000)));
    S.Post = pure(mkEq(Ret, X));
    Specs.add(std::move(S));
  }

  engine::VerifEnv Env{Prog,   Preds, Specs, Ownables,
                       Lemmas, Solv,  engine::Automation{},
                       analysis::AnalysisConfig{}};
  engine::Verifier V(Env);
  std::vector<engine::VerifyReport> Rs =
      V.verifyAll({"clamped_inc", "shadowed"});

  // The aggregated pre-pass result: human-readable and JSON.
  std::printf("%s\n", V.lastAnalysis().renderText().c_str());
  std::printf("== analysis (JSON) ==\n%s\n\n",
              V.lastAnalysis().renderJson().c_str());

  for (const engine::VerifyReport &R : Rs) {
    std::printf("== %s ==\nstatus: %s\n", R.Func.c_str(),
                R.Ok               ? "VERIFIED"
                : R.LintBlocked    ? "REJECTED (pre-verification analysis)"
                                   : "FAILED");
    for (const std::string &E : R.Errors)
      std::printf("  %s\n", E.c_str());
  }

  // Expected shape: clamped_inc rejected without a single executor run,
  // shadowed verified with its dead-store warning attached.
  bool Expected = Rs.size() == 2 && !Rs[0].Ok && Rs[0].LintBlocked &&
                  Rs[1].Ok && !Rs[1].Diags.empty();
  return Expected ? 0 : 1;
}
