//===- examples/quickstart.cpp - Verify your first unsafe function ----------===//
//
// The smallest end-to-end use of the library: build a tiny unsafe function
// (a heap cell swap through raw pointers), give it a Gilsonite spec, and
// verify it. Run: ./example_quickstart
//
//===----------------------------------------------------------------------===//

#include "engine/Verifier.h"
#include "rmir/Builder.h"
#include "rmir/Printer.h"
#include "sym/ExprBuilder.h"

#include <cstdio>

using namespace gilr;
using namespace gilr::rmir;
using namespace gilr::gilsonite;

int main() {
  // Honour GILR_TRACE=text|json (see docs/TELEMETRY.md); off by default.
  trace::configureFromEnv();

  // 1. A program with one function:
  //      fn swap(a: *mut u32, b: *mut u32) {
  //        let ta = *a; let tb = *b; *a = tb; *b = ta;
  //      }
  rmir::Program Prog;
  TypeRef U32 = Prog.Types.intTy(IntKind::U32);
  TypeRef P32 = Prog.Types.rawPtr(U32);

  FunctionBuilder B("swap", Prog.Types);
  LocalId A = B.addParam("a", P32);
  LocalId Bp = B.addParam("b", P32);
  LocalId Ta = B.addLocal("ta", U32);
  LocalId Tb = B.addLocal("tb", U32);
  BlockId Entry = B.newBlock();
  B.atBlock(Entry);
  B.assign(Place(Ta), Rvalue::use(Operand::copy(Place(A).deref())));
  B.assign(Place(Tb), Rvalue::use(Operand::copy(Place(Bp).deref())));
  B.assign(Place(A).deref(), Rvalue::use(Operand::copy(Place(Tb))));
  B.assign(Place(Bp).deref(), Rvalue::use(Operand::copy(Place(Ta))));
  B.ret();
  Prog.Funcs.emplace("swap", B.finish());

  std::printf("== RMIR ==\n%s\n",
              functionToString(Prog.Funcs.at("swap")).c_str());

  // 2. Its separation-logic spec:
  //      { a |-> va * b |-> vb }  swap(a, b)  { a |-> vb * b |-> va }.
  PredTable Preds;
  SpecTable Specs;
  OwnableRegistry Ownables(Prog.Types, Preds);
  engine::LemmaTable Lemmas;
  Solver Solv;

  Expr Av = mkVar("a", Sort::Tuple);
  Expr Bv = mkVar("b", Sort::Tuple);
  Expr Va = mkVar("va$", Sort::Int);
  Expr Vb = mkVar("vb$", Sort::Int);

  Spec S;
  S.Func = "swap";
  S.SpecVars = {Binder{"va$", Sort::Int}, Binder{"vb$", Sort::Int}};
  S.Pre = star({pointsTo(Av, U32, Va), pointsTo(Bv, U32, Vb)});
  S.Post = star({pointsTo(Av, U32, Vb), pointsTo(Bv, U32, Va)});
  std::printf("== Spec ==\npre:  %s\npost: %s\n\n", S.Pre->str().c_str(),
              S.Post->str().c_str());
  Specs.add(std::move(S));

  // 3. Verify.
  engine::VerifEnv Env{Prog,   Preds, Specs, Ownables,
                       Lemmas, Solv,  engine::Automation{},
                       analysis::AnalysisConfig{}};
  engine::Verifier V(Env);
  engine::VerifyReport R = V.verifyFunction("swap");

  std::printf("== Result ==\n%s (%u path(s), %.4fs, %llu solver queries)\n",
              R.Ok ? "VERIFIED" : "FAILED", R.PathsCompleted, R.Seconds,
              static_cast<unsigned long long>(Solv.stats().SatQueries));
  for (const std::string &E : R.Errors)
    std::printf("error: %s\n", E.c_str());
  return R.Ok ? 0 : 1;
}
