//===- examples/bug_hunting.cpp - What verification catches -----------------===//
//
// The negative side of the story: three classic doubly-linked-list bugs
// (including the Fig. 7 cycle the paper uses to motivate type safety) are
// injected into push_front_node; the verifier rejects each one, and the
// diagnostic shows *which* part of the dllSeg invariant broke.
//
//===----------------------------------------------------------------------===//

#include "rustlib/LinkedList.h"

#include <cstdio>
#include "support/Trace.h"

using namespace gilr;
using namespace gilr::rustlib;

int main() {
  gilr::trace::configureFromEnv();
  auto Lib = buildLinkedListLib(SpecMode::TypeSafety);
  std::vector<std::string> Buggy = registerBuggyVariants(*Lib);

  engine::VerifEnv Env = Lib->env();
  engine::Verifier V(Env);

  std::printf("The correct implementation verifies:\n");
  engine::VerifyReport Good = V.verifyFunction("LinkedList::push_front_node");
  std::printf("  %-38s %s\n\n", "push_front_node",
              Good.Ok ? "VERIFIED" : "rejected?!");

  struct Story {
    const char *Suffix;
    const char *What;
  };
  const Story Stories[] = {
      {"noprev", "forgets (*old).prev = Some(node): the back edge of the "
                 "doubly-linked invariant is stale"},
      {"cycle", "links the new node to itself (Fig. 7): a safe client "
                "could traverse forever or double-free"},
      {"nolen", "forgets len += 1: the len = |repr| part of the Ownable "
                "invariant (Fig. 2) breaks"},
  };

  bool AllRejected = true;
  for (std::size_t I = 0; I != Buggy.size(); ++I) {
    engine::VerifyReport R = V.verifyFunction(Buggy[I]);
    AllRejected &= !R.Ok;
    std::printf("Injected bug: %s\n  %s\n", Stories[I].Suffix,
                Stories[I].What);
    std::printf("  verdict: %s\n", R.Ok ? "VERIFIED (bad!)" : "REJECTED");
    if (!R.Errors.empty()) {
      std::string Msg = R.Errors.front();
      if (Msg.size() > 200)
        Msg = Msg.substr(0, 200) + "...";
      std::printf("  diagnostic: %s\n", Msg.c_str());
    }
    std::printf("\n");
  }

  std::printf("bug hunting: %s\n",
              Good.Ok && AllRejected ? "all bugs caught" : "BROKEN");
  return Good.Ok && AllRejected ? 0 : 1;
}
